#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "trace/export.h"
#include "util/units.h"

namespace panda {
namespace bench {

Shape PaperArrayShape(std::int64_t size_mb) {
  PANDA_REQUIRE(size_mb >= 1, "array size must be >= 1 MB");
  // {mb, 512, 512} x 4-byte elements: one dim-0 plane == 1 MB.
  return Shape{size_mb, 512, 512};
}

ArrayMeta PaperArrayMeta(std::int64_t size_mb, const Shape& cn_mesh,
                         bool traditional, int io_nodes) {
  const Shape shape = PaperArrayShape(size_mb);
  ArrayMeta meta;
  meta.name = "bench";
  meta.elem_size = 4;
  std::vector<DimDist> mem_dists(3, DimDist::Block());
  meta.memory = Schema(shape, Mesh(cn_mesh), mem_dists);
  if (traditional) {
    meta.disk = Schema(shape, Mesh(Shape{io_nodes}),
                       {DimDist::Block(), DimDist::None(), DimDist::None()});
  } else {
    meta.disk = meta.memory;  // natural chunking
  }
  return meta;
}

double NormalizationPeakBps(const MeasureSpec& spec) {
  if (spec.fast_disk) return spec.params.net.bandwidth_Bps;
  const DiskModel aix = DiskModel::NasSp2Aix();
  return spec.op == IoOp::kRead ? aix.ReadThroughput(1 * kMiB)
                                : aix.WriteThroughput(1 * kMiB);
}

MeasureResult MeasureCollective(const MeasureSpec& spec, const ArrayMeta& meta,
                                std::string* trace_json) {
  Machine machine = Machine::Simulated(spec.num_clients, spec.io_nodes,
                                       spec.params, /*store_data=*/false,
                                       /*timing_only=*/true);
  if (spec.trace) machine.EnableTrace();
  const World world{spec.num_clients, spec.io_nodes};

  // One elapsed value per (rep, client); slots are disjoint per thread.
  std::vector<double> elapsed(
      static_cast<size_t>(spec.reps * spec.num_clients), 0.0);

  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, spec.params);
        Array array(meta.name, meta.elem_size, meta.memory, meta.disk);
        array.BindClient(client_index, /*allocate=*/false);

        // Warm-up write so read benches have files on the i/o nodes
        // (also reproduces the paper's methodology: data is written,
        // the cache flushed, then reads are timed).
        client.WriteArray(array);

        for (int rep = 0; rep < spec.reps; ++rep) {
          const double t = spec.op == IoOp::kWrite ? client.WriteArray(array)
                                                   : client.ReadArray(array);
          elapsed[static_cast<size_t>(rep * spec.num_clients + client_index)] =
              t;
        }
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world, spec.params,
                   spec.server_options);
      });

  // The paper's metric: elapsed = max over compute nodes, averaged over
  // the repetitions. The max-over-ranks reduction is shared with the
  // machine report (panda/report.h), so table and report cannot
  // disagree about what "elapsed" means.
  double sum = 0.0;
  for (int rep = 0; rep < spec.reps; ++rep) {
    sum += MaxOverRanks(std::span<const double>(
        elapsed.data() + static_cast<size_t>(rep * spec.num_clients),
        static_cast<size_t>(spec.num_clients)));
  }

  MeasureResult result;
  result.elapsed_s = sum / spec.reps;
  const std::int64_t bytes = meta.total_bytes();
  result.aggregate_Bps = static_cast<double>(bytes) / result.elapsed_s;
  result.per_ion_Bps = result.aggregate_Bps / spec.io_nodes;
  result.normalized = result.per_ion_Bps / NormalizationPeakBps(spec);
  if (const trace::Collector* collector = machine.trace_collector()) {
    result.spans = collector->AggregateByKind();
    if (trace_json != nullptr) *trace_json = MachineTraceJson(machine);
  }
  return result;
}

namespace {

// {"<kind>":{"count":N,"total_s":S,"total_arg":A},...} for kinds with a
// non-zero count.
std::string SpansJson(
    const std::array<trace::SpanAggregate, trace::kNumSpanKinds>& spans) {
  std::string out = "{";
  bool first = true;
  for (size_t k = 0; k < trace::kNumSpanKinds; ++k) {
    const trace::SpanAggregate& a = spans[k];
    if (a.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += trace::SpanKindName(static_cast<trace::SpanKind>(k));
    out += "\":{\"count\":" + std::to_string(a.count);
    out += ",\"total_s\":" + trace::JsonDouble(a.total_s);
    out += ",\"total_arg\":" + std::to_string(a.total_arg) + "}";
  }
  out += "}";
  return out;
}

}  // namespace

std::string BenchJson(const FigureSpec& spec, bool quick, int reps,
                      std::span<const FigureRow> rows) {
  std::string out = "{";
  out += "\"schema_version\":1,";
  out += "\"kind\":\"panda_bench\",";
  out += "\"bench\":\"" + trace::JsonEscape(spec.id) + "\",";
  out += "\"description\":\"" + trace::JsonEscape(spec.description) + "\",";
  out += std::string("\"op\":\"") +
         (spec.op == IoOp::kRead ? "read" : "write") + "\",";
  out += std::string("\"quick\":") + (quick ? "true" : "false") + ",";
  out += "\"reps\":" + std::to_string(reps) + ",";
  out += "\"rows\":[";
  std::array<trace::SpanAggregate, trace::kNumSpanKinds> total{};
  for (size_t i = 0; i < rows.size(); ++i) {
    const FigureRow& row = rows[i];
    if (i != 0) out += ",";
    out += "{\"io_nodes\":" + std::to_string(row.io_nodes);
    out += ",\"size_mb\":" + std::to_string(row.size_mb);
    out += ",\"elapsed_s\":" + trace::JsonDouble(row.result.elapsed_s);
    out += ",\"aggregate_Bps\":" + trace::JsonDouble(row.result.aggregate_Bps);
    out += ",\"per_ion_Bps\":" + trace::JsonDouble(row.result.per_ion_Bps);
    out += ",\"normalized\":" + trace::JsonDouble(row.result.normalized);
    out += ",\"spans\":" + SpansJson(row.result.spans);
    out += "}";
    for (size_t k = 0; k < trace::kNumSpanKinds; ++k) {
      total[k].count += row.result.spans[k].count;
      total[k].total_s += row.result.spans[k].total_s;
      total[k].total_arg += row.result.spans[k].total_arg;
    }
  }
  out += "],";
  out += "\"spans\":" + SpansJson(total);
  out += "}";
  return out;
}

void RunFigure(const FigureSpec& spec, bool quick) {
  RunFigure(spec, quick, FigureOutput{});
}

void RunFigure(const FigureSpec& spec, bool quick, const FigureOutput& out) {
  std::vector<std::int64_t> sizes = spec.sizes_mb;
  std::vector<int> ions = spec.io_nodes;
  int reps = spec.reps;
  if (quick) {
    sizes = {sizes.front(), sizes.back()};
    reps = 1;
  }
  const bool want_outputs = !out.json_path.empty() || !out.trace_path.empty();
  std::vector<FigureRow> rows;
  std::string trace_json;

  std::printf("# %s: %s\n", spec.id.c_str(), spec.description.c_str());
  std::printf("# %d compute nodes (%s mesh), %s, %s disk, op=%s\n",
              spec.num_clients, spec.cn_mesh.ToString().c_str(),
              spec.traditional ? "traditional order (BLOCK,*,*)"
                               : "natural chunking",
              spec.fast_disk ? "infinitely fast" : "NAS AIX",
              spec.op == IoOp::kRead ? "read" : "write");
  std::printf("%-9s %-8s %-12s %-14s %-14s %-10s\n", "io_nodes", "size_mb",
              "elapsed_s", "aggregate", "per_io_node", "normalized");

  for (const int ion : ions) {
    for (const std::int64_t mb : sizes) {
      MeasureSpec ms;
      ms.op = spec.op;
      ms.params = spec.fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
      ms.num_clients = spec.num_clients;
      ms.io_nodes = ion;
      ms.reps = reps;
      ms.fast_disk = spec.fast_disk;
      ms.trace = want_outputs;
      const ArrayMeta meta =
          PaperArrayMeta(mb, spec.cn_mesh, spec.traditional, ion);
      // The exported trace is the last sweep point's (one Run per point;
      // a whole sweep in one file would stack unrelated timelines).
      const bool last_point = ion == ions.back() && mb == sizes.back();
      const MeasureResult r = MeasureCollective(
          ms, meta,
          !out.trace_path.empty() && last_point ? &trace_json : nullptr);
      std::printf("%-9d %-8lld %-12.4f %-14s %-14s %-10.3f\n", ion,
                  static_cast<long long>(mb), r.elapsed_s,
                  FormatThroughput(r.aggregate_Bps).c_str(),
                  FormatThroughput(r.per_ion_Bps).c_str(), r.normalized);
      if (want_outputs) rows.push_back(FigureRow{ion, mb, r});
    }
  }
  std::printf("\n");
  if (!out.json_path.empty()) {
    const std::string json = BenchJson(spec, quick, reps, rows);
    PANDA_REQUIRE(trace::WriteTextFile(out.json_path, json),
                  "cannot write bench json '%s'", out.json_path.c_str());
    std::printf("# wrote %s\n", out.json_path.c_str());
  }
  if (!out.trace_path.empty()) {
    PANDA_REQUIRE(trace::WriteTextFile(out.trace_path, trace_json),
                  "cannot write trace '%s'", out.trace_path.c_str());
    std::printf("# wrote %s\n", out.trace_path.c_str());
  }
}

int FigureMain(int argc, char** argv, FigureSpec spec) {
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    const std::int64_t reps = opts.GetInt("reps", spec.reps);
    FigureOutput out;
    out.json_path = opts.GetString("json_out", "");
    out.trace_path = opts.GetString("trace_out", "");
    opts.CheckAllConsumed();
    spec.reps = static_cast<int>(reps);
    RunFigure(spec, quick, out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace bench
}  // namespace panda
