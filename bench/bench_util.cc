#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "util/units.h"

namespace panda {
namespace bench {

Shape PaperArrayShape(std::int64_t size_mb) {
  PANDA_REQUIRE(size_mb >= 1, "array size must be >= 1 MB");
  // {mb, 512, 512} x 4-byte elements: one dim-0 plane == 1 MB.
  return Shape{size_mb, 512, 512};
}

ArrayMeta PaperArrayMeta(std::int64_t size_mb, const Shape& cn_mesh,
                         bool traditional, int io_nodes) {
  const Shape shape = PaperArrayShape(size_mb);
  ArrayMeta meta;
  meta.name = "bench";
  meta.elem_size = 4;
  std::vector<DimDist> mem_dists(3, DimDist::Block());
  meta.memory = Schema(shape, Mesh(cn_mesh), mem_dists);
  if (traditional) {
    meta.disk = Schema(shape, Mesh(Shape{io_nodes}),
                       {DimDist::Block(), DimDist::None(), DimDist::None()});
  } else {
    meta.disk = meta.memory;  // natural chunking
  }
  return meta;
}

double NormalizationPeakBps(const MeasureSpec& spec) {
  if (spec.fast_disk) return spec.params.net.bandwidth_Bps;
  const DiskModel aix = DiskModel::NasSp2Aix();
  return spec.op == IoOp::kRead ? aix.ReadThroughput(1 * kMiB)
                                : aix.WriteThroughput(1 * kMiB);
}

MeasureResult MeasureCollective(const MeasureSpec& spec,
                                const ArrayMeta& meta) {
  Machine machine = Machine::Simulated(spec.num_clients, spec.io_nodes,
                                       spec.params, /*store_data=*/false,
                                       /*timing_only=*/true);
  const World world{spec.num_clients, spec.io_nodes};

  // One elapsed value per (rep, client); slots are disjoint per thread.
  std::vector<double> elapsed(
      static_cast<size_t>(spec.reps * spec.num_clients), 0.0);

  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, spec.params);
        Array array(meta.name, meta.elem_size, meta.memory, meta.disk);
        array.BindClient(client_index, /*allocate=*/false);

        // Warm-up write so read benches have files on the i/o nodes
        // (also reproduces the paper's methodology: data is written,
        // the cache flushed, then reads are timed).
        client.WriteArray(array);

        for (int rep = 0; rep < spec.reps; ++rep) {
          const double t = spec.op == IoOp::kWrite ? client.WriteArray(array)
                                                   : client.ReadArray(array);
          elapsed[static_cast<size_t>(rep * spec.num_clients + client_index)] =
              t;
        }
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world, spec.params,
                   spec.server_options);
      });

  // The paper's metric: elapsed = max over compute nodes, averaged over
  // the repetitions.
  double sum = 0.0;
  for (int rep = 0; rep < spec.reps; ++rep) {
    double rep_max = 0.0;
    for (int c = 0; c < spec.num_clients; ++c) {
      rep_max = std::max(
          rep_max,
          elapsed[static_cast<size_t>(rep * spec.num_clients + c)]);
    }
    sum += rep_max;
  }

  MeasureResult result;
  result.elapsed_s = sum / spec.reps;
  const std::int64_t bytes = meta.total_bytes();
  result.aggregate_Bps = static_cast<double>(bytes) / result.elapsed_s;
  result.per_ion_Bps = result.aggregate_Bps / spec.io_nodes;
  result.normalized = result.per_ion_Bps / NormalizationPeakBps(spec);
  return result;
}

void RunFigure(const FigureSpec& spec, bool quick) {
  std::vector<std::int64_t> sizes = spec.sizes_mb;
  std::vector<int> ions = spec.io_nodes;
  int reps = spec.reps;
  if (quick) {
    sizes = {sizes.front(), sizes.back()};
    reps = 1;
  }

  std::printf("# %s: %s\n", spec.id.c_str(), spec.description.c_str());
  std::printf("# %d compute nodes (%s mesh), %s, %s disk, op=%s\n",
              spec.num_clients, spec.cn_mesh.ToString().c_str(),
              spec.traditional ? "traditional order (BLOCK,*,*)"
                               : "natural chunking",
              spec.fast_disk ? "infinitely fast" : "NAS AIX",
              spec.op == IoOp::kRead ? "read" : "write");
  std::printf("%-9s %-8s %-12s %-14s %-14s %-10s\n", "io_nodes", "size_mb",
              "elapsed_s", "aggregate", "per_io_node", "normalized");

  for (const int ion : ions) {
    for (const std::int64_t mb : sizes) {
      MeasureSpec ms;
      ms.op = spec.op;
      ms.params = spec.fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
      ms.num_clients = spec.num_clients;
      ms.io_nodes = ion;
      ms.reps = reps;
      ms.fast_disk = spec.fast_disk;
      const ArrayMeta meta =
          PaperArrayMeta(mb, spec.cn_mesh, spec.traditional, ion);
      const MeasureResult r = MeasureCollective(ms, meta);
      std::printf("%-9d %-8lld %-12.4f %-14s %-14s %-10.3f\n", ion,
                  static_cast<long long>(mb), r.elapsed_s,
                  FormatThroughput(r.aggregate_Bps).c_str(),
                  FormatThroughput(r.per_ion_Bps).c_str(), r.normalized);
    }
  }
  std::printf("\n");
}

int FigureMain(int argc, char** argv, FigureSpec spec) {
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    const std::int64_t reps = opts.GetInt("reps", spec.reps);
    opts.CheckAllConsumed();
    spec.reps = static_cast<int>(reps);
    RunFigure(spec, quick);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace bench
}  // namespace panda
