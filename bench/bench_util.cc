#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "codec/frame.h"
#include "trace/export.h"
#include "util/units.h"

namespace panda {
namespace bench {

Shape PaperArrayShape(std::int64_t size_mb) {
  PANDA_REQUIRE(size_mb >= 1, "array size must be >= 1 MB");
  // {mb, 512, 512} x 4-byte elements: one dim-0 plane == 1 MB.
  return Shape{size_mb, 512, 512};
}

ArrayMeta PaperArrayMeta(std::int64_t size_mb, const Shape& cn_mesh,
                         bool traditional, int io_nodes) {
  const Shape shape = PaperArrayShape(size_mb);
  ArrayMeta meta;
  meta.name = "bench";
  meta.elem_size = 4;
  std::vector<DimDist> mem_dists(3, DimDist::Block());
  meta.memory = Schema(shape, Mesh(cn_mesh), mem_dists);
  if (traditional) {
    meta.disk = Schema(shape, Mesh(Shape{io_nodes}),
                       {DimDist::Block(), DimDist::None(), DimDist::None()});
  } else {
    meta.disk = meta.memory;  // natural chunking
  }
  return meta;
}

double NormalizationPeakBps(const MeasureSpec& spec) {
  if (spec.fast_disk) return spec.params.net.bandwidth_Bps;
  const DiskModel aix = DiskModel::NasSp2Aix();
  return spec.op == IoOp::kRead ? aix.ReadThroughput(1 * kMiB)
                                : aix.WriteThroughput(1 * kMiB);
}

namespace {

// Compressible fill for codec ablations: element value = its global
// row-major offset, little-endian — a smooth ramp, the friendly case
// for shuffle/delta the paper's regular scientific fields resemble.
void FillRamp(Array& array) {
  const Region& cell = array.local_region();
  if (cell.empty()) return;
  std::span<std::byte> data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  const Shape& shape = array.shape();
  Index off = Index::Zeros(cell.rank());
  const Shape ext = cell.extent();
  size_t n = 0;
  do {
    std::int64_t linear = 0;
    for (int d = 0; d < cell.rank(); ++d) {
      linear = linear * shape[d] + (cell.lo()[d] + off[d]);
    }
    const auto v = static_cast<std::uint64_t>(linear);
    std::memcpy(data.data() + n * elem, &v, std::min(elem, sizeof(v)));
    if (elem > sizeof(v)) {
      std::memset(data.data() + n * elem + sizeof(v), 0, elem - sizeof(v));
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
}

// The framed/raw ratio the advisor would sample for the ramp fill:
// encode one sub-chunk-sized window of the same pattern.
double SampledRatio(CodecId codec, std::int64_t elem_size) {
  if (codec == CodecId::kNone) return 1.0;
  const std::int64_t kSample = 64 * kKiB;
  std::vector<std::byte> sample(static_cast<size_t>(kSample));
  for (std::int64_t i = 0; i * elem_size < kSample; ++i) {
    const auto v = static_cast<std::uint64_t>(i);
    std::memcpy(sample.data() + i * elem_size, &v,
                std::min<size_t>(static_cast<size_t>(elem_size), sizeof(v)));
  }
  const SubchunkFrame frame = EncodeSubchunkFrame(codec, sample, elem_size);
  return static_cast<double>(frame.frame_bytes(kSample)) /
         static_cast<double>(kSample);
}

}  // namespace

MeasureResult MeasureCollective(const MeasureSpec& spec, const ArrayMeta& meta,
                                std::string* trace_json) {
  // A codec run measures real payloads (compression on elided bytes is
  // meaningless), so it pays for store_data file systems + actual
  // packing; codec=none keeps the classic timing-only harness,
  // bit-identical to the pre-codec benches.
  const bool coded = spec.codec != CodecId::kNone;
  Machine machine =
      Machine::Simulated(spec.num_clients, spec.io_nodes, spec.params,
                         /*store_data=*/coded, /*timing_only=*/!coded);
  machine.SetSchedBackend(spec.sched_backend, spec.sched_workers);
  if (spec.trace) machine.EnableTrace();
  const World world{spec.num_clients, spec.io_nodes};

  // One elapsed value per (rep, client); slots are disjoint per thread.
  std::vector<double> elapsed(
      static_cast<size_t>(spec.reps * spec.num_clients), 0.0);

  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, spec.params);
        Array array(meta.name, meta.elem_size, meta.memory, meta.disk);
        array.set_codec(spec.codec);
        array.BindClient(client_index, /*allocate=*/coded);
        if (coded) FillRamp(array);

        // Warm-up write so read benches have files on the i/o nodes
        // (also reproduces the paper's methodology: data is written,
        // the cache flushed, then reads are timed).
        client.WriteArray(array);

        for (int rep = 0; rep < spec.reps; ++rep) {
          const double t = spec.op == IoOp::kWrite ? client.WriteArray(array)
                                                   : client.ReadArray(array);
          elapsed[static_cast<size_t>(rep * spec.num_clients + client_index)] =
              t;
        }
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world, spec.params,
                   spec.server_options);
      });

  // The paper's metric: elapsed = max over compute nodes, averaged over
  // the repetitions. The max-over-ranks reduction is shared with the
  // machine report (panda/report.h), so table and report cannot
  // disagree about what "elapsed" means.
  double sum = 0.0;
  for (int rep = 0; rep < spec.reps; ++rep) {
    sum += MaxOverRanks(std::span<const double>(
        elapsed.data() + static_cast<size_t>(rep * spec.num_clients),
        static_cast<size_t>(spec.num_clients)));
  }

  MeasureResult result;
  result.elapsed_s = sum / spec.reps;
  const std::int64_t bytes = meta.total_bytes();
  result.aggregate_Bps = static_cast<double>(bytes) / result.elapsed_s;
  result.per_ion_Bps = result.aggregate_Bps / spec.io_nodes;
  result.normalized = result.per_ion_Bps / NormalizationPeakBps(spec);
  const MachineReport report = Snapshot(machine);
  result.wire_bytes_sent = report.messages.bytes_sent;
  for (const FsStats& fs : report.server_fs) {
    result.disk_bytes_written += fs.bytes_written;
    result.disk_ops += fs.reads + fs.writes + fs.syncs;
  }
  result.codec_ratio = SampledRatio(spec.codec, meta.elem_size);
  result.sched_backend = report.sched_backend;
  result.metrics = report.metrics;
  if (const trace::Collector* collector = machine.trace_collector()) {
    result.spans = collector->AggregateByKind();
    if (trace_json != nullptr) *trace_json = MachineTraceJson(machine);
  }
  return result;
}

namespace {

// {"<kind>":{"count":N,"total_s":S,"total_arg":A},...} for kinds with a
// non-zero count.
std::string SpansJson(
    const std::array<trace::SpanAggregate, trace::kNumSpanKinds>& spans) {
  std::string out = "{";
  bool first = true;
  for (size_t k = 0; k < trace::kNumSpanKinds; ++k) {
    const trace::SpanAggregate& a = spans[k];
    if (a.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += trace::SpanKindName(static_cast<trace::SpanKind>(k));
    out += "\":{\"count\":" + std::to_string(a.count);
    out += ",\"total_s\":" + trace::JsonDouble(a.total_s);
    out += ",\"total_arg\":" + std::to_string(a.total_arg) + "}";
  }
  out += "}";
  return out;
}

// Top-level v3 metrics: counters sum across sweep points, gauges keep
// the last point's value, histograms merge bucket-wise when the edges
// agree (they always do — every point runs the same machine shape).
trace::MetricsSnapshot MergeRowMetrics(std::span<const FigureRow> rows) {
  trace::MetricsSnapshot merged;
  for (const FigureRow& row : rows) {
    const trace::MetricsSnapshot& m = row.result.metrics;
    for (const auto& [name, v] : m.counters) merged.counters[name] += v;
    for (const auto& [name, v] : m.gauges) merged.gauges[name] = v;
    for (const auto& [name, h] : m.histograms) {
      auto [it, inserted] = merged.histograms.emplace(name, h);
      if (inserted) continue;
      trace::MetricsSnapshot::Hist& acc = it->second;
      if (acc.edges != h.edges) continue;
      for (size_t i = 0; i < acc.counts.size(); ++i) {
        acc.counts[i] += h.counts[i];
      }
      acc.total_count += h.total_count;
      acc.sum += h.sum;
    }
  }
  return merged;
}

}  // namespace

std::string BenchJson(const FigureSpec& spec, bool quick, int reps,
                      std::span<const FigureRow> rows) {
  std::string out = "{";
  out += "\"schema_version\":5,";
  out += "\"kind\":\"panda_bench\",";
  out += "\"bench\":\"" + trace::JsonEscape(spec.id) + "\",";
  out += "\"description\":\"" + trace::JsonEscape(spec.description) + "\",";
  out += std::string("\"op\":\"") +
         (spec.op == IoOp::kRead ? "read" : "write") + "\",";
  out += std::string("\"codec\":\"") + CodecName(spec.codec) + "\",";
  out += std::string("\"quick\":") + (quick ? "true" : "false") + ",";
  out += "\"reps\":" + std::to_string(reps) + ",";
  out += "\"rows\":[";
  std::array<trace::SpanAggregate, trace::kNumSpanKinds> total{};
  for (size_t i = 0; i < rows.size(); ++i) {
    const FigureRow& row = rows[i];
    if (i != 0) out += ",";
    out += "{\"io_nodes\":" + std::to_string(row.io_nodes);
    out += ",\"size_mb\":" + std::to_string(row.size_mb);
    out += ",\"elapsed_s\":" + trace::JsonDouble(row.result.elapsed_s);
    out += ",\"aggregate_Bps\":" + trace::JsonDouble(row.result.aggregate_Bps);
    out += ",\"per_ion_Bps\":" + trace::JsonDouble(row.result.per_ion_Bps);
    out += ",\"normalized\":" + trace::JsonDouble(row.result.normalized);
    out += ",\"wire_bytes_sent\":" + std::to_string(row.result.wire_bytes_sent);
    out += ",\"disk_bytes_written\":" +
           std::to_string(row.result.disk_bytes_written);
    out += ",\"codec_ratio\":" + trace::JsonDouble(row.result.codec_ratio);
    out += ",\"disk_ops\":" + std::to_string(row.result.disk_ops);
    out += ",\"label\":\"" + trace::JsonEscape(row.label) + "\"";
    out += ",\"ranks\":" + std::to_string(row.ranks);
    out += std::string(",\"sched_backend\":\"") +
           sched::BackendName(row.result.sched_backend) + "\"";
    out += ",\"spans\":" + SpansJson(row.result.spans);
    out += "}";
    for (size_t k = 0; k < trace::kNumSpanKinds; ++k) {
      total[k].count += row.result.spans[k].count;
      total[k].total_s += row.result.spans[k].total_s;
      total[k].total_arg += row.result.spans[k].total_arg;
    }
  }
  out += "],";
  out += "\"spans\":" + SpansJson(total);
  out += ",\"metrics\":" + trace::MetricsJson(MergeRowMetrics(rows));
  out += "}";
  return out;
}

void RunFigure(const FigureSpec& spec, bool quick) {
  RunFigure(spec, quick, FigureOutput{});
}

void RunFigure(const FigureSpec& spec, bool quick, const FigureOutput& out) {
  std::vector<std::int64_t> sizes = spec.sizes_mb;
  std::vector<int> ions = spec.io_nodes;
  int reps = spec.reps;
  if (quick) {
    sizes = {sizes.front(), sizes.back()};
    reps = 1;
    // Codec runs move real payloads; the quick smoke keeps only the
    // smallest size so the ablation stays seconds, not minutes.
    if (spec.codec != CodecId::kNone) sizes = {sizes.front()};
  }
  const bool want_outputs = !out.json_path.empty() || !out.trace_path.empty();
  std::vector<FigureRow> rows;
  std::string trace_json;

  std::printf("# %s: %s\n", spec.id.c_str(), spec.description.c_str());
  std::printf("# %d compute nodes (%s mesh), %s, %s disk, op=%s, codec=%s\n",
              spec.num_clients, spec.cn_mesh.ToString().c_str(),
              spec.traditional ? "traditional order (BLOCK,*,*)"
                               : "natural chunking",
              spec.fast_disk ? "infinitely fast" : "NAS AIX",
              spec.op == IoOp::kRead ? "read" : "write",
              CodecName(spec.codec));
  std::printf("%-9s %-8s %-12s %-14s %-14s %-10s\n", "io_nodes", "size_mb",
              "elapsed_s", "aggregate", "per_io_node", "normalized");

  for (const int ion : ions) {
    for (const std::int64_t mb : sizes) {
      MeasureSpec ms;
      ms.op = spec.op;
      ms.params = spec.fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
      ms.num_clients = spec.num_clients;
      ms.io_nodes = ion;
      ms.reps = reps;
      ms.fast_disk = spec.fast_disk;
      ms.trace = want_outputs;
      ms.codec = spec.codec;
      ms.sched_backend = spec.sched_backend;
      const ArrayMeta meta =
          PaperArrayMeta(mb, spec.cn_mesh, spec.traditional, ion);
      // The exported trace is the last sweep point's (one Run per point;
      // a whole sweep in one file would stack unrelated timelines).
      const bool last_point = ion == ions.back() && mb == sizes.back();
      const MeasureResult r = MeasureCollective(
          ms, meta,
          !out.trace_path.empty() && last_point ? &trace_json : nullptr);
      std::printf("%-9d %-8lld %-12.4f %-14s %-14s %-10.3f\n", ion,
                  static_cast<long long>(mb), r.elapsed_s,
                  FormatThroughput(r.aggregate_Bps).c_str(),
                  FormatThroughput(r.per_ion_Bps).c_str(), r.normalized);
      if (want_outputs) {
        rows.push_back(FigureRow{ion, mb, r, "", spec.num_clients + ion});
      }
    }
  }
  std::printf("\n");
  if (!out.json_path.empty()) {
    const std::string json = BenchJson(spec, quick, reps, rows);
    PANDA_REQUIRE(trace::WriteTextFile(out.json_path, json),
                  "cannot write bench json '%s'", out.json_path.c_str());
    std::printf("# wrote %s\n", out.json_path.c_str());
  }
  if (!out.trace_path.empty()) {
    PANDA_REQUIRE(trace::WriteTextFile(out.trace_path, trace_json),
                  "cannot write trace '%s'", out.trace_path.c_str());
    std::printf("# wrote %s\n", out.trace_path.c_str());
  }
}

int FigureMain(int argc, char** argv, FigureSpec spec) {
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    const std::int64_t reps = opts.GetInt("reps", spec.reps);
    FigureOutput out;
    out.json_path = opts.GetString("json_out", "");
    out.trace_path = opts.GetString("trace_out", "");
    const std::string codec_name =
        opts.GetString("codec", CodecName(spec.codec));
    PANDA_REQUIRE(CodecFromName(codec_name, spec.codec),
                  "unknown --codec '%s' (try: none, rle, shuffle, delta, "
                  "shuffle+rle)",
                  codec_name.c_str());
    const std::string sched_name =
        opts.GetString("sched", sched::BackendName(spec.sched_backend));
    PANDA_REQUIRE(sched::BackendFromName(sched_name, spec.sched_backend),
                  "unknown --sched '%s' (try: thread, fiber)",
                  sched_name.c_str());
    opts.CheckAllConsumed();
    spec.reps = static_cast<int>(reps);
    RunFigure(spec, quick, out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace bench
}  // namespace panda
