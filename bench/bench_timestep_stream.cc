// Timestep streams and checkpoint cadence.
//
// The paper's target applications write timestep output continuously
// and checkpoint periodically (Figure 2). This bench measures, on the
// simulated SP2, (a) the steady-state cost of a timestep stream — the
// appends stay sequential on every i/o node, so per-timestep cost is
// flat — and (b) the i/o overhead of checkpointing every k timesteps,
// the knob an application tunes against its failure rate.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

struct StreamResult {
  double total_s = 0.0;
  double per_timestep_s = 0.0;
  std::int64_t seeks = 0;
};

StreamResult RunStream(int timesteps, int checkpoint_every,
                       std::int64_t size_mb, const Sp2Params& params) {
  Machine machine = Machine::Simulated(8, 2, params, false, true);
  const World world{8, 2};
  StreamResult result;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        const ArrayMeta meta =
            bench::PaperArrayMeta(size_mb, Shape{2, 2, 2}, false, 2);
        Array a("field", meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        ArrayGroup group("stream");
        group.Include(&a);
        double total = 0.0;
        for (int t = 0; t < timesteps; ++t) {
          total += group.Timestep(client);
          if (checkpoint_every > 0 && (t + 1) % checkpoint_every == 0) {
            total += group.Checkpoint(client);
          }
        }
        if (idx == 0) {
          result.total_s = total;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  result.per_timestep_s = result.total_s / timesteps;
  for (int s = 0; s < 2; ++s) {
    result.seeks += machine.server_fs(s).stats().seeks;
  }
  return result;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();
    const Sp2Params params = Sp2Params::Nas();
    const int timesteps = quick ? 6 : 16;
    const std::int64_t mb = quick ? 4 : 8;

    std::printf("# Timestep stream: %d timesteps of a %lld MB array,\n",
                timesteps, static_cast<long long>(mb));
    std::printf("# 8 compute nodes, 2 i/o nodes, natural chunking.\n");
    std::printf("# Appends stay sequential: seeks stay (checkpoints + 1) "
                "per node.\n\n");
    std::printf("%-18s %-12s %-16s %-12s %-14s\n", "checkpoint_every",
                "total_s", "per_timestep_s", "seeks", "io_overhead");

    const StreamResult base = RunStream(timesteps, 0, mb, params);
    std::printf("%-18s %-12.3f %-16.4f %-12lld %-14s\n", "never",
                base.total_s, base.per_timestep_s,
                static_cast<long long>(base.seeks), "1.00x");
    for (const int k : {8, 4, 2, 1}) {
      if (k > timesteps) continue;
      const StreamResult r = RunStream(timesteps, k, mb, params);
      std::printf("%-18d %-12.3f %-16.4f %-12lld %.2fx\n", k, r.total_s,
                  r.per_timestep_s, static_cast<long long>(r.seeks),
                  r.total_s / base.total_s);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
