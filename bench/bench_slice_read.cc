// Subarray (slice) reads: the post-processing access pattern — pull one
// plane or a thin slab out of a large stored array. Server-directed
// subarray reads touch only the sub-chunks the slice intersects, so the
// cost scales with the slice, not the array; chunked (natural) disk
// schemas additionally beat traditional order for interior slices along
// the distributed dimensions, the paper's §1 locality argument for
// chunking.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double MeasureSliceRead(const ArrayMeta& meta, int clients, int servers,
                        const Sp2Params& params, const Region* slice) {
  Machine machine = Machine::Simulated(clients, servers, params, false, true);
  const World world{clients, servers};
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        client.WriteArray(a);  // populate
        const double t = slice == nullptr ? client.ReadArray(a)
                                          : client.ReadSubarray(a, *slice);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  return elapsed;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    const std::int64_t size_mb = quick ? 64 : 256;
    const Shape shape{size_mb, 512, 512};
    const Shape cn_mesh{2, 2, 2};
    const Sp2Params params = Sp2Params::Nas();
    const int servers = 4;

    std::printf("# Slice reads from a %lld MB array, 8 compute nodes, %d "
                "i/o nodes\n",
                static_cast<long long>(size_mb), servers);
    std::printf("%-22s %-14s %-12s %-12s %-14s\n", "slice", "disk_schema",
                "elapsed_s", "vs_full", "bytes_moved");

    ArrayMeta natural;
    natural.name = "s";
    natural.elem_size = 4;
    natural.memory =
        Schema(shape, Mesh(cn_mesh), std::vector<DimDist>(3, DimDist::Block()));
    natural.disk = natural.memory;
    ArrayMeta traditional = natural;
    traditional.disk = Schema(shape, Mesh(Shape{servers}),
                              {DimDist::Block(), DimDist::None(),
                               DimDist::None()});

    struct Slice {
      const char* name;
      Region region;
    };
    const Slice slices[] = {
        {"full array", Region::Whole(shape)},
        {"one dim-0 plane", Region({size_mb / 2, 0, 0}, {1, 512, 512})},
        {"dim-0 slab (1/16)",
         Region({0, 0, 0}, {size_mb / 16, 512, 512})},
        {"one dim-2 plane", Region({0, 0, 256}, {size_mb, 512, 1})},
        {"interior cube", Region({size_mb / 4, 128, 128},
                                 {size_mb / 4, 256, 256})},
    };

    for (const ArrayMeta* meta : {&natural, &traditional}) {
      const double full =
          MeasureSliceRead(*meta, 8, servers, params, nullptr);
      for (const Slice& slice : slices) {
        const double t = MeasureSliceRead(*meta, 8, servers, params,
                                          &slice.region);
        std::printf("%-22s %-14s %-12.3f %-12.3f %-14s\n", slice.name,
                    meta == &natural ? "natural" : "BLOCK,*,*", t, t / full,
                    FormatBytes(slice.region.Volume() * 4).c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
