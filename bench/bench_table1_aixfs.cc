// Reproduces the measured rows of Table 1: peak AIX file-system
// throughput for reads and writes, obtained by accessing 32 MB and
// 64 MB files with 1 MB requests on a single node — the paper's
// normalization baseline. Also sweeps smaller request sizes to show the
// decline the paper attributes small-chunk throughput loss to.
#include <cstdio>

#include "iosim/sim_fs.h"
#include "msg/virtual_clock.h"
#include "sp2/params.h"
#include "util/units.h"

namespace panda {
namespace {

double MeasureFs(std::int64_t file_bytes, std::int64_t request_bytes,
                 bool write) {
  VirtualClock clock;
  SimFileSystem::Options opt;
  opt.disk = DiskModel::NasSp2Aix();
  opt.store_data = false;
  opt.clock = &clock;
  SimFileSystem fs(opt);

  {
    auto f = fs.Open("t", OpenMode::kWrite);
    if (!write) {
      // Populate the file, then exclude that time from the measurement.
      f->WriteAt(0, {}, file_bytes);
      clock.Reset();
    }
    const double start = clock.Now();
    for (std::int64_t off = 0; off < file_bytes; off += request_bytes) {
      if (write) {
        f->WriteAt(off, {}, request_bytes);
      } else {
        f->ReadAt(off, {}, request_bytes);
      }
    }
    const double elapsed = clock.Now() - start;
    return static_cast<double>(file_bytes) / elapsed;
  }
}

}  // namespace
}  // namespace panda

int main() {
  using namespace panda;
  std::printf("# Table 1 (measured rows): AIX file system peaks, 1 MB requests\n");
  std::printf("%-10s %-10s %-12s %-14s\n", "op", "file_mb", "request", "throughput");
  for (const std::int64_t file_mb : {32, 64}) {
    for (const bool write : {false, true}) {
      const double thr = MeasureFs(file_mb * kMiB, 1 * kMiB, write);
      std::printf("%-10s %-10lld %-12s %-14s\n", write ? "write" : "read",
                  static_cast<long long>(file_mb), "1 MB",
                  FormatThroughput(thr).c_str());
    }
  }
  std::printf("# paper: 2.85 MB/s read, 2.23 MB/s write\n\n");

  std::printf("# request-size sweep (64 MB file): the small-write penalty\n");
  std::printf("%-10s %-12s %-14s %-14s\n", "op", "request", "throughput",
              "vs_peak");
  const double read_peak = MeasureFs(64 * kMiB, 1 * kMiB, false);
  const double write_peak = MeasureFs(64 * kMiB, 1 * kMiB, true);
  for (const std::int64_t req_kb : {64, 128, 256, 512, 1024}) {
    for (const bool write : {false, true}) {
      const double thr = MeasureFs(64 * kMiB, req_kb * kKiB, write);
      const double peak = write ? write_peak : read_peak;
      std::printf("%-10s %-12s %-14s %-14.3f\n", write ? "write" : "read",
                  FormatBytes(req_kb * kKiB).c_str(),
                  FormatThroughput(thr).c_str(), thr / peak);
    }
  }

  std::printf("\n# Table 1 (hardware rows, model inputs)\n");
  const Sp2Params p = Sp2Params::Nas();
  std::printf("MPI latency:   %.0f us (paper: 43 us)\n",
              p.net.latency_s * 1e6);
  std::printf("MPI bandwidth: %s (paper: 34 MB/s)\n",
              FormatThroughput(p.net.bandwidth_Bps).c_str());
  std::printf("disk raw rate: %s (paper: 3.0 MB/s)\n",
              FormatThroughput(p.disk.raw_read_Bps).c_str());
  return 0;
}
