// Multi-disk i/o nodes: what happens to the paper's disk-bound results
// when each i/o node gets several striped local disks?
//
// Expectation from the model: throughput per node rises ~3x and then
// saturates well below the 34 MB/s interconnect — the AIX-class
// per-request software overhead (115 ms per 1 MB write) replaces the
// spindle as the bottleneck. The 1995-realistic fix is software (bigger
// requests / cheaper file-system paths), not just more disks; the bench
// also sweeps the sub-chunk size to show larger requests amortizing the
// overhead on a multi-disk node.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double MeasureWrite(int disks, std::int64_t subchunk_bytes,
                    std::int64_t size_mb) {
  Sp2Params params = Sp2Params::Nas();
  params.subchunk_bytes = subchunk_bytes;
  Machine machine = Machine::SimulatedMultiDisk(
      8, 2, params, disks, /*stripe_bytes=*/64 * 1024,
      /*store_data=*/false, /*timing_only=*/true);
  const World world{8, 2};
  const ArrayMeta meta =
      bench::PaperArrayMeta(size_mb, Shape{2, 2, 2}, false, 2);
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        const double t = client.WriteArray(a);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  return elapsed;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();
    const std::int64_t size_mb = quick ? 32 : 64;

    std::printf("# Multi-disk i/o nodes: write %lld MB, 8 compute nodes, "
                "2 i/o nodes,\n# natural chunking, 64 KB stripes.\n",
                static_cast<long long>(size_mb));
    std::printf("%-8s %-12s %-12s %-16s %-14s\n", "disks", "subchunk",
                "elapsed_s", "per_node_MBps", "of_MPI_peak");
    for (const std::int64_t sub : {1 * kMiB, 4 * kMiB}) {
      for (const int disks : {1, 2, 4, 8, 16}) {
        const double t = MeasureWrite(disks, sub, size_mb);
        const double per_node =
            static_cast<double>(size_mb) * kMiB / t / 2.0;
        std::printf("%-8d %-12s %-12.3f %-16.2f %-14.3f\n", disks,
                    FormatBytes(sub).c_str(), t,
                    per_node / (1024.0 * 1024.0),
                    per_node / (34.0 * kMiB));
      }
    }
    std::printf(
        "\n# Saturation: per-request software overhead, not spindles or\n"
        "# the network, caps the multi-disk node; doubling the sub-chunk\n"
        "# size amortizes it and buys more than doubling the disks.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
