// google-benchmark microbenchmarks of the data-movement kernels that
// Panda's gather/scatter is built from: strided pack/unpack and the
// sub-chunk planner. These run on the host for real (not in virtual
// time) — they are the 2026 counterparts of the pack costs the SP2
// model charges at memcpy_Bps.
#include <benchmark/benchmark.h>

#include <vector>

#include "mdarray/schema.h"
#include "mdarray/strided_copy.h"
#include "panda/plan.h"
#include "util/units.h"

namespace panda {
namespace {

// Pack a (1, n, n) plane slice out of a (n, n, n) cube: the Figure 7-9
// reorganization pattern.
void BM_PackPlane(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Region box({0, 0, 0}, {n, n, n});
  const Region piece({n / 2, 0, 0}, {1, n, n});
  std::vector<std::byte> src(static_cast<size_t>(box.Volume()) * 4);
  std::vector<std::byte> dst(static_cast<size_t>(piece.Volume()) * 4);
  for (auto _ : state) {
    PackRegion({dst.data(), dst.size()}, {src.data(), src.size()}, box, piece,
               4);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          piece.Volume() * 4);
}
BENCHMARK(BM_PackPlane)->Arg(64)->Arg(128)->Arg(256);

// Pack a strided column block: the worst case (short runs).
void BM_PackStridedColumns(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Region box({0, 0}, {n, n});
  const Region piece({0, 0}, {n, 8});  // 32-byte runs, n of them
  std::vector<std::byte> src(static_cast<size_t>(box.Volume()) * 4);
  std::vector<std::byte> dst(static_cast<size_t>(piece.Volume()) * 4);
  for (auto _ : state) {
    PackRegion({dst.data(), dst.size()}, {src.data(), src.size()}, box, piece,
               4);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          piece.Volume() * 4);
}
BENCHMARK(BM_PackStridedColumns)->Arg(256)->Arg(1024);

// Contiguous whole-region copy: the natural-chunking fast path.
void BM_PackContiguous(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Region box({0, 0}, {n, n});
  std::vector<std::byte> src(static_cast<size_t>(box.Volume()) * 4);
  std::vector<std::byte> dst(src.size());
  for (auto _ : state) {
    PackRegion({dst.data(), dst.size()}, {src.data(), src.size()}, box, box,
               4);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          box.Volume() * 4);
}
BENCHMARK(BM_PackContiguous)->Arg(256)->Arg(1024);

// Planner cost: building the full IoPlan for the 512 MB Figure 8
// workload (what every participant computes per collective).
void BM_BuildPlan(benchmark::State& state) {
  ArrayMeta meta;
  meta.name = "p";
  meta.elem_size = 4;
  meta.memory = Schema({static_cast<std::int64_t>(state.range(0)), 512, 512},
                       Mesh(Shape{4, 4, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  meta.disk = Schema({static_cast<std::int64_t>(state.range(0)), 512, 512},
                     Mesh(Shape{8}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});
  for (auto _ : state) {
    IoPlan plan(meta, 8, 1 * kMiB);
    benchmark::DoNotOptimize(plan.TotalPieces());
  }
}
BENCHMARK(BM_BuildPlan)->Arg(64)->Arg(512);

// Sub-chunk splitting in isolation.
void BM_SplitSubchunks(benchmark::State& state) {
  const Region chunk({0, 0, 0}, {state.range(0), 512, 512});
  for (auto _ : state) {
    auto subs = SplitIntoSubchunks(chunk, 4, 1 * kMiB);
    benchmark::DoNotOptimize(subs.size());
  }
}
BENCHMARK(BM_SplitSubchunks)->Arg(64)->Arg(512);

}  // namespace
}  // namespace panda

BENCHMARK_MAIN();
