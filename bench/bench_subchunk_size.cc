// Sub-chunk size sweep: the paper fixed 1 MB "after experimentation".
// This bench regenerates that experiment: small sub-chunks pay the
// per-request disk overhead and per-message software overhead; large
// sub-chunks cost server buffer memory without improving throughput
// (the AIX curve is flat past 1 MB). 1 MB sits at the knee.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    std::printf("# Sub-chunk size sweep: write, natural chunking, 8 compute\n");
    std::printf("# nodes, 2 i/o nodes, 64 MB array (paper's choice: 1 MB)\n");
    std::printf("%-12s %-12s %-14s %-12s %-16s\n", "subchunk", "disk",
                "elapsed_s", "agg_MBps", "server_buffer");

    const auto sizes = quick
                           ? std::vector<std::int64_t>{256 * kKiB, 1 * kMiB}
                           : std::vector<std::int64_t>{64 * kKiB, 256 * kKiB,
                                                       512 * kKiB, 1 * kMiB,
                                                       2 * kMiB, 4 * kMiB,
                                                       8 * kMiB};
    for (const bool fast_disk : {false, true}) {
      for (const std::int64_t sub : sizes) {
        bench::MeasureSpec spec;
        spec.op = IoOp::kWrite;
        spec.params = fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
        spec.params.subchunk_bytes = sub;
        spec.num_clients = 8;
        spec.io_nodes = 2;
        spec.reps = 1;
        spec.fast_disk = fast_disk;
        const ArrayMeta meta =
            bench::PaperArrayMeta(64, Shape{2, 2, 2}, false, 2);
        const auto r = bench::MeasureCollective(spec, meta);
        std::printf("%-12s %-12s %-14.3f %-12.2f %-16s\n",
                    FormatBytes(sub).c_str(), fast_disk ? "fast" : "AIX",
                    r.elapsed_s,
                    r.aggregate_Bps / (1024.0 * 1024.0),
                    FormatBytes(sub).c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
