// Mixed workloads (paper §5): "as Panda makes it possible for each
// application on the SP2 to have its own dedicated set of i/o nodes, we
// are curious about the impact of i/o node sharing on i/o-intensive
// applications." This bench answers the paper's open question on the
// simulated SP2: two identical applications either share 2N i/o nodes
// or each get N dedicated ones (same total hardware), each writing a
// stream of timestep-sized arrays.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

struct Result {
  double app_a_s = 0.0;
  double app_b_s = 0.0;
};

// Two 8-client applications, `rounds` collective writes each.
Result RunShared(std::int64_t size_mb, int total_servers, int rounds,
                 const Sp2Params& params) {
  const int clients_per_app = 8;
  const int nranks = 2 * clients_per_app + total_servers;
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  cfg.timing_only = true;
  ThreadTransport transport(nranks, cfg);

  World base;
  base.num_clients = clients_per_app;
  base.num_servers = total_servers;
  base.first_client = 0;
  base.first_server = 2 * clients_per_app;

  std::vector<std::unique_ptr<SimFileSystem>> fs;
  for (int s = 0; s < total_servers; ++s) {
    SimFileSystem::Options opt;
    opt.disk = params.disk;
    opt.store_data = false;
    opt.clock = &transport.endpoint(base.first_server + s).clock();
    fs.push_back(std::make_unique<SimFileSystem>(opt));
  }

  Result result;
  transport.Run([&](Endpoint& ep) {
    if (base.is_server_rank(ep.rank())) {
      ServerOptions options;
      options.num_applications = 2;
      ServerMain(ep, *fs[static_cast<size_t>(base.server_index(ep.rank()))],
                 base, params, options);
      return;
    }
    const bool is_a = ep.rank() < clients_per_app;
    const World world =
        is_a ? base : base.WithClients(clients_per_app, clients_per_app);
    PandaClient client(ep, world, params);
    const ArrayMeta meta = bench::PaperArrayMeta(
        size_mb, Shape{2, 2, 2}, /*traditional=*/false, total_servers);
    Array a(is_a ? "a" : "b", meta.elem_size, meta.memory, meta.disk);
    a.BindClient(client.index(), false);
    double total = 0.0;
    for (int r = 0; r < rounds; ++r) total += client.WriteArray(a);
    if (client.index() == 0) {
      (is_a ? result.app_a_s : result.app_b_s) = total;
    }
    client.Shutdown();
  });
  return result;
}

// One application with dedicated servers; run once, both apps identical.
double RunDedicated(std::int64_t size_mb, int servers, int rounds,
                    const Sp2Params& params) {
  bench::MeasureSpec spec;
  spec.op = IoOp::kWrite;
  spec.params = params;
  spec.num_clients = 8;
  spec.io_nodes = servers;
  spec.reps = rounds;
  const ArrayMeta meta =
      bench::PaperArrayMeta(size_mb, Shape{2, 2, 2}, false, servers);
  return bench::MeasureCollective(spec, meta).elapsed_s * rounds;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    std::printf("# Mixed workloads: two identical 8-node applications, same\n");
    std::printf("# total hardware: share 2N i/o nodes vs N dedicated each.\n");
    std::printf("# Each app writes %s timestep arrays.\n",
                quick ? "2x16MB" : "4x32MB");
    std::printf("%-14s %-10s %-14s %-14s %-12s\n", "total_ion", "size_mb",
                "shared_max_s", "dedicated_s", "sharing_cost");

    const Sp2Params params = Sp2Params::Nas();
    const int rounds = quick ? 2 : 4;
    const std::int64_t mb = quick ? 16 : 32;
    for (const int total_ion : {2, 4, 8}) {
      const Result shared = RunShared(mb, total_ion, rounds, params);
      const double shared_max = std::max(shared.app_a_s, shared.app_b_s);
      const double dedicated =
          RunDedicated(mb, total_ion / 2, rounds, params);
      std::printf("%-14d %-10lld %-14.3f %-14.3f %+.1f%%\n", total_ion,
                  static_cast<long long>(mb), shared_max, dedicated,
                  100.0 * (shared_max - dedicated) / dedicated);
    }
    std::printf(
        "\n# Finding: for streams of closely synchronized collectives the\n"
        "# shared pool is nearly free — each application gets 2N servers\n"
        "# half the time instead of N servers all the time, so aggregate\n"
        "# disk throughput is preserved. The small cost is the\n"
        "# serialization of startup overheads and the wait behind the\n"
        "# other application's in-flight collective (worst for the first\n"
        "# arrival, growing with i/o-node count as per-collective time\n"
        "# shrinks). Latency-sensitive single collectives still prefer\n"
        "# dedicated nodes: a lone request on the shared pool can wait a\n"
        "# full collective before starting.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
