// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper:
// it sweeps array size and i/o-node count, runs the collective in
// timing-only mode (payloads elided, time from the calibrated SP2
// model), and prints the figure's two panels: aggregate throughput and
// normalized throughput (per-i/o-node throughput over the relevant
// device peak, exactly as the paper computes it).
#pragma once

#include <array>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "panda/panda.h"
#include "panda/report.h"
#include "sched/sched.h"
#include "trace/trace.h"
#include "util/options.h"

namespace panda {
namespace bench {

// The paper's array sizes: 16..512 MB, realized as {mb, 512, 512} float
// arrays so each dim-0 plane is exactly 1 MB.
Shape PaperArrayShape(std::int64_t size_mb);

// Builds the meta for the paper's workloads. `traditional` selects the
// BLOCK,*,* disk schema over `io_nodes` slabs; otherwise natural
// chunking (disk schema == memory schema).
ArrayMeta PaperArrayMeta(std::int64_t size_mb, const Shape& cn_mesh,
                         bool traditional, int io_nodes);

struct MeasureResult {
  double elapsed_s = 0.0;     // mean over repetitions of max-over-clients
  double aggregate_Bps = 0.0;
  double per_ion_Bps = 0.0;
  double normalized = 0.0;    // per-ion / peak (AIX or MPI)
  // Byte accounting over the whole measured run (warm-up included):
  // transport payload bytes and i/o-node file bytes. With a codec armed
  // these shrink against the codec=none run of the same spec — the
  // ablation tools/bench.sh runs.
  std::int64_t wire_bytes_sent = 0;
  std::int64_t disk_bytes_written = 0;
  // Total disk operations (reads + writes + syncs) across the i/o
  // nodes' file systems — the figure of merit shard granularity moves:
  // an object store pays a round trip per op, so fewer/larger ops win.
  std::int64_t disk_ops = 0;
  // Sampled framed/raw ratio of the fill pattern under MeasureSpec::
  // codec (what AdviseCodec feeds the cost model); 1.0 when codec=none.
  double codec_ratio = 1.0;
  // The scheduler backend that actually ran the machine — kThread when
  // a kFiber request fell back (TSan / -DPANDA_HB builds pin threads).
  sched::Backend sched_backend = sched::Backend::kThread;
  // Per-kind span aggregates over the whole measured run (warm-up
  // included), all ranks summed. All-zero unless MeasureSpec::trace.
  std::array<trace::SpanAggregate, trace::kNumSpanKinds> spans{};
  // The machine's full metrics snapshot at the end of the run
  // (robustness.*, transport.*, plus any tracing histograms) — what
  // BenchJson merges into the top-level v3 "metrics" block.
  trace::MetricsSnapshot metrics;
};

struct MeasureSpec {
  IoOp op = IoOp::kWrite;
  Sp2Params params;
  int num_clients = 8;
  int io_nodes = 2;
  int reps = 5;
  bool fast_disk = false;   // normalize against MPI peak instead of AIX
  bool trace = false;       // arm span tracing (fills MeasureResult::spans)
  // Sub-chunk codec for the swept array. kNone keeps the classic
  // timing-only run (payloads elided, bit-identical to the pre-codec
  // harness). Any other codec switches the measurement to real data —
  // smooth-ramp fill, store_data file systems — because compression is
  // meaningless on elided payloads.
  CodecId codec = CodecId::kNone;
  // Rank scheduler backend (src/sched/): thread-per-rank by default;
  // kFiber multiplexes the ranks onto a small carrier pool, which is
  // what makes 1024+-rank sweeps feasible (bench_scale_ranks).
  sched::Backend sched_backend = sched::Backend::kThread;
  int sched_workers = 0;  // fiber carrier threads; 0 = auto
  ServerOptions server_options;
};

// Runs `reps` timed collectives of `meta` (plus one untimed warm-up
// write so reads have files) and returns the summary. When `trace_json`
// is non-null and spec.trace is set, it receives the run's Chrome
// trace_event JSON (Perfetto-loadable).
MeasureResult MeasureCollective(const MeasureSpec& spec, const ArrayMeta& meta,
                                std::string* trace_json = nullptr);

// The peak the paper normalizes against for this spec: measured AIX
// read/write peak for disk-bound runs, the 34 MB/s MPI peak for
// fast-disk runs.
double NormalizationPeakBps(const MeasureSpec& spec);

// --- figure driver ---

struct FigureSpec {
  std::string id;           // "Figure 3"
  std::string description;
  IoOp op = IoOp::kWrite;
  bool fast_disk = false;
  bool traditional = false;
  int num_clients = 8;
  Shape cn_mesh;
  std::vector<int> io_nodes;
  std::vector<std::int64_t> sizes_mb;
  int reps = 5;
  // Codec ablation (--codec=NAME): forwarded to MeasureSpec::codec.
  CodecId codec = CodecId::kNone;
  // Scheduler backend (--sched=thread|fiber): forwarded to
  // MeasureSpec::sched_backend.
  sched::Backend sched_backend = sched::Backend::kThread;
};

// Machine-readable outputs of a figure run (empty paths = skip).
struct FigureOutput {
  std::string json_path;   // stable BENCH_*.json (schema below)
  std::string trace_path;  // Chrome trace JSON of the last sweep point
};

// One sweep point of a figure. `label` names the configuration when
// the sweep axis is not (io_nodes, size_mb) — bench_shard_backend's
// "object advisor" vs "object per-subchunk" rows; figure sweeps leave
// it empty.
struct FigureRow {
  int io_nodes = 0;
  std::int64_t size_mb = 0;
  MeasureResult result;
  std::string label;
  // Total simulated ranks of the point's machine (clients + i/o nodes).
  int ranks = 0;
};

// The stable machine-readable bench schema (schema_version 5): a single
// JSON object {schema_version, kind:"panda_bench", bench, description,
// op, codec, quick, reps, rows:[{io_nodes, size_mb, elapsed_s,
// aggregate_Bps, per_ion_Bps, normalized, wire_bytes_sent,
// disk_bytes_written, codec_ratio, disk_ops, label, ranks,
// sched_backend, spans:{...}}], spans:{...},
// metrics:{counters:{...},gauges:{...},histograms:{...}}}.
// Version history: v2 added `codec` and the per-row byte/ratio fields;
// v3 added the top-level `metrics` block (trace::MetricsJson shape —
// counters summed across sweep points, gauges from the last point),
// which panda_mc's explorer JSON shares so bench-consuming tooling
// ingests exploration runs unchanged; v4 added the per-row `disk_ops`
// operation count and `label` configuration name (empty for plain
// figure sweeps) for the shard-store/backend benches; v5 added the
// per-row `ranks` machine size and `sched_backend` ("thread"/"fiber" —
// the backend that actually ran, so a fiber request that fell back
// reports "thread") for the rank-scaling benches. All pre-existing keys
// are untouched, so v1..v4 consumers keep working. Doubles are %.17g,
// so values round-trip exactly (tests/bench_json_test.cc re-derives
// throughput from elapsed to 1e-9).
std::string BenchJson(const FigureSpec& spec, bool quick, int reps,
                      std::span<const FigureRow> rows);

// Runs the sweep and prints the figure's table. `quick` trims the sweep
// (smallest/largest sizes only) for fast smoke runs. The three-argument
// form also writes the machine-readable outputs (tracing is armed
// whenever either path is set).
void RunFigure(const FigureSpec& spec, bool quick);
void RunFigure(const FigureSpec& spec, bool quick, const FigureOutput& out);

// Parses common bench options (--quick, --reps=N, --json_out=FILE,
// --trace_out=FILE, --codec=NAME) and runs the figure. --codec takes
// the registry spellings (none, rle, shuffle, delta, shuffle+rle) and
// switches the sweep to real compressible data; see MeasureSpec::codec.
int FigureMain(int argc, char** argv, FigureSpec spec);

}  // namespace bench
}  // namespace panda
