// Shard-store granularity x storage backend: what the sharded chunk
// store (src/store/) buys, and what AdviseShardSize picks.
//
// One write collective of the paper's {mb, 512, 512} float array, swept
// over shard granularity on two simulated backends:
//
//   posix        the calibrated NAS AIX local-disk model; the flat
//                one-file-per-(array, server) layout is the baseline,
//                and sharding must not cost throughput (the data moves
//                through the same sequential writes either way).
//   objectstore  src/iosim/object_store.h: every shard is one
//                whole-object PUT with a fixed round trip, amortized
//                over a bounded number of concurrent channels. Tiny
//                shards drown in round trips; the advisor sizes them
//                so a segment flush fills the channels. The bench
//                models a wide-area store (60 ms PUT / 40 ms GET
//                round trips — the regime object sharding exists
//                for), and hands the same model to AdviseShardSize.
//
// Rows are labeled configurations (schema_version 4 `label`), not a
// (size, io_nodes) sweep; tools/bench.sh asserts two acceptance bars:
// the advisor-chosen object shard beats per-sub-chunk objects by >= 2x
// elapsed, and posix sharded stays within 5% of posix flat.
//
//   ./bench/bench_shard_backend [--quick] [--reps=N] [--json_out=FILE]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/units.h"

using namespace panda;
using namespace panda::bench;

namespace {

struct Config {
  std::string label;
  store::StoreBackend backend = store::StoreBackend::kPosix;
  std::int64_t shard_bytes = 0;  // 0 = flat layout
};

// MeasureCollective hardcodes the plain simulated machine; this bench
// needs the factory chosen per row, so it carries its own measurement
// loop (same methodology: timing-only, warm-up write, elapsed = max
// over compute nodes averaged over reps).
// The modeled store: wide-area object storage, where the PUT round
// trip (not the local disk) is the cost the shard size must amortize.
ObjectStoreModel WideAreaStore() {
  ObjectStoreModel model;
  model.put_latency_s = 0.060;
  model.get_latency_s = 0.040;
  return model;
}

MeasureResult Measure(const Config& config, const ArrayMeta& meta,
                      const Sp2Params& params, int num_clients, int io_nodes,
                      int reps) {
  const bool object_store = config.backend == store::StoreBackend::kObjectStore;
  Machine machine =
      object_store
          ? Machine::SimulatedObjectStore(num_clients, io_nodes, params,
                                          WideAreaStore(),
                                          /*store_data=*/false,
                                          /*timing_only=*/true)
          : Machine::Simulated(num_clients, io_nodes, params,
                               /*store_data=*/false, /*timing_only=*/true);
  const World world{num_clients, io_nodes};
  ServerOptions options;
  options.backend = config.backend;
  options.shard_bytes = config.shard_bytes;

  std::vector<double> elapsed(static_cast<size_t>(reps * num_clients), 0.0);
  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, params);
        Array array(meta.name, meta.elem_size, meta.memory, meta.disk);
        array.BindClient(client_index, /*allocate=*/false);
        client.WriteArray(array);  // warm-up
        for (int rep = 0; rep < reps; ++rep) {
          elapsed[static_cast<size_t>(rep * num_clients + client_index)] =
              client.WriteArray(array);
        }
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world, params,
                   options);
      });

  double sum = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    sum += MaxOverRanks(std::span<const double>(
        elapsed.data() + static_cast<size_t>(rep * num_clients),
        static_cast<size_t>(num_clients)));
  }
  MeasureResult result;
  result.elapsed_s = sum / reps;
  const std::int64_t bytes = meta.total_bytes();
  result.aggregate_Bps = static_cast<double>(bytes) / result.elapsed_s;
  result.per_ion_Bps = result.aggregate_Bps / io_nodes;
  const DiskModel aix = DiskModel::NasSp2Aix();
  result.normalized = result.per_ion_Bps / aix.WriteThroughput(1 * kMiB);
  const MachineReport report = Snapshot(machine);
  result.wire_bytes_sent = report.messages.bytes_sent;
  for (const FsStats& fs : report.server_fs) {
    result.disk_bytes_written += fs.bytes_written;
    result.disk_ops += fs.reads + fs.writes + fs.syncs;
  }
  result.metrics = report.metrics;
  return result;
}

int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const bool quick = opts.GetBool("quick", false);
  const int reps = static_cast<int>(opts.GetInt("reps", quick ? 1 : 3));
  const std::string json_out = opts.GetString("json_out", "");
  opts.CheckAllConsumed();

  const std::int64_t size_mb = quick ? 16 : 64;
  const int num_clients = 8;
  const int io_nodes = 2;
  Sp2Params params = Sp2Params::Nas();
  // Fine-grained sub-chunks are the motivating pathology: a naive
  // object mapping (one object per sub-chunk) pays a PUT round trip
  // per 32 KiB, which the advisor's shard sizing amortizes away.
  params.subchunk_bytes = 32 * kKiB;
  const ArrayMeta meta = PaperArrayMeta(size_mb, Shape{2, 2, 2},
                                        /*traditional=*/false, io_nodes);
  const std::int64_t segment_bytes = size_mb * kMiB / io_nodes;
  const std::int64_t subchunk = params.subchunk_bytes;
  const std::int64_t posix_advice = AdviseShardSize(
      store::StoreBackend::kPosix, segment_bytes, subchunk);
  const std::int64_t object_advice =
      AdviseShardSize(store::StoreBackend::kObjectStore, segment_bytes,
                      subchunk, WideAreaStore());

  std::vector<Config> configs = {
      {"posix flat", store::StoreBackend::kPosix, 0},
      {"posix sharded 1m", store::StoreBackend::kPosix, 1 * kMiB},
      {"posix sharded advisor", store::StoreBackend::kPosix, posix_advice},
      {"object per-subchunk", store::StoreBackend::kObjectStore, subchunk},
      {"object 8x-subchunk", store::StoreBackend::kObjectStore, 8 * subchunk},
      {"object advisor", store::StoreBackend::kObjectStore, object_advice},
  };

  std::printf("# Shard store x backend: %lld MB write, %d compute nodes, "
              "%d i/o nodes, %s sub-chunks\n",
              static_cast<long long>(size_mb), num_clients, io_nodes,
              FormatBytes(subchunk).c_str());
  std::printf("# advisor picks: posix %s, objectstore %s (segment %s)\n",
              FormatBytes(posix_advice).c_str(),
              FormatBytes(object_advice).c_str(),
              FormatBytes(segment_bytes).c_str());
  std::printf("%-24s %-12s %-12s %-10s %-14s\n", "config", "shard",
              "elapsed_s", "disk_ops", "aggregate");

  FigureSpec spec;
  spec.id = "shard-backend";
  spec.description =
      "sharded chunk store: shard granularity x storage backend, one "
      "write collective";
  spec.op = IoOp::kWrite;
  spec.num_clients = num_clients;
  spec.cn_mesh = Shape{2, 2, 2};
  spec.io_nodes = {io_nodes};
  spec.sizes_mb = {size_mb};
  spec.reps = reps;

  std::vector<FigureRow> rows;
  for (const Config& config : configs) {
    const MeasureResult r =
        Measure(config, meta, params, num_clients, io_nodes, reps);
    std::printf("%-24s %-12s %-12.4f %-10lld %-14s\n", config.label.c_str(),
                config.shard_bytes == 0
                    ? "flat"
                    : FormatBytes(config.shard_bytes).c_str(),
                r.elapsed_s, static_cast<long long>(r.disk_ops),
                FormatThroughput(r.aggregate_Bps).c_str());
    rows.push_back(
        FigureRow{io_nodes, size_mb, r, config.label, num_clients + io_nodes});
  }

  if (!json_out.empty()) {
    const std::string json = BenchJson(spec, quick, reps, rows);
    PANDA_REQUIRE(trace::WriteTextFile(json_out, json),
                  "cannot write bench json '%s'", json_out.c_str());
    std::printf("# wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
