// Reproduces Figure 7: reading arrays of 16-512 MB from 32 compute
// nodes with a traditional-order (BLOCK,*,*) disk schema, i.e. with
// memory<->disk reorganization during i/o. Paper result: 68-95% of the
// peak AIX read throughput per i/o node, slightly below natural
// chunking because of the strided requests and reorganization.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 7";
  spec.description = "read, traditional order on disk, 32 compute nodes";
  spec.op = panda::IoOp::kRead;
  spec.traditional = true;
  spec.num_clients = 32;
  spec.cn_mesh = panda::Shape{4, 4, 2};
  spec.io_nodes = {2, 4, 6, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
