// Rank-count scaling of the machine itself (not a paper figure): runs
// the Figure-4 workload shape — one write collective, natural chunking,
// weak-scaled so every compute node owns one 1 MB plane — at 64..4096
// total ranks and charts wall elapsed, plan time and peak RSS against
// the rank count. This is the bench behind src/sched/: thread-per-rank
// tops out at a few hundred OS threads, while --sched=fiber multiplexes
// thousands of ranks onto a small carrier pool (docs/SCHEDULER.md).
// Virtual-time results are backend-identical by contract
// (tests/sched_test.cc); only the wall columns here should move.
//
// Wall-clock reads are this bench's entire point, so the wall-clock
// rule is waived file-wide. panda-lint: allow-file(wall-clock)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace panda {
namespace bench {
namespace {

// Total ranks -> (clients, io_nodes): one i/o node per 8 ranks, the
// fig4 compute:io ratio (8 clients : 2..8 i/o nodes, rounded to 1:8).
struct MachineShape {
  int clients = 0;
  int io_nodes = 0;
};

MachineShape ShapeFor(int ranks) {
  MachineShape shape;
  shape.io_nodes = ranks / 8 > 0 ? ranks / 8 : 1;
  shape.clients = ranks - shape.io_nodes;
  return shape;
}

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

long PeakRssKb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

int Main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::int64_t one_point = opts.GetInt("ranks", 0);
  const bool quick = opts.GetBool("quick", false);
  const std::int64_t workers = opts.GetInt("workers", 0);
  const std::string json_out = opts.GetString("json_out", "");
  sched::Backend backend = sched::Backend::kFiber;
  const std::string sched_name =
      opts.GetString("sched", sched::BackendName(backend));
  PANDA_REQUIRE(sched::BackendFromName(sched_name, backend),
                "unknown --sched '%s' (try: thread, fiber)",
                sched_name.c_str());
  opts.CheckAllConsumed();

  // The sweep is ascending so ru_maxrss (a high-water mark) grows with
  // the point that set it. Thread-per-rank is only swept to 256 ranks —
  // thousands of OS threads is exactly the failure mode the fiber
  // backend exists to avoid.
  std::vector<int> sweep = {64, 256, 1024, 4096};
  if (quick) sweep = {64, 256};
  if (backend == sched::Backend::kThread || !sched::FiberSupported()) {
    while (!sweep.empty() && sweep.back() > 256) sweep.pop_back();
  }
  if (one_point > 0) sweep = {static_cast<int>(one_point)};

  std::printf("# scale-ranks: fig4 workload (write, natural chunking, "
              "1 MB plane per compute node), --sched=%s%s\n",
              sched::BackendName(backend),
              sched::FiberSupported() ? "" : " (fibers unsupported in this "
                                             "build; thread backend runs)");
  std::printf("%-8s %-8s %-10s %-10s %-10s %-10s %-12s %-8s\n", "ranks",
              "sched", "wall_s", "virt_s", "plan_s", "rss_mb", "switches",
              "parks");

  FigureSpec spec;
  spec.id = "scale-ranks";
  spec.description =
      "event-driven rank scheduler scaling: fig4 write collective, weak-"
      "scaled, 64..4096 ranks";
  spec.op = IoOp::kWrite;
  spec.sched_backend = backend;
  std::vector<FigureRow> rows;

  for (const int ranks : sweep) {
    const MachineShape shape = ShapeFor(ranks);
    MeasureSpec ms;
    ms.op = IoOp::kWrite;
    ms.params = Sp2Params::Nas();
    ms.num_clients = shape.clients;
    ms.io_nodes = shape.io_nodes;
    ms.reps = 1;
    ms.sched_backend = backend;
    ms.sched_workers = static_cast<int>(workers);
    // Weak scaling: {clients, 512, 512} floats — every compute node
    // holds exactly one 1 MB dim-0 plane, like fig4's 8-node points.
    const std::int64_t size_mb = shape.clients;
    const ArrayMeta meta = PaperArrayMeta(
        size_mb, Shape{shape.clients, 1, 1}, /*traditional=*/false,
        shape.io_nodes);

    const auto plan_t0 = std::chrono::steady_clock::now();
    const IoPlan plan(meta, shape.io_nodes, ms.params.subchunk_bytes);
    const double plan_s = WallSeconds(plan_t0);
    PANDA_REQUIRE(plan.TotalPieces() > 0, "degenerate scale plan");

    const auto wall_t0 = std::chrono::steady_clock::now();
    const MeasureResult r = MeasureCollective(ms, meta);
    const double wall_s = WallSeconds(wall_t0);

    // sched.* counters ride in the row metrics (schema v5 keeps them
    // out of the stable columns — they are wall-schedule diagnostics).
    const auto switches = r.metrics.counters.count("sched.context_switches")
                              ? r.metrics.counters.at("sched.context_switches")
                              : 0;
    const auto parks = r.metrics.counters.count("sched.parks")
                           ? r.metrics.counters.at("sched.parks")
                           : 0;
    std::printf("%-8d %-8s %-10.3f %-10.4f %-10.5f %-10.1f %-12lld %-8lld\n",
                ranks, sched::BackendName(r.sched_backend), wall_s,
                r.elapsed_s, plan_s,
                static_cast<double>(PeakRssKb()) / 1024.0,
                static_cast<long long>(switches),
                static_cast<long long>(parks));
    rows.push_back(
        FigureRow{shape.io_nodes, size_mb, r, sched::BackendName(backend),
                  ranks});
  }
  std::printf("\n");

  if (!json_out.empty()) {
    const std::string json = BenchJson(spec, quick, /*reps=*/1, rows);
    PANDA_REQUIRE(trace::WriteTextFile(json_out, json),
                  "cannot write bench json '%s'", json_out.c_str());
    std::printf("# wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace panda

int main(int argc, char** argv) {
  try {
    return panda::bench::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
