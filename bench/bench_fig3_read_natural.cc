// Reproduces Figure 3: aggregate and normalized throughput for reading
// arrays of 16-512 MB from 8 compute nodes as a function of the number
// of i/o nodes, using natural chunking. Paper result: 85-98% of the
// measured peak AIX read throughput per i/o node.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 3";
  spec.description = "read, natural chunking, 8 compute nodes";
  spec.op = panda::IoOp::kRead;
  spec.num_clients = 8;
  spec.cn_mesh = panda::Shape{2, 2, 2};
  spec.io_nodes = {2, 4, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
