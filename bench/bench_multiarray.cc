// Multiple arrays per collective (§3, last paragraph): Panda achieves
// throughput similar to single arrays when chunks are large enough that
// MPI latency is not a bottleneck, and one group collective amortizes
// the startup overhead three ways compared to three separate requests.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double MeasureGroup(int clients, const Shape& mesh, int servers,
                    std::int64_t size_mb, bool one_collective,
                    const Sp2Params& params) {
  Machine machine = Machine::Simulated(clients, servers, params, false, true);
  const World world{clients, servers};
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        const ArrayMeta meta =
            bench::PaperArrayMeta(size_mb, mesh, /*traditional=*/false, servers);
        Array t("temperature", meta.elem_size, meta.memory, meta.disk);
        Array p("pressure", meta.elem_size, meta.memory, meta.disk);
        Array rho("density", meta.elem_size, meta.memory, meta.disk);
        for (Array* a : {&t, &p, &rho}) a->BindClient(idx, false);

        double total = 0.0;
        if (one_collective) {
          ArrayGroup group("sim");
          group.Include(&t);
          group.Include(&p);
          group.Include(&rho);
          total = group.Write(client);
        } else {
          total = client.WriteArray(t) + client.WriteArray(p) +
                  client.WriteArray(rho);
        }
        if (idx == 0) {
          elapsed = total;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  return elapsed;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    std::printf("# Multiple arrays: one group collective vs three separate\n");
    std::printf("# collectives; 8 compute nodes, natural chunking, 3 arrays\n");
    std::printf("%-9s %-14s %-14s %-14s %-12s %-14s\n", "io_nodes",
                "per_array_mb", "group_s", "separate_s", "saving",
                "group_agg");
    const Sp2Params params = Sp2Params::Nas();
    const Shape mesh{2, 2, 2};
    const auto sizes = quick ? std::vector<std::int64_t>{4}
                             : std::vector<std::int64_t>{1, 4, 16, 64};
    for (const int ion : {2, 4}) {
      for (const std::int64_t mb : sizes) {
        const double group = MeasureGroup(8, mesh, ion, mb, true, params);
        const double separate = MeasureGroup(8, mesh, ion, mb, false, params);
        const double total_bytes = 3.0 * static_cast<double>(mb) * kMiB;
        std::printf("%-9d %-14lld %-14.4f %-14.4f %-12.4f %-14s\n", ion,
                    static_cast<long long>(mb), group, separate,
                    separate - group,
                    FormatThroughput(total_bytes / group).c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
