// Non-blocking overlap ablation (the paper's stated future work for
// Figure 9: "we believe that these throughputs can be improved by using
// non-blocking communication when performing data rearrangement").
// Panda's ServerOptions::overlap_io overlaps disk writes with gathering
// the next sub-chunk; this bench quantifies the gain on the Figure 9
// workload and on the disk-bound Figure 8 workload.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double Measure(bool overlap_io, bool pipeline, bool fast_disk, int clients,
               const Shape& mesh, int servers, std::int64_t size_mb) {
  bench::MeasureSpec spec;
  spec.op = IoOp::kWrite;
  spec.params = fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
  spec.num_clients = clients;
  spec.io_nodes = servers;
  spec.reps = 1;
  spec.fast_disk = fast_disk;
  spec.server_options.overlap_io = overlap_io;
  spec.server_options.pipeline_requests = pipeline;
  const ArrayMeta meta =
      bench::PaperArrayMeta(size_mb, mesh, /*traditional=*/true, servers);
  return bench::MeasureCollective(spec, meta).elapsed_s;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    std::printf("# Non-blocking i/o (the paper's future-work suggestion for\n");
    std::printf("# Figure 9): traditional-order writes with request\n");
    std::printf("# pipelining (overlap client packing/transfer), disk\n");
    std::printf("# write-behind, and both.\n");
    std::printf("%-7s %-9s %-8s %-12s %-12s %-12s %-12s %-10s\n", "disk",
                "io_nodes", "size_mb", "blocking_s", "pipeline_s",
                "writebehind", "both_s", "best");
    const auto sizes = quick ? std::vector<std::int64_t>{64}
                             : std::vector<std::int64_t>{64, 256};
    for (const bool fast_disk : {false, true}) {
      for (const int ion : {2, 4}) {
        for (const std::int64_t mb : sizes) {
          // Figure 8/9 workloads: 16 CN for fast disk, 32 CN for AIX.
          const int clients = fast_disk ? 16 : 32;
          const Shape mesh = fast_disk ? Shape{4, 2, 2} : Shape{4, 4, 2};
          const double blocking =
              Measure(false, false, fast_disk, clients, mesh, ion, mb);
          const double pipeline =
              Measure(false, true, fast_disk, clients, mesh, ion, mb);
          const double writebehind =
              Measure(true, false, fast_disk, clients, mesh, ion, mb);
          const double both =
              Measure(true, true, fast_disk, clients, mesh, ion, mb);
          std::printf("%-7s %-9d %-8lld %-12.3f %-12.3f %-12.3f %-12.3f "
                      "%.2fx\n",
                      fast_disk ? "fast" : "AIX", ion,
                      static_cast<long long>(mb), blocking, pipeline,
                      writebehind, both,
                      blocking / std::min({pipeline, writebehind, both}));
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
