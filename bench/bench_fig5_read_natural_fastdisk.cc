// Reproduces Figure 5: reading arrays of 16-512 MB from 32 compute
// nodes with natural chunking and a simulated infinitely fast disk.
// Paper result: near 90% of the 34 MB/s peak MPI bandwidth per i/o
// node, declining for small arrays as the ~13 ms startup overhead
// dominates.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 5";
  spec.description =
      "read, natural chunking, 32 compute nodes, infinitely fast disk";
  spec.op = panda::IoOp::kRead;
  spec.fast_disk = true;
  spec.num_clients = 32;
  spec.cn_mesh = panda::Shape{4, 4, 2};
  spec.io_nodes = {2, 4, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
