// Load imbalance (§3): with natural chunking, chunks distribute unevenly
// over i/o nodes when the i/o-node count does not divide the chunk
// count, but (a) the imbalance shrinks as compute nodes increase for a
// fixed i/o-node count, and (b) a traditional-order schema distributes
// evenly regardless — the paper's two mitigations.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

struct Row {
  double elapsed = 0.0;
  std::int64_t max_segment = 0;
  std::int64_t min_segment = 0;
};

Row Measure(int clients, const Shape& mesh, int servers, std::int64_t size_mb,
            bool traditional, const Sp2Params& params) {
  const ArrayMeta meta =
      bench::PaperArrayMeta(size_mb, mesh, traditional, servers);
  const IoPlan plan(meta, servers, params.subchunk_bytes);
  Row row;
  row.max_segment = 0;
  row.min_segment = meta.total_bytes();
  for (int s = 0; s < servers; ++s) {
    row.max_segment = std::max(row.max_segment, plan.SegmentBytes(s));
    row.min_segment = std::min(row.min_segment, plan.SegmentBytes(s));
  }
  bench::MeasureSpec spec;
  spec.op = IoOp::kWrite;
  spec.params = params;
  spec.num_clients = clients;
  spec.io_nodes = servers;
  spec.reps = 1;
  row.elapsed = bench::MeasureCollective(spec, meta).elapsed_s;
  return row;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    (void)opts.GetBool("quick", false);  // sweep is already small
    opts.CheckAllConsumed();

    const Sp2Params params = Sp2Params::Nas();
    std::printf("# Natural chunking, 3 i/o nodes: imbalance shrinks as the\n");
    std::printf("# number of compute nodes (= chunks) grows.\n");
    std::printf("%-16s %-12s %-12s %-10s %-12s\n", "compute_nodes",
                "max_seg", "min_seg", "ratio", "elapsed_s");
    struct Cfg {
      int clients;
      Shape mesh;
    };
    for (const Cfg& cfg : {Cfg{4, {4, 1, 1}}, Cfg{8, {2, 2, 2}},
                           Cfg{16, {4, 2, 2}}, Cfg{32, {4, 4, 2}}}) {
      const Row r = Measure(cfg.clients, cfg.mesh, 3, 48, false, params);
      std::printf("%-16d %-12s %-12s %-10.3f %-12.3f\n", cfg.clients,
                  FormatBytes(r.max_segment).c_str(),
                  FormatBytes(r.min_segment).c_str(),
                  static_cast<double>(r.max_segment) /
                      static_cast<double>(r.min_segment),
                  r.elapsed);
    }

    std::printf("\n# Same machine, 8 compute nodes: a traditional-order\n");
    std::printf("# schema balances what natural chunking cannot.\n");
    std::printf("%-9s %-14s %-10s %-12s %-10s %-12s\n", "io_nodes", "schema",
                "ratio", "elapsed_s", "", "");
    for (const int ion : {3, 5, 7}) {
      for (const bool traditional : {false, true}) {
        const Row r = Measure(8, {2, 2, 2}, ion, 48, traditional, params);
        std::printf("%-9d %-14s %-10.3f %-12.3f\n", ion,
                    traditional ? "BLOCK,*,*" : "natural",
                    static_cast<double>(r.max_segment) /
                        static_cast<double>(std::max<std::int64_t>(
                            r.min_segment, 1)),
                    r.elapsed);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
