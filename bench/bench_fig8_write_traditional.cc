// Reproduces Figure 8: writing arrays of 16-512 MB from 32 compute
// nodes with a traditional-order (BLOCK,*,*) disk schema. Paper result:
// 68-95% of the peak AIX write throughput per i/o node.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 8";
  spec.description = "write, traditional order on disk, 32 compute nodes";
  spec.op = panda::IoOp::kWrite;
  spec.traditional = true;
  spec.num_clients = 32;
  spec.cn_mesh = panda::Shape{4, 4, 2};
  spec.io_nodes = {2, 4, 6, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
