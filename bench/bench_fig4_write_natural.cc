// Reproduces Figure 4: aggregate and normalized throughput for writing
// arrays of 16-512 MB from 8 compute nodes as a function of the number
// of i/o nodes, using natural chunking. Paper result: 85-98% of the
// measured peak AIX write throughput per i/o node, declining when the
// per-processor chunk drops below 1 MB.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 4";
  spec.description = "write, natural chunking, 8 compute nodes";
  spec.op = panda::IoOp::kWrite;
  spec.num_clients = 8;
  spec.cn_mesh = panda::Shape{2, 2, 2};
  spec.io_nodes = {2, 4, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
