// Reproduces Figure 9: writing arrays of 16-512 MB from 16 compute
// nodes with a traditional-order disk schema and a simulated infinitely
// fast disk. Paper result: 38-86% of peak MPI bandwidth per i/o node —
// with the disk out of the way, the reorganization cost (strided
// requests, pack/unpack) becomes visible.
#include "bench_util.h"

int main(int argc, char** argv) {
  panda::bench::FigureSpec spec;
  spec.id = "Figure 9";
  spec.description =
      "write, traditional order on disk, 16 compute nodes, fast disk";
  spec.op = panda::IoOp::kWrite;
  spec.fast_disk = true;
  spec.traditional = true;
  spec.num_clients = 16;
  spec.cn_mesh = panda::Shape{4, 2, 2};
  spec.io_nodes = {2, 4, 6, 8};
  spec.sizes_mb = {16, 32, 64, 128, 256, 512};
  return panda::bench::FigureMain(argc, argv, spec);
}
