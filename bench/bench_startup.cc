// Measures Panda's fixed per-collective startup/completion overhead.
// The paper reports ~0.013 s, visible in Figures 5/6 as declining
// normalized throughput for small arrays.
//
// Methodology: a raw "minimal collective" also pays the data phase's
// per-piece floor, so we fit elapsed(size) = a + b*size over several
// small fast-disk collectives and report the intercept `a` — the true
// fixed overhead — alongside the raw minimal-collective time.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double MeasureSize(int clients, const Shape& mesh, int servers,
                   std::int64_t size_mb) {
  bench::MeasureSpec spec;
  spec.op = IoOp::kWrite;
  spec.params = Sp2Params::NasFastDisk();
  spec.num_clients = clients;
  spec.io_nodes = servers;
  spec.fast_disk = true;
  spec.reps = 1;
  const ArrayMeta meta =
      bench::PaperArrayMeta(size_mb, mesh, /*traditional=*/false, servers);
  return bench::MeasureCollective(spec, meta).elapsed_s;
}

}  // namespace
}  // namespace panda

int main() {
  using namespace panda;
  std::printf("# Panda startup overhead (paper: ~0.013 s).\n");
  std::printf("# intercept = least-squares a in elapsed(size) = a + b*size,\n");
  std::printf("# over fast-disk writes of 8..40 MB; minimal = raw elapsed\n");
  std::printf("# of a 1-element-per-node collective (includes the\n");
  std::printf("# per-chunk message floor).\n");
  std::printf("%-14s %-10s %-14s %-14s\n", "compute_nodes", "io_nodes",
              "intercept", "minimal");

  struct Config {
    int clients;
    Shape mesh;
    int servers;
  };
  const Config configs[] = {
      {8, {2, 2, 2}, 2},  {8, {2, 2, 2}, 8},  {16, {4, 2, 2}, 4},
      {32, {4, 4, 2}, 2}, {32, {4, 4, 2}, 8},
  };
  for (const auto& cfg : configs) {
    // Least-squares fit over sizes 8,16,24,32,40 MB.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int n = 0;
    for (std::int64_t mb = 8; mb <= 40; mb += 8) {
      const double x = static_cast<double>(mb);
      const double y = MeasureSize(cfg.clients, cfg.mesh, cfg.servers, mb);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++n;
    }
    const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double intercept = (sy - slope * sx) / n;

    // Raw minimal collective for comparison.
    bench::MeasureSpec spec;
    spec.op = IoOp::kWrite;
    spec.params = Sp2Params::NasFastDisk();
    spec.num_clients = cfg.clients;
    spec.io_nodes = cfg.servers;
    spec.fast_disk = true;
    spec.reps = 5;
    ArrayMeta meta;
    meta.name = "tiny";
    meta.elem_size = 4;
    Shape shape = Shape::Filled(1, cfg.clients);
    meta.memory = Schema(shape, Mesh(Shape{cfg.clients}), {DimDist::Block()});
    meta.disk = meta.memory;
    const auto r = bench::MeasureCollective(spec, meta);

    std::printf("%-14d %-10d %-14s %-14s\n", cfg.clients, cfg.servers,
                FormatSeconds(intercept).c_str(),
                FormatSeconds(r.elapsed_s).c_str());
  }
  return 0;
}
