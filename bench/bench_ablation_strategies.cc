// Ablation: server-directed i/o (Panda) against the §4 alternatives —
// two-phase i/o [Bordawekar93], traditional caching (CFS-style
// [Pierce93], through a per-node block cache), and naive master-gather
// i/o [Galbreath93] — on the same write workload.
//
// Expected ordering (the paper's argument): server-directed fastest;
// two-phase close behind (same sequential disk pattern, extra
// client-side permutation traffic); traditional caching well behind
// (strided arrivals defeat the cache; [Kotz93b] measured CFS at about
// half the raw disk bandwidth); naive gather worst and flat in the
// number of i/o nodes (it only ever uses one).
#include <cstdio>

#include "baselines/naive_gather.h"
#include "baselines/traditional_caching.h"
#include "baselines/two_phase.h"
#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

struct Config {
  int clients = 8;
  Shape cn_mesh{2, 2, 2};
  std::int64_t size_mb = 64;
  int io_nodes = 2;
};

double RunPanda(const Config& cfg, const ArrayMeta& meta,
                const Sp2Params& params, IoOp op) {
  bench::MeasureSpec spec;
  spec.op = op;
  spec.params = params;
  spec.num_clients = cfg.clients;
  spec.io_nodes = cfg.io_nodes;
  spec.reps = 1;
  return bench::MeasureCollective(spec, meta).elapsed_s;
}

double RunTwoPhase(const Config& cfg, const ArrayMeta& meta,
                   const Sp2Params& params, IoOp op) {
  Machine machine =
      Machine::Simulated(cfg.clients, cfg.io_nodes, params, false, true);
  const World world{cfg.clients, cfg.io_nodes};
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        double t;
        if (op == IoOp::kWrite) {
          t = TwoPhaseWriteClient(ep, world, params, a);
        } else {
          TwoPhaseWriteClient(ep, world, params, a);  // populate files
          t = TwoPhaseReadClient(ep, world, params, a);
        }
        if (idx == 0) elapsed = t;
      },
      [&](Endpoint& ep, int sidx) {
        TwoPhaseWriteServer(ep, machine.server_fs(sidx), world, params, meta);
        if (op == IoOp::kRead) {
          TwoPhaseReadServer(ep, machine.server_fs(sidx), world, params,
                             meta);
        }
      });
  return elapsed;
}

double RunCaching(const Config& cfg, const ArrayMeta& meta,
                  const Sp2Params& params, IoOp op) {
  Machine machine =
      Machine::Simulated(cfg.clients, cfg.io_nodes, params, false, true);
  const World world{cfg.clients, cfg.io_nodes};
  CachingOptions options;
  options.cache_capacity_blocks = 1024;  // 4 MB cache per i/o node
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        const double t =
            op == IoOp::kWrite
                ? CachingWriteClient(ep, world, params, meta, options)
                : CachingReadClient(ep, world, params, meta, options);
        if (idx == 0) elapsed = t;
      },
      [&](Endpoint& ep, int sidx) {
        if (op == IoOp::kWrite) {
          CachingWriteServer(ep, machine.server_fs(sidx), world, params,
                             meta, options);
        } else {
          CachingReadServer(ep, machine.server_fs(sidx), world, params, meta,
                            options);
        }
      });
  return elapsed;
}

double RunNaive(const Config& cfg, const ArrayMeta& meta,
                const Sp2Params& params, IoOp op) {
  Machine machine =
      Machine::Simulated(cfg.clients, cfg.io_nodes, params, false, true);
  const World world{cfg.clients, cfg.io_nodes};
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        double t;
        if (op == IoOp::kWrite) {
          t = NaiveGatherWriteClient(ep, world, params, a);
        } else {
          NaiveGatherWriteClient(ep, world, params, a);  // populate
          t = NaiveScatterReadClient(ep, world, params, a);
        }
        if (idx == 0) elapsed = t;
      },
      [&](Endpoint& ep, int sidx) {
        NaiveGatherWriteServer(ep, machine.server_fs(sidx), world, params,
                               meta);
        if (op == IoOp::kRead) {
          NaiveScatterReadServer(ep, machine.server_fs(sidx), world, params,
                                 meta);
        }
      });
  return elapsed;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    std::printf("# Ablation: i/o strategies on the paper's workload\n");
    std::printf(
        "# 8 compute nodes (2x2x2), traditional order on disk, NAS AIX "
        "disks\n");
    std::printf("%-6s %-9s %-8s %-16s %-12s %-12s %-12s\n", "op", "io_nodes",
                "size_mb", "strategy", "elapsed_s", "agg_MBps", "vs_panda");
    const Sp2Params params = Sp2Params::Nas();
    std::vector<std::int64_t> sizes = quick
                                          ? std::vector<std::int64_t>{16}
                                          : std::vector<std::int64_t>{16, 64};
    for (const IoOp op : {IoOp::kWrite, IoOp::kRead}) {
      for (const std::int64_t size_mb : sizes) {
        for (const int ion : {2, 4}) {
          Config cfg;
          cfg.size_mb = size_mb;
          cfg.io_nodes = ion;
          const ArrayMeta meta = bench::PaperArrayMeta(
              size_mb, cfg.cn_mesh, /*traditional=*/true, ion);
          const double panda = RunPanda(cfg, meta, params, op);
          struct Row {
            const char* name;
            double elapsed;
          };
          const Row rows[] = {
              {"server-directed", panda},
              {"two-phase", RunTwoPhase(cfg, meta, params, op)},
              {"caching", RunCaching(cfg, meta, params, op)},
              {op == IoOp::kWrite ? "naive-gather" : "naive-scatter",
               RunNaive(cfg, meta, params, op)},
          };
          for (const Row& row : rows) {
            std::printf("%-6s %-9d %-8lld %-16s %-12.3f %-12.2f %-12.2fx\n",
                        op == IoOp::kWrite ? "write" : "read", ion,
                        static_cast<long long>(size_mb), row.name,
                        row.elapsed,
                        static_cast<double>(meta.total_bytes()) /
                            row.elapsed / (1024.0 * 1024.0),
                        row.elapsed / panda);
          }
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
