// CYCLIC disk schemas (our extension beyond the paper's BLOCK/*):
// block-cyclic striping trades chunk-level load balance against chunk
// size. Small cyclic blocks balance perfectly even when the i/o-node
// count is awkward, but shrink the unit of sequential disk access; at
// CYCLIC(b) with b large enough to keep >=1 MB chunks, it matches
// BLOCK performance while fixing BLOCK's imbalance — quantified here
// on the paper's machine.
#include <cstdio>

#include "bench_util.h"
#include "util/units.h"

namespace panda {
namespace {

double Measure(const ArrayMeta& meta, int servers, const Sp2Params& params) {
  bench::MeasureSpec spec;
  spec.op = IoOp::kWrite;
  spec.params = params;
  spec.num_clients = 8;
  spec.io_nodes = servers;
  spec.reps = 1;
  return bench::MeasureCollective(spec, meta).elapsed_s;
}

}  // namespace
}  // namespace panda

int main(int argc, char** argv) {
  using namespace panda;
  try {
    Options opts(argc, argv);
    const bool quick = opts.GetBool("quick", false);
    opts.CheckAllConsumed();

    const std::int64_t size_mb = quick ? 24 : 48;
    const Shape shape{size_mb, 512, 512};
    const Sp2Params params = Sp2Params::Nas();
    // 3 i/o nodes: BLOCK over the 8-chunk natural schema is imbalanced
    // (3/3/2); cyclic alternatives rebalance.
    const int servers = 3;

    ArrayMeta meta;
    meta.name = "cyc";
    meta.elem_size = 4;
    meta.memory = Schema(shape, Mesh(Shape{2, 2, 2}),
                         {BLOCK, BLOCK, BLOCK});

    std::printf("# CYCLIC(b) disk schemas: write %lld MB, 8 compute nodes, "
                "%d i/o nodes\n",
                static_cast<long long>(size_mb), servers);
    std::printf("%-22s %-10s %-12s %-12s %-14s\n", "disk_schema", "chunks",
                "imbalance", "elapsed_s", "agg_MBps");

    struct Candidate {
      std::string label;
      Schema disk;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"natural (BLOCK^3)", meta.memory});
    candidates.push_back(
        {"BLOCK,*,*",
         Schema(shape, Mesh(Shape{servers}), {BLOCK, NONE, NONE})});
    for (const std::int64_t b : {1, 2, 4, 8}) {
      if (b > size_mb / servers) continue;
      candidates.push_back(
          {"CYCLIC(" + std::to_string(b) + "),*,*",
           Schema(shape, Mesh(Shape{servers}), {CYCLIC(b), NONE, NONE})});
    }

    for (const Candidate& cand : candidates) {
      ArrayMeta m = meta;
      m.disk = cand.disk;
      const IoPlan plan(m, servers, params.subchunk_bytes);
      std::int64_t max_seg = 0;
      std::int64_t min_seg = m.total_bytes();
      for (int s = 0; s < servers; ++s) {
        max_seg = std::max(max_seg, plan.SegmentBytes(s));
        min_seg = std::min(min_seg, plan.SegmentBytes(s));
      }
      const double elapsed = Measure(m, servers, params);
      std::printf("%-22s %-10zu %-12.3f %-12.3f %-14.2f\n",
                  cand.label.c_str(), plan.chunks().size(),
                  static_cast<double>(max_seg) /
                      static_cast<double>(std::max<std::int64_t>(min_seg, 1)),
                  elapsed,
                  static_cast<double>(m.total_bytes()) / elapsed /
                      (1024.0 * 1024.0));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
