// Framed sub-chunk i/o: the read path of the disk codec pipeline.
//
// Writers (ServerWriteArray) frame each sub-chunk with
// EncodeSubchunkFrame and record its representation in the data file's
// frame directory (`F.fdx`, codec/frame.h). This header holds the
// matching read path, shared by the servers' online reads and the
// offline verifiers (panda_fsck --verify_frames):
//
//   * ReadFramedSubchunk — directory-directed read + decode of one
//     sub-chunk, every disk access wrapped in the caller's RetryPolicy.
//     A torn or corrupt directory record, or a record whose frame fails
//     to decode, falls back to probing the slot's self-describing
//     header (one extra full-slot read, counted as a frame re-read);
//     a slot that is neither a valid frame nor plausible raw bytes
//     counts a frame decode failure and throws PandaError, which the
//     server escalates to a structured abort.
//   * VerifyArrayFrames / VerifyGroupFrames — offline sweep mirroring
//     integrity.cc: walks the deterministic plan order, cross-checks
//     every directory record against the plan, and proves every slot
//     decodes to its plan size.
//
// Decode *content* integrity is deliberately not this layer's job: CRC
// sidecars are computed over uncompressed bytes, so a frame that
// decodes to corrupt data is caught by the existing checksum verify.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/frame.h"
#include "iosim/file_system.h"
#include "iosim/retry.h"
#include "msg/virtual_clock.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/schema_io.h"

namespace panda {

// Result of reading one framed sub-chunk slot.
struct FramedSubchunkRead {
  std::vector<std::byte> raw;      // decoded bytes, exactly raw_bytes long
  CodecId codec = CodecId::kNone;  // representation found on disk
  std::int64_t frame_bytes = 0;    // bytes occupied in the slot
  bool healed = false;  // directory-directed decode failed; probe healed
};

// Reads and decodes the sub-chunk at `file_offset` whose plan size is
// `raw_bytes`. `frame_dir` may be null (directory missing entirely):
// the slot is probed directly. All disk accesses run under `retry`
// (`clock`/`stats` as in RetryPolicy::Run); `stats` additionally counts
// frame_rereads / frame_decode_failures. Throws PandaError when the
// slot cannot be decoded by any means.
FramedSubchunkRead ReadFramedSubchunk(File& data, File* frame_dir,
                                      std::int64_t record_index,
                                      std::int64_t file_offset,
                                      std::int64_t raw_bytes,
                                      std::int64_t elem_size,
                                      const RetryPolicy& retry,
                                      VirtualClock* clock,
                                      RobustnessStats* stats);

// Reads one sub-chunk's *decoded* bytes for an offline verifier: a
// directory-directed framed read (probe fallback) when the array
// negotiated a codec, a plain positioned read otherwise. No retries, no
// healing, no counters — offline passes want to see problems, not fix
// them. Throws PandaError when the slot cannot be read or decoded.
std::vector<std::byte> ReadSubchunkForVerify(File& data, File* frame_dir,
                                             CodecId codec,
                                             std::int64_t record_index,
                                             std::int64_t file_offset,
                                             std::int64_t raw_bytes,
                                             std::int64_t elem_size);

// Aggregate result of an offline frame verification pass.
struct FrameReport {
  std::int64_t files_checked = 0;
  std::int64_t files_without_directory = 0;  // no `.fdx` (legacy / none)
  std::int64_t subchunks_checked = 0;
  std::int64_t frames_encoded = 0;    // slots stored framed (codec != none)
  std::int64_t torn_records = 0;      // directory records healed by probing
  std::int64_t framing_mismatches = 0;  // directory vs. plan disagreement
  std::int64_t decode_failures = 0;     // slots that decode no way at all

  bool Clean() const {
    return framing_mismatches == 0 && decode_failures == 0;
  }
  void Merge(const FrameReport& other);
};

// Verifies one array's per-server frame directories and slots (only
// meaningful when the array negotiated a codec; see VerifyGroupFrames).
// Parameters mirror VerifyArrayChecksums: `num_segments` is the
// timestep count for Purpose::kTimestep and 1 otherwise;
// `dead_servers` selects the degraded layout the data was committed
// under. Human-readable findings append to `log` when non-null.
FrameReport VerifyArrayFrames(std::span<FileSystem* const> fs,
                              const ArrayMeta& meta,
                              std::int64_t subchunk_bytes, Purpose purpose,
                              std::int64_t num_segments,
                              const std::string& group,
                              std::string* log = nullptr,
                              const std::vector<int>& dead_servers = {});

// Group-level sweep over every codec-bearing array: timestep streams
// and the checkpoint (if present). Arrays with codec=none are skipped —
// they store raw bytes with no directory.
FrameReport VerifyGroupFrames(std::span<FileSystem* const> fs,
                              const GroupMeta& meta,
                              std::int64_t subchunk_bytes,
                              std::string* log = nullptr);

}  // namespace panda
