#include "panda/array.h"

#include "util/error.h"

namespace panda {

void ArrayMeta::EncodeTo(Encoder& enc) const {
  enc.PutString(name);
  enc.Put<std::int64_t>(elem_size);
  enc.Put<std::uint8_t>(static_cast<std::uint8_t>(codec));
  memory.EncodeTo(enc);
  disk.EncodeTo(enc);
}

ArrayMeta ArrayMeta::Decode(Decoder& dec, bool with_codec) {
  ArrayMeta meta;
  meta.name = dec.GetString();
  meta.elem_size = dec.Get<std::int64_t>();
  PANDA_REQUIRE(meta.elem_size >= 1, "bad element size %lld",
                static_cast<long long>(meta.elem_size));
  if (with_codec) {
    const std::uint8_t codec = dec.Get<std::uint8_t>();
    PANDA_REQUIRE(IsValidCodecId(codec), "bad codec id %u in array metadata",
                  static_cast<unsigned>(codec));
    meta.codec = static_cast<CodecId>(codec);
  }
  meta.memory = Schema::Decode(dec);
  meta.disk = Schema::Decode(dec);
  PANDA_REQUIRE(meta.memory.array_shape() == meta.disk.array_shape(),
                "memory and disk schemas disagree on the array shape");
  return meta;
}

namespace {

Schema MakeSchema(const Shape& size, const ArrayLayout& layout,
                  std::vector<Distribution> dists) {
  return Schema(size, layout.mesh(), std::move(dists));
}

}  // namespace

Array::Array(std::string name, Shape size, std::int64_t elem_size,
             const ArrayLayout& memory_layout,
             std::vector<Distribution> memory_dist,
             const ArrayLayout& disk_layout,
             std::vector<Distribution> disk_dist)
    : Array(std::move(name), elem_size,
            MakeSchema(size, memory_layout, std::move(memory_dist)),
            MakeSchema(size, disk_layout, std::move(disk_dist))) {}

Array::Array(std::string name, std::int64_t elem_size, Schema memory,
             Schema disk) {
  PANDA_REQUIRE(!name.empty(), "array needs a name");
  PANDA_REQUIRE(elem_size >= 1, "element size must be positive");
  PANDA_REQUIRE(memory.array_shape() == disk.array_shape(),
                "memory and disk schemas must describe the same array");
  PANDA_REQUIRE(!memory.has_cyclic(),
                "CYCLIC memory schemas are not supported (disk only)");
  meta_.name = std::move(name);
  meta_.elem_size = elem_size;
  meta_.memory = std::move(memory);
  meta_.disk = std::move(disk);
}

void Array::BindClient(int client_pos, bool allocate) {
  PANDA_REQUIRE(client_pos >= 0 && client_pos < meta_.memory.mesh().size(),
                "client position %d out of range for a %d-node memory mesh",
                client_pos, meta_.memory.mesh().size());
  client_pos_ = client_pos;
  local_region_ = meta_.memory.CellRegion(client_pos);
  if (allocate) {
    data_.assign(
        static_cast<size_t>(local_region_.Volume() * meta_.elem_size),
        std::byte{0});
  } else {
    data_.clear();
  }
}

const Region& Array::local_region() const {
  PANDA_CHECK_MSG(bound(), "array %s is not bound to a client",
                  meta_.name.c_str());
  return local_region_;
}

std::span<std::byte> Array::local_data() {
  PANDA_CHECK_MSG(bound(), "array %s is not bound to a client",
                  meta_.name.c_str());
  return {data_.data(), data_.size()};
}

std::span<const std::byte> Array::local_data() const {
  PANDA_CHECK_MSG(bound(), "array %s is not bound to a client",
                  meta_.name.c_str());
  return {data_.data(), data_.size()};
}

}  // namespace panda
