// Machine resource reports.
//
// Snapshots the transport and per-i/o-node file-system counters of a
// Machine so benches and tests can account exactly where a collective's
// traffic went: messages and wire bytes, disk requests, seeks, device
// busy time. Also computes the analytic expected message count of a
// collective from its plan — a strong protocol regression check (a
// stray retransmission or a dropped acknowledgement changes the count).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "iosim/retry.h"
#include "msg/lossy.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/runtime.h"
#include "sp2/machine.h"
#include "trace/export.h"
#include "trace/metrics.h"

namespace panda {

// Max over a set of per-rank values (0 for an empty set). THE elapsed-
// time reduction: a collective is over when its slowest participant is,
// so both the report's clock line and the bench harness's elapsed-time
// measurement go through this one helper (they can never disagree).
double MaxOverRanks(std::span<const double> values);

struct MachineReport {
  MsgStats messages;                 // whole-transport totals
  std::vector<FsStats> server_fs;    // per i/o node
  std::vector<double> client_clock_s;
  std::vector<double> server_clock_s;
  // Robustness accounting: all-zero on a clean run; non-zero entries
  // betray healed transient faults, caught corruption, aborts,
  // failovers, or journal activity.
  RobustnessCounters robustness;
  // Transport fault accounting: injected drops/dups/reorders/delays,
  // retransmissions, suppressed duplicates, dead-peer declarations and
  // crash-stopped ranks. All-zero when the lossy layer and the kill
  // injector are disarmed (the acceptance bar for clean runs).
  TransportFaultCounters transport;
  // Rank-scheduler accounting (src/sched/): which backend executed the
  // ranks and its context-switch/yield/park/probe counters. Wall-
  // schedule diagnostics only — never part of the virtual-time model.
  sched::Backend sched_backend = sched::Backend::kThread;
  sched::Stats sched;
  // The same counters (plus span aggregates and histograms when tracing
  // was armed) as one named bag — the single source of truth behind
  // MetricsJson exports. ToString and this snapshot both derive from the
  // struct fields above, so the human table and the JSON agree.
  trace::MetricsSnapshot metrics;

  std::string ToString() const;
};

// Snapshot of all counters (pass the world to split clocks by role).
MachineReport Snapshot(Machine& machine);

// Chrome trace_event JSON of the machine's collector ("" when tracing
// is disarmed), with tracks labeled "client N" / "ion N".
std::string MachineTraceJson(const Machine& machine);

// The exact number of point-to-point messages one collective moves,
// derived from the plan: request + server broadcast + per-piece traffic
// (request+data for writes, data+ack for reads) + completion gather,
// done, and client broadcast. ServerMain/PandaClient must match this
// exactly (tests/report_test.cc).
std::int64_t ExpectedCollectiveMessages(std::span<const ArrayMeta> arrays,
                                        IoOp op, const World& world,
                                        std::int64_t subchunk_bytes);

}  // namespace panda
