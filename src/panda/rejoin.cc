#include "panda/rejoin.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "codec/frame.h"
#include "msg/collectives.h"
#include "msg/hb.h"
#include "msg/message.h"
#include "panda/failover.h"
#include "panda/frame_io.h"
#include "panda/integrity.h"
#include "panda/journal.h"
#include "panda/store_io.h"
#include "trace/trace.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {
namespace {

std::string EncodeCsvInts(const std::vector<int>& v) {
  std::string s;
  for (int x : v) {
    if (!s.empty()) s.push_back(',');
    s += std::to_string(x);
  }
  return s;
}

std::vector<int> ParseCsvInts(const std::map<std::string, std::string>& attrs,
                              const char* key) {
  std::vector<int> out;
  const auto it = attrs.find(key);
  if (it == attrs.end() || it->second.empty()) return out;
  const std::string& s = it->second;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

std::int64_t ParseInt64Attr(const std::map<std::string, std::string>& attrs,
                            const char* key, std::int64_t fallback) {
  const auto it = attrs.find(key);
  if (it == attrs.end() || it->second.empty()) return fallback;
  return static_cast<std::int64_t>(std::stoll(it->second));
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// The header of one adopted-sub-chunk transfer (payload: the raw,
// decoded sub-chunk bytes; the CRC covers them end-to-end).
struct RepairTransfer {
  std::int32_t array_index = 0;
  std::uint8_t purpose = 0;
  std::int64_t seg = 0;
  std::int32_t chunk_index = 0;
  std::int32_t sub_index = 0;
  std::uint32_t crc = 0;
};

Message MakeTransferMessage(const RepairTransfer& t,
                            std::vector<std::byte> payload) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(t.array_index);
  enc.Put<std::uint8_t>(t.purpose);
  enc.Put<std::int64_t>(t.seg);
  enc.Put<std::int32_t>(t.chunk_index);
  enc.Put<std::int32_t>(t.sub_index);
  enc.Put<std::uint32_t>(t.crc);
  msg.SetPayload(std::move(payload));
  return msg;
}

RepairTransfer DecodeTransferHeader(const Message& msg) {
  Decoder dec(msg.header);
  RepairTransfer t;
  t.array_index = dec.Get<std::int32_t>();
  t.purpose = dec.Get<std::uint8_t>();
  t.seg = dec.Get<std::int64_t>();
  t.chunk_index = dec.Get<std::int32_t>();
  t.sub_index = dec.Get<std::int32_t>();
  t.crc = dec.Get<std::uint32_t>();
  return t;
}

// Sub-chunk writer shared by the rejoinee (final names) and the
// adopters (`.repair` staging): the same frame/sidecar/journal pipeline
// ServerWriteArray runs, minus the overlap scheduler — repair moves
// already-committed bytes, not a collective's critical path.
class RepairFileWriter {
 public:
  // `shard_layout` non-null routes the data through a ShardWriter at
  // `write_name`-derived shard files (src/store/) instead of one flat
  // file; sidecar and journal stay flat either way.
  RepairFileWriter(Endpoint& ep, FileSystem& fs, const ServerOptions& options,
                   const ArrayMeta& meta, const std::string& write_name,
                   const JournalHeader& journal_header,
                   const store::ShardLayout* shard_layout = nullptr)
      : ep_(ep), options_(options), meta_(meta) {
    const RetryPolicy& retry = options.retry;
    RobustnessStats* stats = options.robustness;
    if (shard_layout != nullptr) {
      store::StoreOptions sopt;
      sopt.shard_bytes = options.shard_bytes;
      sopt.backend = options.backend;
      sopt.handle_pool_capacity = options.handle_pool_capacity;
      shard_writer_.emplace(&fs, write_name, shard_layout, sopt,
                            OpenMode::kWrite, retry, &ep.clock(), stats);
    } else {
      retry.Run(&ep.clock(), stats,
                [&] { data_ = fs.Open(write_name, OpenMode::kWrite); });
    }
    if (options.disk_checksums) {
      retry.Run(&ep.clock(), stats, [&] {
        sidecar_ = fs.Open(SidecarFileName(write_name), OpenMode::kWrite);
      });
    }
    if (options.journal) {
      retry.Run(&ep.clock(), stats, [&] {
        journal_ = fs.Open(JournalFileName(write_name), OpenMode::kWrite);
      });
      jhdr_ = journal_header;
      retry.Run(&ep.clock(), stats,
                [&] { WriteJournalHeader(*journal_, *jhdr_); });
    }
    // The shard table replaces the frame directory under sharding.
    if (meta.codec != CodecId::kNone && shard_layout == nullptr) {
      retry.Run(&ep.clock(), stats, [&] {
        frame_dir_ = fs.Open(FrameDirFileName(write_name), OpenMode::kWrite);
      });
    }
  }

  // Writes one sub-chunk's raw bytes at `file_offset` / record slot
  // `record_index`, with the journal record's logical coordinates.
  void WriteSubchunk(const JournalRecord& rec,
                     std::span<const std::byte> raw) {
    const RetryPolicy& retry = options_.retry;
    RobustnessStats* stats = options_.robustness;
    SubchunkFrame frame;
    const bool encode =
        frame_dir_ != nullptr ||
        (shard_writer_.has_value() && meta_.codec != CodecId::kNone);
    if (encode) {
      frame = EncodeSubchunkFrame(meta_.codec, raw, meta_.elem_size);
    }
    if (shard_writer_.has_value()) {
      // The writer retries internally.
      if (encode && frame.codec != CodecId::kNone) {
        shard_writer_->Put(seg_, ordinal_, rec.array_index, rec.chunk_id,
                           rec.sub_index, frame.codec,
                           {frame.bytes.data(), frame.bytes.size()},
                           static_cast<std::int64_t>(frame.bytes.size()));
      } else {
        shard_writer_->Put(seg_, ordinal_, rec.array_index, rec.chunk_id,
                           rec.sub_index, CodecId::kNone, raw, rec.bytes);
      }
    } else {
      retry.Run(&ep_.clock(), stats, [&] {
        if (frame_dir_ != nullptr && frame.codec != CodecId::kNone) {
          data_->WriteAt(rec.file_offset,
                         {frame.bytes.data(), frame.bytes.size()},
                         static_cast<std::int64_t>(frame.bytes.size()));
        } else {
          data_->WriteAt(rec.file_offset, raw, rec.bytes);
        }
      });
    }
    if (frame_dir_ != nullptr) {
      frame_recs_.emplace_back(
          rec_index_override_,
          FrameDirRecord{rec.file_offset, rec.bytes,
                         frame.frame_bytes(rec.bytes), frame.codec});
    }
    if (sidecar_ != nullptr) {
      const CrcRecord crc_rec{rec.file_offset, rec.bytes, rec.data_crc};
      retry.Run(&ep_.clock(), stats, [&] {
        WriteCrcRecord(*sidecar_, rec_index_override_, crc_rec);
      });
    }
    if (journal_ != nullptr &&
        rec_index_override_ >= jhdr_->base_record) {
      retry.Run(&ep_.clock(), stats, [&] {
        WriteJournalRecord(*journal_, jhdr_, rec_index_override_, rec);
      });
      if (stats != nullptr) stats->journal_records_written.fetch_add(1);
    }
  }

  // `seg`/`ordinal` locate the record for the shard writer (segment and
  // in-segment record ordinal); `index` is the flat sidecar/journal
  // record slot, as before.
  void set_record_index(std::int64_t index, std::int64_t seg = 0,
                        std::int64_t ordinal = 0) {
    rec_index_override_ = index;
    seg_ = seg;
    ordinal_ = ordinal;
  }

  // Flushes the buffered frame directory and fsyncs everything.
  void Finish() {
    const RetryPolicy& retry = options_.retry;
    RobustnessStats* stats = options_.robustness;
    if (frame_dir_ != nullptr) {
      std::sort(frame_recs_.begin(), frame_recs_.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      size_t i = 0;
      while (i < frame_recs_.size()) {
        size_t j = i + 1;
        std::vector<FrameDirRecord> run{frame_recs_[i].second};
        while (j < frame_recs_.size() &&
               frame_recs_[j].first ==
                   frame_recs_[i].first + static_cast<std::int64_t>(j - i)) {
          run.push_back(frame_recs_[j].second);
          ++j;
        }
        retry.Run(&ep_.clock(), stats, [&] {
          WriteFrameDirRecords(*frame_dir_, frame_recs_[i].first, run);
        });
        i = j;
      }
      retry.Run(&ep_.clock(), stats, [&] { frame_dir_->Sync(); });
    }
    if (shard_writer_.has_value()) {
      shard_writer_->Finish();
    } else {
      retry.Run(&ep_.clock(), stats, [&] { data_->Sync(); });
    }
    if (sidecar_ != nullptr) {
      retry.Run(&ep_.clock(), stats, [&] { sidecar_->Sync(); });
    }
    if (journal_ != nullptr) {
      retry.Run(&ep_.clock(), stats, [&] { journal_->Sync(); });
    }
  }

 private:
  Endpoint& ep_;
  const ServerOptions& options_;
  const ArrayMeta& meta_;
  std::unique_ptr<File> data_;
  std::optional<store::ShardWriter> shard_writer_;
  std::unique_ptr<File> sidecar_;
  std::unique_ptr<File> journal_;
  std::unique_ptr<File> frame_dir_;
  std::optional<JournalHeader> jhdr_;
  std::int64_t rec_index_override_ = 0;
  std::int64_t seg_ = 0;
  std::int64_t ordinal_ = 0;
  std::vector<std::pair<std::int64_t, FrameDirRecord>> frame_recs_;
};

// Drops every on-disk artifact of `data_name` (stale-cede on the
// rejoinee, and disabled-feature cleanup before staging).
void RemoveFileSet(Endpoint& ep, FileSystem& fs, const ServerOptions& options,
                   const std::string& data_name) {
  options.retry.Run(&ep.clock(), options.robustness, [&] {
    fs.Remove(data_name);
    fs.Remove(SidecarFileName(data_name));
    fs.Remove(JournalFileName(data_name));
    fs.Remove(FrameDirFileName(data_name));
    // Shard files are contiguous from 0 by construction.
    for (std::int64_t id = 0; fs.Exists(store::ShardFileName(data_name, id));
         ++id) {
      fs.Remove(store::ShardFileName(data_name, id));
    }
  });
}

// Replays the rejoinee's stale journal as a diagnostic before it is
// ceded: every record that still parses clean is a write the old life
// provably committed (journal_records_salvaged). The data itself is
// NOT trusted — the cluster adopted and rewrote those chunks.
void SalvageStaleJournal(Endpoint& ep, FileSystem& fs,
                         const ServerOptions& options,
                         const std::string& data_name) {
  if (!options.journal) return;
  const std::string jname = JournalFileName(data_name);
  if (!fs.Exists(jname)) return;
  std::int64_t salvaged = 0;
  options.retry.Run(&ep.clock(), options.robustness, [&] {
    salvaged = 0;
    auto journal = fs.Open(jname, OpenMode::kRead);
    const std::optional<JournalHeader> hdr = ReadJournalHeader(*journal);
    const std::int64_t base = hdr ? hdr->base_record : 0;
    const std::int64_t body =
        journal->Size() - (hdr ? kJournalHeaderBytes : 0);
    const std::int64_t full = base + body / kJournalRecordBytes;
    for (std::int64_t r = base; r < full; ++r) {
      if (ReadJournalRecord(*journal, hdr, r)) ++salvaged;
    }
  });
  if (options.robustness != nullptr) {
    options.robustness->journal_records_salvaged.fetch_add(salvaged);
  }
}

// One (array, purpose) pair of the repair. Returns the number of chunks
// this server received back (rejoinee side; 0 elsewhere).
std::int64_t RepairArrayPurpose(
    Endpoint& ep, FileSystem& fs, const World& world,
    const CollectiveRequest& req, std::int32_t array_index, const IoPlan& plan,
    const DegradedLayout& degraded, const DegradedLayout& identity,
    Purpose purpose, std::int64_t num_segments, std::int64_t checkpoint_seq,
    std::int64_t new_epoch, const std::vector<int>& prev_dead,
    const ServerOptions& options,
    std::vector<std::pair<std::string, std::string>>& staged) {
  const int sidx = world.server_index(ep.rank());
  const ArrayMeta& meta = req.arrays[static_cast<size_t>(array_index)];
  const bool rejoinee = Contains(prev_dead, sidx);
  const std::string final_name =
      DataFileName(req.group, meta.name, purpose, sidx);
  const std::vector<WorkItem> identity_work =
      BuildServerWork(plan, identity, sidx, WorkPhase::kFull);
  const std::int64_t rps_identity = RecordsPerSegment(plan, identity, sidx);
  // Sharded groups rebuild into shard files under the identity layout's
  // shard map (the same pure function every writer/reader derives).
  const bool sharded = options.shard_bytes > 0;
  std::optional<store::ShardLayout> identity_shards;
  if (sharded && !identity_work.empty()) {
    identity_shards =
        BuildShardLayout(plan, identity, sidx, options.shard_bytes);
  }
  // Rebuilt timestep journals keep the committed checkpoint's GC base;
  // single-segment purposes start from record 0.
  JournalHeader jhdr;
  jhdr.epoch = new_epoch;
  if (purpose == Purpose::kTimestep && checkpoint_seq > 0) {
    jhdr.base_record = checkpoint_seq * rps_identity;
  }

  if (rejoinee) {
    SalvageStaleJournal(ep, fs, options, final_name);
    RemoveFileSet(ep, fs, options, final_name);
    if (identity_work.empty()) {
      if (purpose != Purpose::kTimestep) {
        options.retry.Run(&ep.clock(), options.robustness,
                          [&] { fs.Open(final_name, OpenMode::kWrite); });
      }
      return 0;
    }
    // Rebuild at the final names: the committed metadata still records
    // this server dead, so a crash mid-rebuild leaves nothing trusted.
    RepairFileWriter writer(ep, fs, options, meta, final_name, jhdr,
                            identity_shards ? &*identity_shards : nullptr);
    std::int64_t chunks_back = 0;
    std::vector<std::byte> buf;
    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      const std::int64_t base_off =
          purpose == Purpose::kTimestep ? seg * plan.SegmentBytes(sidx) : 0;
      const std::int64_t record_base =
          purpose == Purpose::kTimestep ? seg * rps_identity : 0;
      for (const WorkItem& item : identity_work) {
        const ChunkPlan& cp =
            plan.chunks()[static_cast<size_t>(item.chunk_index)];
        const SubchunkPlan& sp =
            cp.subchunks[static_cast<size_t>(item.sub_index)];
        const int owner = degraded.owner[static_cast<size_t>(item.chunk_index)];
        // Repair streams run under ServerMain's converting dispatch: an
        // adopter that dies mid-stream raises PeerDeadError via its
        // lease and aborts the repair collective as a whole. A deadline
        // here would cap legitimate large-segment transfer times.
        // panda-lint: allow(proto-deadline)
        Message msg = ep.Recv(world.server_rank(owner), kTagRejoin);
        const RepairTransfer t = DecodeTransferHeader(msg);
        PANDA_REQUIRE(t.array_index == array_index &&
                          t.purpose == static_cast<std::uint8_t>(purpose) &&
                          t.seg == seg && t.chunk_index == item.chunk_index &&
                          t.sub_index == item.sub_index,
                      "repair transfer out of order: adopter %d sent array=%d "
                      "purpose=%u seg=%lld chunk=%d sub=%d",
                      owner, t.array_index, t.purpose,
                      static_cast<long long>(t.seg), t.chunk_index,
                      t.sub_index);
        PANDA_REQUIRE(
            static_cast<std::int64_t>(msg.payload.size()) == sp.bytes,
            "repair transfer size mismatch");
        const std::uint32_t got =
            Crc32c({msg.payload.data(), msg.payload.size()});
        if (got != t.crc) {
          if (options.robustness != nullptr) {
            options.robustness->wire_checksum_failures.fetch_add(1);
          }
          PANDA_REQUIRE(false,
                        "repair transfer from server %d failed its end-to-end "
                        "checksum (wire %08x != computed %08x)",
                        owner, t.crc, got);
        }
        JournalRecord rec;
        rec.array_index = array_index;
        rec.chunk_id = cp.chunk_id;
        rec.sub_index = item.sub_index;
        rec.seq = purpose == Purpose::kTimestep ? seg : 0;
        rec.file_offset = base_off + item.file_offset;
        rec.bytes = sp.bytes;
        rec.data_crc = got;
        writer.set_record_index(record_base + item.record_ordinal, seg,
                                item.record_ordinal);
        writer.WriteSubchunk(rec, {msg.payload.data(), msg.payload.size()});
        if (item.sub_index == 0) ++chunks_back;
      }
    }
    writer.Finish();
    return chunks_back;
  }

  // Survivor. Without adopted chunks the degraded file IS the identity
  // file (same owners, same offsets, same stride): untouched.
  const std::vector<int>& adopted = degraded.adopted[static_cast<size_t>(sidx)];
  if (adopted.empty()) return 0;

  // Old record index and in-segment offset of every (chunk, sub) this
  // server holds under the degraded layout.
  struct OldSlot {
    std::int64_t file_offset = 0;
    std::int64_t record_ordinal = 0;
  };
  std::map<std::pair<int, int>, OldSlot> old_slots;
  const std::vector<WorkItem> degraded_work =
      BuildServerWork(plan, degraded, sidx, WorkPhase::kFull);
  for (const WorkItem& item : degraded_work) {
    old_slots[{item.chunk_index, item.sub_index}] =
        OldSlot{item.file_offset, item.record_ordinal};
  }
  const std::int64_t rps_degraded = RecordsPerSegment(plan, degraded, sidx);

  // The survivor's degraded-layout data: flat file, or its shard set
  // under the *degraded* shard map (which is where the adopted chunks
  // currently live).
  std::unique_ptr<File> old_data;
  std::unique_ptr<File> old_frame_dir;
  std::optional<store::ShardLayout> old_shards;
  std::optional<store::ShardReader> old_reader;
  if (sharded) {
    old_shards = BuildShardLayout(plan, degraded, sidx, options.shard_bytes);
    store::StoreOptions sopt;
    sopt.shard_bytes = options.shard_bytes;
    sopt.backend = options.backend;
    sopt.handle_pool_capacity = options.handle_pool_capacity;
    old_reader.emplace(&fs, final_name, &*old_shards, sopt, options.retry,
                       &ep.clock(), options.robustness);
  } else {
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { old_data = fs.Open(final_name, OpenMode::kRead); });
    if (meta.codec != CodecId::kNone &&
        fs.Exists(FrameDirFileName(final_name))) {
      options.retry.Run(&ep.clock(), options.robustness, [&] {
        old_frame_dir = fs.Open(FrameDirFileName(final_name), OpenMode::kRead);
      });
    }
  }

  // Stage the identity-layout rebuild; renamed after the barrier.
  const std::string stage_name = final_name + ".repair";
  RemoveFileSet(ep, fs, options, stage_name);
  RepairFileWriter writer(ep, fs, options, meta, stage_name, jhdr,
                          identity_shards ? &*identity_shards : nullptr);
  if (identity_shards.has_value()) {
    // Every identity shard rides the rename barrier; degraded-layout
    // shards past the identity count (the adopted chunks' spill) are
    // staged as removals (empty `from`), and so is a stale flat file.
    const std::int64_t sps = identity_shards->shards_per_segment();
    const std::int64_t total = num_segments * sps;
    for (std::int64_t id = 0; id < total; ++id) {
      staged.emplace_back(store::ShardFileName(stage_name, id),
                          store::ShardFileName(final_name, id));
    }
    for (std::int64_t id = total;
         fs.Exists(store::ShardFileName(final_name, id)); ++id) {
      staged.emplace_back(std::string(),
                          store::ShardFileName(final_name, id));
    }
    if (fs.Exists(final_name)) {
      staged.emplace_back(std::string(), final_name);
    }
  } else {
    // Flat rebuild (also the sharded case with no identity-owned
    // chunks: the stage file is the empty marker, and every degraded
    // shard the adoption spilled here is retired at the barrier).
    staged.emplace_back(stage_name, final_name);
    if (sharded) {
      for (std::int64_t id = 0;
           fs.Exists(store::ShardFileName(final_name, id)); ++id) {
        staged.emplace_back(std::string(),
                            store::ShardFileName(final_name, id));
      }
    }
  }
  if (options.disk_checksums) {
    staged.emplace_back(SidecarFileName(stage_name),
                        SidecarFileName(final_name));
  } else {
    // The rename replaces only the data file: drop stale artifacts of
    // now-disabled features explicitly.
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { fs.Remove(SidecarFileName(final_name)); });
  }
  if (options.journal) {
    staged.emplace_back(JournalFileName(stage_name),
                        JournalFileName(final_name));
  } else {
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { fs.Remove(JournalFileName(final_name)); });
  }
  if (meta.codec != CodecId::kNone) {
    staged.emplace_back(FrameDirFileName(stage_name),
                        FrameDirFileName(final_name));
  } else {
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { fs.Remove(FrameDirFileName(final_name)); });
  }

  auto read_old = [&](const WorkItem& like, std::int64_t seg,
                      const SubchunkPlan& sp) {
    const OldSlot& slot = old_slots.at({like.chunk_index, like.sub_index});
    if (old_reader.has_value()) {
      const std::int64_t old_seg = purpose == Purpose::kTimestep ? seg : 0;
      store::ShardRead got =
          old_reader->Get(old_seg, slot.record_ordinal, meta.elem_size);
      return std::move(got.raw);
    }
    const std::int64_t old_base =
        purpose == Purpose::kTimestep ? seg * degraded.SegmentBytes(sidx) : 0;
    const std::int64_t old_record =
        (purpose == Purpose::kTimestep ? seg * rps_degraded : 0) +
        slot.record_ordinal;
    std::vector<std::byte> raw;
    options.retry.Run(&ep.clock(), options.robustness, [&] {
      raw = ReadSubchunkForVerify(*old_data, old_frame_dir.get(), meta.codec,
                                  old_record, old_base + slot.file_offset,
                                  sp.bytes, meta.elem_size);
    });
    return raw;
  };

  for (std::int64_t seg = 0; seg < num_segments; ++seg) {
    const std::int64_t base_off =
        purpose == Purpose::kTimestep ? seg * plan.SegmentBytes(sidx) : 0;
    const std::int64_t record_base =
        purpose == Purpose::kTimestep ? seg * rps_identity : 0;
    // Own chunks: same bytes, identity offsets and stride.
    for (const WorkItem& item : identity_work) {
      const ChunkPlan& cp =
          plan.chunks()[static_cast<size_t>(item.chunk_index)];
      const SubchunkPlan& sp =
          cp.subchunks[static_cast<size_t>(item.sub_index)];
      const std::vector<std::byte> raw = read_old(item, seg, sp);
      JournalRecord rec;
      rec.array_index = array_index;
      rec.chunk_id = cp.chunk_id;
      rec.sub_index = item.sub_index;
      rec.seq = purpose == Purpose::kTimestep ? seg : 0;
      rec.file_offset = base_off + item.file_offset;
      rec.bytes = sp.bytes;
      rec.data_crc = Crc32c({raw.data(), raw.size()});
      writer.set_record_index(record_base + item.record_ordinal, seg,
                              item.record_ordinal);
      writer.WriteSubchunk(rec, {raw.data(), raw.size()});
    }
    // Adopted chunks: stream each sub-chunk back to its identity owner
    // (ascending chunk then sub order — the receivers' directed-Recv
    // order is the same subsequence).
    for (int ci : adopted) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      for (size_t si = 0; si < cp.subchunks.size(); ++si) {
        const SubchunkPlan& sp = cp.subchunks[si];
        WorkItem like;
        like.chunk_index = ci;
        like.sub_index = static_cast<int>(si);
        std::vector<std::byte> raw = read_old(like, seg, sp);
        RepairTransfer t;
        t.array_index = array_index;
        t.purpose = static_cast<std::uint8_t>(purpose);
        t.seg = seg;
        t.chunk_index = ci;
        t.sub_index = static_cast<int>(si);
        t.crc = Crc32c({raw.data(), raw.size()});
        ep.Send(world.server_rank(cp.server), kTagRejoin,
                MakeTransferMessage(t, std::move(raw)));
      }
    }
  }
  writer.Finish();
  return 0;
}

}  // namespace

CollectiveRequest BuildRepairRequest(FileSystem& master_fs,
                                     const GroupMeta& meta,
                                     const std::string& meta_file,
                                     const std::vector<int>& prev_dead,
                                     std::int64_t new_epoch, int first_client,
                                     int num_clients) {
  CollectiveRequest req;
  req.op = IoOp::kRepair;
  req.purpose = Purpose::kTimestep;
  req.seq = meta.timesteps;  // segments to rebuild per timestep stream
  req.group = meta.group;
  req.meta_file = meta_file;
  req.first_client = first_client;
  req.num_clients = num_clients;
  req.arrays = meta.arrays;
  req.attributes[kRepairPrevDeadAttr] = EncodeCsvInts(prev_dead);
  req.attributes[kRepairEpochAttr] = std::to_string(new_epoch);
  req.attributes[kRepairCheckpointSeqAttr] =
      std::to_string(meta.has_checkpoint ? meta.checkpoint_seq : -1);
  // Every general collective creates a (possibly empty) file on each
  // live server, so existence on the master's disk is the global truth
  // for which arrays have a general stream to repair.
  std::vector<int> general_arrays;
  for (size_t a = 0; a < meta.arrays.size(); ++a) {
    const std::string flat = DataFileName(meta.group, meta.arrays[a].name,
                                          Purpose::kGeneral,
                                          /*server_index=*/0);
    // A sharded master segment has no flat file; shard 0 marks it.
    if (master_fs.Exists(flat) ||
        master_fs.Exists(store::ShardFileName(flat, 0))) {
      general_arrays.push_back(static_cast<int>(a));
    }
  }
  req.attributes[kRepairGeneralAttr] = EncodeCsvInts(general_arrays);
  return req;
}

void RepairCollective(Endpoint& ep, FileSystem& fs, const World& world,
                      const Sp2Params& params, const CollectiveRequest& req,
                      const ServerOptions& options, PlanCache* plan_cache) {
  PANDA_REQUIRE(!ep.timing_only(),
                "rejoin repair needs real data (timing-only run)");
  PANDA_CHECK(req.op == IoOp::kRepair);
  PlanCache local_cache(4);
  if (plan_cache == nullptr) plan_cache = &local_cache;
  const int sidx = world.server_index(ep.rank());
  const std::vector<int> prev_dead =
      ParseCsvInts(req.attributes, kRepairPrevDeadAttr);
  PANDA_REQUIRE(!prev_dead.empty(), "repair request with no dead set");
  const std::int64_t new_epoch =
      ParseInt64Attr(req.attributes, kRepairEpochAttr, 1);
  const std::int64_t checkpoint_seq =
      ParseInt64Attr(req.attributes, kRepairCheckpointSeqAttr, -1);
  const std::vector<int> general_arrays =
      ParseCsvInts(req.attributes, kRepairGeneralAttr);
  const std::int64_t timesteps = req.seq;

  PANDA_SPAN(repair_span, trace::SpanKind::kRejoinRepair,
             static_cast<std::int64_t>(prev_dead.size()));
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);

  std::vector<std::pair<std::string, std::string>> staged;
  std::int64_t chunks_back = 0;
  for (std::int32_t ai = 0; ai < static_cast<std::int32_t>(req.arrays.size());
       ++ai) {
    const std::shared_ptr<const IoPlan> plan_ptr =
        plan_cache->Get(req.arrays[static_cast<size_t>(ai)], world.num_servers,
                        params.subchunk_bytes, nullptr);
    const IoPlan& plan = *plan_ptr;
    const DegradedLayout degraded = DegradedLayout::Compute(plan, prev_dead);
    const DegradedLayout identity = DegradedLayout::Compute(plan, {});
    if (Contains(general_arrays, static_cast<int>(ai))) {
      chunks_back += RepairArrayPurpose(
          ep, fs, world, req, ai, plan, degraded, identity, Purpose::kGeneral,
          1, checkpoint_seq, new_epoch, prev_dead, options, staged);
    }
    if (timesteps > 0) {
      chunks_back += RepairArrayPurpose(ep, fs, world, req, ai, plan, degraded,
                                        identity, Purpose::kTimestep, timesteps,
                                        checkpoint_seq, new_epoch, prev_dead,
                                        options, staged);
    }
    if (checkpoint_seq >= 0) {
      chunks_back += RepairArrayPurpose(
          ep, fs, world, req, ai, plan, degraded, identity, Purpose::kCheckpoint,
          1, checkpoint_seq, new_epoch, prev_dead, options, staged);
    }
  }
  if (chunks_back > 0 && options.robustness != nullptr) {
    options.robustness->chunks_restored.fetch_add(chunks_back);
  }

  // Commit point: every server finished writing and fsyncing before any
  // degraded file is replaced. The window between these renames and the
  // master's metadata commit is the torn state the journal epoch check
  // detects offline.
  Barrier(ep, world.ServerGroup(ep.rank()));
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);
  for (const auto& [from, to] : staged) {
    // An empty `from` is a staged removal: degraded-layout leftovers
    // (spilled shards, stale flat files) retired at the commit point.
    options.retry.Run(&ep.clock(), options.robustness, [&] {
      if (from.empty()) {
        fs.Remove(to);
      } else {
        fs.Rename(from, to);
      }
    });
  }
}

}  // namespace panda
