// Plan memoization.
//
// A timestep stream builds the *same* IoPlan for every collective
// (same schemas, same servers, same sub-chunk size). Planning is cheap
// but not free — O(chunks x clients x sub-chunks) region algebra — and
// the paper's applications issue thousands of timesteps. PlanCache
// memoizes plans by the exact plan inputs; both PandaClient and
// ServerMain keep one across collectives.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>

#include "panda/plan.h"

namespace panda {

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 32) : capacity_(capacity) {}

  // Returns the memoized plan for these exact inputs, building it on a
  // miss. `active` may be null (whole-array plan). The returned plan is
  // immutable and remains valid independent of the cache's lifetime.
  std::shared_ptr<const IoPlan> Get(const ArrayMeta& meta, int num_servers,
                                    std::int64_t subchunk_bytes,
                                    const Region* active = nullptr);

  size_t size() const { return entries_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  static std::string KeyOf(const ArrayMeta& meta, int num_servers,
                           std::int64_t subchunk_bytes, const Region* active);

  size_t capacity_;
  std::map<std::string, std::shared_ptr<const IoPlan>> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace panda
