// Plan-aware glue between the panda protocol layer and src/store/.
//
// The shard map is never stored: every party (server write/read paths,
// rejoin repair, fsck) derives the identical ShardLayout from the i/o
// plan via BuildShardLayout — the full per-server record list under the
// committed degraded layout, packed at ServerOptions::shard_bytes
// granularity (recorded in group metadata as `__panda.shard_bytes`).
//
// VerifyArrayShards / VerifyGroupShards implement `panda_fsck
// --verify_shards`: walk every expected shard file, validate footer +
// table records, prove every slot decodes to its plan size, and
// cross-check decoded bytes against the CRC sidecar when one exists.
// Dead-server aware (lost disks skipped, survivors checked including
// adopted chunks) like every other fsck pass.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "iosim/file_system.h"
#include "panda/failover.h"
#include "panda/plan.h"
#include "panda/schema_io.h"
#include "store/shard_store.h"

namespace panda {

// The shard layout of server `server`'s segment under `layout` (the
// kFull record list, whatever phase the caller is executing).
store::ShardLayout BuildShardLayout(const IoPlan& plan,
                                    const DegradedLayout& layout, int server,
                                    std::int64_t shard_bytes);

// A reader suitable for offline verification: single attempt, no clock,
// no robustness accounting, posix-style windowed reads.
store::ShardReader OfflineShardReader(FileSystem& fs,
                                      const std::string& data_file,
                                      const store::ShardLayout* layout);

struct ShardReport {
  std::int64_t files_checked = 0;   // shard files the layout expects
  std::int64_t files_missing = 0;
  std::int64_t size_mismatches = 0;  // file cannot hold data+table+footer
  std::int64_t tables_torn = 0;      // footer unreadable: probe-only shard
  std::int64_t entries_invalid = 0;  // table records torn or lying
  std::int64_t subchunks_checked = 0;
  std::int64_t healed_slots = 0;     // recovered via self-describing frames
  std::int64_t decode_failures = 0;  // unrecoverable slots
  std::int64_t crc_mismatches = 0;   // decoded bytes vs. the CRC sidecar
  std::int64_t framing_mismatches = 0;  // sidecar record vs. the plan

  // Torn tables / invalid entries / healed slots are tolerated damage
  // (the data still proved out); missing bytes are not.
  bool Clean() const {
    return files_missing + size_mismatches + decode_failures +
               crc_mismatches + framing_mismatches ==
           0;
  }
  void Merge(const ShardReport& other);
};

ShardReport VerifyArrayShards(std::span<FileSystem* const> fs,
                              const ArrayMeta& meta,
                              std::int64_t subchunk_bytes, Purpose purpose,
                              std::int64_t num_segments,
                              const std::string& group,
                              std::int64_t shard_bytes,
                              std::string* log = nullptr,
                              const std::vector<int>& dead_servers = {});

// Group sweep driven by the schema metadata; shard size and dead set
// come from the group's attributes. A group without `__panda.
// shard_bytes` (flat layout) verifies trivially clean.
ShardReport VerifyGroupShards(std::span<FileSystem* const> fs,
                              const GroupMeta& meta,
                              std::int64_t subchunk_bytes,
                              std::string* log = nullptr);

}  // namespace panda
