// Panda wire protocol: the messages behind server-directed i/o.
//
// The flow for one collective (paper §2):
//   1. master client -> master server: CollectiveRequest (a *short,
//      very-high-level* description: op + the two schemas per array).
//   2. master server -> servers: the same request, tree-broadcast.
//   3. data phase, directed by the servers: per sub-chunk piece, a
//      PieceHeader request (writes) or a PieceHeader + payload (reads).
//   4. servers synchronize; master server -> master client: done;
//      master client -> clients: done.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mdarray/region.h"
#include "msg/message.h"
#include "panda/array.h"

namespace panda {

enum class IoOp : std::uint8_t {
  kWrite = 0,
  kRead = 1,
  kShutdown = 2,   // ends the server loop
  kQueryMeta = 3,  // fetch the group's .schema metadata (resume support)
  kRepair = 4,     // server-only repair collective after a rejoin
                   // (panda/rejoin.h; never sent by clients)
};

// What kind of files a collective targets; selects naming and offsets.
enum class Purpose : std::uint8_t {
  kGeneral = 0,    // plain write/read of the current contents
  kTimestep = 1,   // append-style timestep output, seq = timestep number
  kCheckpoint = 2, // overwrite-in-place checkpoint / restart source
};

struct CollectiveRequest {
  IoOp op = IoOp::kWrite;
  Purpose purpose = Purpose::kGeneral;
  std::int64_t seq = 0;        // timestep number for kTimestep
  std::string group;           // array-group name ("" for single arrays)
  std::string meta_file;       // group schema file ("" = do not write one)
  // The requesting application's client window: servers can be shared
  // by several applications (mixed workloads, paper §5), so every
  // request names whose clients the servers should direct.
  std::int32_t first_client = 0;
  std::int32_t num_clients = 0;
  // Optional subarray clip (reads only): when non-empty, only data
  // inside this global region moves; servers skip the disk accesses of
  // sub-chunks that clip away entirely.
  bool has_subarray = false;
  Region subarray;
  // User attributes merged into the group metadata on write collectives
  // (iteration counters, dt, provenance ...).
  std::map<std::string, std::string> attributes;
  std::vector<ArrayMeta> arrays;

  Message ToMessage() const;
  static CollectiveRequest FromMessage(const Message& msg);
};

// Identifies one piece within the shared plan; sent as the header of both
// piece requests and piece data. The region is included so each side can
// cross-check the other's plan — a mismatch means corrupted schemas and
// fails loudly rather than scrambling data.
struct PieceHeader {
  std::int32_t array_index = 0;
  std::int32_t chunk_index = 0;
  std::int32_t sub_index = 0;
  std::int32_t piece_index = 0;
  Region region;

  void EncodeTo(Encoder& enc) const;
  static PieceHeader Decode(Decoder& dec);
};

void EncodeRegion(Encoder& enc, const Region& region);
Region DecodeRegion(Decoder& dec);

// Naming scheme for the per-server files of one array. Concatenating the
// per-server files of a BLOCK,*,..,* disk schema (ascending server) yields
// the array in traditional row-major order — the paper's migration path.
std::string DataFileName(const std::string& group, const std::string& array,
                         Purpose purpose, int server_index);

}  // namespace panda
