// Panda 2.0 public API umbrella header.
//
// A reproduction of: K. E. Seamons, Y. Chen, P. Jones, J. Jozwiak and
// M. Winslett, "Server-Directed Collective I/O in Panda", SC '95.
//
// Typical application structure (see examples/quickstart.cc):
//
//   Machine machine = Machine::WithPosixFs(8, 2, Sp2Params::Nas(), dir);
//   machine.Run(
//     [&](Endpoint& ep, int client) {
//       ArrayLayout memory("memory", {2, 2, 2});
//       ArrayLayout disk("disk", {2, 1, 1});
//       Array temperature("temperature", {64, 64, 64}, sizeof(double),
//                         memory, {BLOCK, BLOCK, BLOCK},
//                         disk, {BLOCK, NONE, NONE});
//       temperature.BindClient(client);
//       ...fill temperature.local_as<double>()...
//       PandaClient panda(ep, {8, 2}, Sp2Params::Nas());
//       ArrayGroup sim("Sim2", "simulation2.schema");
//       sim.Include(&temperature);
//       sim.Timestep(panda);
//       panda.Shutdown();
//     },
//     [&](Endpoint& ep, int server) {
//       ServerMain(ep, machine.server_fs(server), {8, 2}, Sp2Params::Nas());
//     });
#pragma once

#include "codec/codec.h"
#include "codec/frame.h"
#include "panda/advisor.h"
#include "panda/array.h"
#include "panda/array_group.h"
#include "panda/client.h"
#include "panda/cost_model.h"
#include "panda/failover.h"
#include "panda/frame_io.h"
#include "panda/integrity.h"
#include "panda/journal.h"
#include "panda/plan.h"
#include "panda/plan_cache.h"
#include "panda/protocol.h"
#include "panda/rejoin.h"
#include "panda/report.h"
#include "panda/runtime.h"
#include "panda/schema_io.h"
#include "panda/sequential.h"
#include "panda/server.h"
#include "panda/store_io.h"
#include "sp2/machine.h"
#include "sp2/params.h"
