// Write-ahead chunk journal: per-server commit records.
//
// With `ServerOptions::journal` on, each data file `F` gains a journal
// `F.wal` that records every sub-chunk the server has durably written.
// One fixed-size record per sub-chunk, in the deterministic work-list
// order all participants share (original chunks then adopted chunks,
// see panda/failover.h):
//
//   record k = [ i32 array_index | i32 chunk_id | i32 sub_index |
//                i32 reserved    | i64 seq      | i64 file_offset |
//                i64 bytes       | u32 data_crc | u32 record_crc ]
//   (48 bytes; record_crc = CRC32C of the first 44)
//
// where k is the sub-chunk's record ordinal within the segment and
// timestep segment `seq` starts at record `seq * records_per_segment`.
// The journal is appended after the sub-chunk's data write and fsynced
// when its chunk completes, so after a crash the journal names exactly
// the chunks whose data is durable (modulo one possibly-torn trailing
// record, which verification tolerates by design).
//
// The journal is what makes degraded-mode recovery *incremental* in
// principle and *verifiable* in practice: `panda_fsck --verify_journal`
// replays every record against the plan (framing) and the data file
// (CRC), and flags chunks the journal never committed. Checkpoint
// journals ride the same tmp+rename publication as checkpoint data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "iosim/file_system.h"
#include "panda/failover.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/schema_io.h"

namespace panda {

inline constexpr std::int64_t kJournalRecordBytes = 48;

// `F` -> `F.wal`.
std::string JournalFileName(const std::string& data_file);

struct JournalRecord {
  std::int32_t array_index = 0;
  std::int32_t chunk_id = 0;
  std::int32_t sub_index = 0;
  std::int64_t seq = 0;           // timestep segment (0 otherwise)
  std::int64_t file_offset = 0;   // absolute sub-chunk offset in F
  std::int64_t bytes = 0;
  std::uint32_t data_crc = 0;     // CRC32C of the sub-chunk payload
};

// Writes record `record_index` (its slot; 48*index bytes into F.wal).
void WriteJournalRecord(File& journal, std::int64_t record_index,
                        const JournalRecord& rec);

// Reads and validates record `record_index`. Returns nullopt when the
// record's own CRC fails — a torn record, the expected signature of a
// crash mid-append.
std::optional<JournalRecord> ReadJournalRecord(File& journal,
                                               std::int64_t record_index);

// Aggregate result of an offline journal verification pass.
struct JournalReport {
  std::int64_t files_checked = 0;
  std::int64_t files_without_journal = 0;  // skipped (journaling off)
  std::int64_t records_checked = 0;
  std::int64_t records_missing = 0;   // plan slot past the journal's end
  std::int64_t torn_records = 0;      // record_crc failed
  std::int64_t framing_mismatches = 0;  // record vs. plan disagreement
  std::int64_t data_mismatches = 0;   // journaled CRC vs. data re-read

  bool Clean() const {
    return records_missing == 0 && torn_records == 0 &&
           framing_mismatches == 0 && data_mismatches == 0;
  }
  void Merge(const JournalReport& other);
};

// Verifies one array's per-server journals against the plan (under the
// degraded layout implied by `dead_servers`) and the data files.
// `array_index` is the array's position in its collective (journal
// records carry it). A journal whose final record is torn and which is
// exactly one record short is reported via torn_records only (crash
// tolerance); any other shortfall counts records_missing.
JournalReport VerifyArrayJournal(std::span<FileSystem* const> fs,
                                 const ArrayMeta& meta, std::int32_t array_index,
                                 std::int64_t subchunk_bytes, Purpose purpose,
                                 std::int64_t num_segments,
                                 const std::string& group,
                                 const std::vector<int>& dead_servers,
                                 std::string* log = nullptr);

// Group-level sweep driven by the group's schema metadata (mirrors
// VerifyGroupChecksums); the dead-server set is read from the group's
// `__panda.dead_servers` attribute.
JournalReport VerifyGroupJournal(std::span<FileSystem* const> fs,
                                 const GroupMeta& meta,
                                 std::int64_t subchunk_bytes,
                                 std::string* log = nullptr);

}  // namespace panda
