// Write-ahead chunk journal: per-server commit records.
//
// With `ServerOptions::journal` on, each data file `F` gains a journal
// `F.wal` that records every sub-chunk the server has durably written.
// One fixed-size record per sub-chunk, in the deterministic work-list
// order all participants share (original chunks then adopted chunks,
// see panda/failover.h):
//
//   record k = [ i32 array_index | i32 chunk_id | i32 sub_index |
//                i32 reserved    | i64 seq      | i64 file_offset |
//                i64 bytes       | u32 data_crc | u32 record_crc ]
//   (48 bytes; record_crc = CRC32C of the first 44)
//
// where k is the sub-chunk's record ordinal within the segment and
// timestep segment `seq` starts at record `seq * records_per_segment`.
// The journal is appended after the sub-chunk's data write and fsynced
// when its chunk completes, so after a crash the journal names exactly
// the chunks whose data is durable (modulo one possibly-torn trailing
// record, which verification tolerates by design).
//
// The journal is what makes degraded-mode recovery *incremental* in
// principle and *verifiable* in practice: `panda_fsck --verify_journal`
// replays every record against the plan (framing) and the data file
// (CRC), and flags chunks the journal never committed. Checkpoint
// journals ride the same tmp+rename publication as checkpoint data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "iosim/file_system.h"
#include "panda/failover.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/schema_io.h"

namespace panda {

inline constexpr std::int64_t kJournalRecordBytes = 48;

// `F` -> `F.wal`.
std::string JournalFileName(const std::string& data_file);

// Optional journal header, one record-sized slot at offset 0:
//
//   [ u32 magic | u32 version | i64 base_record | i64 epoch |
//     20 bytes reserved (zero) | u32 header_crc(first 44) ]
//
// A headerless journal (every journal before GC ever ran on it) is
// base 0, epoch 0, records at offset `index * 48`. With a header,
// records below `base_record` were garbage-collected — a committed
// checkpoint supersedes them — and record `index` lives at offset
// `48 + (index - base_record) * 48`. The magic cannot collide with a
// record: a record's first field is a small non-negative array index.
// `epoch` is the layout epoch (`__panda.layout_epoch`) the journal was
// last compacted or rebuilt under; `panda_fsck --verify_journal` flags
// a journal *ahead* of the committed metadata's epoch (the torn window
// of a rejoin repair's rename + metadata commit).
inline constexpr std::uint32_t kJournalHeaderMagic = 0x4c414a50;  // "PJAL"
inline constexpr std::uint32_t kJournalHeaderVersion = 1;
inline constexpr std::int64_t kJournalHeaderBytes = kJournalRecordBytes;

struct JournalHeader {
  std::int64_t base_record = 0;  // records below this were GC'd
  std::int64_t epoch = 0;        // layout epoch at (re)build time
};

// Writes the header slot at offset 0 (the caller owns slot shifting:
// headers are written only into journals built header-aware).
void WriteJournalHeader(File& journal, const JournalHeader& hdr);

// Probes the first slot. nullopt = headerless (legacy layout) or the
// journal is shorter than one slot.
std::optional<JournalHeader> ReadJournalHeader(File& journal);

// Byte offset of record `record_index` under an optional header.
std::int64_t JournalRecordOffset(const std::optional<JournalHeader>& hdr,
                                 std::int64_t record_index);

// Result of one journal garbage collection.
struct JournalGcResult {
  bool truncated = false;           // anything actually dropped
  std::int64_t records_dropped = 0; // record slots removed
};

// Garbage-collects `journal_name`: drops every record below `new_base`
// (they are superseded by a committed checkpoint) by rewriting the
// surviving tail — torn trailing bytes preserved verbatim — behind a
// header, then renaming over the original. No-op when the journal is
// already at or past `new_base`. A pre-existing header's epoch is
// preserved; a first-time header records `fallback_epoch`.
JournalGcResult GcJournal(FileSystem& fs, const std::string& journal_name,
                          std::int64_t new_base, std::int64_t fallback_epoch);

struct JournalRecord {
  std::int32_t array_index = 0;
  std::int32_t chunk_id = 0;
  std::int32_t sub_index = 0;
  std::int64_t seq = 0;           // timestep segment (0 otherwise)
  std::int64_t file_offset = 0;   // absolute sub-chunk offset in F
  std::int64_t bytes = 0;
  std::uint32_t data_crc = 0;     // CRC32C of the sub-chunk payload
};

// Writes record `record_index` (its slot; 48*index bytes into F.wal —
// the headerless layout).
void WriteJournalRecord(File& journal, std::int64_t record_index,
                        const JournalRecord& rec);

// Header-aware variant: the slot position honors `hdr` (base shift +
// header slot). Dies if the record was GC'd away (index below the base).
void WriteJournalRecord(File& journal,
                        const std::optional<JournalHeader>& hdr,
                        std::int64_t record_index, const JournalRecord& rec);

// Reads and validates record `record_index`. Returns nullopt when the
// record's own CRC fails — a torn record, the expected signature of a
// crash mid-append.
std::optional<JournalRecord> ReadJournalRecord(File& journal,
                                               std::int64_t record_index);

// Header-aware variant; nullopt also when the record was GC'd away.
std::optional<JournalRecord> ReadJournalRecord(
    File& journal, const std::optional<JournalHeader>& hdr,
    std::int64_t record_index);

// Aggregate result of an offline journal verification pass.
struct JournalReport {
  std::int64_t files_checked = 0;
  std::int64_t files_without_journal = 0;  // skipped (journaling off)
  std::int64_t records_checked = 0;
  std::int64_t records_missing = 0;   // plan slot past the journal's end
  std::int64_t torn_records = 0;      // record_crc failed
  std::int64_t framing_mismatches = 0;  // record vs. plan disagreement
  std::int64_t data_mismatches = 0;   // journaled CRC vs. data re-read
  std::int64_t records_gced = 0;      // below the header's base (benign)
  std::int64_t epoch_mismatches = 0;  // journal epoch ahead of metadata

  bool Clean() const {
    return records_missing == 0 && torn_records == 0 &&
           framing_mismatches == 0 && data_mismatches == 0 &&
           epoch_mismatches == 0;
  }
  void Merge(const JournalReport& other);
};

// Verifies one array's per-server journals against the plan (under the
// degraded layout implied by `dead_servers`) and the data files.
// `array_index` is the array's position in its collective (journal
// records carry it). A journal whose final record is torn and which is
// exactly one record short is reported via torn_records only (crash
// tolerance); any other shortfall counts records_missing. Records below
// a GC header's base are counted records_gced and skipped (the
// checkpoint supersedes them). When `expected_epoch` is non-negative, a
// header whose epoch is *greater* counts epoch_mismatches: the journal
// claims a layout generation the committed metadata never recorded (a
// torn rejoin-repair commit). A smaller epoch is fine — failovers bump
// the metadata epoch without rewriting survivor journals. A positive
// `shard_bytes` (the group's `__panda.shard_bytes` attribute) re-reads
// data through the sharded layout (src/store/) instead of the flat
// per-server file.
JournalReport VerifyArrayJournal(std::span<FileSystem* const> fs,
                                 const ArrayMeta& meta, std::int32_t array_index,
                                 std::int64_t subchunk_bytes, Purpose purpose,
                                 std::int64_t num_segments,
                                 const std::string& group,
                                 const std::vector<int>& dead_servers,
                                 std::string* log = nullptr,
                                 std::int64_t expected_epoch = -1,
                                 std::int64_t shard_bytes = 0);

// Group-level sweep driven by the group's schema metadata (mirrors
// VerifyGroupChecksums); the dead-server set is read from the group's
// `__panda.dead_servers` attribute.
JournalReport VerifyGroupJournal(std::span<FileSystem* const> fs,
                                 const GroupMeta& meta,
                                 std::int64_t subchunk_bytes,
                                 std::string* log = nullptr);

}  // namespace panda
