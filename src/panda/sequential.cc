#include "panda/sequential.h"

#include "mdarray/strided_copy.h"
#include "util/error.h"

namespace panda {

SequentialPanda::SequentialPanda(std::vector<FileSystem*> server_fs,
                                 Sp2Params params)
    : fs_(std::move(server_fs)), params_(params) {
  PANDA_REQUIRE(!fs_.empty(), "need at least one i/o-node file system");
  for (FileSystem* fs : fs_) {
    PANDA_REQUIRE(fs != nullptr, "null file system");
  }
}

void SequentialPanda::Write(const ArrayMeta& meta,
                            std::span<const std::byte> data, Purpose purpose,
                            std::int64_t seq, const std::string& group) {
  PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == meta.total_bytes(),
                "data is %zu bytes but the array is %lld", data.size(),
                static_cast<long long>(meta.total_bytes()));
  const IoPlan plan(meta, num_servers(), params_.subchunk_bytes);
  const Region whole = Region::Whole(meta.memory.array_shape());
  const auto elem = static_cast<size_t>(meta.elem_size);

  for (int s = 0; s < num_servers(); ++s) {
    const std::int64_t base =
        purpose == Purpose::kTimestep ? seq * plan.SegmentBytes(s) : 0;
    const OpenMode mode = (purpose == Purpose::kTimestep && seq > 0)
                              ? OpenMode::kReadWrite
                              : OpenMode::kWrite;
    auto file = fs_[static_cast<size_t>(s)]->Open(
        DataFileName(group, meta.name, purpose, s), mode);
    std::vector<std::byte> buf;
    for (const int ci : plan.ChunksOfServer(s)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      for (const SubchunkPlan& sp : cp.subchunks) {
        buf.resize(static_cast<size_t>(sp.bytes));
        PackRegion({buf.data(), buf.size()}, data, whole, sp.region, elem);
        file->WriteAt(base + sp.file_offset, {buf.data(), buf.size()},
                      sp.bytes);
      }
    }
    file->Sync();
  }
}

void SequentialPanda::Read(const ArrayMeta& meta, std::span<std::byte> data,
                           Purpose purpose, std::int64_t seq,
                           const std::string& group) {
  PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == meta.total_bytes(),
                "data is %zu bytes but the array is %lld", data.size(),
                static_cast<long long>(meta.total_bytes()));
  const IoPlan plan(meta, num_servers(), params_.subchunk_bytes);
  const Region whole = Region::Whole(meta.memory.array_shape());
  const auto elem = static_cast<size_t>(meta.elem_size);

  for (int s = 0; s < num_servers(); ++s) {
    if (plan.ChunksOfServer(s).empty()) continue;
    const std::int64_t base =
        purpose == Purpose::kTimestep ? seq * plan.SegmentBytes(s) : 0;
    auto file = fs_[static_cast<size_t>(s)]->Open(
        DataFileName(group, meta.name, purpose, s), OpenMode::kRead);
    std::vector<std::byte> buf;
    for (const int ci : plan.ChunksOfServer(s)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      for (const SubchunkPlan& sp : cp.subchunks) {
        buf.resize(static_cast<size_t>(sp.bytes));
        file->ReadAt(base + sp.file_offset, {buf.data(), buf.size()},
                     sp.bytes);
        UnpackRegion(data, whole, {buf.data(), buf.size()}, sp.region, elem);
      }
    }
  }
}

std::vector<std::byte> SequentialPanda::ReadWhole(const ArrayMeta& meta,
                                                  Purpose purpose,
                                                  std::int64_t seq,
                                                  const std::string& group) {
  std::vector<std::byte> data(static_cast<size_t>(meta.total_bytes()));
  Read(meta, {data.data(), data.size()}, purpose, seq, group);
  return data;
}

std::vector<std::byte> SequentialPanda::ReadSubarray(const ArrayMeta& meta,
                                                     const Region& region,
                                                     Purpose purpose,
                                                     std::int64_t seq,
                                                     const std::string& group) {
  PANDA_REQUIRE(
      Region::Whole(meta.memory.array_shape()).Contains(region),
      "subarray %s is not inside the array", region.ToString().c_str());
  const IoPlan plan(meta, num_servers(), params_.subchunk_bytes, region);
  const auto elem = static_cast<size_t>(meta.elem_size);
  std::vector<std::byte> out(static_cast<size_t>(region.Volume()) * elem);

  for (int s = 0; s < num_servers(); ++s) {
    if (plan.ChunksOfServer(s).empty()) continue;
    const std::int64_t base =
        purpose == Purpose::kTimestep ? seq * plan.SegmentBytes(s) : 0;
    std::unique_ptr<File> file;  // opened lazily: the slice may miss s
    std::vector<std::byte> buf;
    for (const int ci : plan.ChunksOfServer(s)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      for (const SubchunkPlan& sp : cp.subchunks) {
        if (!sp.active) continue;
        if (file == nullptr) {
          file = fs_[static_cast<size_t>(s)]->Open(
              DataFileName(group, meta.name, purpose, s), OpenMode::kRead);
        }
        buf.resize(static_cast<size_t>(sp.bytes));
        file->ReadAt(base + sp.file_offset, {buf.data(), buf.size()},
                     sp.bytes);
        for (const PiecePlan& piece : sp.pieces) {
          CopyRegion({out.data(), out.size()}, region,
                     {buf.data(), buf.size()}, sp.region, piece.region, elem);
        }
      }
    }
  }
  return out;
}

}  // namespace panda
