#include "panda/plan.h"

#include <algorithm>
#include <utility>

#include "mdarray/distribution.h"
#include "util/error.h"

namespace panda {

namespace {

// Pruning index over the clients' memory cells. BLOCK/* memory schemas
// (the only ones CellRegion admits) tile the array with a grid: mesh
// dim m partitions the m-th distributed array dimension into intervals
// that ascend with the mesh coordinate. A sub-chunk can then only
// intersect the cells whose per-dimension interval overlaps it — a
// binary search per mesh dim instead of a scan over every client,
// which is what keeps plan construction linear in the chunk count
// rather than quadratic (at 4096 ranks every client builds this plan;
// see bench/bench_scale_ranks.cc).
class CellGrid {
 public:
  explicit CellGrid(const Schema& memory) : mesh_(&memory.mesh()) {
    int m = 0;
    for (int d = 0; d < memory.rank(); ++d) {
      if (!memory.dists()[d].distributed()) continue;
      const std::int64_t parts = mesh_->dims()[m];
      const std::int64_t n = memory.array_shape()[d];
      MeshDim md;
      md.array_dim = d;
      md.cells.reserve(static_cast<size_t>(parts));
      for (std::int64_t k = 0; k < parts; ++k) {
        const auto ivs =
            OwnedIntervals(memory.dists()[d], n, k, parts);
        // Empty trailing cells get an {n, 0} sentinel so `lo` stays
        // monotone for the binary searches below.
        md.cells.push_back(ivs.empty() ? Interval{n, 0} : ivs[0]);
      }
      grid_.push_back(std::move(md));
      ++m;
    }
  }

  // Calls fn(client) for every mesh position whose cell can intersect
  // `box`, in ascending linear position (= ascending client) order.
  template <typename Fn>
  void ForEachCandidate(const Region& box, Fn&& fn) const {
    const int mrank = static_cast<int>(grid_.size());
    std::vector<std::pair<int, int>> ranges(
        static_cast<size_t>(mrank));  // [begin, end) mesh coords
    for (int m = 0; m < mrank; ++m) {
      const std::vector<Interval>& cells = grid_[static_cast<size_t>(m)].cells;
      const std::int64_t qlo = box.lo()[grid_[static_cast<size_t>(m)].array_dim];
      const std::int64_t qhi = box.hi()[grid_[static_cast<size_t>(m)].array_dim];
      const auto begin = std::partition_point(
          cells.begin(), cells.end(),
          [qlo](const Interval& iv) { return iv.lo + iv.extent <= qlo; });
      const auto end = std::partition_point(
          cells.begin(), cells.end(),
          [qhi](const Interval& iv) { return iv.lo < qhi; });
      if (begin >= end) return;
      ranges[static_cast<size_t>(m)] = {
          static_cast<int>(begin - cells.begin()),
          static_cast<int>(end - cells.begin())};
    }
    // Row-major odometer over the coordinate ranges (last dim fastest):
    // linear positions come out ascending.
    Index coords = Index::Zeros(mrank);
    for (int m = 0; m < mrank; ++m) {
      coords[m] = ranges[static_cast<size_t>(m)].first;
    }
    for (;;) {
      fn(mesh_->PositionOf(coords));
      int m = mrank - 1;
      for (; m >= 0; --m) {
        if (++coords[m] < ranges[static_cast<size_t>(m)].second) break;
        coords[m] = ranges[static_cast<size_t>(m)].first;
      }
      if (m < 0) return;
    }
  }

 private:
  struct MeshDim {
    int array_dim = 0;
    std::vector<Interval> cells;  // interval per mesh coordinate
  };
  const Mesh* mesh_;
  std::vector<MeshDim> grid_;
};

}  // namespace

IoPlan::IoPlan(const ArrayMeta& meta, int num_servers,
               std::int64_t subchunk_bytes)
    : IoPlan(meta, num_servers, subchunk_bytes,
             Region::Whole(meta.memory.array_shape())) {}

IoPlan::IoPlan(const ArrayMeta& meta, int num_servers,
               std::int64_t subchunk_bytes, const Region& active)
    : num_servers_(num_servers) {
  PANDA_REQUIRE(num_servers >= 1, "need at least one server");
  PANDA_REQUIRE(subchunk_bytes >= 1, "sub-chunk size must be positive");
  PANDA_REQUIRE(
      Region::Whole(meta.memory.array_shape()).Contains(active),
      "subarray region %s is not inside the array %s",
      active.ToString().c_str(), meta.memory.array_shape().ToString().c_str());

  const Schema& disk = meta.disk;
  const Schema& memory = meta.memory;
  const std::int64_t elem = meta.elem_size;

  // Clients' memory cells (BLOCK/* memory schemas: one region per client).
  const int num_clients = memory.mesh().size();
  std::vector<Region> client_cells(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    client_cells[static_cast<size_t>(c)] = memory.CellRegion(c);
  }
  const CellGrid cell_grid(memory);

  chunks_of_server_.resize(static_cast<size_t>(num_servers));
  steps_of_client_.resize(static_cast<size_t>(num_clients));
  segment_bytes_.assign(static_cast<size_t>(num_servers), 0);

  chunks_.reserve(disk.chunks().size());
  for (const SchemaChunk& sc : disk.chunks()) {
    ChunkPlan cp;
    cp.chunk_id = sc.id;
    // The paper's implicit chunk-level round-robin striping over servers.
    cp.server = sc.id % num_servers;
    cp.region = sc.region;
    cp.bytes = sc.region.Volume() * elem;
    cp.file_offset = segment_bytes_[static_cast<size_t>(cp.server)];
    segment_bytes_[static_cast<size_t>(cp.server)] += cp.bytes;

    // Sub-chunks: contiguous <=1MB ranges of the chunk's row-major order.
    std::int64_t sub_offset = cp.file_offset;
    for (const Region& sub : SplitIntoSubchunks(sc.region, elem,
                                                subchunk_bytes)) {
      SubchunkPlan sp;
      sp.region = sub;
      sp.bytes = sub.Volume() * elem;
      sp.file_offset = sub_offset;
      sub_offset += sp.bytes;

      // Pieces: intersection with each client's cell (clipped to the
      // active subarray region), ascending client. The grid prunes the
      // scan to the clients whose cell can overlap this sub-chunk.
      cell_grid.ForEachCandidate(sub, [&](int c) {
        const Region& cell = client_cells[static_cast<size_t>(c)];
        if (cell.empty()) return;
        const Region piece_region = Intersect(Intersect(sub, cell), active);
        if (piece_region.empty()) return;
        PiecePlan piece;
        piece.client = c;
        piece.region = piece_region;
        piece.bytes = piece_region.Volume() * elem;
        piece.contiguous_in_client = IsContiguousWithin(cell, piece_region);
        piece.contiguous_in_subchunk = IsContiguousWithin(sub, piece_region);
        sp.pieces.push_back(piece);
      });
      sp.active = !sp.pieces.empty();
      cp.subchunks.push_back(std::move(sp));
    }

    chunks_of_server_[static_cast<size_t>(cp.server)].push_back(
        static_cast<int>(chunks_.size()));
    chunks_.push_back(std::move(cp));
  }

  // Client obligations in global (chunk, sub, piece) order. chunks_ is
  // already ascending by chunk_id (disk.chunks() enumerates ids densely).
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    const ChunkPlan& cp = chunks_[ci];
    for (size_t si = 0; si < cp.subchunks.size(); ++si) {
      const SubchunkPlan& sp = cp.subchunks[si];
      for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
        steps_of_client_[static_cast<size_t>(sp.pieces[pi].client)].push_back(
            {static_cast<int>(ci), static_cast<int>(si),
             static_cast<int>(pi)});
      }
    }
  }
}

const std::vector<int>& IoPlan::ChunksOfServer(int s) const {
  PANDA_CHECK(s >= 0 && s < num_servers_);
  return chunks_of_server_[static_cast<size_t>(s)];
}

const std::vector<ClientStep>& IoPlan::StepsOfClient(int c) const {
  PANDA_CHECK(c >= 0 && c < static_cast<int>(steps_of_client_.size()));
  return steps_of_client_[static_cast<size_t>(c)];
}

std::int64_t IoPlan::SegmentBytes(int s) const {
  PANDA_CHECK(s >= 0 && s < num_servers_);
  return segment_bytes_[static_cast<size_t>(s)];
}

const ChunkPlan& IoPlan::chunk(const ClientStep& step) const {
  PANDA_CHECK(step.chunk_index >= 0 &&
              step.chunk_index < static_cast<int>(chunks_.size()));
  return chunks_[static_cast<size_t>(step.chunk_index)];
}

const SubchunkPlan& IoPlan::subchunk(const ClientStep& step) const {
  const ChunkPlan& cp = chunk(step);
  PANDA_CHECK(step.sub_index >= 0 &&
              step.sub_index < static_cast<int>(cp.subchunks.size()));
  return cp.subchunks[static_cast<size_t>(step.sub_index)];
}

const PiecePlan& IoPlan::piece(const ClientStep& step) const {
  const SubchunkPlan& sp = subchunk(step);
  PANDA_CHECK(step.piece_index >= 0 &&
              step.piece_index < static_cast<int>(sp.pieces.size()));
  return sp.pieces[static_cast<size_t>(step.piece_index)];
}

std::int64_t IoPlan::TotalPieces() const {
  std::int64_t total = 0;
  for (const auto& cp : chunks_) {
    for (const auto& sp : cp.subchunks) {
      total += static_cast<std::int64_t>(sp.pieces.size());
    }
  }
  return total;
}

}  // namespace panda
