#include "panda/server.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mdarray/strided_copy.h"
#include "panda/integrity.h"
#include "panda/schema_io.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace panda {
namespace {

// Write-behind accounting: in overlap mode the disk works in the
// background while the server gathers the next sub-chunk, so a write
// only delays the server when the device is still busy.
class DiskWriteScheduler {
 public:
  DiskWriteScheduler(Endpoint& ep, bool overlap) : ep_(ep), overlap_(overlap) {}

  // Issues `write_fn` (which charges the endpoint clock through the
  // simulated FS) and, in overlap mode, converts the charge into device
  // busy time instead of caller delay.
  template <typename Fn>
  void Write(Fn&& write_fn) {
    const double before = ep_.clock().Now();
    write_fn();
    if (!overlap_) return;
    const double cost = ep_.clock().Now() - before;
    ep_.clock().Reset(before);  // caller does not block...
    const double start = std::max(before, busy_until_);
    busy_until_ = start + cost;  // ...but the device stays busy
  }

  // The collective cannot complete before the device drains.
  void Drain() {
    if (overlap_) ep_.clock().SyncTo(busy_until_);
  }

 private:
  Endpoint& ep_;
  bool overlap_;
  double busy_until_ = 0.0;
};

OpenMode WriteOpenMode(Purpose purpose, std::int64_t seq) {
  if (purpose == Purpose::kTimestep && seq > 0) return OpenMode::kReadWrite;
  return OpenMode::kWrite;
}

std::int64_t BaseOffset(const IoPlan& plan, Purpose purpose, std::int64_t seq,
                        int server_index) {
  // Timestep output appends one segment per timestep; everything else
  // starts at the beginning of the file.
  if (purpose == Purpose::kTimestep) {
    return seq * plan.SegmentBytes(server_index);
  }
  return 0;
}

// First sidecar record index of this collective's segment: timestep
// streams append one block of records per timestep, mirroring the data
// segments (see panda/integrity.h).
std::int64_t RecordBase(Purpose purpose, std::int64_t seq,
                        std::int64_t records_per_segment) {
  if (purpose == Purpose::kTimestep) return seq * records_per_segment;
  return 0;
}

// This server's deterministic work list: (chunk index, sub-chunk index)
// in plan order. Its ordinals double as sidecar record indices.
std::vector<std::pair<int, int>> ServerWork(const IoPlan& plan, int sidx) {
  std::vector<std::pair<int, int>> work;
  for (const int ci : plan.ChunksOfServer(sidx)) {
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
    for (size_t si = 0; si < cp.subchunks.size(); ++si) {
      work.emplace_back(ci, static_cast<int>(si));
    }
  }
  return work;
}

void ValidateHeader(const PieceHeader& h, std::int32_t array_index,
                    const ClientStep& step, const Region& region) {
  PANDA_REQUIRE(h.array_index == array_index && h.chunk_index == step.chunk_index &&
                    h.sub_index == step.sub_index &&
                    h.piece_index == step.piece_index && h.region == region,
                "piece header does not match the local plan: plans diverged "
                "(got array=%d chunk=%d sub=%d piece=%d %s)",
                h.array_index, h.chunk_index, h.sub_index, h.piece_index,
                h.region.ToString().c_str());
}

void ServerWriteArray(Endpoint& ep, FileSystem& fs, const World& world,
                      const Sp2Params& params, const CollectiveRequest& req,
                      std::int32_t array_index, const IoPlan& plan,
                      DiskWriteScheduler& disk, const ServerOptions& options,
                      std::vector<std::pair<std::string, std::string>>&
                          pending_renames) {
  const int sidx = world.server_index(ep.rank());
  const ArrayMeta& meta = req.arrays[static_cast<size_t>(array_index)];
  const bool timing = ep.timing_only();
  const std::int64_t base = BaseOffset(plan, req.purpose, req.seq, sidx);
  const RetryPolicy& retry = options.retry;
  RobustnessStats* stats = options.robustness;
  // Sidecar checksums need real bytes; timing-only sweeps skip them.
  const bool sidecars = options.disk_checksums && !timing;

  // Checkpoints are published atomically: written to a temporary file
  // and renamed over the previous checkpoint only after every server
  // has finished its data and fsync (two-phase commit, see
  // ServerExecute), so a crash mid-checkpoint can never leave a mix of
  // old and new checkpoint files. The sidecar travels with its data
  // file through the same staged rename.
  const std::string final_name =
      DataFileName(req.group, meta.name, req.purpose, sidx);
  const std::string write_name =
      req.purpose == Purpose::kCheckpoint ? final_name + ".tmp" : final_name;
  if (req.purpose == Purpose::kCheckpoint) {
    pending_renames.emplace_back(write_name, final_name);
    if (sidecars) {
      pending_renames.emplace_back(SidecarFileName(write_name),
                                   SidecarFileName(final_name));
    }
  }

  // With checksums off, drop any stale sidecar left by an earlier
  // checksummed run: fresh data under an old sidecar would read back as
  // corruption.
  if (!timing && !sidecars) {
    retry.Run(&ep.clock(), stats, [&] {
      fs.Remove(SidecarFileName(write_name));
      if (write_name != final_name) fs.Remove(SidecarFileName(final_name));
    });
  }

  if (plan.ChunksOfServer(sidx).empty() && req.purpose != Purpose::kTimestep) {
    // Still create the (empty) file so concatenation scripts see a
    // complete set of per-server files. (No sidecar: there is nothing
    // to checksum, and the verifier skips empty segments.)
    retry.Run(&ep.clock(), stats, [&] {
      fs.Open(write_name, WriteOpenMode(req.purpose, req.seq));
    });
    return;
  }

  std::unique_ptr<File> file;
  retry.Run(&ep.clock(), stats, [&] {
    file = fs.Open(write_name, WriteOpenMode(req.purpose, req.seq));
  });
  std::unique_ptr<File> sidecar;
  if (sidecars) {
    retry.Run(&ep.clock(), stats, [&] {
      sidecar = fs.Open(SidecarFileName(write_name),
                        WriteOpenMode(req.purpose, req.seq));
    });
  }

  // Flatten this server's work list: (chunk index, sub-chunk index).
  const std::vector<std::pair<int, int>> work = ServerWork(plan, sidx);
  const std::int64_t record_base =
      RecordBase(req.purpose, req.seq, static_cast<std::int64_t>(work.size()));

  // Server-directed: request every piece of sub-chunk `k`.
  auto send_requests = [&](size_t k) {
    const auto [ci, si] = work[k];
    const SubchunkPlan& sp =
        plan.chunks()[static_cast<size_t>(ci)].subchunks[static_cast<size_t>(si)];
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      Message request;
      Encoder enc(request.header);
      PieceHeader{array_index, ci, si, static_cast<std::int32_t>(pi),
                  sp.pieces[pi].region}
          .EncodeTo(enc);
      ep.Send(world.client_rank(sp.pieces[pi].client), kTagPieceRequest,
              std::move(request));
    }
  };

  // With request pipelining, sub-chunk k+1's requests go out before
  // sub-chunk k's data is consumed, so the clients' packing and the
  // request round trip overlap the current gather and disk write.
  if (options.pipeline_requests && !work.empty()) send_requests(0);

  std::vector<std::byte> buf;
  for (size_t k = 0; k < work.size(); ++k) {
    const auto [ci, si] = work[k];
    const SubchunkPlan& sp =
        plan.chunks()[static_cast<size_t>(ci)].subchunks[static_cast<size_t>(si)];
    if (!options.pipeline_requests) {
      send_requests(k);
    } else if (k + 1 < work.size()) {
      send_requests(k + 1);
    }
    // Assemble the sub-chunk in traditional array order.
    if (!timing) buf.assign(static_cast<size_t>(sp.bytes), std::byte{0});
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      const PiecePlan& piece = sp.pieces[pi];
      Message data = ep.Recv(world.client_rank(piece.client), kTagPieceData);
      Decoder dec(data.header);
      ValidateHeader(PieceHeader::Decode(dec), array_index,
                     {ci, si, static_cast<int>(pi)}, piece.region);
      // End-to-end wire checksum: the client stamped the payload's
      // CRC32C after the echoed piece header (0 in timing-only mode).
      const std::uint32_t wire_crc = dec.Get<std::uint32_t>();
      if (!piece.contiguous_in_subchunk) {
        ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                          params.memcpy_Bps);
      }
      if (!timing) {
        PANDA_REQUIRE(
            static_cast<std::int64_t>(data.payload.size()) == piece.bytes,
            "piece payload size mismatch");
        const std::uint32_t got =
            Crc32c({data.payload.data(), data.payload.size()});
        if (got != wire_crc) {
          if (stats != nullptr) stats->wire_checksum_failures.fetch_add(1);
          PANDA_REQUIRE(false,
                        "piece payload from client %d failed its end-to-end "
                        "checksum (wire %08x != computed %08x)",
                        piece.client, wire_crc, got);
        }
        UnpackRegion({buf.data(), buf.size()}, sp.region,
                     {data.payload.data(), data.payload.size()}, piece.region,
                     static_cast<size_t>(meta.elem_size));
      } else {
        PANDA_REQUIRE(data.payload_vbytes == piece.bytes,
                      "piece virtual size mismatch");
      }
    }
    disk.Write([&] {
      // Positioned writes are idempotent, so a retry after a torn write
      // rewrites the full range and heals the tear.
      retry.Run(&ep.clock(), stats, [&] {
        file->WriteAt(base + sp.file_offset, {buf.data(), buf.size()},
                      sp.bytes);
      });
      if (sidecar != nullptr) {
        const CrcRecord rec{base + sp.file_offset, sp.bytes,
                            Crc32c({buf.data(), buf.size()})};
        const std::int64_t rec_index =
            record_base + static_cast<std::int64_t>(k);
        retry.Run(&ep.clock(), stats,
                  [&] { WriteCrcRecord(*sidecar, rec_index, rec); });
      }
    });
  }
  disk.Drain();
  // The paper flushes every collective write with fsync.
  retry.Run(&ep.clock(), stats, [&] { file->Sync(); });
  if (sidecar != nullptr) {
    retry.Run(&ep.clock(), stats, [&] { sidecar->Sync(); });
  }
}

void ServerReadArray(Endpoint& ep, FileSystem& fs, const World& world,
                     const Sp2Params& params, const CollectiveRequest& req,
                     std::int32_t array_index, const IoPlan& plan,
                     const ServerOptions& options) {
  const int sidx = world.server_index(ep.rank());
  const ArrayMeta& meta = req.arrays[static_cast<size_t>(array_index)];
  const bool timing = ep.timing_only();
  const std::int64_t base = BaseOffset(plan, req.purpose, req.seq, sidx);
  const RetryPolicy& retry = options.retry;
  RobustnessStats* stats = options.robustness;

  if (plan.ChunksOfServer(sidx).empty()) return;

  const std::string data_name =
      DataFileName(req.group, meta.name, req.purpose, sidx);
  std::unique_ptr<File> file;
  retry.Run(&ep.clock(), stats,
            [&] { file = fs.Open(data_name, OpenMode::kRead); });

  // Verify sub-chunks against the sidecar when asked to and one exists;
  // legacy data (no sidecar) reads back unverified, not failed.
  std::unique_ptr<File> sidecar;
  if (options.disk_checksums && !timing &&
      fs.Exists(SidecarFileName(data_name))) {
    retry.Run(&ep.clock(), stats, [&] {
      sidecar = fs.Open(SidecarFileName(data_name), OpenMode::kRead);
    });
  }

  const std::vector<std::pair<int, int>> work = ServerWork(plan, sidx);
  const std::int64_t record_base =
      RecordBase(req.purpose, req.seq, static_cast<std::int64_t>(work.size()));

  std::vector<std::byte> buf;
  for (size_t k = 0; k < work.size(); ++k) {
    const auto [ci, si] = work[k];
    const SubchunkPlan& sp =
        plan.chunks()[static_cast<size_t>(ci)].subchunks[static_cast<size_t>(si)];
    // Sub-chunks fully outside a subarray clip: no disk access at all.
    if (!sp.active) continue;
    // Sequential read of the sub-chunk...
    if (!timing) buf.assign(static_cast<size_t>(sp.bytes), std::byte{0});
    auto read_subchunk = [&] {
      retry.Run(&ep.clock(), stats, [&] {
        file->ReadAt(base + sp.file_offset, {buf.data(), buf.size()},
                     sp.bytes);
      });
    };
    read_subchunk();
    if (sidecar != nullptr) {
      const std::int64_t rec_index = record_base + static_cast<std::int64_t>(k);
      CrcRecord rec;
      auto read_record = [&] {
        retry.Run(&ep.clock(), stats,
                  [&] { rec = ReadCrcRecord(*sidecar, rec_index); });
      };
      auto verified = [&] {
        return rec.file_offset == base + sp.file_offset &&
               rec.bytes == sp.bytes &&
               rec.crc == Crc32c({buf.data(), buf.size()});
      };
      read_record();
      if (!verified()) {
        // A silently corrupted *read* — of the data or of the sidecar
        // record itself (flaky controller) — heals on one re-read of
        // both; persistent disagreement means the bytes on disk are
        // wrong (or the schemas diverged) and aborts the collective.
        if (stats != nullptr) stats->disk_checksum_rereads.fetch_add(1);
        read_record();
        read_subchunk();
        if (!verified()) {
          if (stats != nullptr) stats->disk_checksum_failures.fetch_add(1);
          PANDA_REQUIRE(false,
                        "sub-chunk failed its on-disk checksum after a "
                        "re-read (%s record %lld: record says offset "
                        "%lld/%lld bytes crc %08x, plan says offset "
                        "%lld/%lld bytes, computed crc %08x)",
                        data_name.c_str(), static_cast<long long>(rec_index),
                        static_cast<long long>(rec.file_offset),
                        static_cast<long long>(rec.bytes), rec.crc,
                        static_cast<long long>(base + sp.file_offset),
                        static_cast<long long>(sp.bytes),
                        Crc32c({buf.data(), buf.size()}));
        }
      }
    }
    // ...then scatter its pieces to the clients that need them.
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      const PiecePlan& piece = sp.pieces[pi];
      if (!piece.contiguous_in_subchunk) {
        ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                          params.memcpy_Bps);
      }
      Message data;
      Encoder enc(data.header);
      PieceHeader{array_index, ci, static_cast<std::int32_t>(si),
                  static_cast<std::int32_t>(pi), piece.region}
          .EncodeTo(enc);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(piece.bytes));
        PackRegion({payload.data(), payload.size()},
                   {buf.data(), buf.size()}, sp.region, piece.region,
                   static_cast<size_t>(meta.elem_size));
        // End-to-end wire checksum, verified by the receiving client.
        enc.Put<std::uint32_t>(Crc32c({payload.data(), payload.size()}));
        data.SetPayload(std::move(payload));
      } else {
        enc.Put<std::uint32_t>(0);
        data.SetVirtualPayload(piece.bytes);
      }
      ep.Send(world.client_rank(piece.client), kTagPieceData,
              std::move(data));
      // Per-piece flow control: wait for the client's acknowledgement
      // before pushing more. This bounds client-side buffering and
      // makes the read path's message count mirror the write path's
      // (request+data), matching the paper's observation that reads
      // and writes move essentially identical message traffic.
      (void)ep.Recv(world.client_rank(piece.client), kTagPieceAck);
    }
  }
}

// Master-server fan-out of an abort notice: every other server and the
// requesting application's master client hear about it directly, so the
// whole cluster unblocks within one receive each (docs/PROTOCOL.md).
void RelayAbortFromMasterServer(Endpoint& ep, const World& world,
                                const World& app_world, int origin_rank,
                                const std::string& reason) {
  for (int s = 0; s < world.num_servers; ++s) {
    const int r = world.server_rank(s);
    if (r == ep.rank() || r == origin_rank) continue;
    ep.Send(r, kTagAbort, MakeAbortMessage(origin_rank, reason));
  }
  const int mc = app_world.master_client_rank();
  if (mc != origin_rank) {
    ep.Send(mc, kTagAbort, MakeAbortMessage(origin_rank, reason));
  }
}

}  // namespace

void ServerExecute(Endpoint& ep, FileSystem& fs, const World& world,
                   const Sp2Params& params, const CollectiveRequest& req,
                   ServerOptions options, PlanCache* plan_cache) {
  PlanCache local_cache(4);
  if (plan_cache == nullptr) plan_cache = &local_cache;
  const int sidx = world.server_index(ep.rank());
  // Digest the request and form the local plan.
  ep.AdvanceCompute(params.plan_compute_s);
  DiskWriteScheduler disk(ep, options.overlap_io);
  // Checkpoint files staged for two-phase commit (see below).
  std::vector<std::pair<std::string, std::string>> pending_renames;
  PANDA_REQUIRE(!req.has_subarray || req.op == IoOp::kRead,
                "subarray access is only supported for reads");
  for (std::int32_t ai = 0; ai < static_cast<std::int32_t>(req.arrays.size());
       ++ai) {
    const std::shared_ptr<const IoPlan> plan_ptr = plan_cache->Get(
        req.arrays[static_cast<size_t>(ai)], world.num_servers,
        params.subchunk_bytes, req.has_subarray ? &req.subarray : nullptr);
    const IoPlan& plan = *plan_ptr;
    PANDA_REQUIRE(
        plan.chunks().empty() ||
            req.arrays[static_cast<size_t>(ai)].memory.mesh().size() ==
                world.num_clients,
        "array '%s' memory mesh has %d positions but the world has %d clients",
        req.arrays[static_cast<size_t>(ai)].name.c_str(),
        req.arrays[static_cast<size_t>(ai)].memory.mesh().size(),
        world.num_clients);
    if (req.op == IoOp::kWrite) {
      ServerWriteArray(ep, fs, world, params, req, ai, plan, disk, options,
                       pending_renames);
    } else {
      ServerReadArray(ep, fs, world, params, req, ai, plan, options);
    }
  }
  // Two-phase checkpoint commit: publish the staged files only after
  // *every* server finished writing and syncing its temporaries, so a
  // server crash during the data phase leaves the previous checkpoint
  // complete on all i/o nodes (no old/new mix). The commit point is the
  // barrier; the rename window after it is metadata-only.
  if (!pending_renames.empty()) {
    Barrier(ep, world.ServerGroup(ep.rank()));
    for (const auto& [from, to] : pending_renames) {
      options.retry.Run(&ep.clock(), options.robustness,
                        [&] { fs.Rename(from, to); });
    }
  }
  // Group metadata: the master server records the schemas so consumers
  // (and restarts) can interpret the files without the application.
  // (Skipped in timing-only sweeps: metadata needs real bytes.)
  if (req.op == IoOp::kWrite && sidx == 0 && !req.meta_file.empty() &&
      !ep.timing_only()) {
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { UpdateGroupMeta(fs, req); });
  }
}

void ServerMain(Endpoint& ep, FileSystem& fs, const World& world,
                const Sp2Params& params, ServerOptions options) {
  world.Validate();
  const int sidx = world.server_index(ep.rank());
  PANDA_CHECK_MSG(world.is_server_rank(ep.rank()),
                  "ServerMain called on non-server rank %d", ep.rank());
  const Group servers = world.ServerGroup(ep.rank());
  PlanCache plan_cache;

  int live_applications = options.num_applications;
  while (live_applications > 0) {
    Message request_msg;
    if (sidx == 0) {
      // Any application's master client may request next; the broadcast
      // imposes one global order on all servers.
      request_msg = ep.RecvAny(kTagCollectiveRequest);
    }
    request_msg = Bcast(ep, servers, 0, std::move(request_msg));
    const CollectiveRequest req = CollectiveRequest::FromMessage(request_msg);
    if (req.op == IoOp::kShutdown) {
      PANDA_DEBUG("server %d: application at rank %d shut down", sidx,
                  req.first_client);
      --live_applications;
      continue;
    }
    if (req.op == IoOp::kQueryMeta) {
      // Metadata query: the master server answers from its .schema file
      // (resume support); the other servers only observed the broadcast.
      if (sidx == 0) {
        Message reply;
        Encoder enc(reply.header);
        if (!ep.timing_only() && !req.meta_file.empty() &&
            fs.Exists(req.meta_file)) {
          enc.Put<std::uint8_t>(1);
          GroupMeta meta;
          options.retry.Run(&ep.clock(), options.robustness,
                            [&] { meta = ReadGroupMeta(fs, req.meta_file); });
          enc.PutBytes(meta.Encode());
        } else {
          enc.Put<std::uint8_t>(0);  // absent
        }
        ep.Send(req.first_client, kTagServerDone, std::move(reply));
      }
      continue;
    }

    // Serve the request against the requesting application's client
    // window (the servers themselves are shared).
    const World app_world = world.WithClients(req.first_client,
                                              req.num_clients);
    try {
      ServerExecute(ep, fs, app_world, params, req, options, &plan_cache);

      // Completion: servers gather to the master server, which notifies
      // the requesting application's master client. (Gather-only:
      // servers need no release — they fall straight back into the next
      // request broadcast.)
      GatherSync(ep, servers);
      if (sidx == 0) {
        ep.Send(app_world.master_client_rank(), kTagServerDone, Message{});
      }
    } catch (const PandaAbortError& e) {
      // Another rank's abort notice interrupted one of our receives.
      // The master server is the server-side relay hub: fan the notice
      // out to the remaining servers and the application's master
      // client, then die with the structured error ourselves.
      if (sidx == 0) {
        RelayAbortFromMasterServer(ep, world, app_world, e.origin_rank(),
                                   e.reason());
      }
      throw;
    } catch (const PandaError& e) {
      // This server hit an unrecoverable fault (exhausted retry budget,
      // crash-stop disk death, checksum failure...): it is the abort's
      // origin. Notify the hub — or fan out ourselves if we *are* the
      // hub — and die with the structured error. Sends are buffered, so
      // a dying rank never blocks on its own notifications.
      if (options.robustness != nullptr) {
        options.robustness->collectives_aborted.fetch_add(1);
      }
      if (sidx == 0) {
        RelayAbortFromMasterServer(ep, world, app_world, ep.rank(), e.what());
      } else {
        ep.Send(world.master_server_rank(), kTagAbort,
                MakeAbortMessage(ep.rank(), e.what()));
      }
      throw PandaAbortError(ep.rank(), e.what());
    }
  }
  PANDA_DEBUG("server %d shutting down", sidx);
}

}  // namespace panda
