#include "panda/server.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codec/frame.h"
#include "mdarray/strided_copy.h"
#include "msg/hb.h"
#include "panda/failover.h"
#include "panda/frame_io.h"
#include "panda/integrity.h"
#include "panda/journal.h"
#include "panda/rejoin.h"
#include "panda/schema_io.h"
#include "panda/store_io.h"
#include "trace/trace.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace panda {
namespace {

// Write-behind accounting: in overlap mode the disk works in the
// background while the server gathers the next sub-chunk, so a write
// only delays the server when the device is still busy.
class DiskWriteScheduler {
 public:
  DiskWriteScheduler(Endpoint& ep, bool overlap) : ep_(ep), overlap_(overlap) {}

  // Issues `write_fn` (which charges the endpoint clock through the
  // simulated FS) and, in overlap mode, converts the charge into device
  // busy time instead of caller delay.
  template <typename Fn>
  void Write(Fn&& write_fn) {
    const double before = ep_.clock().Now();
    write_fn();
    if (!overlap_) return;
    const double cost = ep_.clock().Now() - before;
    ep_.clock().Reset(before);  // caller does not block...
    const double start = std::max(before, busy_until_);
    busy_until_ = start + cost;  // ...but the device stays busy
  }

  // The collective cannot complete before the device drains.
  void Drain() {
    if (overlap_) ep_.clock().SyncTo(busy_until_);
  }

 private:
  Endpoint& ep_;
  bool overlap_;
  double busy_until_ = 0.0;
};

OpenMode WriteOpenMode(Purpose purpose, std::int64_t seq, WorkPhase phase) {
  // A failover recovery phase extends files that already hold this
  // server's own chunks: never truncate.
  if (phase == WorkPhase::kAdoptedOnly) return OpenMode::kReadWrite;
  if (purpose == Purpose::kTimestep && seq > 0) return OpenMode::kReadWrite;
  return OpenMode::kWrite;
}

std::int64_t BaseOffset(const DegradedLayout& layout, Purpose purpose,
                        std::int64_t seq, int server_index) {
  // Timestep output appends one segment per timestep; everything else
  // starts at the beginning of the file. Segment sizes come from the
  // layout (== the plan's when no server is dead).
  if (purpose == Purpose::kTimestep) {
    return seq * layout.SegmentBytes(server_index);
  }
  return 0;
}

// First sidecar/journal record index of this collective's segment:
// timestep streams append one block of records per timestep, mirroring
// the data segments (see panda/integrity.h).
std::int64_t RecordBase(Purpose purpose, std::int64_t seq,
                        std::int64_t records_per_segment) {
  if (purpose == Purpose::kTimestep) return seq * records_per_segment;
  return 0;
}

void ValidateHeader(const PieceHeader& h, std::int32_t array_index,
                    const ClientStep& step, const Region& region) {
  PANDA_REQUIRE(h.array_index == array_index && h.chunk_index == step.chunk_index &&
                    h.sub_index == step.sub_index &&
                    h.piece_index == step.piece_index && h.region == region,
                "piece header does not match the local plan: plans diverged "
                "(got array=%d chunk=%d sub=%d piece=%d %s)",
                h.array_index, h.chunk_index, h.sub_index, h.piece_index,
                h.region.ToString().c_str());
}

void ServerWriteArray(Endpoint& ep, FileSystem& fs, const World& world,
                      const Sp2Params& params, const CollectiveRequest& req,
                      std::int32_t array_index, const IoPlan& plan,
                      const DegradedLayout& layout, WorkPhase phase,
                      DiskWriteScheduler& disk, const ServerOptions& options,
                      std::vector<std::pair<std::string, std::string>>&
                          pending_renames) {
  const int sidx = world.server_index(ep.rank());
  const ArrayMeta& meta = req.arrays[static_cast<size_t>(array_index)];
  const bool timing = ep.timing_only();
  const std::int64_t base = BaseOffset(layout, req.purpose, req.seq, sidx);
  const RetryPolicy& retry = options.retry;
  RobustnessStats* stats = options.robustness;
  // Each i/o node owns its local file system exclusively; any second
  // rank touching it is a protocol bug. The stamp is a no-op unless
  // built with -DPANDA_HB=ON (see msg/hb.h).
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);
  // Sidecar checksums and the journal need real bytes; timing-only
  // sweeps skip them.
  const bool sidecars = options.disk_checksums && !timing;
  const bool journaling = options.journal && !timing;
  // The negotiated codec frames sub-chunks on disk and pieces on the
  // wire. Timing-only sweeps skip it (framing needs real bytes), and
  // codec=none collectives take exactly the pre-codec code paths — the
  // bit-identity the tests assert.
  const CodecId codec = meta.codec;
  const bool framing = codec != CodecId::kNone && !timing;

  const std::vector<WorkItem> work = BuildServerWork(plan, layout, sidx, phase);
  const std::int64_t records_per_segment =
      RecordsPerSegment(plan, layout, sidx);
  const std::int64_t record_base =
      RecordBase(req.purpose, req.seq, records_per_segment);
  // Sharded store (src/store/): the segment's shard map derives from
  // the *full* work list under the committed layout, whatever slice
  // this phase writes — a recovery phase extends the same shards the
  // full phase laid out.
  const bool sharded = options.shard_bytes > 0;
  store::ShardLayout shard_layout;
  if (sharded) {
    shard_layout = BuildShardLayout(plan, layout, sidx, options.shard_bytes);
  }
  const std::int64_t seg = req.purpose == Purpose::kTimestep ? req.seq : 0;

  // Checkpoints are published atomically: written to a temporary file
  // and renamed over the previous checkpoint only after every server
  // has finished its data and fsync (two-phase commit, see
  // ServerExecute), so a crash mid-checkpoint can never leave a mix of
  // old and new checkpoint files. The sidecar and journal travel with
  // their data file through the same staged rename — and so does every
  // shard file; leftovers of the *other* layout form (a flat file under
  // a sharded run, or vice versa) are staged as removals (empty `from`)
  // so the previous checkpoint stays whole until the commit barrier.
  // A recovery phase reuses the staging set up by the full phase.
  const std::string final_name =
      DataFileName(req.group, meta.name, req.purpose, sidx);
  const std::string write_name =
      req.purpose == Purpose::kCheckpoint ? final_name + ".tmp" : final_name;
  if (req.purpose == Purpose::kCheckpoint && phase == WorkPhase::kFull) {
    if (sharded && !work.empty()) {
      const std::int64_t n = shard_layout.shards_per_segment();
      for (std::int64_t id = 0; id < n; ++id) {
        pending_renames.emplace_back(store::ShardFileName(write_name, id),
                                     store::ShardFileName(final_name, id));
      }
      for (std::int64_t id = n;
           fs.Exists(store::ShardFileName(final_name, id)); ++id) {
        pending_renames.emplace_back(std::string(),
                                     store::ShardFileName(final_name, id));
      }
      if (fs.Exists(final_name)) {
        pending_renames.emplace_back(std::string(), final_name);
      }
    } else {
      pending_renames.emplace_back(write_name, final_name);
      for (std::int64_t id = 0;
           fs.Exists(store::ShardFileName(final_name, id)); ++id) {
        pending_renames.emplace_back(std::string(),
                                     store::ShardFileName(final_name, id));
      }
    }
    if (sidecars) {
      pending_renames.emplace_back(SidecarFileName(write_name),
                                   SidecarFileName(final_name));
    }
    if (journaling) {
      pending_renames.emplace_back(JournalFileName(write_name),
                                   JournalFileName(final_name));
    }
    if (framing && !sharded) {
      pending_renames.emplace_back(FrameDirFileName(write_name),
                                   FrameDirFileName(final_name));
    }
  }

  // With checksums/journaling/framing off, drop any stale sidecar,
  // journal or frame directory left by an earlier run: fresh data under
  // old records would read back as corruption. Likewise drop leftovers
  // of the other layout form at the *write* name (checkpoint finals are
  // handled by the staged removals above): a sharded run keeps no flat
  // file or frame directory, a flat run keeps no shards.
  if (!timing && phase == WorkPhase::kFull) {
    retry.Run(&ep.clock(), stats, [&] {
      if (!sidecars) {
        fs.Remove(SidecarFileName(write_name));
        if (write_name != final_name) fs.Remove(SidecarFileName(final_name));
      }
      if (!journaling) {
        fs.Remove(JournalFileName(write_name));
        if (write_name != final_name) fs.Remove(JournalFileName(final_name));
      }
      if (!framing || sharded) {
        fs.Remove(FrameDirFileName(write_name));
        if (write_name != final_name) fs.Remove(FrameDirFileName(final_name));
      }
      if (sharded && !work.empty()) {
        fs.Remove(write_name);  // stale flat data file
        if (write_name == final_name &&
            WriteOpenMode(req.purpose, req.seq, phase) == OpenMode::kWrite) {
          // Truncating fresh start: shards beyond the new count are
          // stale (an earlier run with a smaller shard size).
          for (std::int64_t id = shard_layout.shards_per_segment();
               fs.Exists(store::ShardFileName(write_name, id)); ++id) {
            fs.Remove(store::ShardFileName(write_name, id));
          }
        }
      }
      if (!sharded && !work.empty() && write_name == final_name) {
        for (std::int64_t id = 0;
             fs.Exists(store::ShardFileName(write_name, id)); ++id) {
          fs.Remove(store::ShardFileName(write_name, id));
        }
      }
    });
  }

  if (work.empty()) {
    if (phase == WorkPhase::kFull && req.purpose != Purpose::kTimestep) {
      // Still create the (empty) file so concatenation scripts see a
      // complete set of per-server files. A checkpoint staged its
      // sidecar/journal/frame-directory renames above, so those sources
      // must exist too — empty: nothing to checksum, nothing to replay,
      // and the verifiers skip empty segments. An i/o node can own no
      // chunks legitimately (disk layout narrower than the server set).
      retry.Run(&ep.clock(), stats, [&] {
        const OpenMode mode = WriteOpenMode(req.purpose, req.seq, phase);
        fs.Open(write_name, mode);
        if (req.purpose == Purpose::kCheckpoint) {
          if (sidecars) fs.Open(SidecarFileName(write_name), mode);
          if (journaling) fs.Open(JournalFileName(write_name), mode);
          if (framing) fs.Open(FrameDirFileName(write_name), mode);
        }
      });
    }
    return;
  }
  if (phase == WorkPhase::kAdoptedOnly && stats != nullptr) {
    stats->chunks_adopted.fetch_add(static_cast<std::int64_t>(
        layout.adopted[static_cast<size_t>(sidx)].size()));
  }

  // Sharded runs open no flat file: the writer owns the shard handles
  // (bounded by the pool) and its Put/Finish run under the same retry
  // policy the flat path uses.
  std::unique_ptr<File> file;
  std::optional<store::ShardWriter> shard_writer;
  if (sharded) {
    store::StoreOptions sopt;
    sopt.shard_bytes = options.shard_bytes;
    sopt.backend = options.backend;
    sopt.handle_pool_capacity = options.handle_pool_capacity;
    sopt.timing = timing;
    shard_writer.emplace(&fs, write_name, &shard_layout, sopt,
                         WriteOpenMode(req.purpose, req.seq, phase), retry,
                         &ep.clock(), stats);
  } else {
    retry.Run(&ep.clock(), stats, [&] {
      file = fs.Open(write_name, WriteOpenMode(req.purpose, req.seq, phase));
    });
  }
  std::unique_ptr<File> sidecar;
  if (sidecars) {
    retry.Run(&ep.clock(), stats, [&] {
      sidecar = fs.Open(SidecarFileName(write_name),
                        WriteOpenMode(req.purpose, req.seq, phase));
    });
  }
  std::unique_ptr<File> journal;
  std::optional<JournalHeader> journal_header;
  if (journaling) {
    const OpenMode jmode = WriteOpenMode(req.purpose, req.seq, phase);
    retry.Run(&ep.clock(), stats,
              [&] { journal = fs.Open(JournalFileName(write_name), jmode); });
    if (jmode == OpenMode::kReadWrite) {
      // A journal compacted after a checkpoint — or rebuilt by a rejoin
      // repair — carries a header whose base offsets the record slots;
      // honor it. Freshly truncated journals are headerless.
      retry.Run(&ep.clock(), stats,
                [&] { journal_header = ReadJournalHeader(*journal); });
    }
  }
  // No frame directory under sharding: the shard table carries the
  // codec/framing of every slot itself.
  std::unique_ptr<File> frame_dir;
  if (framing && !sharded) {
    retry.Run(&ep.clock(), stats, [&] {
      frame_dir = fs.Open(FrameDirFileName(write_name),
                          WriteOpenMode(req.purpose, req.seq, phase));
    });
  }

  // Server-directed: request every piece of sub-chunk `k`.
  auto send_requests = [&](size_t k) {
    const WorkItem& item = work[k];
    const SubchunkPlan& sp = plan.chunks()[static_cast<size_t>(item.chunk_index)]
                                 .subchunks[static_cast<size_t>(item.sub_index)];
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      Message request;
      Encoder enc(request.header);
      PieceHeader{array_index, item.chunk_index, item.sub_index,
                  static_cast<std::int32_t>(pi), sp.pieces[pi].region}
          .EncodeTo(enc);
      ep.Send(world.client_rank(sp.pieces[pi].client), kTagPieceRequest,
              std::move(request));
    }
  };

  // With request pipelining, sub-chunk k+1's requests go out before
  // sub-chunk k's data is consumed, so the clients' packing and the
  // request round trip overlap the current gather and disk write.
  if (options.pipeline_requests && !work.empty()) send_requests(0);

  // Frame-directory records are buffered here and flushed as runs of
  // contiguous indices in ONE positioned write each after the data
  // loop: on overhead-dominated disks a 32-byte append per sub-chunk
  // would cost more than the codec saves. A crash before the flush
  // only loses records — readers probe the slots' self-describing
  // headers instead (frame.h).
  std::vector<std::pair<std::int64_t, FrameDirRecord>> frame_recs;

  std::vector<std::byte> buf;
  for (size_t k = 0; k < work.size(); ++k) {
    const WorkItem& item = work[k];
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(item.chunk_index)];
    const SubchunkPlan& sp =
        cp.subchunks[static_cast<size_t>(item.sub_index)];
    if (!options.pipeline_requests) {
      send_requests(k);
    } else if (k + 1 < work.size()) {
      send_requests(k + 1);
    }
    // Assemble the sub-chunk in traditional array order. The pull span
    // covers the whole gather of this sub-chunk's pieces (per-piece
    // assembly spans nest inside it).
    const double pull_begin = ep.clock().Now();
    if (!timing) buf.assign(static_cast<size_t>(sp.bytes), std::byte{0});
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      const PiecePlan& piece = sp.pieces[pi];
      Message data = ep.Recv(world.client_rank(piece.client), kTagPieceData);
      Decoder dec(data.header);
      ValidateHeader(PieceHeader::Decode(dec), array_index,
                     {item.chunk_index, item.sub_index, static_cast<int>(pi)},
                     piece.region);
      // End-to-end wire checksum: the client stamped the payload's
      // CRC32C after the echoed piece header (0 in timing-only mode).
      const std::uint32_t wire_crc = dec.Get<std::uint32_t>();
      if (!piece.contiguous_in_subchunk) {
        PANDA_SPAN(asm_span, trace::SpanKind::kServerAssemble, piece.bytes);
        ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                          params.memcpy_Bps);
      }
      if (!timing) {
        std::span<const std::byte> raw{data.payload.data(),
                                       data.payload.size()};
        std::vector<std::byte> decoded;
        if (framing) {
          // The client framed the piece; decode before the end-to-end
          // checksum — the CRC covers the *uncompressed* bytes, so a
          // codec bug is caught exactly like wire corruption.
          const double dec_begin = ep.clock().Now();
          CodecId used = CodecId::kNone;
          try {
            decoded = DecodeWireFrame(raw, piece.bytes, meta.elem_size, &used);
          } catch (const PandaError& e) {
            if (stats != nullptr) stats->wire_checksum_failures.fetch_add(1);
            PANDA_REQUIRE(false,
                          "piece payload from client %d is not a valid codec "
                          "frame: %s",
                          piece.client, e.what());
          }
          if (used != CodecId::kNone) {
            ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                              params.codec_decode_Bps);
          }
          trace::RecordSpan(trace::SpanKind::kCodecDecode, dec_begin,
                            ep.clock().Now(), piece.bytes);
          raw = {decoded.data(), decoded.size()};
        } else {
          PANDA_REQUIRE(
              static_cast<std::int64_t>(data.payload.size()) == piece.bytes,
              "piece payload size mismatch");
        }
        const std::uint32_t got = Crc32c(raw);
        if (got != wire_crc) {
          if (stats != nullptr) stats->wire_checksum_failures.fetch_add(1);
          PANDA_REQUIRE(false,
                        "piece payload from client %d failed its end-to-end "
                        "checksum (wire %08x != computed %08x)",
                        piece.client, wire_crc, got);
        }
        UnpackRegion({buf.data(), buf.size()}, sp.region, raw, piece.region,
                     static_cast<size_t>(meta.elem_size));
      } else {
        PANDA_REQUIRE(data.payload_vbytes == piece.bytes,
                      "piece virtual size mismatch");
      }
    }
    trace::RecordSpan(trace::SpanKind::kServerPull, pull_begin,
                      ep.clock().Now(), sp.bytes);
    trace::ObserveMetric(trace::MetricId::kSubchunkBytes,
                         static_cast<double>(sp.bytes));
    // Frame the assembled sub-chunk for disk. Encoding is CPU work on
    // the server (charged to its clock before the device is touched);
    // the stored-raw fallback writes exactly the bytes codec=none
    // would, so incompressible data costs only the encode attempt.
    SubchunkFrame frame;
    if (framing) {
      const double enc_begin = ep.clock().Now();
      {
        PANDA_SPAN(enc_span, trace::SpanKind::kCodecEncode, sp.bytes);
        frame = EncodeSubchunkFrame(codec, {buf.data(), buf.size()},
                                    meta.elem_size);
        ep.AdvanceCompute(static_cast<double>(sp.bytes) /
                          params.codec_encode_Bps);
      }
      trace::ObserveMetric(trace::MetricId::kCodecEncodeSeconds,
                           ep.clock().Now() - enc_begin);
      trace::ObserveMetric(
          trace::MetricId::kCodecRatio,
          sp.bytes > 0 ? static_cast<double>(frame.frame_bytes(sp.bytes)) /
                             static_cast<double>(sp.bytes)
                       : 1.0);
    }
    // The write span shows the *caller-visible* delay (near zero in
    // overlap mode); the disk.op_seconds histogram, observed inside the
    // scheduler's charge window, records true device time either way.
    PANDA_SPAN(write_span, trace::SpanKind::kServerWrite, sp.bytes);
    disk.Write([&] {
      const double dev_begin = ep.clock().Now();
      if (sharded) {
        // The writer retries internally; object-store shards buffer
        // here and hit the device at Finish.
        if (framing && frame.codec != CodecId::kNone) {
          shard_writer->Put(seg, item.record_ordinal, array_index,
                            cp.chunk_id, item.sub_index, frame.codec,
                            {frame.bytes.data(), frame.bytes.size()},
                            static_cast<std::int64_t>(frame.bytes.size()));
        } else {
          shard_writer->Put(seg, item.record_ordinal, array_index,
                            cp.chunk_id, item.sub_index, CodecId::kNone,
                            {buf.data(), buf.size()}, sp.bytes);
        }
      } else {
        // Positioned writes are idempotent, so a retry after a torn
        // write rewrites the full range and heals the tear.
        retry.Run(&ep.clock(), stats, [&] {
          if (framing && frame.codec != CodecId::kNone) {
            file->WriteAt(base + item.file_offset,
                          {frame.bytes.data(), frame.bytes.size()},
                          static_cast<std::int64_t>(frame.bytes.size()));
          } else {
            file->WriteAt(base + item.file_offset, {buf.data(), buf.size()},
                          sp.bytes);
          }
        });
      }
      trace::ObserveMetric(trace::MetricId::kDiskOpSeconds,
                           ep.clock().Now() - dev_begin);
      if (frame_dir != nullptr) {
        frame_recs.emplace_back(
            record_base + item.record_ordinal,
            FrameDirRecord{base + item.file_offset, sp.bytes,
                           frame.frame_bytes(sp.bytes), frame.codec});
      }
      if (sidecar != nullptr) {
        const CrcRecord rec{base + item.file_offset, sp.bytes,
                            Crc32c({buf.data(), buf.size()})};
        retry.Run(&ep.clock(), stats, [&] {
          WriteCrcRecord(*sidecar, record_base + item.record_ordinal, rec);
        });
      }
      if (journal != nullptr) {
        // Write-ahead commit record: appended after the sub-chunk's data
        // write, fsynced when the chunk completes. After a crash the
        // journal names exactly the durable chunks (panda/journal.h).
        JournalRecord rec;
        rec.array_index = array_index;
        rec.chunk_id = cp.chunk_id;
        rec.sub_index = item.sub_index;
        rec.seq = req.purpose == Purpose::kTimestep ? req.seq : 0;
        rec.file_offset = base + item.file_offset;
        rec.bytes = sp.bytes;
        rec.data_crc = Crc32c({buf.data(), buf.size()});
        {
          PANDA_SPAN(journal_span, trace::SpanKind::kJournalAppend, sp.bytes);
          retry.Run(&ep.clock(), stats, [&] {
            WriteJournalRecord(*journal, journal_header,
                               record_base + item.record_ordinal, rec);
          });
        }
        if (stats != nullptr) stats->journal_records_written.fetch_add(1);
        const bool chunk_done =
            k + 1 == work.size() ||
            work[k + 1].chunk_index != item.chunk_index;
        if (chunk_done) {
          retry.Run(&ep.clock(), stats, [&] { journal->Sync(); });
        }
      }
    });
  }
  disk.Drain();
  // The paper flushes every collective write with fsync.
  if (sharded) {
    // Flush shard tables (posix) or whole objects (object store) and
    // make every touched shard durable.
    shard_writer->Finish();
  } else {
    retry.Run(&ep.clock(), stats, [&] { file->Sync(); });
  }
  if (sidecar != nullptr) {
    retry.Run(&ep.clock(), stats, [&] { sidecar->Sync(); });
  }
  if (journal != nullptr) {
    retry.Run(&ep.clock(), stats, [&] { journal->Sync(); });
  }
  if (frame_dir != nullptr) {
    // Flush the buffered directory: coalesce contiguous index runs
    // (normally the whole work list is one run) and write each with a
    // single positioned request.
    std::sort(frame_recs.begin(), frame_recs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t i = 0;
    while (i < frame_recs.size()) {
      size_t j = i + 1;
      std::vector<FrameDirRecord> run{frame_recs[i].second};
      while (j < frame_recs.size() &&
             frame_recs[j].first == frame_recs[i].first +
                                        static_cast<std::int64_t>(j - i)) {
        run.push_back(frame_recs[j].second);
        ++j;
      }
      retry.Run(&ep.clock(), stats, [&] {
        WriteFrameDirRecords(*frame_dir, frame_recs[i].first, run);
      });
      i = j;
    }
    retry.Run(&ep.clock(), stats, [&] { frame_dir->Sync(); });
  }
}

void ServerReadArray(Endpoint& ep, FileSystem& fs, const World& world,
                     const Sp2Params& params, const CollectiveRequest& req,
                     std::int32_t array_index, const IoPlan& plan,
                     const DegradedLayout& layout, const ServerOptions& options) {
  const int sidx = world.server_index(ep.rank());
  const ArrayMeta& meta = req.arrays[static_cast<size_t>(array_index)];
  const bool timing = ep.timing_only();
  const std::int64_t base = BaseOffset(layout, req.purpose, req.seq, sidx);
  const RetryPolicy& retry = options.retry;
  RobustnessStats* stats = options.robustness;
  // Reading still mutates FS statistics and file cursors: model it as a
  // write for exclusivity purposes (no-op unless -DPANDA_HB=ON).
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);

  const std::vector<WorkItem> work =
      BuildServerWork(plan, layout, sidx, WorkPhase::kFull);
  if (work.empty()) return;

  const std::string data_name =
      DataFileName(req.group, meta.name, req.purpose, sidx);
  // Sharded reads go through a ShardReader (no flat file exists); the
  // shard map re-derives from the plan exactly as the writer's did.
  const bool sharded = options.shard_bytes > 0;
  store::ShardLayout shard_layout;
  std::optional<store::ShardReader> shard_reader;
  const std::int64_t seg = req.purpose == Purpose::kTimestep ? req.seq : 0;
  std::unique_ptr<File> file;
  if (sharded) {
    shard_layout = BuildShardLayout(plan, layout, sidx, options.shard_bytes);
    store::StoreOptions sopt;
    sopt.shard_bytes = options.shard_bytes;
    sopt.backend = options.backend;
    sopt.handle_pool_capacity = options.handle_pool_capacity;
    sopt.timing = timing;
    shard_reader.emplace(&fs, data_name, &shard_layout, sopt, retry,
                         &ep.clock(), stats);
  } else {
    retry.Run(&ep.clock(), stats,
              [&] { file = fs.Open(data_name, OpenMode::kRead); });
  }

  // Verify sub-chunks against the sidecar when asked to and one exists;
  // legacy data (no sidecar) reads back unverified, not failed.
  std::unique_ptr<File> sidecar;
  if (options.disk_checksums && !timing &&
      fs.Exists(SidecarFileName(data_name))) {
    retry.Run(&ep.clock(), stats, [&] {
      sidecar = fs.Open(SidecarFileName(data_name), OpenMode::kRead);
    });
  }

  // Frame-directory-directed reads when the array negotiated a codec.
  // A missing directory (legacy data, or one lost to a crash) is fine:
  // every slot's self-describing header is probed instead.
  const CodecId codec = meta.codec;
  const bool framing = codec != CodecId::kNone && !timing;
  std::unique_ptr<File> frame_dir;
  if (framing && !sharded && fs.Exists(FrameDirFileName(data_name))) {
    retry.Run(&ep.clock(), stats, [&] {
      frame_dir = fs.Open(FrameDirFileName(data_name), OpenMode::kRead);
    });
  }

  const std::int64_t record_base = RecordBase(
      req.purpose, req.seq, RecordsPerSegment(plan, layout, sidx));

  std::vector<std::byte> buf;
  for (size_t k = 0; k < work.size(); ++k) {
    const WorkItem& item = work[k];
    const int ci = item.chunk_index;
    const int si = item.sub_index;
    const SubchunkPlan& sp =
        plan.chunks()[static_cast<size_t>(ci)].subchunks[static_cast<size_t>(si)];
    // Sub-chunks fully outside a subarray clip: no disk access at all.
    if (!sp.active) continue;
    // Sequential read of the sub-chunk...
    if (!timing) buf.assign(static_cast<size_t>(sp.bytes), std::byte{0});
    auto read_subchunk = [&] {
      PANDA_SPAN(read_span, trace::SpanKind::kServerRead, sp.bytes);
      const double dev_begin = ep.clock().Now();
      if (sharded) {
        // Table-directed shard read; torn tables heal through the
        // slots' self-describing frame headers inside the reader.
        store::ShardRead got =
            shard_reader->Get(seg, item.record_ordinal, meta.elem_size);
        trace::ObserveMetric(trace::MetricId::kDiskOpSeconds,
                             ep.clock().Now() - dev_begin);
        if (got.codec != CodecId::kNone) {
          PANDA_SPAN(dec_span, trace::SpanKind::kCodecDecode, sp.bytes);
          ep.AdvanceCompute(static_cast<double>(sp.bytes) /
                            params.codec_decode_Bps);
        }
        if (!timing) buf = std::move(got.raw);
        return;
      }
      if (framing) {
        // Directory-directed framed read (probe fallback inside). Device
        // time ends when the bytes are off the disk; the decode below is
        // CPU work charged to the codec pipeline.
        FramedSubchunkRead got = ReadFramedSubchunk(
            *file, frame_dir.get(), record_base + item.record_ordinal,
            base + item.file_offset, sp.bytes, meta.elem_size, retry,
            &ep.clock(), stats);
        trace::ObserveMetric(trace::MetricId::kDiskOpSeconds,
                             ep.clock().Now() - dev_begin);
        if (got.codec != CodecId::kNone) {
          PANDA_SPAN(dec_span, trace::SpanKind::kCodecDecode, sp.bytes);
          ep.AdvanceCompute(static_cast<double>(sp.bytes) /
                            params.codec_decode_Bps);
        }
        buf = std::move(got.raw);
        return;
      }
      retry.Run(&ep.clock(), stats, [&] {
        file->ReadAt(base + item.file_offset, {buf.data(), buf.size()},
                     sp.bytes);
      });
      trace::ObserveMetric(trace::MetricId::kDiskOpSeconds,
                           ep.clock().Now() - dev_begin);
    };
    trace::ObserveMetric(trace::MetricId::kSubchunkBytes,
                         static_cast<double>(sp.bytes));
    read_subchunk();
    if (sidecar != nullptr) {
      const std::int64_t rec_index = record_base + item.record_ordinal;
      CrcRecord rec;
      auto read_record = [&] {
        retry.Run(&ep.clock(), stats,
                  [&] { rec = ReadCrcRecord(*sidecar, rec_index); });
      };
      auto verified = [&] {
        return rec.file_offset == base + item.file_offset &&
               rec.bytes == sp.bytes &&
               rec.crc == Crc32c({buf.data(), buf.size()});
      };
      read_record();
      if (!verified()) {
        // A silently corrupted *read* — of the data or of the sidecar
        // record itself (flaky controller) — heals on one re-read of
        // both; persistent disagreement means the bytes on disk are
        // wrong (or the schemas diverged) and aborts the collective.
        if (stats != nullptr) stats->disk_checksum_rereads.fetch_add(1);
        read_record();
        read_subchunk();
        if (!verified()) {
          if (stats != nullptr) stats->disk_checksum_failures.fetch_add(1);
          PANDA_REQUIRE(false,
                        "sub-chunk failed its on-disk checksum after a "
                        "re-read (%s record %lld: record says offset "
                        "%lld/%lld bytes crc %08x, plan says offset "
                        "%lld/%lld bytes, computed crc %08x)",
                        data_name.c_str(), static_cast<long long>(rec_index),
                        static_cast<long long>(rec.file_offset),
                        static_cast<long long>(rec.bytes), rec.crc,
                        static_cast<long long>(base + item.file_offset),
                        static_cast<long long>(sp.bytes),
                        Crc32c({buf.data(), buf.size()}));
        }
      }
    }
    // ...then scatter its pieces to the clients that need them.
    for (size_t pi = 0; pi < sp.pieces.size(); ++pi) {
      const PiecePlan& piece = sp.pieces[pi];
      if (!piece.contiguous_in_subchunk) {
        PANDA_SPAN(asm_span, trace::SpanKind::kServerAssemble, piece.bytes);
        ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                          params.memcpy_Bps);
      }
      Message data;
      Encoder enc(data.header);
      PieceHeader{array_index, ci, static_cast<std::int32_t>(si),
                  static_cast<std::int32_t>(pi), piece.region}
          .EncodeTo(enc);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(piece.bytes));
        PackRegion({payload.data(), payload.size()},
                   {buf.data(), buf.size()}, sp.region, piece.region,
                   static_cast<size_t>(meta.elem_size));
        // End-to-end wire checksum over the *uncompressed* bytes,
        // verified by the receiving client after it decodes the frame.
        enc.Put<std::uint32_t>(Crc32c({payload.data(), payload.size()}));
        if (framing) {
          const double enc_begin = ep.clock().Now();
          CodecId used = CodecId::kNone;
          std::vector<std::byte> framed =
              EncodeWireFrame(codec, {payload.data(), payload.size()},
                              meta.elem_size, &used);
          if (used != CodecId::kNone) {
            ep.AdvanceCompute(static_cast<double>(piece.bytes) /
                              params.codec_encode_Bps);
          }
          trace::RecordSpan(trace::SpanKind::kCodecEncode, enc_begin,
                            ep.clock().Now(), piece.bytes);
          trace::ObserveMetric(
              trace::MetricId::kCodecRatio,
              piece.bytes > 0
                  ? static_cast<double>(framed.size()) /
                        static_cast<double>(piece.bytes)
                  : 1.0);
          data.SetPayload(std::move(framed));
        } else {
          data.SetPayload(std::move(payload));
        }
      } else {
        enc.Put<std::uint32_t>(0);
        data.SetVirtualPayload(piece.bytes);
      }
      ep.Send(world.client_rank(piece.client), kTagPieceData,
              std::move(data));
      // Per-piece flow control: wait for the client's acknowledgement
      // before pushing more. This bounds client-side buffering and
      // makes the read path's message count mirror the write path's
      // (request+data), matching the paper's observation that reads
      // and writes move essentially identical message traffic.
      (void)ep.Recv(world.client_rank(piece.client), kTagPieceAck);
    }
  }
}

// Master-server fan-out of an abort notice: every other server and the
// requesting application's master client hear about it directly, so the
// whole cluster unblocks within one receive each (docs/PROTOCOL.md).
void RelayAbortFromMasterServer(Endpoint& ep, const World& world,
                                const World& app_world, int origin_rank,
                                const std::string& reason) {
  for (int s = 0; s < world.num_servers; ++s) {
    const int r = world.server_rank(s);
    if (r == ep.rank() || r == origin_rank) continue;
    ep.Send(r, kTagAbort, MakeAbortMessage(origin_rank, reason));
  }
  const int mc = app_world.master_client_rank();
  if (mc != origin_rank) {
    ep.Send(mc, kTagAbort, MakeAbortMessage(origin_rank, reason));
  }
}

// After a committed checkpoint, truncate the timestep journals'
// replayable region: restarts (and rejoin replays) recover from the
// checkpoint, so records below `seq * records_per_segment` must never
// be reapplied. Runs on every server right after the checkpoint's
// commit point (the rename barrier); each server compacts its own
// journals, keeping any existing header epoch.
void MaybeGcJournals(Endpoint& ep, FileSystem& fs, const World& world,
                     const Sp2Params& params, const CollectiveRequest& req,
                     const ServerOptions& options, PlanCache* plan_cache,
                     const std::vector<int>& dead_servers) {
  if (!options.journal || ep.timing_only()) return;
  if (req.purpose != Purpose::kCheckpoint || req.seq <= 0) return;
  const int sidx = world.server_index(ep.rank());
  for (const ArrayMeta& meta : req.arrays) {
    const std::shared_ptr<const IoPlan> plan = plan_cache->Get(
        meta, world.num_servers, params.subchunk_bytes, nullptr);
    const DegradedLayout layout = DegradedLayout::Compute(*plan, dead_servers);
    const std::int64_t rps = RecordsPerSegment(*plan, layout, sidx);
    const std::string jname = JournalFileName(
        DataFileName(req.group, meta.name, Purpose::kTimestep, sidx));
    if (rps <= 0 || !fs.Exists(jname)) continue;
    JournalGcResult gc{};
    options.retry.Run(&ep.clock(), options.robustness, [&] {
      gc = GcJournal(fs, jname, req.seq * rps, /*fallback_epoch=*/0);
    });
    if (gc.truncated && options.robustness != nullptr) {
      options.robustness->journal_gc_truncations.fetch_add(1);
    }
  }
}

// The body of one collective on this server. `dead_servers` selects the
// degraded layout (empty = the identity layout, byte-identical to the
// pre-failover behavior); `phase` selects the slice of the work list.
// When `staged_renames` is non-null (failover orchestration), checkpoint
// renames are appended there for the caller to commit after the final
// gather, and the group-metadata write is left to the caller too;
// otherwise the legacy barrier + rename + metadata epilogue runs here.
void ServerExecuteImpl(Endpoint& ep, FileSystem& fs, const World& world,
                       const Sp2Params& params, const CollectiveRequest& req,
                       const ServerOptions& options, PlanCache* plan_cache,
                       const std::vector<int>& dead_servers, WorkPhase phase,
                       std::vector<std::pair<std::string, std::string>>*
                           staged_renames) {
  PlanCache local_cache(4);
  if (plan_cache == nullptr) plan_cache = &local_cache;
  const int sidx = world.server_index(ep.rank());
  // Digest the request and form the local plan.
  {
    PANDA_SPAN(plan_span, trace::SpanKind::kServerPlan, 0);
    ep.AdvanceCompute(params.plan_compute_s);
  }
  DiskWriteScheduler disk(ep, options.overlap_io);
  // Checkpoint files staged for two-phase commit (see below).
  std::vector<std::pair<std::string, std::string>> local_renames;
  std::vector<std::pair<std::string, std::string>>& pending_renames =
      staged_renames != nullptr ? *staged_renames : local_renames;
  PANDA_REQUIRE(!req.has_subarray || req.op == IoOp::kRead,
                "subarray access is only supported for reads");
  for (std::int32_t ai = 0; ai < static_cast<std::int32_t>(req.arrays.size());
       ++ai) {
    const std::shared_ptr<const IoPlan> plan_ptr = plan_cache->Get(
        req.arrays[static_cast<size_t>(ai)], world.num_servers,
        params.subchunk_bytes, req.has_subarray ? &req.subarray : nullptr);
    const IoPlan& plan = *plan_ptr;
    const DegradedLayout layout = DegradedLayout::Compute(plan, dead_servers);
    PANDA_REQUIRE(
        plan.chunks().empty() ||
            req.arrays[static_cast<size_t>(ai)].memory.mesh().size() ==
                world.num_clients,
        "array '%s' memory mesh has %d positions but the world has %d clients",
        req.arrays[static_cast<size_t>(ai)].name.c_str(),
        req.arrays[static_cast<size_t>(ai)].memory.mesh().size(),
        world.num_clients);
    if (req.op == IoOp::kWrite) {
      ServerWriteArray(ep, fs, world, params, req, ai, plan, layout, phase,
                       disk, options, pending_renames);
    } else {
      ServerReadArray(ep, fs, world, params, req, ai, plan, layout, options);
    }
  }
  if (staged_renames != nullptr) return;  // the failover loop commits
  // Two-phase checkpoint commit: publish the staged files only after
  // *every* server finished writing and syncing its temporaries, so a
  // server crash during the data phase leaves the previous checkpoint
  // complete on all i/o nodes (no old/new mix). The commit point is the
  // barrier; the rename window after it is metadata-only.
  if (!pending_renames.empty()) {
    Barrier(ep, world.ServerGroup(ep.rank()));
    for (const auto& [from, to] : pending_renames) {
      // An empty `from` is a staged removal: leftovers of the other
      // layout form (flat vs sharded) retired at the commit point.
      options.retry.Run(&ep.clock(), options.robustness, [&] {
        if (from.empty()) {
          fs.Remove(to);
        } else {
          fs.Rename(from, to);
        }
      });
    }
  }
  // A committed checkpoint retires the timestep journal's history.
  if (req.op == IoOp::kWrite) {
    MaybeGcJournals(ep, fs, world, params, req, options, plan_cache,
                    dead_servers);
  }
  // Group metadata: the master server records the schemas so consumers
  // (and restarts) can interpret the files without the application.
  // (Skipped in timing-only sweeps: metadata needs real bytes.)
  if (req.op == IoOp::kWrite && sidx == 0 && !req.meta_file.empty() &&
      !ep.timing_only()) {
    // A sharded run records its granularity so readers, fsck and the
    // rejoin repair re-derive the identical shard map offline.
    CollectiveRequest meta_req = req;
    if (options.shard_bytes > 0) {
      meta_req.attributes[kShardBytesAttr] =
          std::to_string(options.shard_bytes);
    }
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { UpdateGroupMeta(fs, meta_req); });
  }
}

// Merges server indices into an ascending dead set.
void MergeDead(std::vector<int>& dead, const std::vector<int>& more) {
  dead.insert(dead.end(), more.begin(), more.end());
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// One collective under the failover protocol (docs/PROTOCOL.md,
// "Failover and degraded mode"). The master server (index 0) is the
// coordinator: after every data phase it gathers a token from each
// surviving server with a per-peer receive, so a crash-stopped server
// surfaces as PeerDeadError instead of a hang. On a detected death the
// master notifies every client (kTagFailover, full dead set), then the
// survivors; everyone recomputes the DegradedLayout and the survivors
// re-gather only the adopted chunks. The loop repeats until a gather
// round completes with no new deaths; the master then releases the
// survivors and the clients with empty kTagFailover notices, commits
// staged checkpoint renames, and records the dead set in the group
// metadata (`__panda.dead_servers`) for offline verification.
void FailoverCollective(Endpoint& ep, FileSystem& fs, const World& world,
                        const Sp2Params& params, const CollectiveRequest& req,
                        const ServerOptions& options, PlanCache* plan_cache) {
  const int sidx = world.server_index(ep.rank());
  std::vector<int> dead = DeadServerIndices(ep, world);
  std::vector<std::pair<std::string, std::string>> staged;

  // Data phase: this server's full share under the current layout.
  ServerExecuteImpl(ep, fs, world, params, req, options, plan_cache, dead,
                    WorkPhase::kFull, &staged);

  if (sidx == 0) {
    for (;;) {
      // Gather a completion token from every surviving server. A
      // per-peer receive converts a crash-stop into PeerDeadError after
      // the heartbeat lease instead of hanging forever.
      std::vector<int> new_dead;
      for (int s = 1; s < world.num_servers; ++s) {
        if (Contains(dead, s)) continue;
        try {
          (void)ep.Recv(world.server_rank(s), kTagBarrier);
        } catch (const PeerDeadError&) {
          new_dead.push_back(s);
        }
      }
      if (new_dead.empty()) break;
      // A read cannot be re-planned: the data lived on the dead disk.
      PANDA_REQUIRE(req.op == IoOp::kWrite,
                    "server crash-stopped during a read collective: its "
                    "data is unrecoverable by re-planning");
      MergeDead(dead, new_dead);
      if (options.robustness != nullptr) {
        options.robustness->failovers_completed.fetch_add(1);
      }
      std::vector<int> dead_ranks;
      dead_ranks.reserve(dead.size());
      for (int s : dead) dead_ranks.push_back(world.server_rank(s));
      // Clients first, then the survivor decisions: sends deposit
      // immediately, so every client's notice is in its mailbox before
      // any survivor can issue an adopted-chunk request — and notices
      // outrank ordinary matching (msg/mailbox.h), so clients re-plan
      // before serving recovery traffic.
      for (int c = 0; c < world.num_clients; ++c) {
        ep.Send(world.client_rank(c), kTagFailover,
                MakeFailoverMessage(ep.rank(), dead_ranks));
      }
      for (int s = 1; s < world.num_servers; ++s) {
        if (Contains(dead, s)) continue;
        ep.Send(world.server_rank(s), kTagFailover,
                MakeFailoverMessage(ep.rank(), dead_ranks));
      }
      // The master's own recovery share, then gather again (a death
      // during recovery simply triggers another round: the layout is
      // recomputed from scratch and kAdoptedOnly rewrites every
      // adopted chunk, including those a newly-dead adopter took).
      {
        PANDA_SPAN(replan_span, trace::SpanKind::kFailoverReplan,
                   static_cast<std::int64_t>(dead.size()));
        ServerExecuteImpl(ep, fs, world, params, req, options, plan_cache,
                          dead, WorkPhase::kAdoptedOnly, &staged);
      }
    }
    // Release the survivors: empty notice = commit.
    for (int s = 1; s < world.num_servers; ++s) {
      if (Contains(dead, s)) continue;
      ep.Send(world.server_rank(s), kTagFailover,
              MakeFailoverMessage(ep.rank(), {}));
    }
  } else {
    for (;;) {
      ep.Send(world.master_server_rank(), kTagBarrier, Message{});
      // Master death while a survivor is parked on the phase decision
      // surfaces through the heartbeat lease as PeerDeadError and
      // converts to the structured abort at the ServerMain boundary; a
      // local deadline here would turn a long replan into a spurious
      // abort.
      const Message decision =
          // panda-lint: allow(proto-deadline)
          ep.Recv(world.master_server_rank(), kTagFailover);
      const FailoverNotice notice = DecodeFailoverNotice(decision);
      if (notice.dead_ranks.empty()) break;  // released: commit
      std::vector<int> more;
      for (int r : notice.dead_ranks) more.push_back(world.server_index(r));
      MergeDead(dead, more);
      {
        PANDA_SPAN(replan_span, trace::SpanKind::kFailoverReplan,
                   static_cast<std::int64_t>(dead.size()));
        ServerExecuteImpl(ep, fs, world, params, req, options, plan_cache,
                          dead, WorkPhase::kAdoptedOnly, &staged);
      }
    }
  }

  // Commit point passed (the release doubles as the checkpoint
  // barrier): publish staged checkpoint files. The renames touch data,
  // sidecar and journal names alike — recovery's journal republication
  // rides this same loop, so stamp it for the race checker (no-op
  // unless -DPANDA_HB=ON).
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);
  for (const auto& [from, to] : staged) {
    options.retry.Run(&ep.clock(), options.robustness, [&] {
      if (from.empty()) {
        fs.Remove(to);
      } else {
        fs.Rename(from, to);
      }
    });
  }
  // A committed checkpoint retires the timestep journal's history.
  if (req.op == IoOp::kWrite) {
    MaybeGcJournals(ep, fs, world, params, req, options, plan_cache, dead);
  }

  if (sidx == 0) {
    std::int64_t epoch = 0;
    // Group metadata, with the dead set recorded for offline tools.
    if (req.op == IoOp::kWrite && !req.meta_file.empty() &&
        !ep.timing_only()) {
      // Version the layout: a commit that changes the recorded dead set
      // — this failover, or (through the rejoin path) a repair that
      // cleared it — bumps the epoch, so clients and offline tools can
      // tell which layout generation the files are under.
      std::vector<int> prev_dead;
      std::int64_t prev_epoch = 0;
      if (fs.Exists(req.meta_file)) {
        GroupMeta prev;
        options.retry.Run(&ep.clock(), options.robustness,
                          [&] { prev = ReadGroupMeta(fs, req.meta_file); });
        prev_dead = ParseDeadServersAttr(prev.attributes);
        prev_epoch = ParseLayoutEpochAttr(prev.attributes);
      }
      epoch = prev_epoch + (dead != prev_dead ? 1 : 0);
      CollectiveRequest meta_req = req;
      if (!dead.empty()) {
        meta_req.attributes[kDeadServersAttr] = EncodeDeadServersAttr(dead);
      }
      if (epoch > 0) {
        meta_req.attributes[kLayoutEpochAttr] = std::to_string(epoch);
      }
      if (options.shard_bytes > 0) {
        meta_req.attributes[kShardBytesAttr] =
            std::to_string(options.shard_bytes);
      }
      hb::StampAccess(&fs, "server.fs", /*is_write=*/true);
      options.retry.Run(&ep.clock(), options.robustness,
                        [&] { UpdateGroupMeta(fs, meta_req); });
    }
    // Completion: an empty failover notice to every client replaces the
    // kTagServerDone + client-broadcast epilogue of the clean protocol.
    // It carries the committed layout epoch, so every client knows the
    // layout generation before its next collective.
    for (int c = 0; c < world.num_clients; ++c) {
      ep.Send(world.client_rank(c), kTagFailover,
              MakeFailoverMessage(ep.rank(), {}, epoch));
    }
  }
}

// Master-side rejoin admission (docs/PROTOCOL.md "Rejoin and
// incarnation fencing"). Called while holding the next trigger request,
// before it is distributed — every other live server is parked on its
// kTagBcast receive, so a repair collective can run ahead of the
// trigger and the trigger's collective already sees the restored
// layout. `acked` maps server index -> the highest incarnation this
// master has shaken hands with (local to one ServerMain invocation:
// a later Run() simply re-admits, which is idempotent).
void HandleRejoinsAsMaster(Endpoint& ep, FileSystem& fs, const World& world,
                           const Sp2Params& params,
                           const CollectiveRequest& trigger,
                           const ServerOptions& options, PlanCache& plan_cache,
                           std::map<int, std::int64_t>& acked) {
  // Pending rejoiners: revived peers whose current incarnation we have
  // not acknowledged. Transport liveness — not message arrival — is the
  // trigger, because the handshake may still be in flight; the directed
  // receive below waits for it. Incarnations only change between Run()
  // calls, so this scan cannot race a restart.
  std::vector<int> pending;
  for (int s = 1; s < world.num_servers; ++s) {
    const int r = world.server_rank(s);
    if (ep.peer_alive(r) && ep.peer_incarnation(r) > 1 &&
        acked[s] < ep.peer_incarnation(r)) {
      pending.push_back(s);
    }
  }
  if (pending.empty()) return;
  for (int s : pending) {
    // peer_alive(r) held just above, so the rejoiner's hello is either
    // already deposited or in flight; if it dies again mid-handshake
    // the lease raises PeerDeadError, which the ServerMain dispatch
    // converts to the structured abort.
    const RejoinNotice hello =
        // panda-lint: allow(proto-deadline)
        DecodeRejoinNotice(ep.Recv(world.server_rank(s), kTagRejoin));
    PANDA_CHECK_MSG(hello.origin_rank == world.server_rank(s),
                    "rejoin handshake origin mismatch");
    acked[s] = hello.incarnation;
  }

  // Membership verdict. Repair is possible only with committed group
  // metadata naming the dead set; a trigger without usable metadata
  // (a shutdown, a timing-only sweep, a group that never committed)
  // still acknowledges the rejoiners — they must never wedge on the
  // handshake — and the membership update is a no-op.
  GroupMeta meta;
  std::vector<int> prev_dead;
  bool have_meta = false;
  if (!trigger.meta_file.empty() && !ep.timing_only() &&
      fs.Exists(trigger.meta_file)) {
    options.retry.Run(&ep.clock(), options.robustness,
                      [&] { meta = ReadGroupMeta(fs, trigger.meta_file); });
    prev_dead = ParseDeadServersAttr(meta.attributes);
    have_meta = true;
  }
  const bool repair = have_meta && !prev_dead.empty();
  if (repair) {
    // All-or-nothing: re-admitting a subset would mix two layouts in
    // one group — the still-dead servers' chunks stay adopted while the
    // rejoined one's migrate back, and no collective could verify
    // against either. Abort (structured, liveness-preserving: the
    // rejoiners are blocked on this ack) rather than guess.
    for (int s : prev_dead) {
      PANDA_REQUIRE(ep.peer_alive(world.server_rank(s)),
                    "partial rejoin: server %d is still dead while others "
                    "rejoined; repair needs the full recorded-dead set back",
                    s);
    }
  }

  const std::int64_t prev_epoch =
      have_meta ? ParseLayoutEpochAttr(meta.attributes) : 0;
  const std::int64_t new_epoch = prev_epoch + 1;
  std::vector<int> dead_ranks;
  dead_ranks.reserve(prev_dead.size());
  for (int s : prev_dead) dead_ranks.push_back(world.server_rank(s));
  for (int s : pending) {
    RejoinNotice ack;
    ack.origin_rank = ep.rank();
    ack.incarnation = acked[s];
    ack.epoch = repair ? new_epoch : prev_epoch;
    ack.repair = repair;
    ack.dead_ranks = dead_ranks;
    ep.Send(world.server_rank(s), kTagRejoin, MakeRejoinMessage(ack));
  }
  if (!repair) return;

  // Rebalance back: broadcast the synthetic repair collective to every
  // live server (all parked on kTagBcast), run the master's own share,
  // then commit the membership update — dead set cleared, epoch bumped.
  // Until the metadata write lands the group still records the old
  // membership; a crash inside this window is the torn state the
  // journal-epoch check in panda_fsck flags offline.
  const CollectiveRequest repair_req =
      BuildRepairRequest(fs, meta, trigger.meta_file, prev_dead, new_epoch,
                         trigger.first_client, trigger.num_clients);
  const Message repair_msg = repair_req.ToMessage();
  for (int s = 1; s < world.num_servers; ++s) {
    if (!ep.peer_alive(world.server_rank(s))) continue;
    Message copy = repair_msg;
    ep.Send(world.server_rank(s), kTagBcast, std::move(copy));
  }
  RepairCollective(ep, fs, world, params, repair_req, options, &plan_cache);
  meta.attributes.erase(kDeadServersAttr);
  meta.attributes[kLayoutEpochAttr] = std::to_string(new_epoch);
  hb::StampAccess(&fs, "server.fs", /*is_write=*/true);
  options.retry.Run(&ep.clock(), options.robustness, [&] {
    WriteGroupMeta(fs, trigger.meta_file, meta);
  });
  if (options.robustness != nullptr) {
    options.robustness->rejoins_completed.fetch_add(
        static_cast<std::int64_t>(prev_dead.size()));
  }
}

}  // namespace

void ServerExecute(Endpoint& ep, FileSystem& fs, const World& world,
                   const Sp2Params& params, const CollectiveRequest& req,
                   ServerOptions options, PlanCache* plan_cache) {
  ServerExecuteImpl(ep, fs, world, params, req, options, plan_cache,
                    /*dead_servers=*/{}, WorkPhase::kFull,
                    /*staged_renames=*/nullptr);
}

void ServerMain(Endpoint& ep, FileSystem& fs, const World& world,
                const Sp2Params& params, ServerOptions options) {
  world.Validate();
  const int sidx = world.server_index(ep.rank());
  PANDA_CHECK_MSG(world.is_server_rank(ep.rank()),
                  "ServerMain called on non-server rank %d", ep.rank());
  const Group servers = world.ServerGroup(ep.rank());
  PlanCache plan_cache;

  // Rejoin handshake (failover mode only). A restarted server announces
  // itself to the master and blocks until admitted; the master folds the
  // admission into its next trigger request (HandleRejoinsAsMaster), so
  // the rejoinee may wait across idle time. A first-incarnation server
  // (incarnation 1) has nothing to announce. If the master itself is
  // dead the handshake can never complete — convert the detection into
  // the structured abort, exactly like the request-distribution path.
  if (options.failover && sidx != 0 && ep.incarnation() > 1) {
    try {
      RejoinNotice hello;
      hello.origin_rank = ep.rank();
      hello.incarnation = ep.incarnation();
      ep.Send(world.master_server_rank(), kTagRejoin, MakeRejoinMessage(hello));
      (void)DecodeRejoinNotice(
          ep.Recv(world.master_server_rank(), kTagRejoin));
    } catch (const PandaAbortError&) {
      throw;
    } catch (const PandaError& e) {
      if (options.robustness != nullptr) {
        options.robustness->collectives_aborted.fetch_add(1);
      }
      throw PandaAbortError(ep.rank(), e.what());
    }
  }
  std::map<int, std::int64_t> rejoin_acked;

  int live_applications = options.num_applications;
  while (live_applications > 0) {
    Message request_msg;
    if (sidx == 0) {
      // Any application's master client may request next; the broadcast
      // imposes one global order on all servers.
      request_msg = ep.RecvAny(kTagCollectiveRequest);
      if (options.failover) {
        // Admit any pending rejoiners before distributing the trigger:
        // every other live server is still parked on its kTagBcast
        // receive, so a repair collective can run here and the trigger
        // below already executes under the restored layout.
        const CollectiveRequest trigger =
            CollectiveRequest::FromMessage(request_msg);
        const World trigger_world =
            world.WithClients(trigger.first_client, trigger.num_clients);
        try {
          HandleRejoinsAsMaster(ep, fs, world, params, trigger, options,
                                plan_cache, rejoin_acked);
        } catch (const PandaAbortError& e) {
          RelayAbortFromMasterServer(ep, world, trigger_world,
                                     e.origin_rank(), e.reason());
          throw;
        } catch (const PandaError& e) {
          if (options.robustness != nullptr) {
            options.robustness->collectives_aborted.fetch_add(1);
          }
          RelayAbortFromMasterServer(ep, world, trigger_world, ep.rank(),
                                     e.what());
          throw PandaAbortError(ep.rank(), e.what());
        }
      }
    }
    if (options.failover) {
      // Point-to-point request distribution to the *live* servers: the
      // tree broadcast would wedge on a crash-stopped interior node.
      if (sidx == 0) {
        for (int s = 1; s < world.num_servers; ++s) {
          if (!ep.peer_alive(world.server_rank(s))) continue;
          Message copy = request_msg;
          ep.Send(world.server_rank(s), kTagBcast, std::move(copy));
        }
      } else {
        try {
          request_msg = ep.Recv(world.master_server_rank(), kTagBcast);
        } catch (const PandaAbortError&) {
          throw;
        } catch (const PandaError& e) {
          // The master server died between collectives. Without the hub
          // no further request can be distributed and no abort can be
          // relayed through it, so convert the detection into the
          // structured abort directly; the machine-level abort backstop
          // fans it out to every remaining rank.
          if (options.robustness != nullptr) {
            options.robustness->collectives_aborted.fetch_add(1);
          }
          throw PandaAbortError(ep.rank(), e.what());
        }
      }
    } else {
      try {
        request_msg = Bcast(ep, servers, 0, std::move(request_msg));
      } catch (const PandaAbortError&) {
        throw;
      } catch (const PandaError& e) {
        // A peer server dying mid-broadcast (non-failover build) must
        // become the structured abort here, not a raw PeerDeadError
        // escaping the dispatch loop — the exact class panda_mc caught
        // in tests/schedules/master-kill-abort.mctrace.
        if (options.robustness != nullptr) {
          options.robustness->collectives_aborted.fetch_add(1);
        }
        throw PandaAbortError(ep.rank(), e.what());
      }
    }
    const CollectiveRequest req = CollectiveRequest::FromMessage(request_msg);
    if (req.op == IoOp::kShutdown) {
      PANDA_DEBUG("server %d: application at rank %d shut down", sidx,
                  req.first_client);
      --live_applications;
      continue;
    }
    if (req.op == IoOp::kQueryMeta) {
      // Metadata query: the master server answers from its .schema file
      // (resume support); the other servers only observed the broadcast.
      if (sidx == 0) {
        Message reply;
        Encoder enc(reply.header);
        if (!ep.timing_only() && !req.meta_file.empty() &&
            fs.Exists(req.meta_file)) {
          enc.Put<std::uint8_t>(1);
          GroupMeta meta;
          options.retry.Run(&ep.clock(), options.robustness,
                            [&] { meta = ReadGroupMeta(fs, req.meta_file); });
          enc.PutBytes(meta.Encode());
        } else {
          enc.Put<std::uint8_t>(0);  // absent
        }
        ep.Send(req.first_client, kTagServerDone, std::move(reply));
      }
      continue;
    }

    // Serve the request against the requesting application's client
    // window (the servers themselves are shared).
    const World app_world = world.WithClients(req.first_client,
                                              req.num_clients);
    try {
      if (req.op == IoOp::kRepair) {
        // Synthetic repair collective broadcast by the master during
        // rejoin admission (HandleRejoinsAsMaster). Only non-masters see
        // it through the request loop — the master runs its share inline.
        RepairCollective(ep, fs, app_world, params, req, options,
                         &plan_cache);
        continue;
      }
      if (options.failover) {
        FailoverCollective(ep, fs, app_world, params, req, options,
                           &plan_cache);
      } else {
        ServerExecute(ep, fs, app_world, params, req, options, &plan_cache);

        // Completion: servers gather to the master server, which
        // notifies the requesting application's master client.
        // (Gather-only: servers need no release — they fall straight
        // back into the next request broadcast.)
        GatherSync(ep, servers);
        if (sidx == 0) {
          ep.Send(app_world.master_client_rank(), kTagServerDone, Message{});
        }
      }
    } catch (const PandaAbortError& e) {
      // Another rank's abort notice interrupted one of our receives.
      // The master server is the server-side relay hub: fan the notice
      // out to the remaining servers and the application's master
      // client, then die with the structured error ourselves.
      if (sidx == 0) {
        RelayAbortFromMasterServer(ep, world, app_world, e.origin_rank(),
                                   e.reason());
      }
      throw;
    } catch (const PandaError& e) {
      // This server hit an unrecoverable fault (exhausted retry budget,
      // crash-stop disk death, checksum failure...): it is the abort's
      // origin. Notify the hub — or fan out ourselves if we *are* the
      // hub — and die with the structured error. Sends are buffered, so
      // a dying rank never blocks on its own notifications.
      if (options.robustness != nullptr) {
        options.robustness->collectives_aborted.fetch_add(1);
      }
      if (sidx == 0) {
        RelayAbortFromMasterServer(ep, world, app_world, ep.rank(), e.what());
      } else {
        ep.Send(world.master_server_rank(), kTagAbort,
                MakeAbortMessage(ep.rank(), e.what()));
      }
      throw PandaAbortError(ep.rank(), e.what());
    }
  }
  PANDA_DEBUG("server %d shutting down", sidx);
}

}  // namespace panda
