// ArrayGroup: Figure 2's top-level collective-i/o handle.
//
//   ArrayGroup simulation("Sim2", "simulation2.schema");
//   simulation.Include(&temperature);
//   ...
//   simulation.Timestep(client);                 // every timestep
//   if (i == 50) simulation.Checkpoint(client);  // and a checkpoint
//
// A single Timestep()/Checkpoint() call is one collective i/o request
// covering every included array.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "panda/client.h"

namespace panda {

class ArrayGroup {
 public:
  // `schema_file` ("" to disable) is the group metadata file the master
  // server maintains on its local file system.
  explicit ArrayGroup(std::string name, std::string schema_file = "");

  void Include(Array* array);
  const std::vector<Array*>& arrays() const { return arrays_; }
  const std::string& name() const { return name_; }

  // Appends one timestep's worth of output for all arrays (collective).
  // Returns this client's elapsed virtual time.
  double Timestep(PandaClient& client);

  // Writes a checkpoint (overwrites the previous one).
  double Checkpoint(PandaClient& client);

  // Restores all arrays' local data from the last checkpoint.
  double Restart(PandaClient& client);

  // Plain write/read of the arrays' current contents (.dat files).
  double Write(PandaClient& client);
  double Read(PandaClient& client);

  // Reads back timestep `seq` (0-based) into the arrays' local data.
  double ReadTimestep(PandaClient& client, std::int64_t seq);

  // Number of timesteps this handle has written.
  std::int64_t timesteps_written() const { return timesteps_; }

  // Resumes a previous run: queries the group's schema file on the
  // master server, fast-forwards the timestep counter so new Timestep()
  // calls append after the recorded ones, and restores the attributes.
  // Returns false (leaving the counter at 0) when no metadata exists.
  // Requires a schema_file name.
  bool Resume(PandaClient& client);

  // User attributes: small key/value strings recorded with the group's
  // metadata on every write collective (iteration number, dt, ...) and
  // restored by Resume(). SPMD: set them identically on every client.
  void SetAttribute(const std::string& key, const std::string& value);
  // Returns the attribute's value, or "" when absent.
  std::string GetAttribute(const std::string& key) const;
  const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }

 private:
  double Run(PandaClient& client, IoOp op, Purpose purpose, std::int64_t seq);

  std::string name_;
  std::string schema_file_;
  std::vector<Array*> arrays_;
  std::int64_t timesteps_ = 0;
  std::map<std::string, std::string> attributes_;
};

}  // namespace panda
