// Server-directed i/o planning.
//
// The heart of the paper: given an array's memory schema, disk schema and
// the number of i/o servers, every participant independently derives the
// *same* plan — which disk chunks exist, which server owns each (implicit
// round-robin assignment, the paper's chunk-level striping), how chunks
// split into <=1 MB sub-chunks, and which client holds each "piece"
// (sub-chunk ∩ client memory cell). Servers then direct the data flow in
// plan order, which turns every file access into a sequential one.
//
// Determinism and deadlock freedom: servers process their chunks in
// ascending global chunk id, and each client services its pieces in
// ascending (chunk, sub-chunk, piece) order. Because every server's
// request stream is a subsequence of that global order, the globally
// earliest unserved piece always has its request already sent, so the
// protocol cannot deadlock (see tests/panda_protocol_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "mdarray/schema.h"
#include "panda/array.h"

namespace panda {

// One piece: the part of a sub-chunk held by one client.
struct PiecePlan {
  int client = 0;       // memory-mesh position == Panda client index
  Region region;        // piece region in global array coordinates
  std::int64_t bytes = 0;
  // Contiguity in the client's memory buffer / the sub-chunk buffer:
  // contiguous moves are plain memcpys (free in the timing model);
  // strided ones charge the reorganization (pack/unpack) cost.
  bool contiguous_in_client = false;
  bool contiguous_in_subchunk = false;
};

struct SubchunkPlan {
  Region region;                 // sub-chunk region (subset of the chunk)
  std::int64_t file_offset = 0;  // byte offset inside the server's segment
  std::int64_t bytes = 0;
  std::vector<PiecePlan> pieces; // ascending client index
  // False when a subarray plan clipped every piece away: the server
  // neither touches the disk nor sends anything for this sub-chunk.
  bool active = true;
};

struct ChunkPlan {
  int chunk_id = 0;              // global id, ascending across the plan
  int server = 0;                // owning server: chunk_id % num_servers
  Region region;
  std::int64_t file_offset = 0;  // byte offset inside the server's segment
  std::int64_t bytes = 0;
  std::vector<SubchunkPlan> subchunks;  // row-major order; contiguous ranges
};

// A client's next obligation, in global service order.
struct ClientStep {
  int chunk_index = 0;  // index into IoPlan::chunks
  int sub_index = 0;
  int piece_index = 0;
};

class IoPlan {
 public:
  // Builds the plan shared by all participants. `subchunk_bytes` is the
  // transfer/buffer unit (1 MB in the paper).
  IoPlan(const ArrayMeta& meta, int num_servers, std::int64_t subchunk_bytes);

  // Subarray plan: pieces are additionally clipped to `active` (a
  // region of the global array), so only the data inside it moves.
  // Chunk/sub-chunk geometry and file offsets are those of the *full*
  // array — the files on disk do not change shape — and sub-chunks
  // whose pieces all clip away are marked inactive so servers skip
  // their disk accesses entirely.
  IoPlan(const ArrayMeta& meta, int num_servers, std::int64_t subchunk_bytes,
         const Region& active);

  const std::vector<ChunkPlan>& chunks() const { return chunks_; }
  int num_servers() const { return num_servers_; }

  // Indices (into chunks()) of the chunks server `s` owns, ascending.
  const std::vector<int>& ChunksOfServer(int s) const;

  // Client `c`'s obligations in global service order.
  const std::vector<ClientStep>& StepsOfClient(int c) const;

  // Bytes of this array stored in server `s`'s file segment. Timestep
  // output appends segments, so segment sizes define append offsets.
  std::int64_t SegmentBytes(int s) const;

  const PiecePlan& piece(const ClientStep& step) const;
  const SubchunkPlan& subchunk(const ClientStep& step) const;
  const ChunkPlan& chunk(const ClientStep& step) const;

  // Total number of pieces (== data messages per direction).
  std::int64_t TotalPieces() const;

 private:
  int num_servers_;
  std::vector<ChunkPlan> chunks_;
  std::vector<std::vector<int>> chunks_of_server_;
  std::vector<std::vector<ClientStep>> steps_of_client_;
  std::vector<std::int64_t> segment_bytes_;
};

}  // namespace panda
