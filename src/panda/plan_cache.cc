#include "panda/plan_cache.h"

#include <algorithm>

#include "panda/protocol.h"

namespace panda {

std::string PlanCache::KeyOf(const ArrayMeta& meta, int num_servers,
                             std::int64_t subchunk_bytes,
                             const Region* active) {
  std::vector<std::byte> bytes;
  Encoder enc(bytes);
  meta.EncodeTo(enc);
  enc.Put<std::int32_t>(num_servers);
  enc.Put<std::int64_t>(subchunk_bytes);
  enc.Put<std::uint8_t>(active != nullptr ? 1 : 0);
  if (active != nullptr) EncodeRegion(enc, *active);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::shared_ptr<const IoPlan> PlanCache::Get(const ArrayMeta& meta,
                                             int num_servers,
                                             std::int64_t subchunk_bytes,
                                             const Region* active) {
  const std::string key = KeyOf(meta, num_servers, subchunk_bytes, active);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(std::find(lru_.begin(), lru_.end(), key));
    lru_.push_front(key);
    return it->second;
  }
  ++misses_;
  auto plan = active != nullptr
                  ? std::make_shared<const IoPlan>(meta, num_servers,
                                                   subchunk_bytes, *active)
                  : std::make_shared<const IoPlan>(meta, num_servers,
                                                   subchunk_bytes);
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  entries_.emplace(key, plan);
  lru_.push_front(key);
  return plan;
}

}  // namespace panda
