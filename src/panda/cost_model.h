// Analytic cost model for Panda collectives.
//
// The paper's conclusion announces: "we ... are developing a cost model
// to predict Panda's performance given an in-memory and on-disk schema".
// This module implements that model for the server-directed protocol:
// given the two schemas, the machine parameters and the node counts, it
// predicts the collective's elapsed time without running it.
//
// The model walks the same IoPlan the runtime uses and accounts, per
// server, the serial per-piece chain (request round trip, wire
// occupancy, strided pack/unpack) plus disk service times — and, per
// client, its total send-side occupancy. The collective is predicted at
// the fixed startup/completion cost plus the slowest node.
// Accuracy against the virtual-time simulation is validated in
// tests/cost_model_test.cc (within ~20% across schema combinations).
#pragma once

#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/runtime.h"
#include "sp2/params.h"

namespace panda {

struct CostEstimate {
  double elapsed_s = 0.0;        // predicted collective elapsed time
  double startup_s = 0.0;        // fixed request + completion overhead
  double max_server_busy_s = 0.0;
  double max_client_busy_s = 0.0;
  double disk_s = 0.0;           // slowest server's disk component

  // Predicted aggregate throughput (array bytes / elapsed).
  double ThroughputBps(std::int64_t total_bytes) const {
    return static_cast<double>(total_bytes) / elapsed_s;
  }
};

// Predicts one collective over `arrays` (all processed sequentially, as
// the runtime does). `subarray` (reads only) clips the plan like
// PandaClient::ReadSubarray does.
//
// `codec_ratio` models the sub-chunk compression pipeline for arrays
// that negotiated a codec (meta.codec != kNone): wire and disk bytes
// scale by the ratio (framed/raw, usually sampled via AdviseCodec) and
// every piece/sub-chunk pays the encode/decode compute of
// params.codec_*_Bps. Arrays with codec=none ignore it entirely, so the
// default 1.0 predicts exactly the pre-codec model.
CostEstimate PredictCollective(std::span<const ArrayMeta> arrays, IoOp op,
                               const World& world, const Sp2Params& params,
                               const Region* subarray = nullptr,
                               double codec_ratio = 1.0);

// Single-array convenience.
CostEstimate PredictArrayIo(const ArrayMeta& meta, IoOp op, const World& world,
                            const Sp2Params& params,
                            const Region* subarray = nullptr,
                            double codec_ratio = 1.0);

}  // namespace panda
