#include "panda/frame_io.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "panda/failover.h"
#include "util/error.h"

namespace panda {
namespace {

void AppendLog(std::string* log, const std::string& line) {
  if (log == nullptr) return;
  log->append(line);
  log->push_back('\n');
}

}  // namespace

FramedSubchunkRead ReadFramedSubchunk(File& data, File* frame_dir,
                                      std::int64_t record_index,
                                      std::int64_t file_offset,
                                      std::int64_t raw_bytes,
                                      std::int64_t elem_size,
                                      const RetryPolicy& retry,
                                      VirtualClock* clock,
                                      RobustnessStats* stats) {
  FramedSubchunkRead out;

  const auto read_slot = [&](std::int64_t nbytes) {
    std::vector<std::byte> buf(static_cast<size_t>(nbytes));
    retry.Run(clock, stats,
              [&] { data.ReadAt(file_offset, {buf.data(), buf.size()},
                                nbytes); });
    return buf;
  };

  // Fast path: the directory names the slot's exact representation.
  bool directory_tried = false;
  if (frame_dir != nullptr) {
    std::optional<FrameDirRecord> rec;
    retry.Run(clock, stats,
              [&] { rec = ReadFrameDirRecord(*frame_dir, record_index); });
    if (rec.has_value() && rec->file_offset == file_offset &&
        rec->raw_bytes == raw_bytes && rec->frame_bytes >= 0 &&
        rec->frame_bytes <= raw_bytes) {
      directory_tried = true;
      try {
        std::vector<std::byte> slot = read_slot(rec->frame_bytes);
        out.raw = DecodeSubchunkFrame({slot.data(), slot.size()}, rec->codec,
                                      raw_bytes, elem_size);
        out.codec = rec->codec;
        out.frame_bytes = rec->frame_bytes;
        return out;
      } catch (const TransientIoError&) {
        throw;  // retry budget exhausted: genuinely unreadable
      } catch (const PandaError&) {
        // Directory and slot disagree; fall through to the probe.
      }
    }
    // A torn/corrupt/mismatched record is tolerated like a torn journal
    // tail: the slot's self-describing header is the fallback.
  }

  // Probe path: read the whole slot (bounded by the file's actual end —
  // a framed tail sub-chunk legitimately leaves the file short) and let
  // the self-describing header sort out the representation.
  try {
    const std::int64_t remaining = data.Size() - file_offset;
    PANDA_REQUIRE(remaining > 0,
                  "sub-chunk slot at offset %lld is past the end of the file",
                  static_cast<long long>(file_offset));
    const std::int64_t avail = std::min(raw_bytes, remaining);
    std::vector<std::byte> slot = read_slot(avail);
    const std::optional<FrameHeader> h =
        ParseFrameHeader({slot.data(), slot.size()});
    out.frame_bytes = (h.has_value() && h->raw_bytes == raw_bytes &&
                       kFrameHeaderBytes + h->enc_bytes <= avail)
                          ? kFrameHeaderBytes + h->enc_bytes
                          : raw_bytes;
    out.raw = ProbeDecodeSubchunk({slot.data(), slot.size()}, raw_bytes,
                                  elem_size, &out.codec);
  } catch (const TransientIoError&) {
    throw;
  } catch (const PandaError&) {
    if (stats != nullptr) stats->frame_decode_failures.fetch_add(1);
    throw;
  }
  if (directory_tried) {
    out.healed = true;
    if (stats != nullptr) stats->frame_rereads.fetch_add(1);
  }
  return out;
}

std::vector<std::byte> ReadSubchunkForVerify(File& data, File* frame_dir,
                                             CodecId codec,
                                             std::int64_t record_index,
                                             std::int64_t file_offset,
                                             std::int64_t raw_bytes,
                                             std::int64_t elem_size) {
  if (codec == CodecId::kNone) {
    std::vector<std::byte> buf(static_cast<size_t>(raw_bytes));
    data.ReadAt(file_offset, {buf.data(), buf.size()}, raw_bytes);
    return buf;
  }
  const RetryPolicy no_retry{1};
  return ReadFramedSubchunk(data, frame_dir, record_index, file_offset,
                            raw_bytes, elem_size, no_retry, /*clock=*/nullptr,
                            /*stats=*/nullptr)
      .raw;
}

void FrameReport::Merge(const FrameReport& other) {
  files_checked += other.files_checked;
  files_without_directory += other.files_without_directory;
  subchunks_checked += other.subchunks_checked;
  frames_encoded += other.frames_encoded;
  torn_records += other.torn_records;
  framing_mismatches += other.framing_mismatches;
  decode_failures += other.decode_failures;
}

FrameReport VerifyArrayFrames(std::span<FileSystem* const> fs,
                              const ArrayMeta& meta,
                              std::int64_t subchunk_bytes, Purpose purpose,
                              std::int64_t num_segments,
                              const std::string& group, std::string* log,
                              const std::vector<int>& dead_servers) {
  FrameReport report;
  const int num_servers = static_cast<int>(fs.size());
  const IoPlan plan(meta, num_servers, subchunk_bytes);
  const DegradedLayout layout = DegradedLayout::Compute(plan, dead_servers);
  const RetryPolicy no_retry{1};  // offline pass: fail loudly, heal nothing

  for (int s = 0; s < num_servers; ++s) {
    if (!layout.alive[static_cast<size_t>(s)]) continue;  // lost disk
    const std::vector<WorkItem> work =
        BuildServerWork(plan, layout, s, WorkPhase::kFull);
    if (work.empty()) continue;  // this server stores none of the array

    const std::string data_name = DataFileName(group, meta.name, purpose, s);
    if (!fs[s]->Exists(data_name)) continue;  // array/purpose never written

    const std::string dir_name = FrameDirFileName(data_name);
    std::unique_ptr<File> dir;
    if (fs[s]->Exists(dir_name)) {
      dir = fs[s]->Open(dir_name, OpenMode::kRead);
    } else {
      ++report.files_without_directory;
      AppendLog(log, "no frame directory (probing headers): " + data_name +
                         " [server " + std::to_string(s) + "]");
    }

    ++report.files_checked;
    auto data = fs[s]->Open(data_name, OpenMode::kRead);
    const std::int64_t records_per_segment =
        static_cast<std::int64_t>(work.size());

    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      const std::int64_t base =
          purpose == Purpose::kTimestep ? seg * layout.SegmentBytes(s) : 0;
      for (std::int64_t k = 0; k < records_per_segment; ++k) {
        const WorkItem& item = work[static_cast<size_t>(k)];
        const SubchunkPlan& sp =
            plan.chunks()[static_cast<size_t>(item.chunk_index)]
                .subchunks[static_cast<size_t>(item.sub_index)];
        const std::int64_t record_index = seg * records_per_segment + k;
        const std::string where =
            data_name + " [server " + std::to_string(s) + ", segment " +
            std::to_string(seg) + ", subchunk " + std::to_string(k) + "]";

        // Cross-check the directory record against the plan before
        // trusting it; a valid-CRC record pointing elsewhere means the
        // schemas diverged.
        bool record_usable = false;
        if (dir != nullptr) {
          const std::optional<FrameDirRecord> rec =
              ReadFrameDirRecord(*dir, record_index);
          if (!rec.has_value()) {
            ++report.torn_records;
            AppendLog(log, "torn frame directory record " +
                               std::to_string(record_index) +
                               " (probing header): " + where);
          } else if (rec->file_offset != base + item.file_offset ||
                     rec->raw_bytes != sp.bytes ||
                     rec->frame_bytes > sp.bytes) {
            ++report.framing_mismatches;
            AppendLog(log,
                      "frame directory mismatch (record says offset " +
                          std::to_string(rec->file_offset) + "/" +
                          std::to_string(rec->raw_bytes) + "B raw, plan says " +
                          std::to_string(base + item.file_offset) + "/" +
                          std::to_string(sp.bytes) + "B): " + where);
            continue;
          } else {
            record_usable = true;
          }
        }

        ++report.subchunks_checked;
        try {
          FramedSubchunkRead got = ReadFramedSubchunk(
              *data, record_usable ? dir.get() : nullptr, record_index,
              base + item.file_offset, sp.bytes, meta.elem_size, no_retry,
              /*clock=*/nullptr, /*stats=*/nullptr);
          if (got.codec != CodecId::kNone) ++report.frames_encoded;
        } catch (const PandaError& e) {
          ++report.decode_failures;
          AppendLog(log, "undecodable sub-chunk (" + std::string(e.what()) +
                             "): " + where);
        }
      }
    }
  }
  return report;
}

FrameReport VerifyGroupFrames(std::span<FileSystem* const> fs,
                              const GroupMeta& meta,
                              std::int64_t subchunk_bytes, std::string* log) {
  FrameReport report;
  const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
  for (const ArrayMeta& array : meta.arrays) {
    if (array.codec == CodecId::kNone) continue;  // stored raw, no frames
    report.Merge(VerifyArrayFrames(fs, array, subchunk_bytes,
                                   Purpose::kGeneral, 1, meta.group, log,
                                   dead));
    if (meta.timesteps > 0) {
      report.Merge(VerifyArrayFrames(fs, array, subchunk_bytes,
                                     Purpose::kTimestep, meta.timesteps,
                                     meta.group, log, dead));
    }
    if (meta.has_checkpoint) {
      report.Merge(VerifyArrayFrames(fs, array, subchunk_bytes,
                                     Purpose::kCheckpoint, 1, meta.group, log,
                                     dead));
    }
  }
  return report;
}

}  // namespace panda
