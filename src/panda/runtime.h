// Role layout: which ranks are Panda clients and which are servers.
//
// Following the paper's architecture (Figure 1), a Panda application
// dedicates `num_clients` compute nodes and `num_servers` i/o nodes.
// The default layout is clients at ranks 0..C-1 (rank 0 = master
// client) and servers at C..C+S-1 (rank C = master server).
//
// Mixed workloads (paper §5: "the impact of i/o node sharing on
// i/o-intensive applications") are supported by windowed worlds: an
// application's clients may start at any rank (`first_client`) and its
// servers at any rank (`first_server`), so several applications can
// share one set of i/o nodes — or run with dedicated disjoint sets.
#pragma once

#include "msg/collectives.h"
#include "util/error.h"

namespace panda {

struct World {
  int num_clients = 0;
  int num_servers = 0;
  int first_client = 0;
  // -1 means "right after the clients" (the single-application default).
  int first_server = -1;

  int server_base() const {
    return first_server < 0 ? first_client + num_clients : first_server;
  }

  int client_rank(int client_index) const {
    return first_client + client_index;
  }
  int server_rank(int server_index) const {
    return server_base() + server_index;
  }
  int master_client_rank() const { return first_client; }
  int master_server_rank() const { return server_base(); }

  bool is_client_rank(int rank) const {
    return rank >= first_client && rank < first_client + num_clients;
  }
  bool is_server_rank(int rank) const {
    return rank >= server_base() && rank < server_base() + num_servers;
  }

  // This rank's client index (rank must be a client rank).
  int client_index(int rank) const {
    PANDA_CHECK(is_client_rank(rank));
    return rank - first_client;
  }
  int server_index(int rank) const {
    PANDA_CHECK(is_server_rank(rank));
    return rank - server_base();
  }

  Group ClientGroup(int my_rank) const {
    return Group::Consecutive(first_client, num_clients, my_rank);
  }
  Group ServerGroup(int my_rank) const {
    return Group::Consecutive(server_base(), num_servers, my_rank);
  }

  // The same servers serving a different application's client window.
  World WithClients(int new_first_client, int new_num_clients) const {
    World w = *this;
    w.first_server = server_base();
    w.first_client = new_first_client;
    w.num_clients = new_num_clients;
    return w;
  }

  void Validate() const {
    PANDA_REQUIRE(num_clients >= 1 && num_servers >= 1,
                  "a Panda world needs >=1 client and >=1 server");
    PANDA_REQUIRE(first_client >= 0, "bad client window");
    // Client and server windows must not overlap.
    const int sb = server_base();
    PANDA_REQUIRE(first_client + num_clients <= sb || sb + num_servers <= first_client,
                  "client and server rank windows overlap");
  }
};

}  // namespace panda
