#include "panda/advisor.h"

#include <algorithm>
#include <limits>

#include "codec/frame.h"
#include "util/error.h"

namespace panda {
namespace {

// Ordered factorizations of n into exactly k factors, each >= 2
// (except k == 1, where the single factor is n itself).
void Factorizations(int n, int k, std::vector<int>& current,
                    std::vector<std::vector<int>>& out) {
  if (k == 1) {
    // The last factor must still be >= 2 when part of a longer
    // factorization (a 1-part dimension is just *, already covered by
    // the smaller-k candidates); a lone factor may be anything.
    if (current.empty() || n >= 2) {
      current.push_back(n);
      out.push_back(current);
      current.pop_back();
    }
    return;
  }
  for (int f = 2; f <= n; ++f) {
    if (n % f != 0) continue;
    current.push_back(f);
    Factorizations(n / f, k - 1, current, out);
    current.pop_back();
  }
}

// All k-subsets of {0..rank-1}, ascending.
void DimSubsets(int rank, int k, int start, std::vector<int>& current,
                std::vector<std::vector<int>>& out) {
  if (static_cast<int>(current.size()) == k) {
    out.push_back(current);
    return;
  }
  for (int d = start; d < rank; ++d) {
    current.push_back(d);
    DimSubsets(rank, k, d + 1, current, out);
    current.pop_back();
  }
}

}  // namespace

bool IsTraditionalOrder(const Schema& disk, int num_servers) {
  const Region whole = Region::Whole(disk.array_shape());
  const auto& chunks = disk.chunks();
  // Round-robin striping preserves global order across the concatenated
  // per-server files only when no server holds a second chunk.
  if (static_cast<int>(chunks.size()) > num_servers && num_servers > 1) {
    return false;
  }
  std::int64_t expected_offset = 0;
  for (const auto& chunk : chunks) {
    if (!IsContiguousWithin(whole, chunk.region)) return false;
    if (LinearOffsetWithin(whole, chunk.region.lo()) != expected_offset) {
      return false;
    }
    expected_offset += chunk.region.Volume();
  }
  return expected_offset == whole.Volume();
}

std::vector<SchemaCandidate> RankDiskSchemas(const ArrayMeta& meta,
                                             const World& world,
                                             const Sp2Params& params,
                                             const AdvisorOptions& options) {
  const Shape& shape = meta.memory.array_shape();
  const int rank = shape.rank();
  const int servers = world.num_servers;

  std::vector<Schema> schemas;
  schemas.push_back(meta.memory);  // natural chunking

  // Every BLOCK/* assignment of a factorization of the server count.
  for (int k = 1; k <= std::min(rank, 3); ++k) {
    std::vector<std::vector<int>> subsets;
    std::vector<int> current;
    DimSubsets(rank, k, 0, current, subsets);
    std::vector<std::vector<int>> factorizations;
    Factorizations(servers, k, current, factorizations);
    for (const auto& dims : subsets) {
      for (const auto& factors : factorizations) {
        bool feasible = true;
        for (int i = 0; i < k; ++i) {
          if (factors[static_cast<size_t>(i)] >
              shape[dims[static_cast<size_t>(i)]]) {
            feasible = false;  // more parts than elements
          }
        }
        if (!feasible) continue;
        Index mesh_dims;
        std::vector<DimDist> dists(static_cast<size_t>(rank),
                                   DimDist::None());
        for (int i = 0; i < k; ++i) {
          mesh_dims.Append(factors[static_cast<size_t>(i)]);
          dists[static_cast<size_t>(dims[static_cast<size_t>(i)])] =
              DimDist::Block();
        }
        Schema candidate(shape, Mesh(mesh_dims), dists);
        if (std::find(schemas.begin(), schemas.end(), candidate) ==
            schemas.end()) {
          schemas.push_back(std::move(candidate));
        }
      }
    }
  }

  std::vector<SchemaCandidate> out;
  for (Schema& disk : schemas) {
    SchemaCandidate cand;
    cand.traditional_order = IsTraditionalOrder(disk, servers);
    if (options.require_traditional_order && !cand.traditional_order) {
      continue;
    }
    ArrayMeta with_disk = meta;
    with_disk.disk = disk;
    cand.write_cost = PredictArrayIo(with_disk, IoOp::kWrite, world, params);
    cand.read_cost = PredictArrayIo(with_disk, IoOp::kRead, world, params);
    cand.objective_s = options.write_weight * cand.write_cost.elapsed_s +
                       options.read_weight * cand.read_cost.elapsed_s;
    cand.disk = std::move(disk);
    out.push_back(std::move(cand));
  }
  std::sort(out.begin(), out.end(),
            [](const SchemaCandidate& a, const SchemaCandidate& b) {
              return a.objective_s < b.objective_s;
            });
  return out;
}

CodecAdvice AdviseCodec(std::span<const std::byte> sample,
                        std::int64_t elem_size) {
  PANDA_REQUIRE(elem_size > 0, "element size must be positive");
  constexpr std::int64_t kMaxSampleBytes = 256 * 1024;
  // Clip to whole elements so shuffle/delta see well-formed input.
  std::int64_t n = std::min<std::int64_t>(
      static_cast<std::int64_t>(sample.size()), kMaxSampleBytes);
  n -= n % elem_size;
  CodecAdvice best;  // codec=none, ratio 1.0
  if (n == 0) return best;
  const std::span<const std::byte> clipped =
      sample.subspan(0, static_cast<size_t>(n));

  double best_ratio = 1.0;
  CodecId best_codec = CodecId::kNone;
  for (const CodecId id : AllCodecIds()) {
    if (id == CodecId::kNone) continue;
    const SubchunkFrame frame = EncodeSubchunkFrame(id, clipped, elem_size);
    if (frame.codec == CodecId::kNone) continue;  // did not fit its slot
    const double ratio = static_cast<double>(frame.frame_bytes(n)) /
                         static_cast<double>(n);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_codec = id;
    }
  }
  // Incompressible (or barely compressible) data is not worth the
  // encode/decode compute: under a 5% saving, advise none.
  if (best_codec == CodecId::kNone || best_ratio >= 0.95) return best;
  best.codec = best_codec;
  best.sampled_ratio = best_ratio;
  return best;
}

std::int64_t AdviseShardSize(store::StoreBackend backend,
                             std::int64_t segment_bytes,
                             std::int64_t subchunk_bytes,
                             const ObjectStoreModel& model) {
  PANDA_REQUIRE(subchunk_bytes > 0, "sub-chunk size must be positive");
  constexpr std::int64_t kMiB = 1 << 20;
  if (segment_bytes <= subchunk_bytes) {
    return std::max(segment_bytes, subchunk_bytes);
  }
  if (backend == store::StoreBackend::kPosix) {
    // The flat layout is already sequential-optimal on a posix disk;
    // shards exist for bounded handles and repair granularity, and
    // every extra shard costs one table write + one fsync. Prefer few,
    // large shards: the overhead measurably vanishes by 4 MiB
    // (bench_shard_backend), capped so a segment still splits.
    const std::int64_t lo = std::max(subchunk_bytes, 4 * kMiB);
    const std::int64_t hi = std::max<std::int64_t>(lo, 16 * kMiB);
    return std::clamp(segment_bytes / 4, lo, hi);
  }
  // Object store: each shard is one whole-object PUT; `channels` run
  // concurrently, so a segment flush takes about
  //   ceil(n / channels) * (put_latency + shard / put_Bps)
  // waves. Tiny shards drown in round trips, one giant shard wastes
  // the parallel channels; sweep power-of-two multiples of the
  // sub-chunk and take the cheapest (larger wins ties: fewer objects).
  std::int64_t best = subchunk_bytes;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::int64_t shard = subchunk_bytes;;) {
    const std::int64_t capped = std::min(shard, segment_bytes);
    const std::int64_t n = (segment_bytes + capped - 1) / capped;
    const std::int64_t waves = (n + model.channels - 1) / model.channels;
    const double cost =
        static_cast<double>(waves) *
        (model.put_latency_s + static_cast<double>(capped) / model.put_Bps);
    if (cost <= best_cost) {  // <=: tie goes to the larger shard
      best_cost = cost;
      best = capped;
    }
    if (capped >= segment_bytes) break;
    shard *= 2;
  }
  return best;
}

SchemaCandidate AdviseDiskSchema(const ArrayMeta& meta, const World& world,
                                 const Sp2Params& params,
                                 const AdvisorOptions& options) {
  auto ranked = RankDiskSchemas(meta, world, params, options);
  PANDA_REQUIRE(!ranked.empty(),
                "no feasible disk schema for %s on %d i/o nodes",
                meta.name.c_str(), world.num_servers);
  return std::move(ranked.front());
}

}  // namespace panda
