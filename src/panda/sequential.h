// Panda on sequential platforms.
//
// The paper (§1, §5): Panda 2.0 runs "on parallel and sequential
// platforms" — the same array files serve parallel producers and
// sequential consumers (visualizers, post-processing). This module is
// that sequential side: one process holds a whole array in memory and
// moves it to/from the per-i/o-node files through the *same* IoPlan and
// packing kernels as the parallel library, with no message passing.
// Files written here are byte-identical to the parallel library's, and
// vice versa (tests/sequential_test.cc proves both directions).
#pragma once

#include <span>
#include <vector>

#include "iosim/file_system.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "sp2/params.h"

namespace panda {

class SequentialPanda {
 public:
  // `server_fs[i]` plays i/o node i; the set and order must match the
  // parallel configuration that shares the files. Pointers must outlive
  // this object.
  SequentialPanda(std::vector<FileSystem*> server_fs, Sp2Params params);

  int num_servers() const { return static_cast<int>(fs_.size()); }

  // Writes the whole array (row-major in `data`) under `meta`'s disk
  // schema. `meta.memory` is ignored — the sequential platform holds
  // the full array.
  void Write(const ArrayMeta& meta, std::span<const std::byte> data,
             Purpose purpose = Purpose::kGeneral, std::int64_t seq = 0,
             const std::string& group = "");

  // Reads the whole array into `data` (must be total_bytes() long).
  void Read(const ArrayMeta& meta, std::span<std::byte> data,
            Purpose purpose = Purpose::kGeneral, std::int64_t seq = 0,
            const std::string& group = "");

  // Convenience: allocate-and-read.
  std::vector<std::byte> ReadWhole(const ArrayMeta& meta,
                                   Purpose purpose = Purpose::kGeneral,
                                   std::int64_t seq = 0,
                                   const std::string& group = "");

  // Subarray read for sequential consumers (a visualizer pulling one
  // slice): returns `region`'s elements as a dense row-major buffer,
  // touching only the sub-chunks the region intersects on disk.
  std::vector<std::byte> ReadSubarray(const ArrayMeta& meta,
                                      const Region& region,
                                      Purpose purpose = Purpose::kGeneral,
                                      std::int64_t seq = 0,
                                      const std::string& group = "");

 private:
  std::vector<FileSystem*> fs_;
  Sp2Params params_;
};

}  // namespace panda
