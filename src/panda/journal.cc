#include "panda/journal.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "panda/frame_io.h"
#include "panda/store_io.h"
#include "util/codec.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {
namespace {

void AppendLog(std::string* log, const std::string& line) {
  if (log == nullptr) return;
  log->append(line);
  log->push_back('\n');
}

std::vector<std::byte> EncodeRecordBody(const JournalRecord& rec) {
  std::vector<std::byte> buf;
  buf.reserve(static_cast<size_t>(kJournalRecordBytes));
  Encoder enc(buf);
  enc.Put<std::int32_t>(rec.array_index);
  enc.Put<std::int32_t>(rec.chunk_id);
  enc.Put<std::int32_t>(rec.sub_index);
  enc.Put<std::int32_t>(0);  // reserved
  enc.Put<std::int64_t>(rec.seq);
  enc.Put<std::int64_t>(rec.file_offset);
  enc.Put<std::int64_t>(rec.bytes);
  enc.Put<std::uint32_t>(rec.data_crc);
  return buf;
}

}  // namespace

std::string JournalFileName(const std::string& data_file) {
  return data_file + ".wal";
}

void WriteJournalHeader(File& journal, const JournalHeader& hdr) {
  std::vector<std::byte> buf;
  buf.reserve(static_cast<size_t>(kJournalHeaderBytes));
  Encoder enc(buf);
  enc.Put<std::uint32_t>(kJournalHeaderMagic);
  enc.Put<std::uint32_t>(kJournalHeaderVersion);
  enc.Put<std::int64_t>(hdr.base_record);
  enc.Put<std::int64_t>(hdr.epoch);
  for (int i = 0; i < 20; ++i) enc.Put<std::uint8_t>(0);  // reserved
  const std::uint32_t crc = Crc32c({buf.data(), buf.size()});
  enc.Put<std::uint32_t>(crc);
  PANDA_CHECK(static_cast<std::int64_t>(buf.size()) == kJournalHeaderBytes);
  journal.WriteAt(0, buf, kJournalHeaderBytes);
}

std::optional<JournalHeader> ReadJournalHeader(File& journal) {
  if (journal.Size() < kJournalHeaderBytes) return std::nullopt;
  std::vector<std::byte> buf(static_cast<size_t>(kJournalHeaderBytes));
  journal.ReadAt(0, buf, kJournalHeaderBytes);
  Decoder dec(buf);
  if (dec.Get<std::uint32_t>() != kJournalHeaderMagic) return std::nullopt;
  const std::uint32_t version = dec.Get<std::uint32_t>();
  JournalHeader hdr;
  hdr.base_record = dec.Get<std::int64_t>();
  hdr.epoch = dec.Get<std::int64_t>();
  for (int i = 0; i < 20; ++i) (void)dec.Get<std::uint8_t>();
  const std::uint32_t stored = dec.Get<std::uint32_t>();
  const std::uint32_t computed =
      Crc32c({buf.data(), static_cast<size_t>(kJournalHeaderBytes) - 4});
  // A torn or corrupt header slot is indistinguishable from a corrupt
  // record 0 — treat the journal as headerless and let record-level
  // verification flag the slot.
  if (stored != computed || version != kJournalHeaderVersion) {
    return std::nullopt;
  }
  if (hdr.base_record < 0) return std::nullopt;
  return hdr;
}

std::int64_t JournalRecordOffset(const std::optional<JournalHeader>& hdr,
                                 std::int64_t record_index) {
  if (!hdr) return record_index * kJournalRecordBytes;
  return kJournalHeaderBytes +
         (record_index - hdr->base_record) * kJournalRecordBytes;
}

JournalGcResult GcJournal(FileSystem& fs, const std::string& journal_name,
                          std::int64_t new_base, std::int64_t fallback_epoch) {
  JournalGcResult result;
  std::optional<JournalHeader> hdr;
  std::int64_t tail_offset = 0;
  std::int64_t size = 0;
  std::vector<std::byte> tail;
  {
    auto journal = fs.Open(journal_name, OpenMode::kRead);
    hdr = ReadJournalHeader(*journal);
    const std::int64_t old_base = hdr ? hdr->base_record : 0;
    if (new_base <= old_base) return result;  // nothing below the new base
    // Byte position of the first surviving record. Everything from
    // there to EOF — including a torn trailing record — is copied
    // verbatim, so GC never changes what verification would say about
    // the surviving slots.
    tail_offset = JournalRecordOffset(hdr, new_base);
    size = journal->Size();
    if (tail_offset < size) {
      tail.resize(static_cast<size_t>(size - tail_offset));
      journal->ReadAt(tail_offset, tail,
                      static_cast<std::int64_t>(tail.size()));
    }
  }
  JournalHeader fresh;
  fresh.base_record = new_base;
  fresh.epoch = hdr ? hdr->epoch : fallback_epoch;
  // Rewrite-and-rename: a crash mid-GC leaves either the old journal or
  // the new one, never a mix (File has no truncate; rename is the
  // publication primitive everywhere else in Panda too).
  const std::string tmp_name = journal_name + ".gc";
  {
    auto tmp = fs.Open(tmp_name, OpenMode::kWrite);
    WriteJournalHeader(*tmp, fresh);
    if (!tail.empty()) {
      tmp->WriteAt(kJournalHeaderBytes, tail,
                   static_cast<std::int64_t>(tail.size()));
    }
    tmp->Sync();
  }
  fs.Rename(tmp_name, journal_name);
  const std::int64_t old_base = hdr ? hdr->base_record : 0;
  const std::int64_t old_body = std::max<std::int64_t>(
      0, size - (hdr ? kJournalHeaderBytes : 0));
  const std::int64_t old_records = old_base + old_body / kJournalRecordBytes;
  result.truncated = true;
  result.records_dropped = std::min(new_base, old_records) - old_base;
  return result;
}

void WriteJournalRecord(File& journal, std::int64_t record_index,
                        const JournalRecord& rec) {
  WriteJournalRecord(journal, std::nullopt, record_index, rec);
}

void WriteJournalRecord(File& journal,
                        const std::optional<JournalHeader>& hdr,
                        std::int64_t record_index, const JournalRecord& rec) {
  PANDA_CHECK_MSG(!hdr || record_index >= hdr->base_record,
                  "journal write below the GC base");
  std::vector<std::byte> buf = EncodeRecordBody(rec);
  const std::uint32_t record_crc = Crc32c({buf.data(), buf.size()});
  Encoder enc(buf);
  enc.Put<std::uint32_t>(record_crc);
  PANDA_CHECK(static_cast<std::int64_t>(buf.size()) == kJournalRecordBytes);
  journal.WriteAt(JournalRecordOffset(hdr, record_index), buf,
                  kJournalRecordBytes);
}

std::optional<JournalRecord> ReadJournalRecord(File& journal,
                                               std::int64_t record_index) {
  return ReadJournalRecord(journal, std::nullopt, record_index);
}

std::optional<JournalRecord> ReadJournalRecord(
    File& journal, const std::optional<JournalHeader>& hdr,
    std::int64_t record_index) {
  if (hdr && record_index < hdr->base_record) return std::nullopt;
  std::vector<std::byte> buf(static_cast<size_t>(kJournalRecordBytes));
  journal.ReadAt(JournalRecordOffset(hdr, record_index), buf,
                 kJournalRecordBytes);
  Decoder dec(buf);
  JournalRecord rec;
  rec.array_index = dec.Get<std::int32_t>();
  rec.chunk_id = dec.Get<std::int32_t>();
  rec.sub_index = dec.Get<std::int32_t>();
  (void)dec.Get<std::int32_t>();  // reserved
  rec.seq = dec.Get<std::int64_t>();
  rec.file_offset = dec.Get<std::int64_t>();
  rec.bytes = dec.Get<std::int64_t>();
  rec.data_crc = dec.Get<std::uint32_t>();
  const std::uint32_t stored_crc = dec.Get<std::uint32_t>();
  const std::uint32_t computed =
      Crc32c({buf.data(), static_cast<size_t>(kJournalRecordBytes) - 4});
  if (stored_crc != computed) return std::nullopt;
  return rec;
}

void JournalReport::Merge(const JournalReport& other) {
  files_checked += other.files_checked;
  files_without_journal += other.files_without_journal;
  records_checked += other.records_checked;
  records_missing += other.records_missing;
  torn_records += other.torn_records;
  framing_mismatches += other.framing_mismatches;
  data_mismatches += other.data_mismatches;
  records_gced += other.records_gced;
  epoch_mismatches += other.epoch_mismatches;
}

JournalReport VerifyArrayJournal(std::span<FileSystem* const> fs,
                                 const ArrayMeta& meta, std::int32_t array_index,
                                 std::int64_t subchunk_bytes, Purpose purpose,
                                 std::int64_t num_segments,
                                 const std::string& group,
                                 const std::vector<int>& dead_servers,
                                 std::string* log,
                                 std::int64_t expected_epoch,
                                 std::int64_t shard_bytes) {
  JournalReport report;
  const bool sharded = shard_bytes > 0;
  const int num_servers = static_cast<int>(fs.size());
  const IoPlan plan(meta, num_servers, subchunk_bytes);
  const DegradedLayout layout = DegradedLayout::Compute(plan, dead_servers);

  for (int s = 0; s < num_servers; ++s) {
    if (!layout.alive[static_cast<size_t>(s)]) continue;  // lost disk
    const std::vector<WorkItem> work =
        BuildServerWork(plan, layout, s, WorkPhase::kFull);
    if (work.empty()) continue;  // this server stores none of the array

    const std::string data_name = DataFileName(group, meta.name, purpose, s);
    // Sharded layouts have no flat file; shard 0 marks that this
    // (array, purpose) was ever written on this server.
    if (!fs[s]->Exists(sharded ? store::ShardFileName(data_name, 0)
                               : data_name)) {
      continue;  // array/purpose never written
    }

    const std::string journal_name = JournalFileName(data_name);
    if (!fs[s]->Exists(journal_name)) {
      ++report.files_without_journal;
      AppendLog(log, "unjournaled: " + data_name + " [server " +
                         std::to_string(s) + "]");
      continue;
    }

    ++report.files_checked;
    std::unique_ptr<File> data;
    if (!sharded) data = fs[s]->Open(data_name, OpenMode::kRead);
    auto journal = fs[s]->Open(journal_name, OpenMode::kRead);
    // Journal data CRCs cover the *decoded* bytes: codec arrays verify
    // through the frame directory (or header probing). Sharded layouts
    // carry the frame metadata in each shard's table instead.
    std::unique_ptr<File> frame_dir;
    if (!sharded && meta.codec != CodecId::kNone &&
        fs[s]->Exists(FrameDirFileName(data_name))) {
      frame_dir = fs[s]->Open(FrameDirFileName(data_name), OpenMode::kRead);
    }
    std::optional<store::ShardLayout> shards;
    std::optional<store::ShardReader> reader;
    if (sharded) {
      shards = BuildShardLayout(plan, layout, s, shard_bytes);
      reader.emplace(OfflineShardReader(*fs[s], data_name, &*shards));
    }
    const std::int64_t records_per_segment =
        static_cast<std::int64_t>(work.size());
    const std::optional<JournalHeader> hdr = ReadJournalHeader(*journal);
    const std::int64_t jbase = hdr ? hdr->base_record : 0;
    if (hdr && expected_epoch >= 0 && hdr->epoch > expected_epoch) {
      ++report.epoch_mismatches;
      AppendLog(log, "journal epoch " + std::to_string(hdr->epoch) +
                         " ahead of committed metadata epoch " +
                         std::to_string(expected_epoch) + ": " + data_name +
                         " [server " + std::to_string(s) + "]");
    }
    const std::int64_t body_bytes =
        journal->Size() - (hdr ? kJournalHeaderBytes : 0);
    const std::int64_t full_records = jbase + body_bytes / kJournalRecordBytes;
    const bool torn_tail = (body_bytes % kJournalRecordBytes) != 0;

    std::vector<std::byte> buf;
    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      const std::int64_t base =
          purpose == Purpose::kTimestep ? seg * layout.SegmentBytes(s) : 0;
      for (std::int64_t k = 0; k < records_per_segment; ++k) {
        const WorkItem& item = work[static_cast<size_t>(k)];
        const ChunkPlan& cp =
            plan.chunks()[static_cast<size_t>(item.chunk_index)];
        const SubchunkPlan& sp =
            cp.subchunks[static_cast<size_t>(item.sub_index)];
        const std::int64_t record_index = seg * records_per_segment + k;
        const std::string where =
            data_name + " [server " + std::to_string(s) + ", segment " +
            std::to_string(seg) + ", record " + std::to_string(record_index) +
            "]";

        if (record_index < jbase) {
          // Garbage-collected at a committed checkpoint: the checkpoint
          // supersedes this record's durability claim. Benign.
          ++report.records_gced;
          continue;
        }
        if (record_index >= full_records) {
          // A crash mid-append may leave exactly one torn trailing
          // record; anything beyond that is an uncommitted sub-chunk.
          if (torn_tail && record_index == full_records) {
            ++report.torn_records;
            AppendLog(log, "torn trailing record: " + where);
          } else {
            ++report.records_missing;
            AppendLog(log, "uncommitted (no journal record): " + where);
          }
          continue;
        }
        const std::optional<JournalRecord> rec =
            ReadJournalRecord(*journal, hdr, record_index);
        if (!rec) {
          ++report.torn_records;
          AppendLog(log, "record crc failed: " + where);
          continue;
        }
        const std::int64_t want_offset =
            base + item.file_offset;
        if (rec->array_index != array_index || rec->chunk_id != cp.chunk_id ||
            rec->sub_index != item.sub_index || rec->seq != seg ||
            rec->file_offset != want_offset || rec->bytes != sp.bytes) {
          ++report.framing_mismatches;
          AppendLog(log, "framing mismatch (record says chunk " +
                             std::to_string(rec->chunk_id) + "." +
                             std::to_string(rec->sub_index) + " @" +
                             std::to_string(rec->file_offset) + "/" +
                             std::to_string(rec->bytes) + "B, plan says " +
                             std::to_string(cp.chunk_id) + "." +
                             std::to_string(item.sub_index) + " @" +
                             std::to_string(want_offset) + "/" +
                             std::to_string(sp.bytes) + "B): " + where);
          continue;
        }

        ++report.records_checked;
        try {
          if (sharded) {
            buf = std::move(reader->Get(seg, k, meta.elem_size).raw);
          } else {
            buf = ReadSubchunkForVerify(*data, frame_dir.get(), meta.codec,
                                        record_index, want_offset, sp.bytes,
                                        meta.elem_size);
          }
        } catch (const PandaError& e) {
          ++report.data_mismatches;
          AppendLog(log, "unreadable journaled sub-chunk (" +
                             std::string(e.what()) + "): " + where);
          continue;
        }
        const std::uint32_t got = Crc32c({buf.data(), buf.size()});
        if (got != rec->data_crc) {
          ++report.data_mismatches;
          AppendLog(log, "data crc mismatch (journal " +
                             std::to_string(rec->data_crc) + ", computed " +
                             std::to_string(got) + "): " + where);
        }
      }
    }
  }
  return report;
}

JournalReport VerifyGroupJournal(std::span<FileSystem* const> fs,
                                 const GroupMeta& meta,
                                 std::int64_t subchunk_bytes,
                                 std::string* log) {
  JournalReport report;
  const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
  const std::int64_t epoch = ParseLayoutEpochAttr(meta.attributes);
  const std::int64_t shard_bytes = ParseShardBytesAttr(meta.attributes);
  for (size_t a = 0; a < meta.arrays.size(); ++a) {
    const ArrayMeta& array = meta.arrays[a];
    const auto idx = static_cast<std::int32_t>(a);
    report.Merge(VerifyArrayJournal(fs, array, idx, subchunk_bytes,
                                    Purpose::kGeneral, 1, meta.group, dead,
                                    log, epoch, shard_bytes));
    if (meta.timesteps > 0) {
      report.Merge(VerifyArrayJournal(fs, array, idx, subchunk_bytes,
                                      Purpose::kTimestep, meta.timesteps,
                                      meta.group, dead, log, epoch,
                                      shard_bytes));
    }
    if (meta.has_checkpoint) {
      report.Merge(VerifyArrayJournal(fs, array, idx, subchunk_bytes,
                                      Purpose::kCheckpoint, 1, meta.group, dead,
                                      log, epoch, shard_bytes));
    }
  }
  return report;
}

}  // namespace panda
