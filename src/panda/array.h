// Panda's user-facing array abstractions (the Figure 2 API).
//
// An application declares, on every compute node (SPMD style):
//   * ArrayLayout  - a named processor mesh ("memory layout" {8,8}).
//   * Array        - a named multidimensional array with an element size,
//                    a memory schema (layout + HPF distribution) and an
//                    independent disk schema.
// The library owns the mapping from these declarations to files on the
// i/o nodes; the application never computes a file offset.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "mdarray/schema.h"
#include "util/codec.h"

namespace panda {

// Figure 2 spells distributions BLOCK / NONE; keep those names available
// at the API surface.
using Distribution = DimDist;
inline const Distribution BLOCK = DimDist::Block();
inline const Distribution NONE = DimDist::None();
inline Distribution CYCLIC(std::int64_t block = 1) {
  return DimDist::Cyclic(block);
}

// A named processor mesh, e.g. ArrayLayout("memory layout", {8, 8}).
class ArrayLayout {
 public:
  ArrayLayout(std::string name, Shape mesh_dims)
      : name_(std::move(name)), mesh_(mesh_dims) {}

  const std::string& name() const { return name_; }
  const Mesh& mesh() const { return mesh_; }

 private:
  std::string name_;
  Mesh mesh_;
};

// Wire/metadata description of one array: everything a server needs to
// plan i/o. This is what the master client ships to the master server.
struct ArrayMeta {
  std::string name;
  std::int64_t elem_size = 0;
  Schema memory;  // schema over the compute-node mesh
  Schema disk;    // schema over the logical i/o mesh
  // Sub-chunk codec negotiated per array (docs/PROTOCOL.md "Codec
  // negotiation and frame format"): wire piece payloads and on-disk
  // sub-chunks are framed under it. kNone is bit-identical to the
  // pre-codec format on disk. Round-trips through CollectiveRequest and
  // the group metadata (v1 metadata decodes as kNone).
  CodecId codec = CodecId::kNone;

  std::int64_t total_bytes() const {
    return memory.array_shape().Volume() * elem_size;
  }

  void EncodeTo(Encoder& enc) const;
  // `with_codec` is false only when decoding version-1 group metadata,
  // which predates the codec byte (the wire always carries it).
  static ArrayMeta Decode(Decoder& dec, bool with_codec = true);
};

// A client-side array handle: metadata plus this compute node's chunk of
// the data (row-major over the node's memory-schema region).
class Array {
 public:
  // Figure 2-style constructor. `size` is the global shape; memory_dist /
  // disk_dist have one entry per array dimension. The memory schema may
  // not use CYCLIC (the paper supports BLOCK/* in memory; CYCLIC is our
  // disk-side extension).
  Array(std::string name, Shape size, std::int64_t elem_size,
        const ArrayLayout& memory_layout,
        std::vector<Distribution> memory_dist,
        const ArrayLayout& disk_layout, std::vector<Distribution> disk_dist);

  // Construction directly from schemas (library-internal and tests).
  Array(std::string name, std::int64_t elem_size, Schema memory, Schema disk);

  const std::string& name() const { return meta_.name; }
  std::int64_t elem_size() const { return meta_.elem_size; }
  // Sub-chunk codec for this array's collectives (default kNone). Set
  // before the first collective; all clients must agree (SPMD).
  CodecId codec() const { return meta_.codec; }
  void set_codec(CodecId codec) { meta_.codec = codec; }
  const Shape& shape() const { return meta_.memory.array_shape(); }
  const Schema& memory_schema() const { return meta_.memory; }
  const Schema& disk_schema() const { return meta_.disk; }
  const ArrayMeta& meta() const { return meta_; }
  std::int64_t total_bytes() const { return meta_.total_bytes(); }

  // Binds the handle to one compute node (mesh position == Panda client
  // index) and, unless `allocate` is false (timing-only sweeps),
  // allocates the local buffer.
  void BindClient(int client_pos, bool allocate = true);

  bool bound() const { return client_pos_ >= 0; }
  int client_pos() const { return client_pos_; }

  // This node's region of the global array (may be empty).
  const Region& local_region() const;

  // The local buffer: row-major over local_region().
  std::span<std::byte> local_data();
  std::span<const std::byte> local_data() const;

  // Typed views for applications.
  template <typename T>
  std::span<T> local_as() {
    PANDA_CHECK(sizeof(T) == static_cast<size_t>(meta_.elem_size));
    auto raw = local_data();
    return {reinterpret_cast<T*>(raw.data()), raw.size() / sizeof(T)};
  }

 private:
  ArrayMeta meta_;
  int client_pos_ = -1;
  Region local_region_;
  std::vector<std::byte> data_;
};

}  // namespace panda
