#include "panda/report.h"

#include <algorithm>

#include "util/units.h"

namespace panda {

double MaxOverRanks(std::span<const double> values) {
  double max = 0.0;
  for (const double v : values) max = std::max(max, v);
  return max;
}

std::string MachineReport::ToString() const {
  std::string out;
  out += StrFormat("messages: %lld sent (%s on the wire)\n",
                   static_cast<long long>(messages.messages_sent),
                   FormatBytes(messages.bytes_sent).c_str());
  for (size_t s = 0; s < server_fs.size(); ++s) {
    const FsStats& fs = server_fs[s];
    out += StrFormat(
        "  io node %zu: %lld writes (%s), %lld reads (%s), %lld seeks, "
        "%lld syncs, device busy %s\n",
        s, static_cast<long long>(fs.writes),
        FormatBytes(fs.bytes_written).c_str(),
        static_cast<long long>(fs.reads),
        FormatBytes(fs.bytes_read).c_str(),
        static_cast<long long>(fs.seeks), static_cast<long long>(fs.syncs),
        FormatSeconds(fs.busy_seconds).c_str());
  }
  out += StrFormat("clocks: max client %s, max server %s\n",
                   FormatSeconds(MaxOverRanks(client_clock_s)).c_str(),
                   FormatSeconds(MaxOverRanks(server_clock_s)).c_str());
  const bool faults_nonzero =
      robustness.io_retries != 0 || robustness.io_giveups != 0 ||
      robustness.wire_checksum_failures != 0 ||
      robustness.disk_checksum_failures != 0 ||
      robustness.disk_checksum_rereads != 0 ||
      robustness.collectives_aborted != 0 ||
      robustness.frame_rereads != 0 ||
      robustness.frame_decode_failures != 0;
  if (faults_nonzero) {
    out += StrFormat(
        "robustness: %lld retries, %lld give-ups, %lld wire checksum "
        "failures, %lld disk checksum failures (%lld healed by re-read), "
        "%lld frame decode failures (%lld healed by re-read), %lld aborts\n",
        static_cast<long long>(robustness.io_retries),
        static_cast<long long>(robustness.io_giveups),
        static_cast<long long>(robustness.wire_checksum_failures),
        static_cast<long long>(robustness.disk_checksum_failures),
        static_cast<long long>(robustness.disk_checksum_rereads),
        static_cast<long long>(robustness.frame_decode_failures),
        static_cast<long long>(robustness.frame_rereads),
        static_cast<long long>(robustness.collectives_aborted));
  }
  if (robustness.failovers_completed != 0 || robustness.chunks_adopted != 0 ||
      robustness.journal_records_written != 0) {
    out += StrFormat(
        "failover: %lld failovers, %lld chunks adopted, %lld journal "
        "records\n",
        static_cast<long long>(robustness.failovers_completed),
        static_cast<long long>(robustness.chunks_adopted),
        static_cast<long long>(robustness.journal_records_written));
  }
  if (robustness.rejoins_completed != 0 || robustness.chunks_restored != 0 ||
      robustness.journal_records_salvaged != 0 ||
      robustness.journal_gc_truncations != 0) {
    out += StrFormat(
        "rejoin: %lld rejoins, %lld chunks restored, %lld journal records "
        "salvaged, %lld journal gc truncations\n",
        static_cast<long long>(robustness.rejoins_completed),
        static_cast<long long>(robustness.chunks_restored),
        static_cast<long long>(robustness.journal_records_salvaged),
        static_cast<long long>(robustness.journal_gc_truncations));
  }
  if (!transport.AllZero()) {
    out += StrFormat(
        "transport faults: %lld drops (%lld retransmits), %lld dups "
        "(%lld suppressed), %lld reorders, %lld delays, %lld peers "
        "declared dead, %lld ranks killed (%lld revived, %lld stale "
        "incarnation drops)\n",
        static_cast<long long>(transport.drops_injected),
        static_cast<long long>(transport.retransmits),
        static_cast<long long>(transport.dups_injected),
        static_cast<long long>(transport.dups_suppressed),
        static_cast<long long>(transport.reorders_injected),
        static_cast<long long>(transport.delays_injected),
        static_cast<long long>(transport.peers_declared_dead),
        static_cast<long long>(transport.ranks_killed),
        static_cast<long long>(transport.ranks_revived),
        static_cast<long long>(transport.stale_incarnation_dropped));
  }
  return out;
}

namespace {

// One source of truth: every counter the report knows, renamed into the
// registry. The JSON export and the human table both read the snapshot
// this produces (docs/OBSERVABILITY.md lists the catalog).
void FillRegistryFromReport(const MachineReport& report,
                            trace::MetricsRegistry& registry) {
  registry.AddCounter("msg.messages_sent", report.messages.messages_sent);
  registry.AddCounter("msg.messages_received",
                      report.messages.messages_received);
  registry.AddCounter("msg.bytes_sent", report.messages.bytes_sent);
  registry.AddCounter("msg.bytes_received", report.messages.bytes_received);

  FsStats fs_total;
  for (const FsStats& fs : report.server_fs) {
    fs_total.reads += fs.reads;
    fs_total.writes += fs.writes;
    fs_total.bytes_read += fs.bytes_read;
    fs_total.bytes_written += fs.bytes_written;
    fs_total.seeks += fs.seeks;
    fs_total.syncs += fs.syncs;
    fs_total.busy_seconds += fs.busy_seconds;
  }
  registry.AddCounter("fs.reads", fs_total.reads);
  registry.AddCounter("fs.writes", fs_total.writes);
  registry.AddCounter("fs.bytes_read", fs_total.bytes_read);
  registry.AddCounter("fs.bytes_written", fs_total.bytes_written);
  registry.AddCounter("fs.seeks", fs_total.seeks);
  registry.AddCounter("fs.syncs", fs_total.syncs);
  registry.SetGauge("fs.busy_seconds", fs_total.busy_seconds);

  registry.SetGauge("clock.max_client_s", MaxOverRanks(report.client_clock_s));
  registry.SetGauge("clock.max_server_s", MaxOverRanks(report.server_clock_s));

  const RobustnessCounters& rb = report.robustness;
  registry.AddCounter("robustness.io_retries", rb.io_retries);
  registry.AddCounter("robustness.io_giveups", rb.io_giveups);
  registry.AddCounter("robustness.wire_checksum_failures",
                      rb.wire_checksum_failures);
  registry.AddCounter("robustness.disk_checksum_failures",
                      rb.disk_checksum_failures);
  registry.AddCounter("robustness.disk_checksum_rereads",
                      rb.disk_checksum_rereads);
  registry.AddCounter("robustness.collectives_aborted",
                      rb.collectives_aborted);
  registry.AddCounter("robustness.failovers_completed",
                      rb.failovers_completed);
  registry.AddCounter("robustness.chunks_adopted", rb.chunks_adopted);
  registry.AddCounter("robustness.journal_records_written",
                      rb.journal_records_written);
  registry.AddCounter("failover.rejoins", rb.rejoins_completed);
  registry.AddCounter("failover.chunks_restored", rb.chunks_restored);
  registry.AddCounter("journal.records_salvaged", rb.journal_records_salvaged);
  registry.AddCounter("journal.gc_truncations", rb.journal_gc_truncations);
  registry.AddCounter("robustness.frame_rereads", rb.frame_rereads);
  registry.AddCounter("robustness.frame_decode_failures",
                      rb.frame_decode_failures);

  // Scheduler counters are wall-schedule diagnostics (how the ranks
  // were multiplexed), deliberately outside every determinism
  // comparison — equivalence tests compare clocks and bytes, not these.
  registry.AddCounter("sched.ranks_run", report.sched.ranks_run);
  registry.AddCounter("sched.workers", report.sched.workers);
  registry.AddCounter("sched.context_switches",
                      report.sched.context_switches);
  registry.AddCounter("sched.yields", report.sched.yields);
  registry.AddCounter("sched.parks", report.sched.parks);
  registry.AddCounter("sched.probe_rounds", report.sched.probe_rounds);

  const TransportFaultCounters& tf = report.transport;
  registry.AddCounter("transport.drops_injected", tf.drops_injected);
  registry.AddCounter("transport.dups_injected", tf.dups_injected);
  registry.AddCounter("transport.reorders_injected", tf.reorders_injected);
  registry.AddCounter("transport.delays_injected", tf.delays_injected);
  registry.AddCounter("transport.retransmits", tf.retransmits);
  registry.AddCounter("transport.dups_suppressed", tf.dups_suppressed);
  registry.AddCounter("transport.peers_declared_dead", tf.peers_declared_dead);
  registry.AddCounter("transport.ranks_killed", tf.ranks_killed);
  registry.AddCounter("transport.ranks_revived", tf.ranks_revived);
  registry.AddCounter("transport.stale_incarnation_dropped",
                      tf.stale_incarnation_dropped);
}

}  // namespace

MachineReport Snapshot(Machine& machine) {
  MachineReport report;
  report.messages = machine.transport().TotalStats();
  for (int s = 0; s < machine.num_servers(); ++s) {
    report.server_fs.push_back(machine.server_fs(s).stats());
    report.server_clock_s.push_back(
        machine.transport().endpoint(machine.server_rank(s)).clock().Now());
  }
  for (int c = 0; c < machine.num_clients(); ++c) {
    report.client_clock_s.push_back(
        machine.transport().endpoint(machine.client_rank(c)).clock().Now());
  }
  report.robustness = machine.robustness().Snapshot();
  report.transport = machine.transport().fault_stats().Snapshot();
  report.sched_backend = machine.sched_backend();
  report.sched = machine.sched_stats();

  trace::MetricsRegistry registry;
  FillRegistryFromReport(report, registry);
  if (const trace::Collector* collector = machine.trace_collector()) {
    collector->FillRegistry(registry);
  }
  report.metrics = registry.Snapshot();
  return report;
}

std::string MachineTraceJson(const Machine& machine) {
  const trace::Collector* collector = machine.trace_collector();
  if (collector == nullptr) return std::string();
  return trace::ChromeTraceJson(
      *collector, [&machine](int r) { return machine.rank_label(r); });
}

namespace {

// Messages a binomial-tree gather or broadcast over n members moves.
std::int64_t TreeMessages(int n) { return n - 1; }

}  // namespace

std::int64_t ExpectedCollectiveMessages(std::span<const ArrayMeta> arrays,
                                        IoOp op, const World& world,
                                        std::int64_t subchunk_bytes) {
  std::int64_t pieces = 0;
  for (const ArrayMeta& meta : arrays) {
    const IoPlan plan(meta, world.num_servers, subchunk_bytes);
    pieces += plan.TotalPieces();
  }
  std::int64_t total = 0;
  total += 1;                                      // master client -> master server
  total += TreeMessages(world.num_servers);       // request broadcast
  total += 2 * pieces;                             // request+data / data+ack
  total += TreeMessages(world.num_servers);       // completion gather
  total += 1;                                      // done to master client
  total += TreeMessages(world.num_clients);       // client done broadcast
  (void)op;  // writes and reads move the same counts (the paper's point)
  return total;
}

}  // namespace panda
