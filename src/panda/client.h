// The Panda client: the compute-node side of collective i/o.
//
// Every compute node constructs a PandaClient over its endpoint and
// calls the same collective operations at approximately the same time
// (SPMD; no prior synchronization is required — the paper's §2). The
// master client (index 0) additionally ships the request to the master
// server and distributes the completion notification.
#pragma once

#include <span>

#include "iosim/retry.h"
#include "msg/transport.h"
#include "panda/array.h"
#include "panda/plan.h"
#include "panda/plan_cache.h"
#include "panda/protocol.h"
#include "panda/runtime.h"
#include "panda/schema_io.h"
#include "sp2/params.h"

namespace panda {

class PandaClient {
 public:
  PandaClient(Endpoint& ep, World world, Sp2Params params);

  // This client's index within its application's client window.
  int index() const { return world_.client_index(ep_->rank()); }
  bool is_master() const { return index() == 0; }
  Endpoint& endpoint() { return *ep_; }
  const World& world() const { return world_; }
  const Sp2Params& params() const { return params_; }

  // Executes one collective. `arrays` must be bound to this client and
  // ordered identically on every client; req.arrays is filled from them.
  // Returns this client's elapsed virtual time for the collective.
  double Execute(CollectiveRequest req, std::span<Array* const> arrays);

  // Convenience single-array collectives.
  double WriteArray(Array& array);
  double ReadArray(Array& array);

  // Collective subarray read: only the elements of `region` (global
  // coordinates) are read from disk and scattered; each client's local
  // data is updated only where its cell intersects the region. Servers
  // skip the disk accesses of sub-chunks entirely outside the region —
  // a slice read touches a slice's worth of disk.
  double ReadSubarray(Array& array, const Region& region);

  // Collective metadata query: fetches the group's .schema file from
  // the master server and broadcasts it to all clients. Returns true
  // and fills `meta` when it exists. Used to resume a timestep stream
  // after a restart (see ArrayGroup::Resume).
  bool QueryGroupMeta(const std::string& meta_file, GroupMeta& meta);

  // Ends the server loop (call once, after all clients are done; only
  // the master actually sends).
  void Shutdown();

  // Elapsed virtual time of the most recent collective on this client.
  double last_elapsed() const { return last_elapsed_; }

  // The layout epoch (`__panda.layout_epoch`) the coordinator stamped on
  // the most recent failover-mode completion notice: which generation of
  // the chunk->server layout the group's files are under. 0 until the
  // first epoch-stamped collective completes. A rejoin repair bumps it,
  // so a client observing an epoch change knows the next collective uses
  // the restored full-set layout.
  std::int64_t layout_epoch() const { return layout_epoch_; }

  // Robustness accounting sink (may be null: counting is skipped).
  // End-to-end checksum failures caught on this client and aborts it
  // originates are counted here.
  void set_robustness(RobustnessStats* stats) { robustness_ = stats; }

  // Crash-stop failover mode (docs/PROTOCOL.md "Failover and degraded
  // mode"; pair with ServerOptions::failover). The client serves pieces
  // until the master server's empty kTagFailover release, re-planning
  // (and idempotently re-serving) whenever a failover notice names
  // newly dead servers. Opt-in: the clean path's completion handshake
  // and message counts stay exactly as before when this is off.
  void set_failover(bool on) { failover_ = on; }

 private:
  // Execute minus the abort-protocol wrapper (see Execute).
  void ExecuteBody(const CollectiveRequest& req,
                   std::span<Array* const> arrays);
  // The failover-mode service loop (see set_failover).
  void ExecuteBodyFailover(const CollectiveRequest& req,
                           std::span<Array* const> arrays);
  void ServeWritePiece(const Endpoint::Delivery& request, Array& array,
                       const PiecePlan& piece, int dest_server);
  void ServeReadPiece(const Endpoint::Delivery& delivery, Array& array,
                      const PiecePlan& piece, int dest_server,
                      std::uint32_t wire_crc);
  // Master-client half of the abort fan-out (docs/PROTOCOL.md): forward
  // an abort notice to every other client of this application.
  void RelayAbortToClients(int origin_rank, const std::string& reason);

  Endpoint* ep_;
  World world_;
  Sp2Params params_;
  RobustnessStats* robustness_ = nullptr;
  bool failover_ = false;
  double last_elapsed_ = 0.0;
  std::int64_t layout_epoch_ = 0;
  // Plans repeat across a timestep stream; memoize them.
  PlanCache plan_cache_;
};

}  // namespace panda
