#include "panda/array_group.h"

#include "util/error.h"

namespace panda {

ArrayGroup::ArrayGroup(std::string name, std::string schema_file)
    : name_(std::move(name)), schema_file_(std::move(schema_file)) {
  PANDA_REQUIRE(!name_.empty(), "array group needs a name");
}

void ArrayGroup::Include(Array* array) {
  PANDA_REQUIRE(array != nullptr, "cannot include a null array");
  for (const Array* existing : arrays_) {
    PANDA_REQUIRE(existing->name() != array->name(),
                  "group '%s' already contains an array named '%s'",
                  name_.c_str(), array->name().c_str());
  }
  arrays_.push_back(array);
}

double ArrayGroup::Run(PandaClient& client, IoOp op, Purpose purpose,
                       std::int64_t seq) {
  PANDA_REQUIRE(!arrays_.empty(), "group '%s' has no arrays", name_.c_str());
  CollectiveRequest req;
  req.op = op;
  req.purpose = purpose;
  req.seq = seq;
  req.group = name_;
  req.meta_file = schema_file_;
  if (op == IoOp::kWrite) req.attributes = attributes_;
  return client.Execute(std::move(req), arrays_);
}

double ArrayGroup::Timestep(PandaClient& client) {
  const double t = Run(client, IoOp::kWrite, Purpose::kTimestep, timesteps_);
  timesteps_ += 1;
  return t;
}

double ArrayGroup::Checkpoint(PandaClient& client) {
  // seq records the timestep count at checkpoint time, so a restarting
  // application can resume its loop from the right iteration.
  return Run(client, IoOp::kWrite, Purpose::kCheckpoint, timesteps_);
}

double ArrayGroup::Restart(PandaClient& client) {
  return Run(client, IoOp::kRead, Purpose::kCheckpoint, 0);
}

double ArrayGroup::Write(PandaClient& client) {
  return Run(client, IoOp::kWrite, Purpose::kGeneral, 0);
}

double ArrayGroup::Read(PandaClient& client) {
  return Run(client, IoOp::kRead, Purpose::kGeneral, 0);
}

bool ArrayGroup::Resume(PandaClient& client) {
  PANDA_REQUIRE(!schema_file_.empty(),
                "group '%s' has no schema file to resume from",
                name_.c_str());
  GroupMeta meta;
  if (!client.QueryGroupMeta(schema_file_, meta)) return false;
  PANDA_REQUIRE(meta.group == name_,
                "schema file %s belongs to group '%s', not '%s'",
                schema_file_.c_str(), meta.group.c_str(), name_.c_str());
  timesteps_ = meta.timesteps;
  attributes_ = meta.attributes;
  return true;
}

void ArrayGroup::SetAttribute(const std::string& key,
                              const std::string& value) {
  PANDA_REQUIRE(!key.empty(), "attribute key must not be empty");
  attributes_[key] = value;
}

std::string ArrayGroup::GetAttribute(const std::string& key) const {
  const auto it = attributes_.find(key);
  return it == attributes_.end() ? "" : it->second;
}

double ArrayGroup::ReadTimestep(PandaClient& client, std::int64_t seq) {
  PANDA_REQUIRE(seq >= 0, "timestep must be non-negative");
  return Run(client, IoOp::kRead, Purpose::kTimestep, seq);
}

}  // namespace panda
