#include "panda/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace panda {
namespace {

int TreeDepth(int n) {
  int depth = 0;
  while ((1 << depth) < n) ++depth;
  return depth;
}

}  // namespace

CostEstimate PredictCollective(std::span<const ArrayMeta> arrays, IoOp op,
                               const World& world, const Sp2Params& params,
                               const Region* subarray, double codec_ratio) {
  PANDA_REQUIRE(op == IoOp::kWrite || op == IoOp::kRead,
                "cost model covers read/write collectives");
  PANDA_REQUIRE(subarray == nullptr || op == IoOp::kRead,
                "subarray access is only supported for reads");
  PANDA_REQUIRE(codec_ratio > 0.0, "codec_ratio must be positive");
  world.Validate();
  const double o = params.net.per_message_overhead_s;
  const double L = params.net.latency_s;

  std::vector<double> server_busy(static_cast<size_t>(world.num_servers),
                                  params.plan_compute_s);
  std::vector<double> client_busy(static_cast<size_t>(world.num_clients), 0.0);
  std::vector<double> server_disk(static_cast<size_t>(world.num_servers), 0.0);

  for (const ArrayMeta& meta : arrays) {
    const IoPlan plan =
        subarray != nullptr
            ? IoPlan(meta, world.num_servers, params.subchunk_bytes,
                     *subarray)
            : IoPlan(meta, world.num_servers, params.subchunk_bytes);
    // Arrays that negotiated a codec move `ratio` x bytes over the wire
    // and to disk, and pay encode/decode compute at every pipeline stage
    // the runtime instruments (client pack->encode, server decode->disk
    // encode on writes; the mirror image on reads). codec=none arrays
    // take exactly the pre-codec formulas.
    const bool coded = meta.codec != CodecId::kNone;
    const double ratio = coded ? codec_ratio : 1.0;
    const auto scaled = [ratio](std::int64_t bytes) {
      return static_cast<std::int64_t>(
          std::llround(static_cast<double>(bytes) * ratio));
    };
    const double enc_Bps = params.codec_encode_Bps;
    const double dec_Bps = params.codec_decode_Bps;
    for (int s = 0; s < world.num_servers; ++s) {
      double busy = 0.0;
      double disk = 0.0;
      bool first_access = true;
      for (const int ci : plan.ChunksOfServer(s)) {
        const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
        for (const SubchunkPlan& sp : cp.subchunks) {
          if (!sp.active) continue;  // clipped away by a subarray read
          if (op == IoOp::kWrite) {
            // Request fan-out, pipeline fill on the first piece, then a
            // receive per piece (clients overlap their packing).
            busy += static_cast<double>(sp.pieces.size()) * o;  // requests
            if (!sp.pieces.empty()) {
              const PiecePlan& p0 = sp.pieces.front();
              double pack0 = 0.0;
              if (!p0.contiguous_in_client) {
                pack0 = static_cast<double>(p0.bytes) / params.memcpy_Bps;
              }
              if (coded) {  // the fill waits on client 0's wire encode too
                pack0 += static_cast<double>(p0.bytes) / enc_Bps;
              }
              busy += 2 * L + 2 * o + pack0;  // fill: round trip to client 0
            }
            // Pieces pipeline through the inbound link: the receive
            // overhead, wire decode and strided unpack of piece p overlap
            // with piece p+1's wire transfer, so each piece costs the
            // larger of its two stages; the final piece drains the cpu
            // stage.
            double last_cpu = 0.0;
            for (const PiecePlan& p : sp.pieces) {
              double cpu = o;
              if (coded) {
                cpu += static_cast<double>(p.bytes) / dec_Bps;
              }
              if (!p.contiguous_in_subchunk) {
                cpu += static_cast<double>(p.bytes) / params.memcpy_Bps;
              }
              busy += std::max(params.net.TransferSeconds(scaled(p.bytes)),
                               cpu);
              last_cpu = cpu;
            }
            busy += last_cpu;
            if (coded) {  // sub-chunk frame encode before the disk write
              busy += static_cast<double>(sp.bytes) / enc_Bps;
            }
            disk += params.disk.WriteSeconds(scaled(sp.bytes), !first_access);
          } else {
            disk += params.disk.ReadSeconds(scaled(sp.bytes), !first_access);
            if (coded) {  // disk frame decode after the read
              busy += static_cast<double>(sp.bytes) / dec_Bps;
            }
            // Serial push chain per piece: pack, encode, send, wait for
            // the ack (which trails the client's decode and unpack).
            for (const PiecePlan& p : sp.pieces) {
              busy += 4 * o + 2 * L +
                      params.net.TransferSeconds(scaled(p.bytes));
              if (coded) {
                busy += static_cast<double>(p.bytes) / enc_Bps;   // server
                busy += static_cast<double>(p.bytes) / dec_Bps;   // client
              }
              if (!p.contiguous_in_subchunk) {
                busy += static_cast<double>(p.bytes) / params.memcpy_Bps;
              }
              if (!p.contiguous_in_client) {
                busy += static_cast<double>(p.bytes) / params.memcpy_Bps;
              }
            }
          }
          first_access = false;
        }
      }
      if (op == IoOp::kWrite && !plan.ChunksOfServer(s).empty()) {
        disk += params.disk.fsync_s;
      }
      server_busy[static_cast<size_t>(s)] += busy + disk;
      server_disk[static_cast<size_t>(s)] += disk;
    }

    for (int c = 0; c < world.num_clients; ++c) {
      double busy = 0.0;
      for (const ClientStep& step : plan.StepsOfClient(c)) {
        const PiecePlan& p = plan.piece(step);
        if (op == IoOp::kWrite) {
          busy += 2 * o + params.net.TransferSeconds(scaled(p.bytes));
          if (coded) {  // wire frame encode before the send
            busy += static_cast<double>(p.bytes) / enc_Bps;
          }
          if (!p.contiguous_in_client) {
            busy += static_cast<double>(p.bytes) / params.memcpy_Bps;
          }
        } else {
          busy += 2 * o;  // data receive + ack send
          if (coded) {  // wire frame decode before the unpack
            busy += static_cast<double>(p.bytes) / dec_Bps;
          }
          if (!p.contiguous_in_client) {
            busy += static_cast<double>(p.bytes) / params.memcpy_Bps;
          }
        }
      }
      client_busy[static_cast<size_t>(c)] += busy;
    }
  }

  CostEstimate est;
  const int ds = TreeDepth(world.num_servers);
  const int dc = TreeDepth(world.num_clients);
  const double startup = (o + L) + params.plan_compute_s +
                         static_cast<double>(ds) * (2 * o + L);
  // Completion: gather-only server sync, then done + client broadcast.
  const double completion = static_cast<double>(ds) * (2 * o + L) + (o + L) +
                            static_cast<double>(dc) * (2 * o + L);
  est.startup_s = startup + completion;
  est.max_server_busy_s =
      *std::max_element(server_busy.begin(), server_busy.end());
  est.max_client_busy_s =
      *std::max_element(client_busy.begin(), client_busy.end());
  est.disk_s = *std::max_element(server_disk.begin(), server_disk.end());
  est.elapsed_s = est.startup_s +
                  std::max(est.max_server_busy_s, est.max_client_busy_s);
  return est;
}

CostEstimate PredictArrayIo(const ArrayMeta& meta, IoOp op, const World& world,
                            const Sp2Params& params, const Region* subarray,
                            double codec_ratio) {
  return PredictCollective({&meta, 1}, op, world, params, subarray,
                           codec_ratio);
}

}  // namespace panda
