// Group metadata ("schema") files.
//
// Figure 2's ArrayGroup names a schema file; Panda's master server keeps
// it up to date on its local file system. The file records each array's
// name, shape, element size and both schemas, plus how many timesteps
// and whether a checkpoint exist — everything a data consumer (e.g. a
// sequential visualizer, or the schema_migration example) needs to
// interpret the per-server data files without the original application.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iosim/file_system.h"
#include "panda/protocol.h"

namespace panda {

struct GroupMeta {
  // Version 2 adds a per-array codec byte (docs/PROTOCOL.md "Codec
  // negotiation and frame format"). Version-1 files still decode; their
  // arrays default to CodecId::kNone.
  std::uint32_t version = 2;
  std::string group;
  std::int64_t timesteps = 0;       // number of timestep segments present
  bool has_checkpoint = false;
  std::int64_t checkpoint_seq = -1; // timestep at which it was taken (-1: n/a)
  // User attributes (iteration counters, dt, provenance, ...): carried
  // with write collectives and restored on Resume so an application can
  // pick up exactly where it checkpointed.
  std::map<std::string, std::string> attributes;
  std::vector<ArrayMeta> arrays;

  std::vector<std::byte> Encode() const;
  static GroupMeta Decode(std::span<const std::byte> bytes);
};

// Writes `meta` to `path` on `fs` (overwrites).
void WriteGroupMeta(FileSystem& fs, const std::string& path,
                    const GroupMeta& meta);

// Reads a group metadata file; throws PandaError if missing or corrupt.
GroupMeta ReadGroupMeta(FileSystem& fs, const std::string& path);

// Merges the effects of a completed write collective into the group's
// metadata file (creating it if needed): refreshes the array list and
// advances the timestep / checkpoint bookkeeping.
void UpdateGroupMeta(FileSystem& fs, const CollectiveRequest& req);

}  // namespace panda
