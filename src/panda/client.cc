#include "panda/client.h"

#include <map>
#include <tuple>
#include <vector>

#include <algorithm>

#include "codec/frame.h"
#include "mdarray/strided_copy.h"
#include "panda/failover.h"
#include "trace/trace.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace panda {

PandaClient::PandaClient(Endpoint& ep, World world, Sp2Params params)
    : ep_(&ep), world_(world), params_(params) {
  world_.Validate();
  PANDA_CHECK_MSG(world_.is_client_rank(ep.rank()),
                  "PandaClient on non-client rank %d", ep.rank());
}

namespace {

// One expected piece of this client's obligations, across all arrays of
// the collective. Servers direct the flow, so requests arrive in an
// order chosen by the servers' progress; the client validates each
// incoming header against this table and serves it, whatever the order
// (the MPI_ANY_SOURCE pattern).
struct Expected {
  const IoPlan* plan = nullptr;
  Array* array = nullptr;
  ClientStep step;
  bool served = false;
};

// Key -> index into the expected table.
struct PieceKey {
  std::int32_t array_index, chunk_index, sub_index, piece_index;
  bool operator<(const PieceKey& o) const {
    return std::tuple(array_index, chunk_index, sub_index, piece_index) <
           std::tuple(o.array_index, o.chunk_index, o.sub_index,
                      o.piece_index);
  }
};

}  // namespace

double PandaClient::Execute(CollectiveRequest req,
                            std::span<Array* const> arrays) {
  PANDA_REQUIRE(!arrays.empty(), "collective without arrays");
  req.arrays.clear();
  for (Array* a : arrays) {
    PANDA_REQUIRE(a != nullptr && a->bound(), "arrays must be bound");
    PANDA_REQUIRE(a->client_pos() == index(),
                  "array '%s' bound to client %d but executed on client %d",
                  a->name().c_str(), a->client_pos(), index());
    PANDA_REQUIRE(a->memory_schema().mesh().size() == world_.num_clients,
                  "array '%s' memory mesh (%d) != number of clients (%d)",
                  a->name().c_str(), a->memory_schema().mesh().size(),
                  world_.num_clients);
    req.arrays.push_back(a->meta());
  }

  req.first_client = world_.first_client;
  req.num_clients = world_.num_clients;

  const double start = ep_->clock().Now();
  std::int64_t total_bytes = 0;
  for (const ArrayMeta& meta : req.arrays) total_bytes += meta.total_bytes();

  try {
    ExecuteBody(req, arrays);
  } catch (const PandaAbortError& e) {
    // Another rank's abort notice interrupted one of our receives. The
    // master client relays it to the remaining clients of this
    // application (the master server already covered the server side),
    // then everyone dies with the same structured error.
    if (is_master()) RelayAbortToClients(e.origin_rank(), e.reason());
    throw;
  } catch (const PandaError& e) {
    // This client hit the unrecoverable fault (an end-to-end checksum
    // failure, a plan divergence...): it is the abort's origin. Notify
    // the master server (the server-side relay hub) and the client side,
    // then die with the structured error. Sends are buffered, so a
    // dying rank never blocks on its own notifications.
    if (robustness_ != nullptr) robustness_->collectives_aborted.fetch_add(1);
    const int hub = world_.master_server_rank();
    if (ep_->peer_alive(hub)) {
      ep_->Send(hub, kTagAbort, MakeAbortMessage(ep_->rank(), e.what()));
    } else {
      // The hub is dead, so the server-side relay chain is cut: notify
      // every surviving server directly, or a worker still waiting on
      // our piece traffic blocks forever (found by panda_mc replay: a
      // master kill racing the survivor's dead-set read leaves the
      // survivor mid-data-phase while the clients abort among
      // themselves).
      for (int s = 0; s < world_.num_servers; ++s) {
        const int r = world_.server_rank(s);
        if (ep_->peer_alive(r)) {
          ep_->Send(r, kTagAbort, MakeAbortMessage(ep_->rank(), e.what()));
        }
      }
    }
    if (is_master()) {
      RelayAbortToClients(ep_->rank(), e.what());
    } else {
      ep_->Send(world_.master_client_rank(), kTagAbort,
                MakeAbortMessage(ep_->rank(), e.what()));
    }
    throw PandaAbortError(ep_->rank(), e.what());
  }

  last_elapsed_ = ep_->clock().Now() - start;
  trace::RecordSpan(trace::SpanKind::kClientCollective, start,
                    ep_->clock().Now(), total_bytes);
  return last_elapsed_;
}

void PandaClient::ExecuteBody(const CollectiveRequest& req,
                              std::span<Array* const> arrays) {
  if (failover_) {
    ExecuteBodyFailover(req, arrays);
    return;
  }
  // The master client sends the short high-level request; the servers
  // take over direction of the data flow from here.
  if (is_master()) {
    ep_->Send(world_.master_server_rank(), kTagCollectiveRequest,
              req.ToMessage());
  }

  // Mirror the servers' plans and tabulate this client's obligations.
  std::vector<std::shared_ptr<const IoPlan>> plans;
  plans.reserve(arrays.size());
  for (const ArrayMeta& meta : req.arrays) {
    plans.push_back(plan_cache_.Get(
        meta, world_.num_servers, params_.subchunk_bytes,
        req.has_subarray ? &req.subarray : nullptr));
  }
  std::map<PieceKey, Expected> expected;
  for (std::int32_t ai = 0; ai < static_cast<std::int32_t>(arrays.size());
       ++ai) {
    const IoPlan& plan = *plans[static_cast<size_t>(ai)];
    for (const ClientStep& step : plan.StepsOfClient(index())) {
      expected[{ai, static_cast<std::int32_t>(step.chunk_index),
                static_cast<std::int32_t>(step.sub_index),
                static_cast<std::int32_t>(step.piece_index)}] =
          Expected{&plan, arrays[static_cast<size_t>(ai)], step, false};
    }
  }

  // Service loop: one message per obligation, in server-directed order.
  const int data_tag =
      req.op == IoOp::kWrite ? kTagPieceRequest : kTagPieceData;
  for (size_t remaining = expected.size(); remaining > 0; --remaining) {
    Endpoint::Delivery delivery = ep_->RecvAnyDelivery(data_tag);
    Message& msg = delivery.msg;
    Decoder dec(msg.header);
    const PieceHeader h = PieceHeader::Decode(dec);
    // Read-path piece data carries the payload's end-to-end checksum
    // after the piece header (write-path *requests* carry no payload).
    const std::uint32_t wire_crc =
        req.op == IoOp::kRead ? dec.Get<std::uint32_t>() : 0;
    const auto it = expected.find(
        {h.array_index, h.chunk_index, h.sub_index, h.piece_index});
    PANDA_REQUIRE(it != expected.end() && !it->second.served,
                  "server directed an unexpected piece "
                  "(array=%d chunk=%d sub=%d piece=%d)",
                  h.array_index, h.chunk_index, h.sub_index, h.piece_index);
    Expected& exp = it->second;
    exp.served = true;
    const PiecePlan& piece = exp.plan->piece(exp.step);
    const ChunkPlan& cp = exp.plan->chunk(exp.step);
    PANDA_REQUIRE(h.region == piece.region,
                  "server piece region %s does not match the local plan %s",
                  h.region.ToString().c_str(),
                  piece.region.ToString().c_str());
    PANDA_REQUIRE(msg.src == world_.server_rank(cp.server),
                  "piece directed by the wrong server");

    if (req.op == IoOp::kWrite) {
      ServeWritePiece(delivery, *exp.array, piece, cp.server);
    } else {
      ServeReadPiece(delivery, *exp.array, piece, cp.server, wire_crc);
    }
  }

  // Completion: master server -> master client -> all clients.
  const Group clients = world_.ClientGroup(ep_->rank());
  if (is_master()) {
    (void)ep_->Recv(world_.master_server_rank(), kTagServerDone);
  }
  (void)Bcast(*ep_, clients, 0, Message{});
}

void PandaClient::ExecuteBodyFailover(const CollectiveRequest& req,
                                      std::span<Array* const> arrays) {
  // The master client sends the short high-level request; the servers
  // take over direction of the data flow from here.
  if (is_master()) {
    ep_->Send(world_.master_server_rank(), kTagCollectiveRequest,
              req.ToMessage());
  }

  // Mirror the servers' plans and the degraded layout implied by the
  // currently-known dead set (deaths mid-collective arrive as failover
  // notices below).
  std::vector<std::shared_ptr<const IoPlan>> plans;
  plans.reserve(arrays.size());
  for (const ArrayMeta& meta : req.arrays) {
    plans.push_back(plan_cache_.Get(
        meta, world_.num_servers, params_.subchunk_bytes,
        req.has_subarray ? &req.subarray : nullptr));
  }
  std::vector<int> dead = DeadServerIndices(*ep_, world_);
  std::vector<DegradedLayout> layouts;
  const auto recompute_layouts = [&] {
    layouts.clear();
    layouts.reserve(plans.size());
    for (const auto& plan : plans) {
      layouts.push_back(DegradedLayout::Compute(*plan, dead));
    }
  };
  recompute_layouts();

  // This client's obligations. Unlike the clean path there is no
  // once-only bookkeeping: a failover re-plan may legitimately direct a
  // piece of an adopted chunk a second time (idempotent re-serve).
  std::map<PieceKey, Expected> expected;
  for (std::int32_t ai = 0; ai < static_cast<std::int32_t>(arrays.size());
       ++ai) {
    const IoPlan& plan = *plans[static_cast<size_t>(ai)];
    for (const ClientStep& step : plan.StepsOfClient(index())) {
      expected[{ai, static_cast<std::int32_t>(step.chunk_index),
                static_cast<std::int32_t>(step.sub_index),
                static_cast<std::int32_t>(step.piece_index)}] =
          Expected{&plan, arrays[static_cast<size_t>(ai)], step, false};
    }
  }

  // Service loop: serve whatever the owning servers direct until the
  // master server's empty kTagFailover notice releases the collective.
  // A non-empty notice names newly dead servers: merge, re-plan, and
  // keep serving — the survivors re-gather the adopted chunks.
  const int data_tag =
      req.op == IoOp::kWrite ? kTagPieceRequest : kTagPieceData;
  for (;;) {
    Endpoint::Delivery delivery;
    try {
      delivery = ep_->RecvAnyDelivery(data_tag);
    } catch (const PandaFailoverError& e) {
      if (e.dead_ranks().empty()) {
        // Completion. The release notice carries the coordinator's
        // layout epoch; remember it so the application can tell when a
        // failover or rejoin repair changed the layout generation.
        if (e.epoch() != 0) layout_epoch_ = e.epoch();
        break;
      }
      std::vector<int> more;
      more.reserve(e.dead_ranks().size());
      for (int r : e.dead_ranks()) more.push_back(world_.server_index(r));
      dead.insert(dead.end(), more.begin(), more.end());
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      recompute_layouts();
      continue;
    }
    Message& msg = delivery.msg;
    // A crash-stopped server's unanswered requests are stale: the
    // adopter re-requests under the new layout.
    if (!ep_->peer_alive(msg.src)) continue;
    Decoder dec(msg.header);
    const PieceHeader h = PieceHeader::Decode(dec);
    const std::uint32_t wire_crc =
        req.op == IoOp::kRead ? dec.Get<std::uint32_t>() : 0;
    const auto it = expected.find(
        {h.array_index, h.chunk_index, h.sub_index, h.piece_index});
    PANDA_REQUIRE(it != expected.end(),
                  "server directed an unexpected piece "
                  "(array=%d chunk=%d sub=%d piece=%d)",
                  h.array_index, h.chunk_index, h.sub_index, h.piece_index);
    Expected& exp = it->second;
    exp.served = true;
    const PiecePlan& piece = exp.plan->piece(exp.step);
    PANDA_REQUIRE(h.region == piece.region,
                  "server piece region %s does not match the local plan %s",
                  h.region.ToString().c_str(),
                  piece.region.ToString().c_str());
    const int owner =
        layouts[static_cast<size_t>(h.array_index)]
            .owner[static_cast<size_t>(h.chunk_index)];
    PANDA_REQUIRE(msg.src == world_.server_rank(owner),
                  "piece directed by a non-owner server (rank %d, owner %d)",
                  msg.src, world_.server_rank(owner));

    if (req.op == IoOp::kWrite) {
      ServeWritePiece(delivery, *exp.array, piece, owner);
    } else {
      ServeReadPiece(delivery, *exp.array, piece, owner, wire_crc);
    }
  }
}

void PandaClient::RelayAbortToClients(int origin_rank,
                                      const std::string& reason) {
  for (int c = 0; c < world_.num_clients; ++c) {
    const int r = world_.client_rank(c);
    if (r == ep_->rank() || r == origin_rank) continue;
    ep_->Send(r, kTagAbort, MakeAbortMessage(origin_rank, reason));
  }
}

void PandaClient::ServeWritePiece(const Endpoint::Delivery& request,
                                  Array& array, const PiecePlan& piece,
                                  int dest_server) {
  // Assemble the piece: strided gathers charge reorganization time
  // (contiguous moves are free — the natural-chunking fast path).
  double ready = request.ready_time;
  if (!piece.contiguous_in_client) {
    ready += static_cast<double>(piece.bytes) / params_.memcpy_Bps;
    // Pack spans cover only real reorganization work (the contiguous
    // fast path costs nothing and records nothing).
    trace::RecordSpan(trace::SpanKind::kClientPack, request.ready_time, ready,
                      piece.bytes);
  }
  Message data;
  data.header = request.msg.header;  // echo the piece identification
  Encoder enc(data.header);
  if (!ep_->timing_only()) {
    std::vector<std::byte> payload(static_cast<size_t>(piece.bytes));
    PackRegion({payload.data(), payload.size()}, array.local_data(),
               array.local_region(), piece.region,
               static_cast<size_t>(array.elem_size()));
    // End-to-end wire checksum over the *uncompressed* packed bytes,
    // verified by the receiving server after it decodes the frame.
    enc.Put<std::uint32_t>(Crc32c({payload.data(), payload.size()}));
    if (array.codec() != CodecId::kNone) {
      // Frame the piece for the wire. Encoding is client CPU charged
      // into the response chain like packing; the stored fallback
      // (incompressible piece) costs nothing beyond the attempt.
      const double enc_begin = ready;
      CodecId used = CodecId::kNone;
      std::vector<std::byte> framed =
          EncodeWireFrame(array.codec(), {payload.data(), payload.size()},
                          static_cast<std::int64_t>(array.elem_size()), &used);
      if (used != CodecId::kNone) {
        ready += static_cast<double>(piece.bytes) / params_.codec_encode_Bps;
      }
      trace::RecordSpan(trace::SpanKind::kCodecEncode, enc_begin, ready,
                        piece.bytes);
      trace::ObserveMetric(trace::MetricId::kCodecEncodeSeconds,
                           ready - enc_begin);
      trace::ObserveMetric(
          trace::MetricId::kCodecRatio,
          piece.bytes > 0 ? static_cast<double>(framed.size()) /
                                static_cast<double>(piece.bytes)
                          : 1.0);
      data.SetPayload(std::move(framed));
    } else {
      data.SetPayload(std::move(payload));
    }
  } else {
    enc.Put<std::uint32_t>(0);
    data.SetVirtualPayload(piece.bytes);
  }
  ep_->SendResponse(ready, world_.server_rank(dest_server), kTagPieceData,
                    std::move(data));
}

void PandaClient::ServeReadPiece(const Endpoint::Delivery& delivery,
                                 Array& array, const PiecePlan& piece,
                                 int dest_server, std::uint32_t wire_crc) {
  const Message& data = delivery.msg;
  double ready = delivery.ready_time;
  if (!piece.contiguous_in_client) {
    ready += static_cast<double>(piece.bytes) / params_.memcpy_Bps;
    trace::RecordSpan(trace::SpanKind::kClientUnpack, delivery.ready_time,
                      ready, piece.bytes);
  }
  if (!ep_->timing_only()) {
    std::span<const std::byte> raw{data.payload.data(), data.payload.size()};
    std::vector<std::byte> decoded;
    if (array.codec() != CodecId::kNone) {
      // The server framed the piece; decode before the end-to-end
      // checksum (the CRC covers uncompressed bytes).
      const double dec_begin = ready;
      CodecId used = CodecId::kNone;
      try {
        decoded = DecodeWireFrame(raw, piece.bytes,
                                  static_cast<std::int64_t>(array.elem_size()),
                                  &used);
      } catch (const PandaError& e) {
        if (robustness_ != nullptr) {
          robustness_->wire_checksum_failures.fetch_add(1);
        }
        PANDA_REQUIRE(false,
                      "read piece %s is not a valid codec frame: %s",
                      piece.region.ToString().c_str(), e.what());
      }
      if (used != CodecId::kNone) {
        ready += static_cast<double>(piece.bytes) / params_.codec_decode_Bps;
      }
      trace::RecordSpan(trace::SpanKind::kCodecDecode, dec_begin, ready,
                        piece.bytes);
      raw = {decoded.data(), decoded.size()};
    } else {
      PANDA_REQUIRE(
          static_cast<std::int64_t>(data.payload.size()) == piece.bytes,
          "piece payload size mismatch");
    }
    const std::uint32_t got = Crc32c(raw);
    if (got != wire_crc) {
      if (robustness_ != nullptr) {
        robustness_->wire_checksum_failures.fetch_add(1);
      }
      PANDA_REQUIRE(false,
                    "read piece %s failed its end-to-end checksum "
                    "(wire %08x != computed %08x)",
                    piece.region.ToString().c_str(), wire_crc, got);
    }
    UnpackRegion(array.local_data(), array.local_region(), raw, piece.region,
                 static_cast<size_t>(array.elem_size()));
  } else {
    PANDA_REQUIRE(data.payload_vbytes == piece.bytes,
                  "piece virtual size mismatch");
  }
  // Acknowledge so the server can push the next piece (flow control).
  ep_->SendResponse(ready, world_.server_rank(dest_server), kTagPieceAck,
                    Message{});
}

double PandaClient::WriteArray(Array& array) {
  CollectiveRequest req;
  req.op = IoOp::kWrite;
  req.purpose = Purpose::kGeneral;
  Array* arrays[] = {&array};
  return Execute(std::move(req), arrays);
}

double PandaClient::ReadArray(Array& array) {
  CollectiveRequest req;
  req.op = IoOp::kRead;
  req.purpose = Purpose::kGeneral;
  Array* arrays[] = {&array};
  return Execute(std::move(req), arrays);
}

double PandaClient::ReadSubarray(Array& array, const Region& region) {
  PANDA_REQUIRE(
      Region::Whole(array.shape()).Contains(region),
      "subarray %s is not inside array '%s' %s", region.ToString().c_str(),
      array.name().c_str(), array.shape().ToString().c_str());
  CollectiveRequest req;
  req.op = IoOp::kRead;
  req.purpose = Purpose::kGeneral;
  req.has_subarray = true;
  req.subarray = region;
  Array* arrays[] = {&array};
  return Execute(std::move(req), arrays);
}

bool PandaClient::QueryGroupMeta(const std::string& meta_file,
                                 GroupMeta& meta) {
  Message reply;
  try {
    if (is_master()) {
      CollectiveRequest req;
      req.op = IoOp::kQueryMeta;
      req.meta_file = meta_file;
      req.first_client = world_.first_client;
      req.num_clients = world_.num_clients;
      ep_->Send(world_.master_server_rank(), kTagCollectiveRequest,
                req.ToMessage());
      reply = ep_->Recv(world_.master_server_rank(), kTagServerDone);
    }
    reply = Bcast(*ep_, world_.ClientGroup(ep_->rank()), 0, std::move(reply));
  } catch (const PandaAbortError&) {
    throw;
  } catch (const PandaError& e) {
    // A server or peer client dying mid-query must surface as the
    // structured abort, never as a raw transport error escaping the
    // client API (the PR 6 master-kill class; see
    // tests/schedules/master-kill-abort.mctrace).
    throw PandaAbortError(ep_->rank(), e.what());
  }
  Decoder dec(reply.header);
  if (dec.Get<std::uint8_t>() == 0) return false;
  meta = GroupMeta::Decode(dec.GetBytes(dec.remaining()));
  return true;
}

void PandaClient::Shutdown() {
  if (!is_master()) return;
  CollectiveRequest req;
  req.op = IoOp::kShutdown;
  req.first_client = world_.first_client;
  req.num_clients = world_.num_clients;
  ep_->Send(world_.master_server_rank(), kTagCollectiveRequest,
            req.ToMessage());
}

}  // namespace panda
