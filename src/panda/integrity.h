// On-disk sub-chunk integrity: CRC32C sidecar files.
//
// When a server writes with `ServerOptions::disk_checksums` on, each
// data file `F` gains a sidecar `F.crc` holding one fixed-size record
// per sub-chunk, in the deterministic plan order both sides share:
//
//   record k = [ u64 file_offset | u64 bytes | u32 crc32c ]   (20 bytes)
//
// where k is the sub-chunk's ordinal in the owning server's work list
// (chunks in ascending id, sub-chunks in order); timestep segment `seq`
// starts at record `seq * subchunks_per_segment`. The offset/bytes
// fields let a verifier cross-check the framing against the plan — a
// disagreement means schemas diverged, which is as fatal as a flipped
// bit.
//
// Readers verify each sub-chunk against its record (one re-read retry
// before declaring corruption); `panda_fsck --verify_checksums` and the
// robustness tests verify whole groups offline through
// VerifyGroupChecksums. Data files without a sidecar (legacy data,
// sequential writers) are reported as unverified, not failed.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "iosim/file_system.h"
#include "panda/plan.h"
#include "panda/protocol.h"
#include "panda/schema_io.h"

namespace panda {

inline constexpr std::int64_t kCrcRecordBytes = 20;

// `F` -> `F.crc`.
std::string SidecarFileName(const std::string& data_file);

struct CrcRecord {
  std::int64_t file_offset = 0;  // absolute offset of the sub-chunk in F
  std::int64_t bytes = 0;
  std::uint32_t crc = 0;
};

void WriteCrcRecord(File& sidecar, std::int64_t record_index,
                    const CrcRecord& rec);
CrcRecord ReadCrcRecord(File& sidecar, std::int64_t record_index);

// Aggregate result of an offline verification pass.
struct IntegrityReport {
  std::int64_t files_checked = 0;
  std::int64_t files_without_sidecar = 0;  // skipped (legacy/sequential data)
  std::int64_t subchunks_checked = 0;
  std::int64_t crc_mismatches = 0;
  std::int64_t framing_mismatches = 0;  // record offset/bytes vs. the plan

  bool Clean() const { return crc_mismatches == 0 && framing_mismatches == 0; }
  void Merge(const IntegrityReport& other);
};

// Verifies one array's per-server files: re-reads every sub-chunk of
// every segment, recomputes CRC32C and compares with the sidecar.
// `num_segments` is the timestep count for Purpose::kTimestep and 1
// otherwise. `dead_servers` (server indices; usually parsed from the
// group's `__panda.dead_servers` attribute) selects the degraded layout
// the data was committed under: dead servers' files are skipped and
// survivors are checked including their adopted chunks. When `log` is
// non-null, human-readable findings (one line per problem or skipped
// file) are appended. A positive `shard_bytes` (the group's
// `__panda.shard_bytes` attribute) re-reads through the sharded layout
// (src/store/) instead of the flat per-server file.
IntegrityReport VerifyArrayChecksums(std::span<FileSystem* const> fs,
                                     const ArrayMeta& meta,
                                     std::int64_t subchunk_bytes,
                                     Purpose purpose, std::int64_t num_segments,
                                     const std::string& group,
                                     std::string* log = nullptr,
                                     const std::vector<int>& dead_servers = {},
                                     std::int64_t shard_bytes = 0);

// Group-level sweep driven by the group's schema metadata: timestep
// streams and the checkpoint (if present) of every array. The dead
// server set is read from the group's `__panda.dead_servers` attribute.
IntegrityReport VerifyGroupChecksums(std::span<FileSystem* const> fs,
                                     const GroupMeta& meta,
                                     std::int64_t subchunk_bytes,
                                     std::string* log = nullptr);

}  // namespace panda
