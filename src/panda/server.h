// The Panda server: one per i/o node.
//
// A server loops on collective requests. For each write collective it
// assembles its round-robin-assigned chunks sub-chunk by sub-chunk,
// *pulling* pieces from the clients that hold them, and writes each
// assembled sub-chunk sequentially to its local file system — this is
// server-directed i/o. Reads run the mirror protocol: sequential reads
// from disk, pieces pushed to clients.
#pragma once

#include "iosim/file_system.h"
#include "iosim/retry.h"
#include "msg/transport.h"
#include "panda/plan.h"
#include "panda/plan_cache.h"
#include "panda/protocol.h"
#include "panda/runtime.h"
#include "sp2/params.h"
#include "store/shard_store.h"

namespace panda {

struct ServerOptions {
  // When true, disk writes are overlapped with gathering the next
  // sub-chunk (write-behind). The paper's Figure 9 discussion names
  // non-blocking rearrangement as future work; this implements the
  // disk half of that overlap as an ablation toggle.
  bool overlap_io = false;
  // When true, the server requests sub-chunk n+1's pieces before
  // receiving sub-chunk n's data (one sub-chunk of lookahead, one extra
  // buffer), overlapping the clients' packing and the request round
  // trip with the current gather/write — the communication half of the
  // paper's "non-blocking communication" suggestion. Write path only.
  bool pipeline_requests = false;
  // Number of applications sharing these i/o nodes (mixed workloads,
  // paper §5). The server loop exits after this many shutdown requests.
  int num_applications = 1;
  // Bounded retry of *transient* disk faults (EIO, torn writes — see
  // iosim/faulty_fs.h). Every disk operation the server issues (open,
  // per-sub-chunk read/write, fsync, checkpoint rename) runs under this
  // policy; backoff is charged to the rank's virtual clock. Permanent
  // faults (or an exhausted budget) escape into the structured abort
  // protocol (docs/PROTOCOL.md).
  RetryPolicy retry;
  // Maintain CRC32C sidecar files (`F.crc`, see panda/integrity.h) for
  // every sub-chunk written, and verify sub-chunks against them on read
  // collectives (one re-read retry before declaring corruption).
  // Opt-in: sidecar traffic changes the per-file op counts the timing
  // studies reason about. Requires real data (ignored in timing-only
  // runs); data files without a sidecar read back unverified.
  bool disk_checksums = false;
  // Maintain a write-ahead chunk journal (`F.wal`, see panda/journal.h):
  // one commit record per sub-chunk, appended after its data write and
  // fsynced at chunk completion, so after a crash the journal names
  // exactly the durable chunks. Opt-in for the same reason as
  // disk_checksums; requires real data (ignored in timing-only runs).
  bool journal = false;
  // Crash-stop failover (docs/PROTOCOL.md "Failover and degraded
  // mode"): the master server runs the linear gather/decision protocol
  // instead of tree collectives, detects crash-stopped servers at the
  // completion gather, and re-plans their chunks over the survivors
  // (panda/failover.h). Requires failover-mode clients
  // (PandaClient::set_failover). Opt-in: the linear protocol changes
  // the message counts and timing of clean runs.
  bool failover = false;
  // Robustness accounting sink (may be null: counting is skipped).
  RobustnessStats* robustness = nullptr;
  // Sharded chunk store (src/store/): 0 keeps the flat
  // one-file-per-(array, server) layout; positive routes every data
  // path through ShardStore — segments are cut into `F.shard.N` files
  // of about this many data bytes, each carrying a CRC-framed table of
  // its sub-chunks. The granularity is recorded in the group metadata
  // (`__panda.shard_bytes`) so readers, fsck and repair re-derive the
  // identical shard map. AdviseShardSize (panda/advisor.h) picks a
  // value from the backend's cost model.
  std::int64_t shard_bytes = 0;
  // Which storage device shard traffic is shaped for: kPosix writes
  // sub-chunks in place, kObjectStore buffers whole shards and PUTs
  // them once (no partial overwrite on an object store).
  store::StoreBackend backend = store::StoreBackend::kPosix;
  // Bound on concurrently open shard file handles (LRU beyond it).
  int handle_pool_capacity = 16;
};

// Runs the server loop on an i/o-node rank until a shutdown request
// arrives. `fs` is this node's local file system.
void ServerMain(Endpoint& ep, FileSystem& fs, const World& world,
                const Sp2Params& params, ServerOptions options = {});

// Executes a single collective on the server side (exposed for tests
// that drive one operation without the loop). `plan_cache` may be null.
void ServerExecute(Endpoint& ep, FileSystem& fs, const World& world,
                   const Sp2Params& params, const CollectiveRequest& req,
                   ServerOptions options = {}, PlanCache* plan_cache = nullptr);

}  // namespace panda
