#include "panda/protocol.h"

#include "util/error.h"

namespace panda {

void EncodeRegion(Encoder& enc, const Region& region) {
  enc.Put<std::int32_t>(region.rank());
  enc.Put<std::uint8_t>(region.empty() ? 1 : 0);
  for (int d = 0; d < region.rank(); ++d) {
    enc.Put<std::int64_t>(region.lo()[d]);
    enc.Put<std::int64_t>(region.extent()[d]);
  }
}

Region DecodeRegion(Decoder& dec) {
  const auto r = dec.Get<std::int32_t>();
  PANDA_REQUIRE(r >= 0 && r <= kMaxRank, "bad region rank %d", r);
  const auto empty = dec.Get<std::uint8_t>();
  Index lo = Index::Zeros(r);
  Shape extent = Index::Zeros(r);
  for (int d = 0; d < r; ++d) {
    lo[d] = dec.Get<std::int64_t>();
    extent[d] = dec.Get<std::int64_t>();
  }
  if (empty != 0) return Region(Index::Zeros(r), Index::Zeros(r));
  return Region(lo, extent);
}

Message CollectiveRequest::ToMessage() const {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::uint8_t>(static_cast<std::uint8_t>(op));
  enc.Put<std::uint8_t>(static_cast<std::uint8_t>(purpose));
  enc.Put<std::int64_t>(seq);
  enc.PutString(group);
  enc.PutString(meta_file);
  enc.Put<std::int32_t>(first_client);
  enc.Put<std::int32_t>(num_clients);
  enc.Put<std::uint8_t>(has_subarray ? 1 : 0);
  if (has_subarray) EncodeRegion(enc, subarray);
  enc.Put<std::int32_t>(static_cast<std::int32_t>(attributes.size()));
  for (const auto& [key, value] : attributes) {
    enc.PutString(key);
    enc.PutString(value);
  }
  enc.Put<std::int32_t>(static_cast<std::int32_t>(arrays.size()));
  for (const auto& a : arrays) a.EncodeTo(enc);
  return msg;
}

CollectiveRequest CollectiveRequest::FromMessage(const Message& msg) {
  Decoder dec(msg.header);
  CollectiveRequest req;
  const auto op = dec.Get<std::uint8_t>();
  PANDA_REQUIRE(op <= 4, "bad collective op %u", op);
  req.op = static_cast<IoOp>(op);
  const auto purpose = dec.Get<std::uint8_t>();
  PANDA_REQUIRE(purpose <= 2, "bad collective purpose %u", purpose);
  req.purpose = static_cast<Purpose>(purpose);
  req.seq = dec.Get<std::int64_t>();
  req.group = dec.GetString();
  req.meta_file = dec.GetString();
  req.first_client = dec.Get<std::int32_t>();
  req.num_clients = dec.Get<std::int32_t>();
  PANDA_REQUIRE(req.first_client >= 0 && req.num_clients >= 0,
                "bad client window in collective request");
  req.has_subarray = dec.Get<std::uint8_t>() != 0;
  if (req.has_subarray) {
    req.subarray = DecodeRegion(dec);
    PANDA_REQUIRE(req.op == IoOp::kRead,
                  "subarray access is only supported for reads");
  }
  const auto na = dec.Get<std::int32_t>();
  PANDA_REQUIRE(na >= 0 && na <= 4096, "bad attribute count");
  for (int i = 0; i < na; ++i) {
    std::string key = dec.GetString();
    req.attributes[std::move(key)] = dec.GetString();
  }
  const auto n = dec.Get<std::int32_t>();
  PANDA_REQUIRE(n >= 0 && n <= 4096, "bad array count %d", n);
  req.arrays.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) req.arrays.push_back(ArrayMeta::Decode(dec));
  PANDA_REQUIRE(dec.AtEnd(), "trailing bytes in collective request");
  return req;
}

void PieceHeader::EncodeTo(Encoder& enc) const {
  enc.Put<std::int32_t>(array_index);
  enc.Put<std::int32_t>(chunk_index);
  enc.Put<std::int32_t>(sub_index);
  enc.Put<std::int32_t>(piece_index);
  EncodeRegion(enc, region);
}

PieceHeader PieceHeader::Decode(Decoder& dec) {
  PieceHeader h;
  h.array_index = dec.Get<std::int32_t>();
  h.chunk_index = dec.Get<std::int32_t>();
  h.sub_index = dec.Get<std::int32_t>();
  h.piece_index = dec.Get<std::int32_t>();
  h.region = DecodeRegion(dec);
  return h;
}

std::string DataFileName(const std::string& group, const std::string& array,
                         Purpose purpose, int server_index) {
  std::string name = group.empty() ? array : group + "." + array;
  switch (purpose) {
    case Purpose::kGeneral:
      name += ".dat.";
      break;
    case Purpose::kTimestep:
      name += ".ts.";
      break;
    case Purpose::kCheckpoint:
      name += ".ck.";
      break;
  }
  return name + std::to_string(server_index);
}

}  // namespace panda
