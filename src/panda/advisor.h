// Disk-schema advisor: the cost model put to work.
//
// The paper's §5 motivates a cost model "to predict Panda's performance
// given an in-memory and on-disk schema" — the point of such a model is
// choosing the on-disk schema *before* running. This module enumerates
// the BLOCK/* disk schemas available for an array on a given machine
// (every way of distributing its dimensions over the i/o nodes, plus
// natural chunking), prices each with the cost model, and ranks them.
//
// Consumers care about more than write speed: a schema whose per-server
// files concatenate to row-major order ("traditional order") is worth a
// premium if the data later moves to a sequential machine. The advisor
// therefore reports, per candidate, the predicted write cost, read
// cost, and whether it is traditional order, and picks by a weighted
// objective.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "iosim/object_store.h"
#include "panda/cost_model.h"
#include "store/shard_store.h"

namespace panda {

struct SchemaCandidate {
  Schema disk;
  CostEstimate write_cost;
  CostEstimate read_cost;
  // True when concatenating the per-server files (ascending server)
  // yields the array in row-major order.
  bool traditional_order = false;
  // The weighted objective this candidate was ranked by (seconds).
  double objective_s = 0.0;
};

struct AdvisorOptions {
  // Objective = write_weight * write + read_weight * read. Defaults
  // model a write-once/read-once lifecycle.
  double write_weight = 1.0;
  double read_weight = 1.0;
  // Only consider traditional-order schemas (data must be consumable by
  // concatenation).
  bool require_traditional_order = false;
};

// Enumerates candidate disk schemas for `meta.memory`'s array on
// `world.num_servers` i/o nodes: natural chunking plus every BLOCK/*
// assignment of a factorization of the server count to array
// dimensions. Returns candidates sorted by objective (best first).
std::vector<SchemaCandidate> RankDiskSchemas(const ArrayMeta& meta,
                                             const World& world,
                                             const Sp2Params& params,
                                             const AdvisorOptions& options = {});

// The best candidate per RankDiskSchemas (throws if none qualify).
SchemaCandidate AdviseDiskSchema(const ArrayMeta& meta, const World& world,
                                 const Sp2Params& params,
                                 const AdvisorOptions& options = {});

// True when `disk`'s per-server segments concatenate to the row-major
// array (only the outermost extent-carrying dimension is distributed,
// and chunk ids ascend with file order across servers).
bool IsTraditionalOrder(const Schema& disk, int num_servers);

// ---- Codec advisor --------------------------------------------------
//
// Picks the sub-chunk codec for an array by sampling: every registered
// codec encodes (at most the first 256 KiB of) `sample` and the one
// with the smallest framed/raw ratio wins. Incompressible data is not
// worth the compute: when even the best codec saves less than 5%
// (ratio >= 0.95) the advice is codec=none with ratio 1.0.
//
// `sampled_ratio` is what PredictCollective's `codec_ratio` parameter
// wants: framed bytes (header included) over raw bytes.

struct CodecAdvice {
  CodecId codec = CodecId::kNone;
  double sampled_ratio = 1.0;  // framed/raw for the winning codec
};

CodecAdvice AdviseCodec(std::span<const std::byte> sample,
                        std::int64_t elem_size);

// ---- Shard-size advisor ---------------------------------------------
//
// Picks `ServerOptions::shard_bytes` from the storage backend's cost
// shape. A posix disk pays per seek, so modest shards (bounded handle
// churn, cheap repair granularity) win; an object store pays a fixed
// round-trip per PUT amortized over `channels` concurrent connections,
// so the advisor enumerates power-of-two multiples of the sub-chunk
// size and minimizes predicted per-segment flush time
//   ceil(num_shards / channels) * (put_latency + shard / put_Bps),
// preferring the larger shard on ties (fewer objects to manage).
// `segment_bytes` is the per-server segment the shards cut up (an
// upper bound for the advice); `subchunk_bytes` is the collective's
// sub-chunk granularity (a lower bound).
std::int64_t AdviseShardSize(store::StoreBackend backend,
                             std::int64_t segment_bytes,
                             std::int64_t subchunk_bytes,
                             const ObjectStoreModel& model = {});

}  // namespace panda
