// Server rejoin: repair-on-restart and the rebalance-back collective.
//
// Failover (panda/failover.h) re-homes a dead server's chunks onto the
// survivors and records the dead set in the group metadata. This header
// holds the inverse: when every recorded-dead server is alive again (a
// restarted process announced itself through the kTagRejoin handshake,
// docs/PROTOCOL.md "Rejoin and incarnation fencing"), the master server
// broadcasts a synthetic IoOp::kRepair collective and all servers run
// RepairCollective, which migrates the adopted chunks back and rebuilds
// every data file under the identity layout:
//
//   * A *rejoinee* (a server the committed metadata records dead) first
//     replays its stale write-ahead journal as a diagnostic (records
//     that still parse clean count journal_records_salvaged), then
//     cedes its pre-crash files — the cluster adopted those chunks and
//     has since rewritten them, so the disk contents are stale by
//     definition — and rebuilds its identity-layout files from chunk
//     transfers sent by the adopters. Rebuilt files take their *final*
//     names directly: until the master commits the repaired metadata,
//     the group still records this server dead, so a crash mid-repair
//     leaves nothing that an offline verifier would trust.
//   * An *adopter* (a survivor holding adopted chunks) streams each
//     adopted sub-chunk to its identity owner over kTagRejoin and
//     rewrites its own chunks — whose offsets shift when the segment
//     stride changes back — into a `.repair` staging file, renamed
//     over the degraded file only after the closing barrier. Survivors
//     with no adopted chunks already hold identity-layout files and are
//     not touched at all.
//
// The repair is all-or-nothing: a *partial* rejoin (some recorded-dead
// server still down) cannot be re-admitted soundly — the degraded data
// on the survivors and the rejoinee's rebuilt files would disagree
// about the layout — so the master aborts the collective (structured
// abort, never a hang) rather than guess. The torn window between the
// survivors' staged renames and the master's metadata commit is
// detectable offline: repaired journals carry the new layout epoch in
// their headers, and `panda_fsck --verify_journal` flags a journal
// whose epoch is ahead of the committed metadata's.
//
// Transfer order is canonical on both sides — array ascending, purpose
// in [general, timestep, checkpoint], segment ascending, chunk
// ascending, sub-chunk ascending — so each (adopter, rejoinee) pair's
// traffic is a FIFO subsequence of a shared global order and the
// directed receives cannot deadlock (adopters only send, rejoinees
// only receive).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iosim/file_system.h"
#include "panda/plan_cache.h"
#include "panda/protocol.h"
#include "panda/runtime.h"
#include "panda/schema_io.h"
#include "panda/server.h"
#include "sp2/params.h"

namespace panda {

// Attributes of a synthetic kRepair request (set by BuildRepairRequest,
// consumed by RepairCollective on every server).
//
// The dead-server set the data currently on disk was committed under
// (ascending CSV of server indices) — the layout being repaired *from*.
inline constexpr const char* kRepairPrevDeadAttr = "__panda.repair_prev_dead";
// The layout epoch the repaired files belong to (the committed epoch
// plus one); rebuilt journals carry it in their headers.
inline constexpr const char* kRepairEpochAttr = "__panda.repair_epoch";
// CSV of array indices (into the request's array list) that have
// general-purpose data files to repair. Derived from the master's own
// disk — every general collective creates a (possibly empty) file on
// each live server, so existence on the master is the global truth.
inline constexpr const char* kRepairGeneralAttr = "__panda.repair_general";
// The committed checkpoint's timestep (-1: no checkpoint). Selects
// whether checkpoint files are repaired and the GC base of rebuilt
// timestep journals (records below checkpoint_seq * records_per_segment
// stay garbage-collected).
inline constexpr const char* kRepairCheckpointSeqAttr =
    "__panda.repair_checkpoint_seq";

// Builds the synthetic repair request from the committed group
// metadata. `prev_dead` is the recorded dead set (server indices) and
// `new_epoch` the epoch the repair commits; `master_fs` is probed for
// general-purpose files. The client window is carried through from the
// triggering request so abort relays reach the right application.
CollectiveRequest BuildRepairRequest(FileSystem& master_fs,
                                     const GroupMeta& meta,
                                     const std::string& meta_file,
                                     const std::vector<int>& prev_dead,
                                     std::int64_t new_epoch, int first_client,
                                     int num_clients);

// Runs one server's share of the repair collective (every live server
// must call with the same request; the master additionally rewrites the
// group metadata afterwards — see server.cc). Requires real data
// (timing-only runs cannot move bytes back).
void RepairCollective(Endpoint& ep, FileSystem& fs, const World& world,
                      const Sp2Params& params, const CollectiveRequest& req,
                      const ServerOptions& options, PlanCache* plan_cache);

}  // namespace panda
