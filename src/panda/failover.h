// Degraded-mode re-planning after crash-stop server failures.
//
// When an i/o node crash-stops mid-collective, the survivors must agree
// on a new chunk -> server assignment and finish the collective without
// touching the dead rank. Every participant derives the same
// DegradedLayout from the shared IoPlan plus the (agreed) dead-server
// set, exactly like the plan itself: no negotiation, no wire format for
// assignments.
//
// The layout preserves completed work. Survivor-owned chunks keep their
// original owner and file offset — data already on a survivor's disk
// stays where it is. Chunks owned by dead servers are *adopted*: they
// are dealt round-robin over the ascending survivors and appended past
// the adopter's original segment, in ascending chunk order, so adopted
// data is still written sequentially (server-directed i/o survives the
// failure).
//
// Scope (documented in docs/PROTOCOL.md): the master server (index 0)
// is the coordinator and its death aborts the collective; clients never
// die; a server death during a *read* collective aborts (the data on
// its disk is unrecoverable by re-planning). Write collectives and
// their later reads/restarts are the failover path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "msg/transport.h"
#include "panda/plan.h"
#include "panda/runtime.h"

namespace panda {

// The chunk -> server assignment and file framing after removing a set
// of dead servers from an IoPlan. With an empty dead set this is the
// identity layout: owners, offsets and segment sizes equal the plan's.
struct DegradedLayout {
  // Per chunk (parallel to plan.chunks()): owning server index and byte
  // offset of the chunk inside the owner's segment.
  std::vector<int> owner;
  std::vector<std::int64_t> chunk_offset;
  // Per server: chunk indices adopted from dead servers, ascending
  // (empty for dead servers and in the identity layout).
  std::vector<std::vector<int>> adopted;
  // Per server: total segment bytes under this layout (original bytes
  // plus adopted chunks; 0 for dead servers).
  std::vector<std::int64_t> segment_bytes;
  // Per server: liveness under this layout.
  std::vector<bool> alive;
  // True when the dead set was non-empty.
  bool degraded = false;

  std::int64_t SegmentBytes(int server) const {
    return segment_bytes[static_cast<size_t>(server)];
  }

  // Derives the layout for `plan` with `dead_servers` (server *indices*,
  // not ranks) removed. Deterministic: every rank that agrees on the
  // dead set computes byte-identical layouts. Dies if all servers are
  // dead or the master server (index 0) is.
  static DegradedLayout Compute(const IoPlan& plan,
                                const std::vector<int>& dead_servers);
};

// One unit of server-side work under a DegradedLayout: a sub-chunk to
// gather (write) or scatter (read), with its absolute position within
// the owner's segment and its ordinal in the owner's work list (the
// sidecar / journal record index within one segment).
struct WorkItem {
  int chunk_index = 0;            // index into plan.chunks()
  int sub_index = 0;              // index into chunk.subchunks
  std::int64_t file_offset = 0;   // sub-chunk offset inside the segment
  std::int64_t record_ordinal = 0;  // sidecar/journal record slot
};

// Which slice of a server's work list a phase covers.
enum class WorkPhase {
  kFull,         // original chunks then adopted chunks (whole collective)
  kAdoptedOnly,  // only chunks adopted in a failover (recovery phase)
};

// Server `s`'s work list under `layout`: its original chunks (ascending
// id, original offsets) followed by its adopted chunks (ascending id,
// appended offsets), record ordinals running 0.. across both. With the
// identity layout and kFull this reproduces the pre-failover work list
// exactly.
std::vector<WorkItem> BuildServerWork(const IoPlan& plan,
                                      const DegradedLayout& layout, int s,
                                      WorkPhase phase);

// Sub-chunk records per segment for server `s` under `layout` (original
// plus adopted) — the sidecar/journal stride between timestep segments.
std::int64_t RecordsPerSegment(const IoPlan& plan,
                               const DegradedLayout& layout, int s);

// Probes the transport's liveness view for dead i/o-node ranks and
// returns their server *indices*, ascending. This is how participants
// seed their dead set at collective start; deaths mid-collective are
// propagated by the failover protocol instead.
std::vector<int> DeadServerIndices(Endpoint& ep, const World& world);

// The group-metadata attribute recording which server indices were dead
// when a collective committed, so offline tools (panda_fsck) can verify
// against the degraded layout. Value: ascending CSV, e.g. "1,3".
inline constexpr const char* kDeadServersAttr = "__panda.dead_servers";

std::string EncodeDeadServersAttr(const std::vector<int>& dead_servers);
std::vector<int> ParseDeadServersAttr(
    const std::map<std::string, std::string>& attributes);

// The group-metadata attribute versioning the chunk->server layout.
// Bumped whenever a committed collective changes the recorded dead set
// — a failover (servers adopted chunks) or a rejoin repair (chunks
// migrated back) — so clients and offline tools can tell *which*
// layout a group's files are under without diffing dead sets. Absent
// (0) means the identity layout has never changed.
inline constexpr const char* kLayoutEpochAttr = "__panda.layout_epoch";

std::int64_t ParseLayoutEpochAttr(
    const std::map<std::string, std::string>& attributes);

// The group-metadata attribute recording the shard granularity the
// group's data files were written with (ServerOptions::shard_bytes).
// Absent (0) means the flat one-file-per-(array, server) layout;
// positive means every data file is a set of `F.shard.N` files (see
// src/store/). Offline tools derive the whole shard map from this one
// number plus the plan.
inline constexpr const char* kShardBytesAttr = "__panda.shard_bytes";

std::int64_t ParseShardBytesAttr(
    const std::map<std::string, std::string>& attributes);

// One chunk the degraded layout moved off its identity owner: who holds
// it now and who must get it back when the owner rejoins. The offsets
// on both sides are derivable from the two layouts (degraded
// chunk_offset on the adopter, plan file_offset on the owner).
struct RepairItem {
  int chunk_index = 0;
  int from_server = 0;  // adopter under the degraded layout
  int to_server = 0;    // identity owner (the rejoined server)
};

// The inverse of DegradedLayout adoption: every adopted chunk of
// `degraded`, ascending chunk order — the migration list of the repair
// collective (panda/rejoin.h). Deterministic for the same reason the
// layout is.
std::vector<RepairItem> BuildRepairPlan(const IoPlan& plan,
                                        const DegradedLayout& degraded);

}  // namespace panda
