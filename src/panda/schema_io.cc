#include "panda/schema_io.h"

#include "util/error.h"

namespace panda {

namespace {
constexpr std::uint32_t kMagic = 0x50414e44;  // "PAND"
}

std::vector<std::byte> GroupMeta::Encode() const {
  std::vector<std::byte> out;
  Encoder enc(out);
  enc.Put<std::uint32_t>(kMagic);
  enc.Put<std::uint32_t>(version);
  enc.PutString(group);
  enc.Put<std::int64_t>(timesteps);
  enc.Put<std::uint8_t>(has_checkpoint ? 1 : 0);
  enc.Put<std::int64_t>(checkpoint_seq);
  enc.Put<std::int32_t>(static_cast<std::int32_t>(attributes.size()));
  for (const auto& [key, value] : attributes) {
    enc.PutString(key);
    enc.PutString(value);
  }
  enc.Put<std::int32_t>(static_cast<std::int32_t>(arrays.size()));
  for (const auto& a : arrays) a.EncodeTo(enc);
  return out;
}

GroupMeta GroupMeta::Decode(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  PANDA_REQUIRE(dec.Get<std::uint32_t>() == kMagic,
                "not a Panda group metadata file");
  GroupMeta meta;
  meta.version = dec.Get<std::uint32_t>();
  PANDA_REQUIRE(meta.version == 1 || meta.version == 2,
                "unsupported metadata version %u", meta.version);
  meta.group = dec.GetString();
  meta.timesteps = dec.Get<std::int64_t>();
  PANDA_REQUIRE(meta.timesteps >= 0, "negative timestep count in metadata");
  meta.has_checkpoint = dec.Get<std::uint8_t>() != 0;
  meta.checkpoint_seq = dec.Get<std::int64_t>();
  PANDA_REQUIRE(meta.checkpoint_seq >= -1,
                "bad checkpoint sequence in metadata");
  const auto na = dec.Get<std::int32_t>();
  PANDA_REQUIRE(na >= 0 && na <= 4096, "bad attribute count in metadata");
  for (int i = 0; i < na; ++i) {
    std::string key = dec.GetString();
    meta.attributes[std::move(key)] = dec.GetString();
  }
  const auto n = dec.Get<std::int32_t>();
  PANDA_REQUIRE(n >= 0 && n <= 4096, "bad array count in metadata");
  meta.arrays.reserve(static_cast<size_t>(n));
  // Version-1 files predate the per-array codec byte; their arrays are
  // un-encoded (CodecId::kNone) by construction.
  const bool with_codec = meta.version >= 2;
  for (int i = 0; i < n; ++i) {
    meta.arrays.push_back(ArrayMeta::Decode(dec, with_codec));
  }
  PANDA_REQUIRE(dec.AtEnd(), "trailing bytes in metadata file");
  // Re-encoding always writes the current version.
  meta.version = 2;
  return meta;
}

void WriteGroupMeta(FileSystem& fs, const std::string& path,
                    const GroupMeta& meta) {
  // Two-phase publication: the new bytes land in a temporary and are
  // renamed into place only once synced, so a torn or failed write can
  // never corrupt the existing metadata file. (UpdateGroupMeta runs
  // under a retry policy and re-reads `path` on each attempt — that
  // read must always see either the old or the new file, never a tear.)
  const auto bytes = meta.Encode();
  const std::string tmp = path + ".tmp";
  {
    auto file = fs.Open(tmp, OpenMode::kWrite);
    file->WriteAt(0, {bytes.data(), bytes.size()},
                  static_cast<std::int64_t>(bytes.size()));
    file->Sync();
  }
  fs.Rename(tmp, path);
}

GroupMeta ReadGroupMeta(FileSystem& fs, const std::string& path) {
  PANDA_REQUIRE(fs.Exists(path), "group metadata file %s does not exist",
                path.c_str());
  auto file = fs.Open(path, OpenMode::kRead);
  const std::int64_t size = file->Size();
  std::vector<std::byte> bytes(static_cast<size_t>(size));
  file->ReadAt(0, {bytes.data(), bytes.size()}, size);
  return GroupMeta::Decode(bytes);
}

void UpdateGroupMeta(FileSystem& fs, const CollectiveRequest& req) {
  GroupMeta meta;
  if (fs.Exists(req.meta_file)) {
    meta = ReadGroupMeta(fs, req.meta_file);
  }
  meta.group = req.group;
  meta.arrays = req.arrays;
  for (const auto& [key, value] : req.attributes) {
    meta.attributes[key] = value;  // merge; newer values win
  }
  if (req.purpose == Purpose::kTimestep) {
    meta.timesteps = std::max(meta.timesteps, req.seq + 1);
  } else if (req.purpose == Purpose::kCheckpoint) {
    meta.has_checkpoint = true;
    meta.checkpoint_seq = req.seq;
  }
  WriteGroupMeta(fs, req.meta_file, meta);
}

}  // namespace panda
