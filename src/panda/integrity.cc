#include "panda/integrity.h"

#include <optional>
#include <utility>
#include <vector>

#include "panda/failover.h"
#include "panda/frame_io.h"
#include "panda/plan.h"
#include "panda/store_io.h"
#include "util/codec.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {
namespace {

void AppendLog(std::string* log, const std::string& line) {
  if (log == nullptr) return;
  log->append(line);
  log->push_back('\n');
}

}  // namespace

std::string SidecarFileName(const std::string& data_file) {
  return data_file + ".crc";
}

void WriteCrcRecord(File& sidecar, std::int64_t record_index,
                    const CrcRecord& rec) {
  std::vector<std::byte> buf;
  buf.reserve(static_cast<size_t>(kCrcRecordBytes));
  Encoder enc(buf);
  enc.Put<std::uint64_t>(static_cast<std::uint64_t>(rec.file_offset));
  enc.Put<std::uint64_t>(static_cast<std::uint64_t>(rec.bytes));
  enc.Put<std::uint32_t>(rec.crc);
  PANDA_CHECK(static_cast<std::int64_t>(buf.size()) == kCrcRecordBytes);
  sidecar.WriteAt(record_index * kCrcRecordBytes, buf, kCrcRecordBytes);
}

CrcRecord ReadCrcRecord(File& sidecar, std::int64_t record_index) {
  std::vector<std::byte> buf(static_cast<size_t>(kCrcRecordBytes));
  sidecar.ReadAt(record_index * kCrcRecordBytes, buf, kCrcRecordBytes);
  Decoder dec(buf);
  CrcRecord rec;
  rec.file_offset = static_cast<std::int64_t>(dec.Get<std::uint64_t>());
  rec.bytes = static_cast<std::int64_t>(dec.Get<std::uint64_t>());
  rec.crc = dec.Get<std::uint32_t>();
  return rec;
}

void IntegrityReport::Merge(const IntegrityReport& other) {
  files_checked += other.files_checked;
  files_without_sidecar += other.files_without_sidecar;
  subchunks_checked += other.subchunks_checked;
  crc_mismatches += other.crc_mismatches;
  framing_mismatches += other.framing_mismatches;
}

IntegrityReport VerifyArrayChecksums(std::span<FileSystem* const> fs,
                                     const ArrayMeta& meta,
                                     std::int64_t subchunk_bytes,
                                     Purpose purpose, std::int64_t num_segments,
                                     const std::string& group,
                                     std::string* log,
                                     const std::vector<int>& dead_servers,
                                     std::int64_t shard_bytes) {
  IntegrityReport report;
  const bool sharded = shard_bytes > 0;
  const int num_servers = static_cast<int>(fs.size());
  const IoPlan plan(meta, num_servers, subchunk_bytes);
  // The layout the data was committed under (identity when no server
  // was dead): dead servers' files are stale, survivors carry their
  // adopted chunks appended past their original segments.
  const DegradedLayout layout = DegradedLayout::Compute(plan, dead_servers);

  for (int s = 0; s < num_servers; ++s) {
    if (!layout.alive[static_cast<size_t>(s)]) continue;  // lost disk
    const std::vector<WorkItem> work =
        BuildServerWork(plan, layout, s, WorkPhase::kFull);
    if (work.empty()) continue;  // this server stores none of the array

    const std::string data_name = DataFileName(group, meta.name, purpose, s);
    // Sharded layouts have no flat file; shard 0 marks that this
    // (array, purpose) was ever written on this server.
    if (!fs[s]->Exists(sharded ? store::ShardFileName(data_name, 0)
                               : data_name)) {
      continue;  // array/purpose never written
    }

    const std::string sidecar_name = SidecarFileName(data_name);
    if (!fs[s]->Exists(sidecar_name)) {
      ++report.files_without_sidecar;
      AppendLog(log, "unverified (no sidecar): " + data_name + " [server " +
                         std::to_string(s) + "]");
      continue;
    }

    ++report.files_checked;
    std::unique_ptr<File> data;
    if (!sharded) data = fs[s]->Open(data_name, OpenMode::kRead);
    auto sidecar = fs[s]->Open(sidecar_name, OpenMode::kRead);
    // Codec arrays store frames; the CRC sidecar covers the decoded
    // bytes, so verification decodes through the frame directory (or
    // header probing when it is missing) before comparing. Sharded
    // layouts carry the frame metadata in each shard's table instead.
    std::unique_ptr<File> frame_dir;
    if (!sharded && meta.codec != CodecId::kNone &&
        fs[s]->Exists(FrameDirFileName(data_name))) {
      frame_dir = fs[s]->Open(FrameDirFileName(data_name), OpenMode::kRead);
    }
    std::optional<store::ShardLayout> shards;
    std::optional<store::ShardReader> reader;
    if (sharded) {
      shards = BuildShardLayout(plan, layout, s, shard_bytes);
      reader.emplace(OfflineShardReader(*fs[s], data_name, &*shards));
    }
    const std::int64_t records_per_segment =
        static_cast<std::int64_t>(work.size());
    const std::int64_t sidecar_records = sidecar->Size() / kCrcRecordBytes;

    std::vector<std::byte> buf;
    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      const std::int64_t base =
          purpose == Purpose::kTimestep ? seg * layout.SegmentBytes(s) : 0;
      for (std::int64_t k = 0; k < records_per_segment; ++k) {
        const WorkItem& item = work[static_cast<size_t>(k)];
        const SubchunkPlan& sp =
            plan.chunks()[static_cast<size_t>(item.chunk_index)]
                .subchunks[static_cast<size_t>(item.sub_index)];
        const std::int64_t record_index = seg * records_per_segment + k;
        const std::string where =
            data_name + " [server " + std::to_string(s) + ", segment " +
            std::to_string(seg) + ", subchunk " + std::to_string(k) + "]";

        if (record_index >= sidecar_records) {
          ++report.framing_mismatches;
          AppendLog(log, "sidecar truncated (missing record " +
                             std::to_string(record_index) + "): " + where);
          continue;
        }
        const CrcRecord rec = ReadCrcRecord(*sidecar, record_index);
        if (rec.file_offset != base + item.file_offset ||
            rec.bytes != sp.bytes) {
          // The sidecar disagrees with the plan about where the sub-chunk
          // lives: the schemas diverged, which is as fatal as a bit flip.
          ++report.framing_mismatches;
          AppendLog(log, "framing mismatch (record says offset " +
                             std::to_string(rec.file_offset) + "/" +
                             std::to_string(rec.bytes) + "B, plan says " +
                             std::to_string(base + item.file_offset) + "/" +
                             std::to_string(sp.bytes) + "B): " + where);
          continue;
        }

        ++report.subchunks_checked;
        try {
          if (sharded) {
            buf = std::move(reader->Get(seg, k, meta.elem_size).raw);
          } else {
            buf = ReadSubchunkForVerify(*data, frame_dir.get(), meta.codec,
                                        record_index, base + item.file_offset,
                                        sp.bytes, meta.elem_size);
          }
        } catch (const PandaError& e) {
          ++report.crc_mismatches;
          AppendLog(log,
                    "unreadable sub-chunk (" + std::string(e.what()) +
                        "): " + where);
          continue;
        }
        const std::uint32_t got = Crc32c({buf.data(), buf.size()});
        if (got != rec.crc) {
          ++report.crc_mismatches;
          AppendLog(log, "crc mismatch (stored " + std::to_string(rec.crc) +
                             ", computed " + std::to_string(got) +
                             "): " + where);
        }
      }
    }
  }
  return report;
}

IntegrityReport VerifyGroupChecksums(std::span<FileSystem* const> fs,
                                     const GroupMeta& meta,
                                     std::int64_t subchunk_bytes,
                                     std::string* log) {
  IntegrityReport report;
  const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
  const std::int64_t shard_bytes = ParseShardBytesAttr(meta.attributes);
  for (const ArrayMeta& array : meta.arrays) {
    // Plain (general-purpose) files, if the group ever wrote any.
    report.Merge(VerifyArrayChecksums(fs, array, subchunk_bytes,
                                      Purpose::kGeneral, 1, meta.group, log,
                                      dead, shard_bytes));
    if (meta.timesteps > 0) {
      report.Merge(VerifyArrayChecksums(fs, array, subchunk_bytes,
                                        Purpose::kTimestep, meta.timesteps,
                                        meta.group, log, dead, shard_bytes));
    }
    if (meta.has_checkpoint) {
      report.Merge(VerifyArrayChecksums(fs, array, subchunk_bytes,
                                        Purpose::kCheckpoint, 1, meta.group,
                                        log, dead, shard_bytes));
    }
  }
  return report;
}

}  // namespace panda
