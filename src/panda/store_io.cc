#include "panda/store_io.h"

#include <utility>

#include "panda/integrity.h"
#include "panda/protocol.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {
namespace {

void AppendLog(std::string* log, const std::string& line) {
  if (log == nullptr) return;
  log->append(line);
  log->push_back('\n');
}

}  // namespace

store::ShardLayout BuildShardLayout(const IoPlan& plan,
                                    const DegradedLayout& layout, int server,
                                    std::int64_t shard_bytes) {
  const std::vector<WorkItem> work =
      BuildServerWork(plan, layout, server, WorkPhase::kFull);
  std::vector<store::ShardSlot> slots(work.size());
  for (const WorkItem& item : work) {
    const SubchunkPlan& sp =
        plan.chunks()[static_cast<size_t>(item.chunk_index)]
            .subchunks[static_cast<size_t>(item.sub_index)];
    slots[static_cast<size_t>(item.record_ordinal)] = {item.file_offset,
                                                       sp.bytes};
  }
  return store::ShardLayout::Pack(slots, shard_bytes);
}

store::ShardReader OfflineShardReader(FileSystem& fs,
                                      const std::string& data_file,
                                      const store::ShardLayout* layout) {
  store::StoreOptions options;
  options.backend = store::StoreBackend::kPosix;
  RetryPolicy one_try;
  one_try.max_attempts = 1;
  return store::ShardReader(&fs, data_file, layout, options, one_try,
                            /*clock=*/nullptr, /*stats=*/nullptr);
}

void ShardReport::Merge(const ShardReport& other) {
  files_checked += other.files_checked;
  files_missing += other.files_missing;
  size_mismatches += other.size_mismatches;
  tables_torn += other.tables_torn;
  entries_invalid += other.entries_invalid;
  subchunks_checked += other.subchunks_checked;
  healed_slots += other.healed_slots;
  decode_failures += other.decode_failures;
  crc_mismatches += other.crc_mismatches;
  framing_mismatches += other.framing_mismatches;
}

ShardReport VerifyArrayShards(std::span<FileSystem* const> fs,
                              const ArrayMeta& meta,
                              std::int64_t subchunk_bytes, Purpose purpose,
                              std::int64_t num_segments,
                              const std::string& group,
                              std::int64_t shard_bytes, std::string* log,
                              const std::vector<int>& dead_servers) {
  ShardReport report;
  if (shard_bytes <= 0) return report;  // flat layout: nothing sharded
  const int num_servers = static_cast<int>(fs.size());
  const IoPlan plan(meta, num_servers, subchunk_bytes);
  const DegradedLayout layout = DegradedLayout::Compute(plan, dead_servers);

  for (int s = 0; s < num_servers; ++s) {
    if (!layout.alive[static_cast<size_t>(s)]) continue;  // lost disk
    const std::vector<WorkItem> work =
        BuildServerWork(plan, layout, s, WorkPhase::kFull);
    if (work.empty()) continue;  // this server stores none of the array

    const std::string data_name = DataFileName(group, meta.name, purpose, s);
    // Sharded layouts have no flat file; shard 0 marks that this
    // (array, purpose) was ever written on this server.
    if (!fs[s]->Exists(store::ShardFileName(data_name, 0))) continue;

    const store::ShardLayout shards =
        BuildShardLayout(plan, layout, s, shard_bytes);
    const std::int64_t sps = shards.shards_per_segment();
    const std::int64_t rps = shards.records_per_segment();

    // Pass 1: shard files and their tables. Data survival is proved in
    // pass 2 regardless — a torn table only downgrades reads to frame
    // probing, mirroring a lost .fdx on the flat path.
    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      for (std::int64_t local = 0; local < sps; ++local) {
        const std::int64_t id = seg * sps + local;
        const std::string shard_name = store::ShardFileName(data_name, id);
        const std::string where = shard_name + " [server " +
                                  std::to_string(s) + ", segment " +
                                  std::to_string(seg) + "]";
        ++report.files_checked;
        if (!fs[s]->Exists(shard_name)) {
          ++report.files_missing;
          AppendLog(log, "missing shard: " + where);
          continue;
        }
        const store::ShardSpec& spec = shards.shard(local);
        auto file = fs[s]->Open(shard_name, OpenMode::kRead);
        const std::int64_t min_bytes =
            store::ShardFileBytes(spec.data_bytes, spec.num_records);
        if (file->Size() < min_bytes) {
          ++report.size_mismatches;
          AppendLog(log, "short shard (" + std::to_string(file->Size()) +
                             "B, needs " + std::to_string(min_bytes) +
                             "B): " + where);
          continue;
        }
        const auto table = store::ReadShardTable(*file);
        if (!table.has_value()) {
          ++report.tables_torn;
          AppendLog(log, "torn shard table: " + where);
          continue;
        }
        if (static_cast<std::int64_t>(table->size()) != spec.num_records) {
          ++report.entries_invalid;
          AppendLog(log, "table record count " +
                             std::to_string(table->size()) + " != " +
                             std::to_string(spec.num_records) + ": " + where);
          continue;
        }
        for (std::int64_t i = 0; i < spec.num_records; ++i) {
          const store::ShardTableEntry& e =
              (*table)[static_cast<size_t>(i)];
          const store::ShardSlot slot = shards.slot(spec.first_record + i);
          const WorkItem& item =
              work[static_cast<size_t>(spec.first_record + i)];
          const ChunkPlan& cp =
              plan.chunks()[static_cast<size_t>(item.chunk_index)];
          if (!e.valid || e.slot_offset != slot.offset - spec.base_offset ||
              e.raw_bytes != slot.bytes || e.chunk_id != cp.chunk_id ||
              e.sub_index != item.sub_index) {
            ++report.entries_invalid;
            AppendLog(log, "invalid table record " + std::to_string(i) +
                               ": " + where);
          }
        }
      }
    }

    // Pass 2: every sub-chunk must decode to its plan size, and match
    // the CRC sidecar when one exists. The reader heals torn tables via
    // the self-describing frame headers; healing is counted, not fatal.
    store::ShardReader reader = OfflineShardReader(*fs[s], data_name, &shards);
    const std::string sidecar_name = SidecarFileName(data_name);
    std::unique_ptr<File> sidecar;
    std::int64_t sidecar_records = 0;
    if (fs[s]->Exists(sidecar_name)) {
      sidecar = fs[s]->Open(sidecar_name, OpenMode::kRead);
      sidecar_records = sidecar->Size() / kCrcRecordBytes;
    }
    for (std::int64_t seg = 0; seg < num_segments; ++seg) {
      const std::int64_t base =
          purpose == Purpose::kTimestep ? seg * layout.SegmentBytes(s) : 0;
      for (std::int64_t k = 0; k < rps; ++k) {
        const WorkItem& item = work[static_cast<size_t>(k)];
        const SubchunkPlan& sp =
            plan.chunks()[static_cast<size_t>(item.chunk_index)]
                .subchunks[static_cast<size_t>(item.sub_index)];
        const std::string where =
            data_name + " [server " + std::to_string(s) + ", segment " +
            std::to_string(seg) + ", subchunk " + std::to_string(k) + "]";
        ++report.subchunks_checked;
        store::ShardRead got;
        try {
          got = reader.Get(seg, k, meta.elem_size);
        } catch (const PandaError& e) {
          ++report.decode_failures;
          AppendLog(log, "unreadable sub-chunk (" + std::string(e.what()) +
                             "): " + where);
          continue;
        }
        if (got.healed) ++report.healed_slots;
        if (sidecar == nullptr) continue;
        const std::int64_t record_index = seg * rps + k;
        if (record_index >= sidecar_records) {
          ++report.framing_mismatches;
          AppendLog(log, "sidecar truncated (missing record " +
                             std::to_string(record_index) + "): " + where);
          continue;
        }
        const CrcRecord rec = ReadCrcRecord(*sidecar, record_index);
        if (rec.file_offset != base + item.file_offset ||
            rec.bytes != sp.bytes) {
          ++report.framing_mismatches;
          AppendLog(log, "framing mismatch (record says offset " +
                             std::to_string(rec.file_offset) + "/" +
                             std::to_string(rec.bytes) + "B, plan says " +
                             std::to_string(base + item.file_offset) + "/" +
                             std::to_string(sp.bytes) + "B): " + where);
          continue;
        }
        const std::uint32_t crc = Crc32c({got.raw.data(), got.raw.size()});
        if (crc != rec.crc) {
          ++report.crc_mismatches;
          AppendLog(log, "crc mismatch (stored " + std::to_string(rec.crc) +
                             ", computed " + std::to_string(crc) +
                             "): " + where);
        }
      }
    }
  }
  return report;
}

ShardReport VerifyGroupShards(std::span<FileSystem* const> fs,
                              const GroupMeta& meta,
                              std::int64_t subchunk_bytes, std::string* log) {
  ShardReport report;
  const std::int64_t shard_bytes = ParseShardBytesAttr(meta.attributes);
  if (shard_bytes <= 0) return report;  // group was written flat
  const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
  for (const ArrayMeta& array : meta.arrays) {
    report.Merge(VerifyArrayShards(fs, array, subchunk_bytes, Purpose::kGeneral,
                                   1, meta.group, shard_bytes, log, dead));
    if (meta.timesteps > 0) {
      report.Merge(VerifyArrayShards(fs, array, subchunk_bytes,
                                     Purpose::kTimestep, meta.timesteps,
                                     meta.group, shard_bytes, log, dead));
    }
    if (meta.has_checkpoint) {
      report.Merge(VerifyArrayShards(fs, array, subchunk_bytes,
                                     Purpose::kCheckpoint, 1, meta.group,
                                     shard_bytes, log, dead));
    }
  }
  return report;
}

}  // namespace panda
