#include "panda/failover.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace panda {

DegradedLayout DegradedLayout::Compute(const IoPlan& plan,
                                       const std::vector<int>& dead_servers) {
  const int S = plan.num_servers();
  DegradedLayout layout;
  layout.alive.assign(static_cast<size_t>(S), true);
  for (int d : dead_servers) {
    PANDA_CHECK(d >= 0 && d < S);
    layout.alive[static_cast<size_t>(d)] = false;
  }
  PANDA_REQUIRE(layout.alive[0],
                "master server (index 0) is dead: cannot re-plan");
  layout.degraded = !dead_servers.empty();

  const auto& chunks = plan.chunks();
  layout.owner.resize(chunks.size());
  layout.chunk_offset.resize(chunks.size());
  layout.adopted.assign(static_cast<size_t>(S), {});
  layout.segment_bytes.assign(static_cast<size_t>(S), 0);

  // Survivor-owned chunks keep their original owner and offset; their
  // segments initially retain their original size.
  for (int s = 0; s < S; ++s) {
    if (layout.alive[static_cast<size_t>(s)]) {
      layout.segment_bytes[static_cast<size_t>(s)] = plan.SegmentBytes(s);
    }
  }
  std::vector<int> survivors;
  for (int s = 0; s < S; ++s) {
    if (layout.alive[static_cast<size_t>(s)]) survivors.push_back(s);
  }

  // Deal dead-owned chunks round-robin over the ascending survivors, in
  // ascending chunk order, appending each past the adopter's current
  // segment end. Every rank computes this identically.
  size_t next_survivor = 0;
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    const ChunkPlan& cp = chunks[ci];
    if (layout.alive[static_cast<size_t>(cp.server)]) {
      layout.owner[ci] = cp.server;
      layout.chunk_offset[ci] = cp.file_offset;
      continue;
    }
    const int adopter = survivors[next_survivor % survivors.size()];
    ++next_survivor;
    layout.owner[ci] = adopter;
    layout.chunk_offset[ci] = layout.segment_bytes[static_cast<size_t>(adopter)];
    layout.segment_bytes[static_cast<size_t>(adopter)] += cp.bytes;
    layout.adopted[static_cast<size_t>(adopter)].push_back(static_cast<int>(ci));
  }
  return layout;
}

std::vector<WorkItem> BuildServerWork(const IoPlan& plan,
                                      const DegradedLayout& layout, int s,
                                      WorkPhase phase) {
  std::vector<WorkItem> work;
  std::int64_t ordinal = 0;
  const auto push_chunk = [&](int ci, bool emit) {
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
    const std::int64_t base = layout.chunk_offset[static_cast<size_t>(ci)];
    for (size_t sub = 0; sub < cp.subchunks.size(); ++sub) {
      const SubchunkPlan& sp = cp.subchunks[sub];
      if (emit) {
        WorkItem item;
        item.chunk_index = ci;
        item.sub_index = static_cast<int>(sub);
        // The plan's sub-chunk offset is relative to the chunk's
        // *original* position; rebase onto the layout's chunk offset.
        item.file_offset = base + (sp.file_offset - cp.file_offset);
        item.record_ordinal = ordinal;
        work.push_back(item);
      }
      ++ordinal;
    }
  };
  // Original chunks first (their ordinals come first in the sidecar and
  // journal record layout), then adopted chunks.
  for (int ci : plan.ChunksOfServer(s)) {
    if (layout.alive[static_cast<size_t>(s)]) {
      push_chunk(ci, phase == WorkPhase::kFull);
    }
  }
  for (int ci : layout.adopted[static_cast<size_t>(s)]) {
    push_chunk(ci, true);
  }
  return work;
}

std::int64_t RecordsPerSegment(const IoPlan& plan, const DegradedLayout& layout,
                               int s) {
  std::int64_t n = 0;
  if (layout.alive[static_cast<size_t>(s)]) {
    for (int ci : plan.ChunksOfServer(s)) {
      n += static_cast<std::int64_t>(
          plan.chunks()[static_cast<size_t>(ci)].subchunks.size());
    }
  }
  for (int ci : layout.adopted[static_cast<size_t>(s)]) {
    n += static_cast<std::int64_t>(
        plan.chunks()[static_cast<size_t>(ci)].subchunks.size());
  }
  return n;
}

std::vector<int> DeadServerIndices(Endpoint& ep, const World& world) {
  std::vector<int> dead;
  for (int s = 0; s < world.num_servers; ++s) {
    if (!ep.peer_alive(world.server_rank(s))) dead.push_back(s);
  }
  return dead;
}

std::string EncodeDeadServersAttr(const std::vector<int>& dead_servers) {
  std::vector<int> sorted = dead_servers;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::ostringstream out;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out << ',';
    out << sorted[i];
  }
  return out.str();
}

std::vector<int> ParseDeadServersAttr(
    const std::map<std::string, std::string>& attributes) {
  std::vector<int> dead;
  const auto it = attributes.find(kDeadServersAttr);
  if (it == attributes.end() || it->second.empty()) return dead;
  std::istringstream in(it->second);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    dead.push_back(std::stoi(tok));
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

std::int64_t ParseLayoutEpochAttr(
    const std::map<std::string, std::string>& attributes) {
  const auto it = attributes.find(kLayoutEpochAttr);
  if (it == attributes.end() || it->second.empty()) return 0;
  return static_cast<std::int64_t>(std::stoll(it->second));
}

std::int64_t ParseShardBytesAttr(
    const std::map<std::string, std::string>& attributes) {
  const auto it = attributes.find(kShardBytesAttr);
  if (it == attributes.end() || it->second.empty()) return 0;
  return static_cast<std::int64_t>(std::stoll(it->second));
}

std::vector<RepairItem> BuildRepairPlan(const IoPlan& plan,
                                        const DegradedLayout& degraded) {
  std::vector<RepairItem> items;
  const auto& chunks = plan.chunks();
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    const int identity_owner = chunks[ci].server;
    const int adopter = degraded.owner[ci];
    if (adopter == identity_owner) continue;
    RepairItem item;
    item.chunk_index = static_cast<int>(ci);
    item.from_server = adopter;
    item.to_server = identity_owner;
    items.push_back(item);
  }
  return items;
}

}  // namespace panda
