// Group collectives built on tagged point-to-point messages.
//
// Panda needs only a few collectives (barriers for test harnesses and
// benchmark repetition fences, broadcast for schema distribution). They
// are implemented as binomial trees so virtual-time costs scale
// logarithmically, like a real MPI implementation's.
#pragma once

#include <vector>

#include "msg/transport.h"

namespace panda {

// An ordered subset of world ranks, plus this rank's index in it.
// Example: the Panda clients form one group, the servers another.
class Group {
 public:
  Group() = default;
  Group(std::vector<int> ranks, int my_index);

  // The group [first, first+count) of consecutive ranks.
  static Group Consecutive(int first, int count, int my_rank);

  int size() const { return static_cast<int>(ranks_.size()); }
  int my_index() const { return my_index_; }
  int rank_at(int index) const;
  const std::vector<int>& ranks() const { return ranks_; }
  bool contains(int rank) const;

 private:
  std::vector<int> ranks_;
  int my_index_ = -1;
};

// Tree barrier over `group` (all members must call).
void Barrier(Endpoint& ep, const Group& group);

// Gather-only synchronization: the member at index 0 returns once every
// member has called; the others return immediately after notifying
// their tree parent. Half the cost of a full barrier — used for
// completion notification where only the root needs to know.
void GatherSync(Endpoint& ep, const Group& group);

// Broadcasts `msg` from the member with index `root_index` to all
// members; returns the received (or original) message.
Message Bcast(Endpoint& ep, const Group& group, int root_index, Message msg);

}  // namespace panda
