#include "msg/mailbox.h"

#include <algorithm>

namespace panda {

void Mailbox::Deposit(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::BlockingReceive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (poisoned_) throw PandaError("rank aborted: mailbox poisoned");
    const auto it = std::find_if(
        queue_.begin(), queue_.end(), [&](const Message& m) {
          return m.src == src && m.tag == tag;
        });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

Message Mailbox::BlockingReceiveAny(int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (poisoned_) throw PandaError("rank aborted: mailbox poisoned");
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&](const Message& m) { return m.tag == tag; });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

void Mailbox::Poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

size_t Mailbox::QueuedCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace panda
