#include "msg/mailbox.h"

#include <algorithm>

#include "sched/sched.h"

namespace panda {

namespace {
// Probe period for hooked waits: how often a blocked receive offers the
// transport a rescue opportunity and re-checks peer liveness. Pure
// wall-clock pacing — it never enters the virtual-time model.
constexpr std::chrono::milliseconds kProbePeriod{1};
}  // namespace

void Mailbox::Deposit(Message msg) {
  // The notify happens while mu_ is held: WaitCV's fiber-parking
  // protocol registers waiters under this same mutex, so notifying
  // inside the locked region is what makes the park race-free (a fiber
  // is either registered before we notify, or it re-checks the queue
  // after we unlocked — no lost wakeups).
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(msg));
  cv_.NotifyAll();
}

void Mailbox::ThrowIfDeadLocked(int want_tag) {
  if (!aborted_) {
    // An abort notice outranks ordinary matching: promote it to mailbox
    // state so every subsequent receive on this rank fails the same way.
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [](const Message& m) { return m.tag == kTagAbort; });
    if (it != queue_.end()) {
      abort_notice_ = DecodeAbortNotice(*it);
      aborted_ = true;
      queue_.erase(it);
    }
  }
  if (aborted_) {
    throw PandaAbortError(abort_notice_.origin_rank, abort_notice_.reason);
  }
  if (poisoned_) throw PandaError("rank aborted: mailbox poisoned");
  if (want_tag != kTagFailover) {
    // A failover notice also outranks ordinary matching — a client
    // blocked on piece traffic from a dead server must learn about the
    // re-plan — but unlike an abort it is one-shot, not sticky: the
    // notice is consumed here and the collective continues degraded.
    // Receives explicitly asking for kTagFailover (survivor servers
    // awaiting the coordinator's phase decisions) match it normally.
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [](const Message& m) { return m.tag == kTagFailover; });
    if (it != queue_.end()) {
      const FailoverNotice notice = DecodeFailoverNotice(*it);
      queue_.erase(it);
      throw PandaFailoverError(notice.origin_rank, notice.dead_ranks,
                               notice.epoch);
    }
  }
}

std::optional<Message> Mailbox::TakeMatchLocked(
    int src, int tag,
    const std::function<size_t(const std::vector<int>&)>* pick) {
  const auto match = [&](const Message& m) {
    return m.tag == tag && (src < 0 || m.src == src);
  };
  if (pick != nullptr && src < 0) {
    // Delivery choice point: gather every match (deposit order) and let
    // the chooser pick. The chooser sees even single-candidate sets — a
    // replaying chooser waiting for a specific source must be able to
    // skip past whatever arrived first (kMailboxPickWait: take nothing,
    // ask again on the next wake).
    std::vector<std::deque<Message>::iterator> candidates;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it)) candidates.push_back(it);
    }
    if (candidates.empty()) return std::nullopt;
    std::vector<int> srcs;
    srcs.reserve(candidates.size());
    for (const auto& it : candidates) srcs.push_back(it->src);
    size_t index = (*pick)(srcs);
    if (index == kMailboxPickWait) return std::nullopt;
    if (index >= candidates.size()) index = 0;
    Message msg = std::move(*candidates[index]);
    queue_.erase(candidates[index]);
    return msg;
  }
  auto it = std::find_if(queue_.begin(), queue_.end(), match);
  if (it == queue_.end()) return std::nullopt;
  Message msg = std::move(*it);
  queue_.erase(it);
  return msg;
}

std::optional<Message> Mailbox::ReceiveCore(
    int src, int tag,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    bool allow_peer_dead,
    const std::function<size_t(const std::vector<int>&)>* pick) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ThrowIfDeadLocked(tag);
    if (auto msg = TakeMatchLocked(src, tag, pick)) return msg;
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      return std::nullopt;
    }
    // Fiber-backend ranks park with the cooperative scheduler instead
    // of blocking the carrier thread. A signal wake loops back to the
    // ordinary re-check above. A timeout/probe wake runs the hooked-wait
    // duties inline: rescue, re-check, peer-death diagnosis — plus the
    // deadline give-up, which is exact against quiescent senders (the
    // probe only fires when no rank can still produce a match without
    // outside help, which for a timed receive means the timeout answer
    // is already decided).
    if (sched::OnFiber()) {
      const sched::WakeKind wake = cv_.ParkFiber(lock, deadline);
      if (wake != sched::WakeKind::kSignal) {
        if (hooks_.rescue) {
          lock.unlock();
          hooks_.rescue();
          lock.lock();
        }
        ThrowIfDeadLocked(tag);
        if (auto msg = TakeMatchLocked(src, tag, pick)) return msg;
        if (allow_peer_dead && src >= 0 && hooks_.peer_dead &&
            hooks_.peer_dead(src)) {
          throw PeerDeadError(src);
        }
        if (deadline) return std::nullopt;
      }
      continue;
    }
    // A deferring pick (kMailboxPickWait) leaves its candidates queued,
    // so no deposit will ever re-wake this wait; pace it like a hooked
    // wait so the pick is re-polled and can stop deferring.
    if (!has_hooks_ && pick == nullptr) {
      if (deadline) {
        cv_.WaitUntil(lock, *deadline);
      } else {
        cv_.Wait(lock);
      }
      continue;
    }
    // Hooked wait: wake periodically to give the transport a chance to
    // rescue traffic stuck in the lossy layer and to notice peer death.
    auto wake = std::chrono::steady_clock::now() + kProbePeriod;
    if (deadline && *deadline < wake) wake = *deadline;
    if (cv_.WaitUntil(lock, wake) == std::cv_status::timeout) {
      if (hooks_.rescue) {
        lock.unlock();
        hooks_.rescue();
        lock.lock();
      }
      ThrowIfDeadLocked(tag);
      if (auto msg = TakeMatchLocked(src, tag, pick)) return msg;
      // The rescue above flushed everything recoverable that was headed
      // here. If the awaited peer is dead and still nothing matched,
      // nothing ever will: convert the infinite hang into a diagnosis.
      if (allow_peer_dead && src >= 0 && hooks_.peer_dead &&
          hooks_.peer_dead(src)) {
        throw PeerDeadError(src);
      }
    }
  }
}

Message Mailbox::BlockingReceive(int src, int tag) {
  return *ReceiveCore(src, tag, std::nullopt, /*allow_peer_dead=*/true);
}

Message Mailbox::BlockingReceiveAny(int tag) {
  return *ReceiveCore(-1, tag, std::nullopt, /*allow_peer_dead=*/false);
}

Message Mailbox::BlockingReceiveAnyChoose(
    int tag, const std::function<size_t(const std::vector<int>&)>& pick) {
  return *ReceiveCore(-1, tag, std::nullopt, /*allow_peer_dead=*/false, &pick);
}

std::optional<Message> Mailbox::ReceiveWithin(
    int src, int tag, std::chrono::milliseconds wall_budget) {
  return ReceiveCore(src, tag,
                     std::chrono::steady_clock::now() + wall_budget,
                     /*allow_peer_dead=*/false);
}

void Mailbox::InstallHooks(MailboxHooks hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_ = std::move(hooks);
  has_hooks_ = static_cast<bool>(hooks_.rescue) ||
               static_cast<bool>(hooks_.peer_dead);
}

void Mailbox::NotifyAll() {
  std::lock_guard<std::mutex> lock(mu_);
  cv_.NotifyAll();
}

size_t Mailbox::PurgeIf(const std::function<bool(const Message&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(), pred),
               queue_.end());
  return before - queue_.size();
}

void Mailbox::ResetForRestart() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  poisoned_ = false;
  aborted_ = false;
  abort_notice_ = AbortNotice{};
}

void Mailbox::Poison() {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_ = true;
  cv_.NotifyAll();
}

void Mailbox::ForceAbort(int origin_rank, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!aborted_) {
    aborted_ = true;
    abort_notice_.origin_rank = origin_rank;
    abort_notice_.reason = reason;
  }
  cv_.NotifyAll();
}

size_t Mailbox::QueuedCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace panda
