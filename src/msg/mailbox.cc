#include "msg/mailbox.h"

#include <algorithm>

namespace panda {

void Mailbox::Deposit(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

void Mailbox::ThrowIfDeadLocked() {
  if (!aborted_) {
    // An abort notice outranks ordinary matching: promote it to mailbox
    // state so every subsequent receive on this rank fails the same way.
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [](const Message& m) { return m.tag == kTagAbort; });
    if (it != queue_.end()) {
      abort_notice_ = DecodeAbortNotice(*it);
      aborted_ = true;
      queue_.erase(it);
    }
  }
  if (aborted_) {
    throw PandaAbortError(abort_notice_.origin_rank, abort_notice_.reason);
  }
  if (poisoned_) throw PandaError("rank aborted: mailbox poisoned");
}

Message Mailbox::BlockingReceive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ThrowIfDeadLocked();
    const auto it = std::find_if(
        queue_.begin(), queue_.end(), [&](const Message& m) {
          return m.src == src && m.tag == tag;
        });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

Message Mailbox::BlockingReceiveAny(int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ThrowIfDeadLocked();
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&](const Message& m) { return m.tag == tag; });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

void Mailbox::Poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void Mailbox::ForceAbort(int origin_rank, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!aborted_) {
      aborted_ = true;
      abort_notice_.origin_rank = origin_rank;
      abort_notice_.reason = reason;
    }
  }
  cv_.notify_all();
}

size_t Mailbox::QueuedCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace panda
