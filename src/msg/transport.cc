#include "msg/transport.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <numeric>
#include <thread>

#include "util/error.h"

namespace panda {

namespace {
// Tags a message for the happens-before checker and stamps the send
// edge. Compiled to nothing without PANDA_HB (Message has no hb_id
// field then, so the whole body must be gated).
#if PANDA_HB_ENABLED
void HbTagSend(std::atomic<std::uint64_t>& counter, Message& msg) {
  if (!hb::Active()) return;
  msg.hb_id = counter.fetch_add(1, std::memory_order_relaxed);
  hb::StampSend(msg.hb_id);
}
void HbStampRecv(const Message& msg) { hb::StampRecv(msg.hb_id); }
#else
void HbTagSend(std::atomic<std::uint64_t>&, Message&) {}
void HbStampRecv(const Message&) {}
#endif
}  // namespace

int Endpoint::world_size() const { return transport_->world_size(); }

bool Endpoint::timing_only() const { return transport_->config().timing_only; }

void Endpoint::Send(int dst, int tag, Message msg) {
  transport_->DoSend(*this, dst, tag, std::move(msg));
}

Message Endpoint::Recv(int src, int tag) {
  return transport_->DoRecv(*this, src, tag);
}

Message Endpoint::RecvAny(int tag) {
  return transport_->DoRecvAny(*this, tag);
}

std::optional<Message> Endpoint::TryRecv(int src, int tag, double timeout_vs) {
  PANDA_CHECK_MSG(src >= 0 && src < world_size(), "recv from bad rank %d",
                  src);
  return transport_->DoTryRecv(*this, src, tag, timeout_vs);
}

std::optional<Message> Endpoint::TryRecvAny(int tag, double timeout_vs) {
  return transport_->DoTryRecv(*this, -1, tag, timeout_vs);
}

bool Endpoint::peer_alive(int rank) const { return transport_->alive(rank); }

std::int64_t Endpoint::incarnation() const {
  return transport_->incarnation(rank_);
}

std::int64_t Endpoint::peer_incarnation(int rank) const {
  return transport_->incarnation(rank);
}

Endpoint::Delivery Endpoint::RecvAnyDelivery(int tag) {
  return transport_->DoRecvAnyDelivery(*this, tag);
}

void Endpoint::SendResponse(double ready_time, int dst, int tag, Message msg) {
  transport_->DoSendResponse(*this, ready_time, dst, tag, std::move(msg));
}

ThreadTransport::ThreadTransport(int nranks, Config config)
    : config_(config) {
  PANDA_CHECK_MSG(nranks >= 1, "transport needs at least one rank");
#if PANDA_HB_ENABLED
  hb_ = std::make_unique<hb::Checker>(nranks);
#endif
  mailboxes_.reserve(static_cast<size_t>(nranks));
  endpoints_.reserve(static_cast<size_t>(nranks));
  alive_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(nranks));
  incarnation_.assign(static_cast<size_t>(nranks), 1);
  death_time_.assign(static_cast<size_t>(nranks), 0.0);
  send_count_.assign(static_cast<size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
    alive_[static_cast<size_t>(r)].store(true, std::memory_order_release);
  }
}

Endpoint& ThreadTransport::endpoint(int rank) {
  PANDA_CHECK(rank >= 0 && rank < world_size());
  return *endpoints_[static_cast<size_t>(rank)];
}

void ThreadTransport::SetLoss(const LossSpec& loss) {
  loss_ = loss;
  reliable_ = loss.Enabled();
  // Rebuild the production strategy so its per-pair RNG streams are
  // derived from the (possibly new) spec seed.
  seeded_decider_ = std::make_unique<SeededChoiceDecider>(loss);
  if (reliable_) InstallHooks();
}

void ThreadTransport::SetChoiceDecider(ChoiceDecider* decider) {
  decider_ = decider;
  // Decider-driven kills need the liveness hooks (rescue + peer-death
  // probes) just like scheduled kills do.
  if (decider_ != nullptr) InstallHooks();
}

void ThreadTransport::SetHeartbeat(const HeartbeatConfig& heartbeat) {
  heartbeat_ = heartbeat;
}

void ThreadTransport::SetTrace(const trace::TraceOptions& options) {
  if (options.enabled) {
    trace_ = std::make_unique<trace::Collector>(world_size(), options);
  } else {
    trace_.reset();
  }
}

void ThreadTransport::ScheduleKill(int rank, std::int64_t after_more_sends) {
  PANDA_CHECK(rank >= 0 && rank < world_size());
  PANDA_CHECK(after_more_sends >= 0);
  kill_at_count_[rank] =
      send_count_[static_cast<size_t>(rank)] + after_more_sends;
  InstallHooks();
}

void ThreadTransport::InstallHooks() {
  if (hooks_installed_) return;
  hooks_installed_ = true;
  for (int r = 0; r < world_size(); ++r) {
    MailboxHooks hooks;
    hooks.rescue = [this, r] { Rescue(r); };
    hooks.peer_dead = [this](int rank) { return !alive(rank); };
    mailboxes_[static_cast<size_t>(r)]->InstallHooks(std::move(hooks));
  }
}

void ThreadTransport::MaybePerturb(Endpoint& self) {
  if (schedule_seed_ == 0) return;
  // Seeded wall-clock jitter: force the OS to consider other runnable
  // rank threads here. Determinism contract: virtual clocks and bytes
  // are computed from message stamps and per-rank state only, so ANY
  // interleaving must produce bit-identical results — this perturbation
  // exists to falsify that claim when it stops being true.
  const std::uint64_t u = self.sched_rng_.Next();
  if (sched::OnFiber()) {
    // Fiber ranks cannot sleep (that would park the carrier thread);
    // the perturbation becomes a cooperative yield instead — reshuffling
    // the dispatch order, which is the fiber backend's whole scheduling
    // freedom. Exactly one rng draw either way, so the per-rank stream
    // stays backend-identical (the cross-backend equivalence test
    // depends on it).
    if ((u & 7u) < 4u) sched::YieldNow();
    return;
  }
  switch (u & 7u) {
    case 0:
      std::this_thread::sleep_for(
          std::chrono::microseconds(1 + (u >> 8) % 120));
      break;
    case 1:
    case 2:
    case 3:
      std::this_thread::yield();
      break;
    default:
      break;  // run through
  }
}

void ThreadTransport::MaybeKill(Endpoint& from) {
  const size_t r = static_cast<size_t>(from.rank());
  bool fire = false;
  if (!kill_at_count_.empty()) {
    const auto it = kill_at_count_.find(from.rank());
    fire = it != kill_at_count_.end() && send_count_[r] >= it->second &&
           alive(from.rank());
  }
  if (!fire && decider_ != nullptr && decider_->WantsKillChoices() &&
      alive(from.rank())) {
    // Kill choice point: may this rank's next send be its last? Keyed
    // by the rank's own send ordinal, so a fixed decision vector
    // reproduces the same death across replays.
    KillChoice choice;
    choice.rank = from.rank();
    choice.send_index = send_count_[r];
    choice.vtime = from.clock_.Now();
    fire = decider_->ChooseKill(choice);
  }
  if (fire) {
    // Crash-stop: record the time of death, go silent, wake every
    // blocked receive so failure detectors can start their leases. The
    // fatal send consumes its ordinal too — otherwise a revived rank's
    // first send would re-present the same (rank, send_index) kill
    // choice key, and a decider attached across a rejoin would see the
    // key twice.
    ++send_count_[r];
    death_time_[r] = from.clock_.Now();
    alive_[r].store(false, std::memory_order_release);
    fault_stats_.ranks_killed.fetch_add(1);
    for (auto& mb : mailboxes_) mb->NotifyAll();
    throw RankKilledError(from.rank());
  }
  ++send_count_[r];
}

ThreadTransport::PairState& ThreadTransport::PairLocked(int src, int dst) {
  return pairs_[std::make_pair(src, dst)];
}

LossAction ThreadTransport::DecideOutcome(PairState& pair, int src, int dst,
                                          const Message& msg) {
  const std::int64_t link_seq = pair.dispatch_seq++;
  // The bounded-adversary caps decide which actions are *legal*; the
  // decider picks among them. Forced-clean sends consult nobody and
  // draw no randomness — bit-identical to the pre-seam DrawOutcome,
  // which also skipped its RNG on these paths.
  if (!loss_.AnyFaults()) return LossAction::kDeliver;
  if (pair.clean_owed > 0) {
    --pair.clean_owed;
    return LossAction::kDeliver;
  }
  if (loss_.max_faults_total >= 0 && faults_total_ >= loss_.max_faults_total) {
    return LossAction::kDeliver;
  }
  LossChoice choice;
  choice.src = src;
  choice.dst = dst;
  choice.tag = msg.tag;
  choice.link_seq = link_seq;
  choice.vtime = msg.depart_time;
  choice.allowed = LossActionBit(LossAction::kDeliver);
  if (loss_.drop_prob > 0.0) choice.allowed |= LossActionBit(LossAction::kDrop);
  if (loss_.dup_prob > 0.0) choice.allowed |= LossActionBit(LossAction::kDup);
  if (loss_.reorder_prob > 0.0) {
    choice.allowed |= LossActionBit(LossAction::kReorder);
  }
  if (loss_.delay_prob > 0.0) {
    choice.allowed |= LossActionBit(LossAction::kDelay);
  }
  LossAction action = EffectiveDecider()->ChooseLoss(choice);
  if ((choice.allowed & LossActionBit(action)) == 0) {
    action = LossAction::kDeliver;
  }
  if (action == LossAction::kDeliver) {
    pair.consecutive_faults = 0;
    return action;
  }
  ++faults_total_;
  if (++pair.consecutive_faults >= loss_.max_consecutive_faults) {
    // Bounded adversary: a burst this long buys the pair a clean window.
    pair.consecutive_faults = 0;
    pair.clean_owed = loss_.min_clean_after_fault;
  }
  return action;
}

bool ThreadTransport::StaleIncarnation(const Message& msg) const {
  if (msg.incarnation <= 0 || msg.src < 0 || msg.src >= world_size()) {
    return false;
  }
  return msg.incarnation < incarnation_[static_cast<size_t>(msg.src)];
}

void ThreadTransport::SequenceLocked(int dst, Message msg) {
  // Incarnation fence, deposit side: a message stamped by a previous
  // life of its sender (e.g. a rescue retransmit of traffic the zombie
  // left in the lossy layer) is dropped here, never deposited.
  if (StaleIncarnation(msg)) {
    fault_stats_.stale_incarnation_dropped.fetch_add(1);
    return;
  }
  Mailbox& mb = *mailboxes_[static_cast<size_t>(dst)];
  if (msg.seq < 0) {
    mb.Deposit(std::move(msg));
    return;
  }
  StreamState& s = streams_[std::make_tuple(dst, msg.src, msg.tag)];
  if (msg.seq < s.next_expected) {
    fault_stats_.dups_suppressed.fetch_add(1);
    return;
  }
  if (msg.seq > s.next_expected) {
    if (!s.stash.emplace(msg.seq, std::move(msg)).second) {
      fault_stats_.dups_suppressed.fetch_add(1);
    }
    return;
  }
  ++s.next_expected;
  mb.Deposit(std::move(msg));
  while (!s.stash.empty() && s.stash.begin()->first == s.next_expected) {
    mb.Deposit(std::move(s.stash.begin()->second));
    s.stash.erase(s.stash.begin());
    ++s.next_expected;
  }
}

void ThreadTransport::FlushLimboLocked(int dst, PairState& pair) {
  while (!pair.limbo.empty()) {
    Message held = std::move(pair.limbo.front());
    pair.limbo.pop_front();
    SequenceLocked(dst, std::move(held));
  }
}

void ThreadTransport::Dispatch(int src, int dst, Message msg) {
  // kTagAbort bypasses both the adversary and sequencing: the abort
  // backstop must stay unconditional (and abort notices are also raised
  // out-of-band via ForceAbort, so per-stream ordering means nothing).
  // kTagFailover bypasses too: the failover protocol's correctness
  // rests on a deposit-order guarantee -- the coordinator's notice must
  // be visible to a client before any survivor's (or the coordinator's
  // own) re-planned piece request, which are sent strictly after it. A
  // dropped or reordered notice would let an adopted request overtake
  // it and present a piece from a server the client still believes is a
  // non-owner. Control-plane traffic rides the reliable channel.
  // kTagRejoin is control plane of the same kind: the rejoin handshake
  // and the repair collective must complete deterministically even
  // under an armed adversary.
  if (!reliable_ || msg.tag == kTagAbort || msg.tag == kTagFailover ||
      msg.tag == kTagRejoin) {
    if (StaleIncarnation(msg)) {
      fault_stats_.stale_incarnation_dropped.fetch_add(1);
      return;
    }
    mailboxes_[static_cast<size_t>(dst)]->Deposit(std::move(msg));
    return;
  }
  std::lock_guard<std::mutex> lock(reliable_mu_);
  // HB model: the reliable layer's bookkeeping is shared mutable state
  // touched by every sender (and by receivers via Rescue). The mutex
  // serializes it; the lock edges teach the checker that order, and the
  // access stamp would flag any future lock-free "optimization".
  hb::StampLockAcquire(&reliable_mu_);
  hb::StampAccess(&pairs_, "transport.reliable", /*is_write=*/true);
  PairState& pair = PairLocked(src, dst);
  msg.seq = pair.next_seq[msg.tag]++;
  switch (DecideOutcome(pair, src, dst, msg)) {
    case LossAction::kDeliver:
      SequenceLocked(dst, std::move(msg));
      FlushLimboLocked(dst, pair);
      break;
    case LossAction::kDrop:
      // The wire ate it. It stays with the sender's in-flight state
      // until the receiver's rescue retransmits it at depart + rto.
      fault_stats_.drops_injected.fetch_add(1);
      pair.dropped.push_back(std::move(msg));
      break;
    case LossAction::kDup: {
      fault_stats_.dups_injected.fetch_add(1);
      Message copy = msg;
      SequenceLocked(dst, std::move(msg));
      SequenceLocked(dst, std::move(copy));  // suppressed by dedup
      FlushLimboLocked(dst, pair);
      break;
    }
    case LossAction::kReorder:
      // Held back until the pair's next send (or a rescue) releases it;
      // the resequencer puts the stream back in order above the layer.
      fault_stats_.reorders_injected.fetch_add(1);
      pair.limbo.push_back(std::move(msg));
      break;
    case LossAction::kDelay:
      fault_stats_.delays_injected.fetch_add(1);
      msg.depart_time += loss_.delay_s;
      SequenceLocked(dst, std::move(msg));
      FlushLimboLocked(dst, pair);
      break;
  }
  hb::StampLockRelease(&reliable_mu_);
}

void ThreadTransport::Rescue(int dst) {
  if (!reliable_) return;
  std::lock_guard<std::mutex> lock(reliable_mu_);
  hb::StampLockAcquire(&reliable_mu_);
  hb::StampAccess(&pairs_, "transport.reliable", /*is_write=*/true);
  for (auto& entry : pairs_) {
    if (entry.first.second != dst) continue;
    PairState& pair = entry.second;
    FlushLimboLocked(dst, pair);
    while (!pair.dropped.empty()) {
      Message again = std::move(pair.dropped.front());
      pair.dropped.pop_front();
      // The retransmitted copy leaves one RTO after the original did.
      // Retransmits are exempt from further injection, so virtual time
      // stays deterministic: retransmits == drops, exactly.
      again.depart_time += loss_.rto_s;
      fault_stats_.retransmits.fetch_add(1);
      trace::RecordInstant(trace::SpanKind::kTransportRetransmit,
                           again.WireBytes());
      SequenceLocked(dst, std::move(again));
    }
  }
  hb::StampLockRelease(&reliable_mu_);
}

void ThreadTransport::DoSend(Endpoint& from, int dst, int tag, Message msg) {
  PANDA_CHECK_MSG(dst >= 0 && dst < world_size(), "send to bad rank %d", dst);
  MaybePerturb(from);
  MaybeKill(from);
  HbTagSend(next_hb_id_, msg);
  msg.src = from.rank();
  msg.tag = tag;
  msg.incarnation = incarnation_[static_cast<size_t>(from.rank())];
  if (config_.timing_only && !msg.payload.empty()) {
    // Keep sweeps honest: timing-only runs must not move bulk data.
    msg.SetVirtualPayload(static_cast<std::int64_t>(msg.payload.size()));
  }

  const std::int64_t wire_bytes = msg.WireBytes();
  // LogGP accounting, sender side: software overhead, then the sender's
  // outbound link is occupied for the message's wire time.
  const double send_begin = from.clock_.Now();
  from.clock_.Advance(config_.net.per_message_overhead_s);
  msg.depart_time = from.clock_.Now();
  from.clock_.Advance(config_.net.TransferSeconds(wire_bytes));
  trace::RecordSpan(trace::SpanKind::kTransportSend, send_begin,
                    from.clock_.Now(), wire_bytes);

  from.stats_.messages_sent += 1;
  from.stats_.bytes_sent += wire_bytes;
  Dispatch(from.rank(), dst, std::move(msg));
}

double ThreadTransport::IngestTime(Endpoint& self, const Message& msg) {
  // Receiver side: the message cannot start flowing into this node's
  // inbound link before it left the sender (plus latency) nor before the
  // link finished the previous inbound message; it then occupies the
  // link for its wire time. This caps N concurrent senders at one link's
  // bandwidth, as on the real SP2 switch port.
  const double ready = msg.depart_time + config_.net.latency_s;
  const double start = std::max(ready, self.rx_link_busy_until_);
  const double done = start + config_.net.TransferSeconds(msg.WireBytes());
  self.rx_link_busy_until_ = done;
  self.stats_.messages_received += 1;
  self.stats_.bytes_received += msg.WireBytes();
  return done + config_.net.per_message_overhead_s;
}

void ThreadTransport::AccountRecv(Endpoint& self, const Message& msg) {
  self.clock_.SyncTo(IngestTime(self, msg));
}

void ThreadTransport::ObserveMailboxDepth(Endpoint& self) {
  // Depth as seen by the completed receive: messages still queued plus
  // the one just consumed. Guarded by Active() so the untraced path
  // never touches the mailbox lock a second time.
  if (!trace::Active()) return;
  trace::ObserveMetric(
      trace::MetricId::kMailboxDepth,
      static_cast<double>(
          1 + mailboxes_[static_cast<size_t>(self.rank())]->QueuedCount()));
}

Message ThreadTransport::DoRecv(Endpoint& self, int src, int tag) {
  PANDA_CHECK_MSG(src >= 0 && src < world_size(), "recv from bad rank %d", src);
  MaybePerturb(self);
  const double recv_begin = self.clock_.Now();
  try {
    Message msg =
        mailboxes_[static_cast<size_t>(self.rank())]->BlockingReceive(src,
                                                                      tag);
    HbStampRecv(msg);
    ObserveMailboxDepth(self);
    AccountRecv(self, msg);
    trace::RecordSpan(trace::SpanKind::kTransportRecv, recv_begin,
                      self.clock_.Now(), msg.WireBytes());
    return msg;
  } catch (const PeerDeadError&) {
    // Lease-based detection: this rank is deemed to have heartbeat-
    // watched the peer since its death; declaring it dead costs the
    // full lease of silent waiting.
    fault_stats_.peers_declared_dead.fetch_add(1);
    self.clock_.SyncTo(death_time_[static_cast<size_t>(src)] +
                       detection_lease_s());
    throw;
  }
}

Message ThreadTransport::ReceiveAnyWithChoice(Endpoint& self, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<size_t>(self.rank())];
  ChoiceDecider* decider = decider_;
  if (decider == nullptr || !decider->WantsDeliveryChoices()) {
    return mb.BlockingReceiveAny(tag);
  }
  // Delivery choice point: when several pending messages match an
  // any-source receive, the decider picks which one this receive takes.
  // Keyed by the receiver's own per-tag ordinal. Index 0 (earliest
  // deposited) is the transport's historical behavior.
  const std::int64_t recv_index = self.recv_any_seq_[tag]++;
  return mb.BlockingReceiveAnyChoose(
      tag, [&](const std::vector<int>& srcs) {
        DeliveryChoice choice;
        choice.rank = self.rank();
        choice.tag = tag;
        choice.recv_index = recv_index;
        choice.candidate_srcs = srcs;
        const int pick = decider->ChooseDelivery(choice);
        if (pick == kDeliveryWaitPick) return kMailboxPickWait;
        if (pick < 0 || pick >= static_cast<int>(srcs.size())) {
          return static_cast<size_t>(0);
        }
        return static_cast<size_t>(pick);
      });
}

Message ThreadTransport::DoRecvAny(Endpoint& self, int tag) {
  MaybePerturb(self);
  const double recv_begin = self.clock_.Now();
  Message msg = ReceiveAnyWithChoice(self, tag);
  HbStampRecv(msg);
  ObserveMailboxDepth(self);
  AccountRecv(self, msg);
  trace::RecordSpan(trace::SpanKind::kTransportRecv, recv_begin,
                    self.clock_.Now(), msg.WireBytes());
  return msg;
}

std::optional<Message> ThreadTransport::DoTryRecv(Endpoint& self, int src,
                                                  int tag, double timeout_vs) {
  PANDA_CHECK(timeout_vs >= 0.0);
  MaybePerturb(self);
  Mailbox& mb = *mailboxes_[static_cast<size_t>(self.rank())];
  std::optional<Message> msg = mb.ReceiveWithin(src, tag, try_recv_grace_);
  if (!msg && reliable_) {
    // Last chance: flush anything the lossy layer still owes us.
    Rescue(self.rank());
    msg = mb.ReceiveWithin(src, tag, std::chrono::milliseconds(0));
  }
  if (msg) {
    HbStampRecv(*msg);
    const double recv_begin = self.clock_.Now();
    ObserveMailboxDepth(self);
    AccountRecv(self, *msg);
    trace::RecordSpan(trace::SpanKind::kTransportRecv, recv_begin,
                      self.clock_.Now(), msg->WireBytes());
    return msg;
  }
  const double wait_begin = self.clock_.Now();
  self.clock_.Advance(timeout_vs);
  trace::RecordSpan(trace::SpanKind::kTransportRecv, wait_begin,
                    self.clock_.Now(), 0);
  return std::nullopt;
}

Endpoint::Delivery ThreadTransport::DoRecvAnyDelivery(Endpoint& self,
                                                      int tag) {
  MaybePerturb(self);
  Endpoint::Delivery d;
  d.msg = ReceiveAnyWithChoice(self, tag);
  HbStampRecv(d.msg);
  // Contention-free ingest: responder receives are serviced in wall-clock
  // arrival order, which under thread scheduling can diverge from virtual
  // arrival order; routing them through the shared rx-link horizon would
  // let one virtually-far-ahead sender delay every later-serviced message
  // (runahead poisoning). Responder traffic is either tiny (write-path
  // piece requests) or flow-controlled to <= one outstanding piece per
  // server (read-path data), so dropping its link serialization costs at
  // most one piece's wire time of optimism.
  d.ready_time = d.msg.depart_time + config_.net.latency_s +
                 config_.net.TransferSeconds(d.msg.WireBytes()) +
                 config_.net.per_message_overhead_s;
  self.stats_.messages_received += 1;
  self.stats_.bytes_received += d.msg.WireBytes();
  ObserveMailboxDepth(self);
  // Responder receives never drag this rank's clock, so the span is
  // stamped with the message's own wire occupancy window instead.
  trace::RecordSpan(trace::SpanKind::kTransportRecv,
                    d.msg.depart_time + config_.net.latency_s, d.ready_time,
                    d.msg.WireBytes());
  return d;
}

void ThreadTransport::DoSendResponse(Endpoint& from, double ready_time,
                                     int dst, int tag, Message msg) {
  PANDA_CHECK_MSG(dst >= 0 && dst < world_size(), "send to bad rank %d", dst);
  MaybePerturb(from);
  MaybeKill(from);
  HbTagSend(next_hb_id_, msg);
  msg.src = from.rank();
  msg.tag = tag;
  msg.incarnation = incarnation_[static_cast<size_t>(from.rank())];
  if (config_.timing_only && !msg.payload.empty()) {
    msg.SetVirtualPayload(static_cast<std::int64_t>(msg.payload.size()));
  }
  const std::int64_t wire_bytes = msg.WireBytes();
  // Responder model: the reply departs after the send overhead, with no
  // outbound-link serialization against the responder's other replies.
  // Rationale: a shared busy-until scalar would be updated in wall-clock
  // service order, which on a loaded host can diverge wildly from
  // virtual arrival order and overcharge unrelated servers (runahead
  // leakage). The receiving server's inbound link — updated in its own
  // deterministic plan order — remains the binding wire resource, which
  // matches where the paper's bottlenecks actually are. The cost is a
  // slightly optimistic client when several servers pull from it in the
  // same instant (error bounded by one piece's wire time).
  const double depart = ready_time + config_.net.per_message_overhead_s;
  msg.depart_time = depart;
  // Keep the clock abreast of responder work so client elapsed times
  // include it.
  from.clock_.SyncTo(depart + config_.net.TransferSeconds(wire_bytes));
  trace::RecordSpan(trace::SpanKind::kTransportSend, ready_time,
                    depart + config_.net.TransferSeconds(wire_bytes),
                    wire_bytes);

  from.stats_.messages_sent += 1;
  from.stats_.bytes_sent += wire_bytes;
  Dispatch(from.rank(), dst, std::move(msg));
}

void ThreadTransport::RunRankMain(
    Endpoint& endpoint, const std::function<void(Endpoint&)>& rank_main,
    std::exception_ptr& first_error, std::mutex& error_mu) {
  try {
    rank_main(endpoint);
  } catch (const RankKilledError&) {
    // The kill injector's silent unwind. Deliberately nothing: no
    // poison, no error — the rank simply stops participating, and
    // it is the survivors' job to detect and route around it.
  } catch (const PandaAbortError& e) {
    // Structured abort: the protocol layer has (or is) fanning the
    // notice out as kTagAbort messages; force-abort every mailbox as
    // a backstop so no rank can hang even if the relay chain was cut
    // (e.g. the master server had already shut down).
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    for (auto& mb : mailboxes_) mb->ForceAbort(e.origin_rank(), e.reason());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    for (auto& mb : mailboxes_) mb->Poison();
  }
}

void ThreadTransport::Run(const std::function<void(Endpoint&)>& rank_main) {
  InstallHooks();  // no-op unless faults/kills were armed
  std::exception_ptr first_error;
  std::mutex error_mu;

  // Fork edge: everything the driver did before this Run happens-before
  // every rank's first step.
  if (hb_) hb_->OnRunStart();

  // Schedule perturbation: launch ranks in a seeded-shuffled order and
  // hand each endpoint a fresh per-rank jitter stream. The same seed
  // reproduces the same perturbation; different seeds force different
  // interleavings, and the determinism contract says the virtual
  // outcome must not care.
  std::vector<int> launch_order(endpoints_.size());
  std::iota(launch_order.begin(), launch_order.end(), 0);
  if (schedule_seed_ != 0) {
    Rng shuffle_rng(schedule_seed_ ^ 0x5eedc0de5eedc0deull);
    for (size_t i = launch_order.size(); i > 1; --i) {
      std::swap(launch_order[i - 1],
                launch_order[static_cast<size_t>(shuffle_rng.NextBelow(i))]);
    }
    for (auto& ep : endpoints_) {
      ep->sched_rng_ = Rng(PairSeed(schedule_seed_, ep->rank(), ep->rank()));
    }
  }

  // Crash-stopped ranks stay silent forever: their main never runs
  // again on later Run() calls.
  std::vector<int> live_order;
  live_order.reserve(launch_order.size());
  for (int launch : launch_order) {
    if (alive(launch)) live_order.push_back(launch);
  }

  // The scheduler seam (src/sched/): thread backend = one OS thread per
  // rank (the original semantics, byte for byte); fiber backend = ranks
  // as cooperative fibers on a small carrier pool. Either way each
  // rank's execution slice runs under that rank's trace/hb context,
  // installed by the slice guard below (fibers migrate between slices
  // of the same carrier, so the context must follow the slice, not the
  // OS thread).
  auto scheduler = sched::MakeScheduler(sched_config_);
  scheduler->SetSliceGuard([this](int rank, bool enter) {
    if (enter) {
      trace::CurrentContext() = trace::RankContext{
          trace_ ? &trace_->recorder(rank) : nullptr,
          &endpoints_[static_cast<size_t>(rank)]->clock()};
      hb::CurrentThread() = hb::ThreadContext{hb_.get(), rank};
    } else {
      trace::CurrentContext() = trace::RankContext{};
      hb::CurrentThread() = hb::ThreadContext{};
    }
  });
  scheduler->RunAll(live_order, [&](int rank) {
    RunRankMain(*endpoints_[static_cast<size_t>(rank)], rank_main, first_error,
                error_mu);
  });
  sched_stats_ += scheduler->stats();

  // Join edge: every rank's last step happens-before whatever the
  // driver does next.
  if (hb_) hb_->OnRunEnd();
  if (first_error) std::rethrow_exception(first_error);
}

MsgStats ThreadTransport::TotalStats() const {
  MsgStats total;
  for (const auto& ep : endpoints_) {
    total.messages_sent += ep->stats().messages_sent;
    total.messages_received += ep->stats().messages_received;
    total.bytes_sent += ep->stats().bytes_sent;
    total.bytes_received += ep->stats().bytes_received;
  }
  return total;
}

void ThreadTransport::ResetClocksAndStats() {
  for (auto& ep : endpoints_) {
    Mailbox& mb = *mailboxes_[static_cast<size_t>(ep->rank())];
    if (!alive(ep->rank())) {
      // Nobody will ever drain a dead rank's mailbox.
      mb.PurgeIf([](const Message&) { return true; });
    } else {
      // Traffic from the dead can be legitimately stranded (a message a
      // survivor no longer wants after re-planning); everything else
      // must have been consumed.
      mb.PurgeIf([this](const Message& m) {
        return m.src >= 0 && m.src < world_size() && !alive(m.src);
      });
      PANDA_CHECK_MSG(mb.QueuedCount() == 0, "reset with undelivered messages");
    }
    ep->clock_.Reset();
    ep->stats_ = MsgStats{};
    ep->rx_link_busy_until_ = 0.0;
  }
  {
    std::lock_guard<std::mutex> lock(reliable_mu_);
    for (auto& entry : pairs_) {
      const int dst = entry.first.second;
      if (!alive(dst)) {
        entry.second.limbo.clear();
        entry.second.dropped.clear();
      } else {
        PANDA_CHECK_MSG(
            entry.second.limbo.empty() && entry.second.dropped.empty(),
            "reset with messages stuck in the lossy layer");
      }
    }
    for (auto& entry : streams_) {
      const int dst = std::get<0>(entry.first);
      if (!alive(dst)) {
        entry.second.stash.clear();
      } else {
        PANDA_CHECK_MSG(entry.second.stash.empty(),
                        "reset with unsequenced messages stashed");
      }
    }
  }
  // Clocks restart from zero; a death that already happened is treated
  // as ancient history (detection charges no further lease).
  for (size_t r = 0; r < death_time_.size(); ++r) {
    if (!alive(static_cast<int>(r))) death_time_[r] = 0.0;
  }
  fault_stats_.Reset();
  // Spans are stats too: after a reset the collector holds only what the
  // next Run records (bench reps export the final measured repetition).
  if (trace_) trace_->Reset();
  // Delivered messages' VC snapshots are no longer needed (the join
  // edge at Run()'s end subsumes them); drop them so long bench sweeps
  // don't accumulate per-message checker state.
  if (hb_) hb_->ForgetMessages();
}

void ThreadTransport::Revive(int rank) {
  PANDA_CHECK(rank >= 0 && rank < world_size());
  PANDA_CHECK_MSG(!alive(rank), "revive of a rank that is not dead");
  const size_t r = static_cast<size_t>(rank);
  // Fence the old life before anything can hear from it again: every
  // message the dead incarnation left behind — queued in any mailbox,
  // stuck in reorder limbo, awaiting a rescue retransmit, or stashed
  // out of order at a receiver — is dropped and counted. Survivor
  // traffic still in flight *to* the dead rank is cleared too (the old
  // process never received it), but only the zombie's own messages
  // count as stale-incarnation drops.
  std::int64_t stale = 0;
  for (auto& mb : mailboxes_) {
    stale += static_cast<std::int64_t>(
        mb->PurgeIf([rank](const Message& m) { return m.src == rank; }));
  }
  {
    std::lock_guard<std::mutex> lock(reliable_mu_);
    for (auto& entry : pairs_) {
      const int src = entry.first.first;
      const int dst = entry.first.second;
      if (src != rank && dst != rank) continue;
      PairState& pair = entry.second;
      if (src == rank) {
        stale += static_cast<std::int64_t>(pair.limbo.size()) +
                 static_cast<std::int64_t>(pair.dropped.size());
      }
      pair.limbo.clear();
      pair.dropped.clear();
      pair.consecutive_faults = 0;
      pair.clean_owed = 0;
      // Per-incarnation resequencing reset: the new life's streams
      // start at sequence zero in both directions. dispatch_seq keeps
      // counting so loss choice-point keys stay unique across lives.
      pair.next_seq.clear();
    }
    for (auto& entry : streams_) {
      const int dst = std::get<0>(entry.first);
      const int src = std::get<1>(entry.first);
      if (src != rank && dst != rank) continue;
      if (src == rank) {
        stale += static_cast<std::int64_t>(entry.second.stash.size());
      }
      entry.second.stash.clear();
      entry.second.next_expected = 0;
    }
  }
  if (stale > 0) fault_stats_.stale_incarnation_dropped.fetch_add(stale);
  // The new life boots with an empty mailbox and no abort baggage; its
  // virtual clock continues from the moment of death (restart takes no
  // modeled time — the lease-based detector already charged survivors).
  mailboxes_[r]->ResetForRestart();
  // A kill scheduled against the old life must not immediately fell the
  // new one (send_count_ keeps counting across lives by design).
  kill_at_count_.erase(rank);
  death_time_[r] = 0.0;
  ++incarnation_[r];
  alive_[r].store(true, std::memory_order_release);
  fault_stats_.ranks_revived.fetch_add(1);
}

void ThreadTransport::ResetForRecovery() {
  // Process-restart semantics: whatever was queued, in flight, or stuck
  // in the lossy layer died with the old processes. Sticky abort state
  // is cleared too — the restarted processes are new incarnations, not
  // continuations of the aborted ones.
  for (auto& mb : mailboxes_) mb->ResetForRestart();
  for (auto& ep : endpoints_) {
    ep->clock_.Reset();
    ep->stats_ = MsgStats{};
    ep->rx_link_busy_until_ = 0.0;
    ep->recv_any_seq_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(reliable_mu_);
    pairs_.clear();
    streams_.clear();
    faults_total_ = 0;
  }
  kill_at_count_.clear();
  for (size_t r = 0; r < send_count_.size(); ++r) send_count_[r] = 0;
  // The dead stay dead, but their deaths are ancient history: detection
  // charges no further lease against the fresh clocks.
  for (size_t r = 0; r < death_time_.size(); ++r) death_time_[r] = 0.0;
  fault_stats_.Reset();
  if (trace_) trace_->Reset();
  if (hb_) hb_->ForgetMessages();
}

void ThreadTransport::ResetForRejoin() {
  // Between-runs reset for a rejoin phase that CONTINUES the same
  // explored execution: an attached choice decider keeps observing the
  // machine across the boundary, so everything that feeds choice-point
  // keys — per-rank send ordinals (kill points), per-(rank,tag)
  // any-source receive ordinals (delivery picks) — keeps counting, and
  // the fault counters accumulated so far (stale-incarnation drops,
  // revivals) survive into the final report. Per-run message state is
  // dropped exactly as in ResetForRecovery. The per-pair link sequence
  // state is cleared, so the caller must disarm loss for the next run
  // (a fresh link_seq under an armed decider would collide loss keys).
  for (auto& mb : mailboxes_) mb->ResetForRestart();
  for (auto& ep : endpoints_) {
    ep->clock_.Reset();
    ep->stats_ = MsgStats{};
    ep->rx_link_busy_until_ = 0.0;
  }
  {
    std::lock_guard<std::mutex> lock(reliable_mu_);
    pairs_.clear();
    streams_.clear();
    faults_total_ = 0;
  }
  kill_at_count_.clear();
  for (size_t r = 0; r < death_time_.size(); ++r) death_time_[r] = 0.0;
  if (trace_) trace_->Reset();
  if (hb_) hb_->ForgetMessages();
}

}  // namespace panda
