#include "msg/transport.h"

#include <exception>
#include <thread>

#include "util/error.h"

namespace panda {

int Endpoint::world_size() const { return transport_->world_size(); }

bool Endpoint::timing_only() const { return transport_->config().timing_only; }

void Endpoint::Send(int dst, int tag, Message msg) {
  transport_->DoSend(*this, dst, tag, std::move(msg));
}

Message Endpoint::Recv(int src, int tag) {
  return transport_->DoRecv(*this, src, tag);
}

Message Endpoint::RecvAny(int tag) {
  return transport_->DoRecvAny(*this, tag);
}

Endpoint::Delivery Endpoint::RecvAnyDelivery(int tag) {
  return transport_->DoRecvAnyDelivery(*this, tag);
}

void Endpoint::SendResponse(double ready_time, int dst, int tag, Message msg) {
  transport_->DoSendResponse(*this, ready_time, dst, tag, std::move(msg));
}

ThreadTransport::ThreadTransport(int nranks, Config config)
    : config_(config) {
  PANDA_CHECK_MSG(nranks >= 1, "transport needs at least one rank");
  mailboxes_.reserve(static_cast<size_t>(nranks));
  endpoints_.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
  }
}

Endpoint& ThreadTransport::endpoint(int rank) {
  PANDA_CHECK(rank >= 0 && rank < world_size());
  return *endpoints_[static_cast<size_t>(rank)];
}

void ThreadTransport::DoSend(Endpoint& from, int dst, int tag, Message msg) {
  PANDA_CHECK_MSG(dst >= 0 && dst < world_size(), "send to bad rank %d", dst);
  msg.src = from.rank();
  msg.tag = tag;
  if (config_.timing_only && !msg.payload.empty()) {
    // Keep sweeps honest: timing-only runs must not move bulk data.
    msg.SetVirtualPayload(static_cast<std::int64_t>(msg.payload.size()));
  }

  const std::int64_t wire_bytes = msg.WireBytes();
  // LogGP accounting, sender side: software overhead, then the sender's
  // outbound link is occupied for the message's wire time.
  from.clock_.Advance(config_.net.per_message_overhead_s);
  msg.depart_time = from.clock_.Now();
  from.clock_.Advance(config_.net.TransferSeconds(wire_bytes));

  from.stats_.messages_sent += 1;
  from.stats_.bytes_sent += wire_bytes;
  mailboxes_[static_cast<size_t>(dst)]->Deposit(std::move(msg));
}

double ThreadTransport::IngestTime(Endpoint& self, const Message& msg) {
  // Receiver side: the message cannot start flowing into this node's
  // inbound link before it left the sender (plus latency) nor before the
  // link finished the previous inbound message; it then occupies the
  // link for its wire time. This caps N concurrent senders at one link's
  // bandwidth, as on the real SP2 switch port.
  const double ready = msg.depart_time + config_.net.latency_s;
  const double start = std::max(ready, self.rx_link_busy_until_);
  const double done = start + config_.net.TransferSeconds(msg.WireBytes());
  self.rx_link_busy_until_ = done;
  self.stats_.messages_received += 1;
  self.stats_.bytes_received += msg.WireBytes();
  return done + config_.net.per_message_overhead_s;
}

void ThreadTransport::AccountRecv(Endpoint& self, const Message& msg) {
  self.clock_.SyncTo(IngestTime(self, msg));
}

Message ThreadTransport::DoRecv(Endpoint& self, int src, int tag) {
  PANDA_CHECK_MSG(src >= 0 && src < world_size(), "recv from bad rank %d", src);
  Message msg =
      mailboxes_[static_cast<size_t>(self.rank())]->BlockingReceive(src, tag);
  AccountRecv(self, msg);
  return msg;
}

Message ThreadTransport::DoRecvAny(Endpoint& self, int tag) {
  Message msg =
      mailboxes_[static_cast<size_t>(self.rank())]->BlockingReceiveAny(tag);
  AccountRecv(self, msg);
  return msg;
}

Endpoint::Delivery ThreadTransport::DoRecvAnyDelivery(Endpoint& self,
                                                      int tag) {
  Endpoint::Delivery d;
  d.msg = mailboxes_[static_cast<size_t>(self.rank())]->BlockingReceiveAny(tag);
  // Contention-free ingest: responder receives are serviced in wall-clock
  // arrival order, which under thread scheduling can diverge from virtual
  // arrival order; routing them through the shared rx-link horizon would
  // let one virtually-far-ahead sender delay every later-serviced message
  // (runahead poisoning). Responder traffic is either tiny (write-path
  // piece requests) or flow-controlled to <= one outstanding piece per
  // server (read-path data), so dropping its link serialization costs at
  // most one piece's wire time of optimism.
  d.ready_time = d.msg.depart_time + config_.net.latency_s +
                 config_.net.TransferSeconds(d.msg.WireBytes()) +
                 config_.net.per_message_overhead_s;
  self.stats_.messages_received += 1;
  self.stats_.bytes_received += d.msg.WireBytes();
  return d;
}

void ThreadTransport::DoSendResponse(Endpoint& from, double ready_time,
                                     int dst, int tag, Message msg) {
  PANDA_CHECK_MSG(dst >= 0 && dst < world_size(), "send to bad rank %d", dst);
  msg.src = from.rank();
  msg.tag = tag;
  if (config_.timing_only && !msg.payload.empty()) {
    msg.SetVirtualPayload(static_cast<std::int64_t>(msg.payload.size()));
  }
  const std::int64_t wire_bytes = msg.WireBytes();
  // Responder model: the reply departs after the send overhead, with no
  // outbound-link serialization against the responder's other replies.
  // Rationale: a shared busy-until scalar would be updated in wall-clock
  // service order, which on a loaded host can diverge wildly from
  // virtual arrival order and overcharge unrelated servers (runahead
  // leakage). The receiving server's inbound link — updated in its own
  // deterministic plan order — remains the binding wire resource, which
  // matches where the paper's bottlenecks actually are. The cost is a
  // slightly optimistic client when several servers pull from it in the
  // same instant (error bounded by one piece's wire time).
  const double depart = ready_time + config_.net.per_message_overhead_s;
  msg.depart_time = depart;
  // Keep the clock abreast of responder work so client elapsed times
  // include it.
  from.clock_.SyncTo(depart + config_.net.TransferSeconds(wire_bytes));

  from.stats_.messages_sent += 1;
  from.stats_.bytes_sent += wire_bytes;
  mailboxes_[static_cast<size_t>(dst)]->Deposit(std::move(msg));
}

void ThreadTransport::Run(const std::function<void(Endpoint&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(endpoints_.size());
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (auto& ep : endpoints_) {
    Endpoint* endpoint = ep.get();
    threads.emplace_back([&, endpoint] {
      try {
        rank_main(*endpoint);
      } catch (const PandaAbortError& e) {
        // Structured abort: the protocol layer has (or is) fanning the
        // notice out as kTagAbort messages; force-abort every mailbox as
        // a backstop so no rank can hang even if the relay chain was cut
        // (e.g. the master server had already shut down).
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        for (auto& mb : mailboxes_) mb->ForceAbort(e.origin_rank(), e.reason());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        for (auto& mb : mailboxes_) mb->Poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

MsgStats ThreadTransport::TotalStats() const {
  MsgStats total;
  for (const auto& ep : endpoints_) {
    total.messages_sent += ep->stats().messages_sent;
    total.messages_received += ep->stats().messages_received;
    total.bytes_sent += ep->stats().bytes_sent;
    total.bytes_received += ep->stats().bytes_received;
  }
  return total;
}

void ThreadTransport::ResetClocksAndStats() {
  for (auto& ep : endpoints_) {
    PANDA_CHECK_MSG(mailboxes_[static_cast<size_t>(ep->rank())]->QueuedCount() == 0,
                    "reset with undelivered messages");
    ep->clock_.Reset();
    ep->stats_ = MsgStats{};
    ep->rx_link_busy_until_ = 0.0;
  }
}

}  // namespace panda
