// Per-rank virtual clocks.
//
// Every rank (thread) carries a clock in simulated seconds. Compute,
// pack/unpack, disk and message costs advance it; message receipt
// synchronizes it with the sender's stamped arrival time. Only the
// owning thread touches its clock, so no locking is needed.
#pragma once

#include <algorithm>

namespace panda {

class VirtualClock {
 public:
  double Now() const { return now_; }

  // Advances by `seconds` of simulated work (>= 0).
  void Advance(double seconds) { now_ += seconds; }

  // Synchronizes to an external event time (e.g. message arrival): the
  // clock never moves backwards.
  void SyncTo(double time) { now_ = std::max(now_, time); }

  void Reset(double time = 0.0) { now_ = time; }

 private:
  double now_ = 0.0;
};

}  // namespace panda
