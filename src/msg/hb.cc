#include "msg/hb.h"

#include <algorithm>

#include "util/error.h"

namespace panda {
namespace hb {

std::string Race::ToString() const {
  return "unordered " + std::string(prev_write ? "write" : "read") + "/" +
         (write ? "write" : "read") + " on '" + object + "' by ranks " +
         std::to_string(prev_rank) + " and " + std::to_string(rank) +
         " (no happens-before edge orders them)";
}

Checker::Checker(int nranks) : nranks_(nranks) {
  PANDA_CHECK_MSG(nranks >= 1, "hb checker needs at least one rank");
  vc_.assign(static_cast<size_t>(nranks) + 1,
             VectorClock(static_cast<size_t>(nranks) + 1, 0));
}

VectorClock& Checker::VcLocked(int rank) {
  PANDA_CHECK(rank >= 0 && rank <= nranks_);
  return vc_[static_cast<size_t>(rank)];
}

void Checker::JoinLocked(VectorClock& into, const VectorClock& from) {
  for (size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void Checker::OnRunStart() {
  std::lock_guard<std::mutex> lock(mu_);
  VectorClock& root = vc_[static_cast<size_t>(nranks_)];
  ++root[static_cast<size_t>(nranks_)];
  for (int r = 0; r < nranks_; ++r) {
    JoinLocked(vc_[static_cast<size_t>(r)], root);
  }
}

void Checker::OnRunEnd() {
  std::lock_guard<std::mutex> lock(mu_);
  VectorClock& root = vc_[static_cast<size_t>(nranks_)];
  for (int r = 0; r < nranks_; ++r) {
    JoinLocked(root, vc_[static_cast<size_t>(r)]);
  }
}

void Checker::OnSend(int rank, std::uint64_t msg_id) {
  if (msg_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  VectorClock& vc = VcLocked(rank);
  // Snapshot first, then tick: the send itself precedes whatever the
  // sender does next, but the receiver only inherits up to the send.
  sends_[msg_id] = vc;
  ++vc[static_cast<size_t>(rank)];
}

void Checker::OnRecv(int rank, std::uint64_t msg_id) {
  if (msg_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sends_.find(msg_id);
  if (it == sends_.end()) return;  // message predates this checker
  JoinLocked(VcLocked(rank), it->second);
}

void Checker::OnLockAcquire(int rank, const void* lock_ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(lock_ptr);
  if (it != locks_.end()) JoinLocked(VcLocked(rank), it->second);
}

void Checker::OnLockRelease(int rank, const void* lock_ptr) {
  std::lock_guard<std::mutex> lock(mu_);
  VectorClock& vc = VcLocked(rank);
  locks_[lock_ptr] = vc;
  ++vc[static_cast<size_t>(rank)];
}

void Checker::ReportLocked(const ObjectState& obj, int prev_rank,
                           bool prev_write, int rank, bool write) {
  // Deduplicate per (object, rank pair, kind pair): a racy loop would
  // otherwise flood the report with the same finding.
  const auto key =
      std::make_tuple(static_cast<const void*>(&obj), prev_rank, rank,
                      prev_write, write);
  if (!reported_.emplace(key, true).second) return;
  races_.push_back(Race{obj.name, prev_rank, prev_write, rank, write});
}

void Checker::OnAccess(int rank, const void* object, const char* name,
                       bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  VectorClock& vc = VcLocked(rank);
  auto [it, inserted] = objects_.try_emplace(object);
  ObjectState& obj = it->second;
  if (inserted) {
    obj.name = name;
    obj.reads.assign(static_cast<size_t>(nranks_) + 1, 0);
  }

  // Read/write after an unordered write?
  if (obj.last_writer >= 0 && obj.last_writer != rank &&
      obj.last_write_clock > vc[static_cast<size_t>(obj.last_writer)]) {
    ReportLocked(obj, obj.last_writer, /*prev_write=*/true, rank, is_write);
  }
  if (is_write) {
    // Write after an unordered read?
    for (int r = 0; r < static_cast<int>(obj.reads.size()); ++r) {
      if (r == rank) continue;
      if (obj.reads[static_cast<size_t>(r)] > vc[static_cast<size_t>(r)]) {
        ReportLocked(obj, r, /*prev_write=*/false, rank, /*write=*/true);
      }
    }
    ++vc[static_cast<size_t>(rank)];
    obj.last_writer = rank;
    obj.last_write_clock = vc[static_cast<size_t>(rank)];
    // The write epoch subsumes every checked read.
    std::fill(obj.reads.begin(), obj.reads.end(), 0);
  } else {
    ++vc[static_cast<size_t>(rank)];
    obj.reads[static_cast<size_t>(rank)] = vc[static_cast<size_t>(rank)];
  }
}

std::vector<Race> Checker::Races() const {
  std::lock_guard<std::mutex> lock(mu_);
  return races_;
}

std::size_t Checker::race_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return races_.size();
}

void Checker::ClearRaces() {
  std::lock_guard<std::mutex> lock(mu_);
  races_.clear();
  reported_.clear();
}

void Checker::ForgetMessages() {
  std::lock_guard<std::mutex> lock(mu_);
  sends_.clear();
}

ThreadContext& CurrentThread() {
  thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace hb
}  // namespace panda
