// Messages exchanged between ranks.
//
// A message has a small always-real `header` (protocol metadata) and a
// bulk `payload`. In timing-only runs the payload bytes are elided and
// only `payload_vbytes` is carried, so that 512 MB collectives can be
// swept without moving 512 MB; the message *sequence* is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/codec.h"
#include "util/error.h"

#ifndef PANDA_HB_ENABLED
#define PANDA_HB_ENABLED 0
#endif

namespace panda {

struct Message {
  int src = -1;
  int tag = -1;
  std::vector<std::byte> header;
  std::vector<std::byte> payload;
  std::int64_t payload_vbytes = 0;  // virtual payload size (== payload.size() when real)
  double depart_time = 0.0;         // virtual time the first byte leaves the sender
  // Reliable-delivery sequence number within the (src, dst, tag) stream;
  // -1 when the reliable layer is not armed. Not counted in WireBytes():
  // real stacks carry sequence numbers inside the per-message framing
  // already charged via the constant header overhead.
  std::int64_t seq = -1;
  // The sender's incarnation number at send time (incremented by
  // ThreadTransport::Revive when a crash-stopped rank restarts). The
  // transport drops any message stamped by a previous life of its
  // sender, so a zombie's late retransmits cannot poison the new epoch.
  // 0 = unstamped (never fenced). Like seq, part of the per-message
  // framing already charged via the header overhead: not in WireBytes().
  std::int64_t incarnation = 0;
#if PANDA_HB_ENABLED
  // Happens-before checker identity (msg/hb.h): ties this message's
  // receive back to the sender's vector clock snapshot. 0 = untracked.
  // Only exists in PANDA_HB builds so production layouts are unchanged.
  std::uint64_t hb_id = 0;
#endif

  // Attaches a real payload.
  void SetPayload(std::vector<std::byte> bytes) {
    payload = std::move(bytes);
    payload_vbytes = static_cast<std::int64_t>(payload.size());
  }

  // Declares a payload of `vbytes` without materializing it.
  void SetVirtualPayload(std::int64_t vbytes) {
    PANDA_CHECK(vbytes >= 0);
    payload.clear();
    payload_vbytes = vbytes;
  }

  // Total bytes this message occupies on the wire (virtual).
  std::int64_t WireBytes() const {
    return static_cast<std::int64_t>(header.size()) + payload_vbytes;
  }
};

// Panda protocol tags. Collectives and the data phase use disjoint tags
// so a late barrier message can never be confused with a data piece.
// Every enumerator has a matching `message` entry (phase, integrity
// class, direction roles) in tools/analyze/protocol.spec; panda_proto
// keeps the two in sync bidirectionally and panda_lint reads the
// integrity classes from there.
enum MsgTag : int {
  kTagCollectiveRequest = 1,  // master client -> master server
  kTagPieceRequest = 3,       // server -> client (write path)
  kTagPieceData = 4,          // client -> server (write) / server -> client (read)
  kTagServerDone = 5,         // master server -> master client
  kTagBarrier = 8,            // tree barrier / gather tokens
  kTagBcast = 9,              // tree broadcasts (requests, completion)
  kTagPieceAck = 10,          // client -> server (read-path flow control)
  kTagAbort = 11,             // structured cluster-wide abort fan-out
  kTagFailover = 12,          // degraded-mode notices and phase decisions
  kTagRejoin = 13,            // rejoin handshake + repair collective
  kTagApp = 100,              // first tag available to applications/tests
};

// The payload of a kTagAbort message: which rank hit the unrecoverable
// fault, and why. Abort messages outrank ordinary matching: any blocked
// receive that finds one in its mailbox raises PandaAbortError instead
// of waiting, so an abort reaches every rank within one receive.
struct AbortNotice {
  std::int32_t origin_rank = -1;
  std::string reason;
};

inline Message MakeAbortMessage(int origin_rank, const std::string& reason) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(origin_rank);
  enc.PutString(reason);
  return msg;
}

inline AbortNotice DecodeAbortNotice(const Message& msg) {
  Decoder dec(msg.header);
  AbortNotice notice;
  notice.origin_rank = dec.Get<std::int32_t>();
  notice.reason = dec.GetString();
  return notice;
}

// The payload of a kTagFailover message: the coordinator rank that
// detected the failure and the full set of server ranks now considered
// dead. Like an abort notice it outranks ordinary matching on ranks that
// are *not* explicitly receiving kTagFailover (clients blocked in their
// service loop learn of the failover via PandaFailoverError), but unlike
// an abort it is consumed one-shot: the collective continues in degraded
// mode rather than dying.
struct FailoverNotice {
  std::int32_t origin_rank = -1;
  // The coordinator's layout epoch (`__panda.layout_epoch`) for the
  // collective this notice belongs to. Clients record it from the
  // completion notice, so after a failover or a rejoin repair they know
  // which layout generation the group's files are under before their
  // next collective.
  std::int64_t epoch = 0;
  std::vector<int> dead_ranks;
};

inline Message MakeFailoverMessage(int origin_rank,
                                   const std::vector<int>& dead_ranks,
                                   std::int64_t epoch = 0) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(origin_rank);
  enc.Put<std::int64_t>(epoch);
  enc.Put<std::int32_t>(static_cast<std::int32_t>(dead_ranks.size()));
  for (int r : dead_ranks) enc.Put<std::int32_t>(r);
  return msg;
}

inline FailoverNotice DecodeFailoverNotice(const Message& msg) {
  Decoder dec(msg.header);
  FailoverNotice notice;
  notice.origin_rank = dec.Get<std::int32_t>();
  notice.epoch = dec.Get<std::int64_t>();
  const std::int32_t n = dec.Get<std::int32_t>();
  PANDA_REQUIRE(n >= 0, "corrupt failover notice");
  notice.dead_ranks.reserve(static_cast<size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    notice.dead_ranks.push_back(dec.Get<std::int32_t>());
  }
  return notice;
}

// The header of a kTagRejoin handshake message. A restarted server
// announces its new life to the master ({origin_rank, incarnation});
// the master's ack carries the membership verdict: the new layout
// epoch, whether a repair collective will rebuild the identity layout
// before the next data phase, and the server ranks the committed
// metadata still records dead. Repair-collective data transfers reuse
// the tag but carry their own header (panda/rejoin.h).
struct RejoinNotice {
  std::int32_t origin_rank = -1;
  std::int64_t incarnation = 0;
  std::int64_t epoch = 0;
  bool repair = false;
  std::vector<int> dead_ranks;
};

inline Message MakeRejoinMessage(const RejoinNotice& notice) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(notice.origin_rank);
  enc.Put<std::int64_t>(notice.incarnation);
  enc.Put<std::int64_t>(notice.epoch);
  enc.Put<std::int32_t>(notice.repair ? 1 : 0);
  enc.Put<std::int32_t>(static_cast<std::int32_t>(notice.dead_ranks.size()));
  for (int r : notice.dead_ranks) enc.Put<std::int32_t>(r);
  return msg;
}

inline RejoinNotice DecodeRejoinNotice(const Message& msg) {
  Decoder dec(msg.header);
  RejoinNotice notice;
  notice.origin_rank = dec.Get<std::int32_t>();
  notice.incarnation = dec.Get<std::int64_t>();
  notice.epoch = dec.Get<std::int64_t>();
  notice.repair = dec.Get<std::int32_t>() != 0;
  const std::int32_t n = dec.Get<std::int32_t>();
  PANDA_REQUIRE(n >= 0, "corrupt rejoin notice");
  notice.dead_ranks.reserve(static_cast<size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    notice.dead_ranks.push_back(dec.Get<std::int32_t>());
  }
  return notice;
}

}  // namespace panda
