// Messages exchanged between ranks.
//
// A message has a small always-real `header` (protocol metadata) and a
// bulk `payload`. In timing-only runs the payload bytes are elided and
// only `payload_vbytes` is carried, so that 512 MB collectives can be
// swept without moving 512 MB; the message *sequence* is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/codec.h"
#include "util/error.h"

namespace panda {

struct Message {
  int src = -1;
  int tag = -1;
  std::vector<std::byte> header;
  std::vector<std::byte> payload;
  std::int64_t payload_vbytes = 0;  // virtual payload size (== payload.size() when real)
  double depart_time = 0.0;         // virtual time the first byte leaves the sender

  // Attaches a real payload.
  void SetPayload(std::vector<std::byte> bytes) {
    payload = std::move(bytes);
    payload_vbytes = static_cast<std::int64_t>(payload.size());
  }

  // Declares a payload of `vbytes` without materializing it.
  void SetVirtualPayload(std::int64_t vbytes) {
    PANDA_CHECK(vbytes >= 0);
    payload.clear();
    payload_vbytes = vbytes;
  }

  // Total bytes this message occupies on the wire (virtual).
  std::int64_t WireBytes() const {
    return static_cast<std::int64_t>(header.size()) + payload_vbytes;
  }
};

// Panda protocol tags. Collectives and the data phase use disjoint tags
// so a late barrier message can never be confused with a data piece.
enum MsgTag : int {
  kTagCollectiveRequest = 1,  // master client -> master server
  kTagPieceRequest = 3,       // server -> client (write path)
  kTagPieceData = 4,          // client -> server (write) / server -> client (read)
  kTagServerDone = 5,         // master server -> master client
  kTagBarrier = 8,            // tree barrier / gather tokens
  kTagBcast = 9,              // tree broadcasts (requests, completion)
  kTagPieceAck = 10,          // client -> server (read-path flow control)
  kTagAbort = 11,             // structured cluster-wide abort fan-out
  kTagApp = 100,              // first tag available to applications/tests
};

// The payload of a kTagAbort message: which rank hit the unrecoverable
// fault, and why. Abort messages outrank ordinary matching: any blocked
// receive that finds one in its mailbox raises PandaAbortError instead
// of waiting, so an abort reaches every rank within one receive.
struct AbortNotice {
  std::int32_t origin_rank = -1;
  std::string reason;
};

inline Message MakeAbortMessage(int origin_rank, const std::string& reason) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(origin_rank);
  enc.PutString(reason);
  return msg;
}

inline AbortNotice DecodeAbortNotice(const Message& msg) {
  Decoder dec(msg.header);
  AbortNotice notice;
  notice.origin_rank = dec.Get<std::int32_t>();
  notice.reason = dec.GetString();
  return notice;
}

}  // namespace panda
