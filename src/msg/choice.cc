#include "msg/choice.h"

namespace panda {

std::uint64_t PairSeed(std::uint64_t seed, int src, int dst) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(src) * 0x100000001b3ull +
                    static_cast<std::uint64_t>(dst) * 0x1000193ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

LossAction SeededChoiceDecider::ChooseLoss(const LossChoice& choice) {
  const auto key = std::make_pair(choice.src, choice.dst);
  auto it = rngs_.find(key);
  if (it == rngs_.end()) {
    it = rngs_.emplace(key, Rng(PairSeed(spec_.seed, choice.src, choice.dst)))
             .first;
  }
  // One draw per surfaced choice, mapped through the spec's cumulative
  // probability bands — the exact draw sequence of the pre-seam
  // transport (which also drew exactly once per non-forced-clean send).
  const double u = it->second.NextDouble();
  LossAction action = LossAction::kDeliver;
  double band = spec_.drop_prob;
  if (u < band) {
    action = LossAction::kDrop;
  } else if (u < (band += spec_.dup_prob)) {
    action = LossAction::kDup;
  } else if (u < (band += spec_.reorder_prob)) {
    action = LossAction::kReorder;
  } else if (u < (band += spec_.delay_prob)) {
    action = LossAction::kDelay;
  }
  return action;
}

}  // namespace panda
