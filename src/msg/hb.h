// Vector-clock happens-before race checker for the simulated machine.
//
// The paper's whole argument rests on *deterministic, reproducible*
// collective schedules: two runs of the same seeded workload must
// produce bit-identical virtual clocks and file bytes. Ranks execute as
// real threads, so the one thing that can silently break determinism is
// a pair of conflicting shared-state accesses that are not ordered by
// the protocol itself — a mailbox race, a lossy-layer bookkeeping slip,
// a server touching another server's file system. TSan catches the
// C++-level data race; this checker catches the *protocol-level* one:
// accesses that are individually synchronized (atomics, mutexes) but
// whose ORDER the message graph does not fix, which is exactly the kind
// of bug that makes a run seed-dependent.
//
// Model (classic vector clocks, FastTrack-style epochs for objects):
//  * every rank thread (plus the driver "root") carries a VectorClock;
//  * a message send snapshots the sender's VC under the message id and
//    the receive joins it into the receiver — Lamport's happened-before;
//  * lock release/acquire pairs add release-consistency edges, so data
//    guarded by a real mutex (the lossy layer's reliable_mu_) is not
//    misreported;
//  * Run() fork/join edges connect rank threads to the driver;
//  * an instrumented access to a shared object checks the last write
//    epoch (and, for writes, every rank's last read) against the
//    accessor's VC; an unordered conflicting pair is recorded as a Race.
//
// Compile gate: like PANDA_TRACE, the stamping helpers (Stamp*) compile
// to nothing with -DPANDA_HB_ENABLED=0 (CMake option PANDA_HB, default
// OFF), so production builds are bit-identical to a tree without this
// file. The Checker class itself always compiles: tests exercise the
// algorithm in every build. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#ifndef PANDA_HB_ENABLED
#define PANDA_HB_ENABLED 0
#endif

namespace panda {
namespace hb {

using VectorClock = std::vector<std::uint64_t>;

// One detected unordered conflicting access pair.
struct Race {
  std::string object;   // instrumentation name ("server.fs", ...)
  int prev_rank = -1;   // earlier access (program order of detection)
  bool prev_write = false;
  int rank = -1;        // access that exposed the race
  bool write = false;

  std::string ToString() const;
};

// A machine-wide happens-before checker. One instance per
// ThreadTransport; rank -1..nranks-1 are rank threads and rank nranks
// is the driver thread ("root"). All methods are internally locked —
// this is a debugging instrument, not a hot path.
class Checker {
 public:
  explicit Checker(int nranks);

  int nranks() const { return nranks_; }

  // --- fork/join edges (ThreadTransport::Run) ---
  void OnRunStart();  // root happens-before every rank's first step
  void OnRunEnd();    // every rank's last step happens-before root

  // --- message edges ---
  // Snapshots `rank`'s VC under `msg_id` (0 = untracked, ignored).
  void OnSend(int rank, std::uint64_t msg_id);
  // Joins the sender VC recorded under `msg_id` into `rank`.
  void OnRecv(int rank, std::uint64_t msg_id);

  // --- lock edges (release consistency) ---
  void OnLockAcquire(int rank, const void* lock);
  void OnLockRelease(int rank, const void* lock);

  // --- instrumented shared-state access ---
  // `object` identifies the shared state (pointer identity); `name` is
  // the human-readable label used in race reports.
  void OnAccess(int rank, const void* object, const char* name,
                bool is_write);

  std::vector<Race> Races() const;
  std::size_t race_count() const;
  void ClearRaces();

  // Drops per-message VC snapshots (bounds memory across epochs; called
  // by ThreadTransport::ResetClocksAndStats between repetitions).
  void ForgetMessages();

 private:
  struct ObjectState {
    std::string name;
    int last_writer = -1;
    std::uint64_t last_write_clock = 0;
    VectorClock reads;  // per-rank last read epoch
  };

  // Returns the rank's VC slot; root uses index nranks_.
  VectorClock& VcLocked(int rank);
  void JoinLocked(VectorClock& into, const VectorClock& from);
  void ReportLocked(const ObjectState& obj, int prev_rank, bool prev_write,
                    int rank, bool write);

  const int nranks_;
  mutable std::mutex mu_;
  std::vector<VectorClock> vc_;  // nranks_ + 1 (root last)
  std::map<std::uint64_t, VectorClock> sends_;
  std::map<const void*, VectorClock> locks_;
  std::map<const void*, ObjectState> objects_;
  std::vector<Race> races_;
  std::map<std::tuple<const void*, int, int, bool, bool>, bool> reported_;
};

// ---- Thread-local rank context --------------------------------------
//
// Stamping sites record against "the current rank's checker", installed
// by ThreadTransport::Run for the lifetime of each rank thread (exactly
// like trace::ScopedRankContext). Outside a rank thread, or with the
// gate compiled out, every stamp is a no-op.

struct ThreadContext {
  Checker* checker = nullptr;
  int rank = -1;
};

ThreadContext& CurrentThread();

class ScopedThread {
 public:
  ScopedThread(Checker* checker, int rank) : prev_(CurrentThread()) {
    CurrentThread() = ThreadContext{checker, rank};
  }
  ~ScopedThread() { CurrentThread() = prev_; }

  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;

 private:
  ThreadContext prev_;
};

// ---- Stamping helpers (compile away with PANDA_HB_ENABLED=0) --------

#if PANDA_HB_ENABLED

inline bool Active() { return CurrentThread().checker != nullptr; }

inline void StampSend(std::uint64_t msg_id) {
  const ThreadContext& ctx = CurrentThread();
  if (ctx.checker != nullptr) ctx.checker->OnSend(ctx.rank, msg_id);
}

inline void StampRecv(std::uint64_t msg_id) {
  const ThreadContext& ctx = CurrentThread();
  if (ctx.checker != nullptr) ctx.checker->OnRecv(ctx.rank, msg_id);
}

inline void StampAccess(const void* object, const char* name,
                        bool is_write) {
  const ThreadContext& ctx = CurrentThread();
  if (ctx.checker != nullptr) {
    ctx.checker->OnAccess(ctx.rank, object, name, is_write);
  }
}

inline void StampLockAcquire(const void* lock) {
  const ThreadContext& ctx = CurrentThread();
  if (ctx.checker != nullptr) ctx.checker->OnLockAcquire(ctx.rank, lock);
}

inline void StampLockRelease(const void* lock) {
  const ThreadContext& ctx = CurrentThread();
  if (ctx.checker != nullptr) ctx.checker->OnLockRelease(ctx.rank, lock);
}

#else  // !PANDA_HB_ENABLED

inline bool Active() { return false; }
inline void StampSend(std::uint64_t) {}
inline void StampRecv(std::uint64_t) {}
inline void StampAccess(const void*, const char*, bool) {}
inline void StampLockAcquire(const void*) {}
inline void StampLockRelease(const void*) {}

#endif  // PANDA_HB_ENABLED

}  // namespace hb
}  // namespace panda
