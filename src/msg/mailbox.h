// Per-rank mailboxes with (source, tag) matching.
//
// Senders deposit; the owning rank blocks until a matching message is
// present. Matching is FIFO per (source, tag) pair, which together with
// Panda's deterministic plan ordering makes whole collective runs
// reproducible.
//
// Failure paths: a kTagAbort message outranks ordinary matching — any
// receive that finds one (or finds the mailbox already in the aborted
// state) throws PandaAbortError carrying the originating rank and
// cause, so a failing rank can stop the whole cluster with structured
// blame instead of a hang. A kTagFailover message likewise outranks
// ordinary matching (PandaFailoverError) — except for receives that ask
// for kTagFailover explicitly — but is consumed one-shot: the collective
// survives in degraded mode. A *poisoned* mailbox is the legacy blunt
// instrument (unknown failure): receives throw plain PandaError.
//
// Liveness hooks: when a lossy transport or kill injector is armed, the
// transport installs MailboxHooks. Blocked receives then wake
// periodically to (a) ask the transport to rescue in-flight traffic
// destined here (flush reorder limbo, retransmit drops) and (b) check
// whether a specifically-awaited peer has crash-stopped, converting the
// former infinite hang into PeerDeadError. Without hooks the wait loops
// are the original pure condition waits — zero change for clean runs.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "msg/message.h"
#include "sched/wait.h"

namespace panda {

// Callbacks a blocked receive may invoke while waiting (installed by the
// transport; both must be safe to call from any rank's thread).
struct MailboxHooks {
  // Asks the transport to flush/retransmit everything in flight toward
  // this mailbox's rank. Called with the mailbox lock RELEASED.
  std::function<void()> rescue;
  // Returns true when `rank` has crash-stopped. Must not take locks
  // (reads atomics only); called with the mailbox lock held.
  std::function<bool(int)> peer_dead;
};

// Sentinel a delivery pick returns to take nothing this round (the
// size_t face of msg/choice.h's kDeliveryWaitPick).
inline constexpr size_t kMailboxPickWait = static_cast<size_t>(-1);

class Mailbox {
 public:
  // Deposits a message (thread-safe, never blocks).
  void Deposit(Message msg);

  // Blocks until a message with matching (src, tag) arrives and removes
  // it. Throws PandaAbortError on abort, PandaFailoverError when a
  // failover notice outranks the match (unless tag == kTagFailover),
  // PeerDeadError when hooks are installed and `src` is dead with
  // nothing rescuable left, PandaError if poisoned.
  Message BlockingReceive(int src, int tag);

  // Blocks until a message with matching tag arrives from any source
  // (earliest deposited wins). Panda clients use this to service server
  // requests in arrival order, like an MPI_ANY_SOURCE receive. Never
  // throws PeerDeadError (no specific awaited peer).
  Message BlockingReceiveAny(int tag);

  // BlockingReceiveAny with a delivery chooser (the model checker's
  // delivery choice point, msg/choice.h): whenever at least one pending
  // message matches `tag`, `pick` selects which one this receive takes
  // by index into the candidate sources (deposit order; index 0 is the
  // BlockingReceiveAny behavior). Returning kMailboxPickWait takes
  // nothing: the candidates stay queued and `pick` is consulted again
  // on the next wake (waits with a pick installed are paced like hooked
  // waits, so a deferring pick is re-polled even with no new deposits).
  // Called with the mailbox lock HELD, so it must not touch this
  // mailbox.
  Message BlockingReceiveAnyChoose(
      int tag, const std::function<size_t(const std::vector<int>&)>& pick);

  // Bounded wait: like BlockingReceive/-Any (src = -1 for any source)
  // but gives up after `wall_budget` of wall-clock time with no match,
  // returning nullopt instead of blocking forever. The caller owns the
  // virtual-time story for the timeout. Does NOT throw PeerDeadError —
  // a timed receive already has an answer for a dead peer.
  std::optional<Message> ReceiveWithin(int src, int tag,
                                       std::chrono::milliseconds wall_budget);

  // Installs (or clears, with default-constructed hooks) the liveness
  // hooks. Must not race with blocked receives: the transport installs
  // them before Run() starts the rank threads.
  void InstallHooks(MailboxHooks hooks);

  // Wakes every blocked receive so it can re-examine hook state (used by
  // the kill injector when a rank dies without sending anything).
  void NotifyAll();

  // Removes every queued message matching `pred`; returns the count.
  // Used when resetting a machine that has crash-stopped ranks: traffic
  // from or to the dead is discarded, not delivered.
  size_t PurgeIf(const std::function<bool(const Message&)>& pred);

  // Wakes all waiters; subsequent/blocked receives throw PandaError.
  // An existing abort state takes precedence (keeps the blame).
  void Poison();

  // Process-restart semantics: discards every queued message and clears
  // the poisoned/aborted state. Must not race with blocked receives —
  // callers invoke it between Run()s, never during one. Part of
  // ThreadTransport::ResetForRecovery (the model checker's post-crash
  // restart).
  void ResetForRestart();

  // Moves the mailbox into the aborted state directly (backstop used by
  // the transport when an abort escapes a rank's main function without
  // having reached every mailbox as a message). First notice wins.
  void ForceAbort(int origin_rank, const std::string& reason);

  // Number of queued messages (diagnostics).
  size_t QueuedCount();

 private:
  // Promotes a queued kTagAbort message (if any) into the abort state
  // and throws if the mailbox is dead; then promotes a queued
  // kTagFailover message (one-shot) unless the caller is explicitly
  // receiving kTagFailover. Caller must hold mu_.
  void ThrowIfDeadLocked(int want_tag);

  // Shared receive core. src == -1 matches any source. A null deadline
  // blocks forever. A non-null `pick` chooses among multiple matches
  // (any-source receives only).
  std::optional<Message> ReceiveCore(
      int src, int tag,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      bool allow_peer_dead,
      const std::function<size_t(const std::vector<int>&)>* pick = nullptr);

  // Removes and returns the first queued message matching (src, tag),
  // or the `pick`-chosen one among all matches. Caller must hold mu_.
  std::optional<Message> TakeMatchLocked(
      int src, int tag,
      const std::function<size_t(const std::vector<int>&)>* pick);

  // Dual-mode wait primitive: plain condition_variable semantics for
  // thread-backend ranks, fiber parking for the cooperative scheduler
  // (sched/wait.h). Its contract requires every NotifyAll to run while
  // mu_ is held, which is why the notify calls below sit inside the
  // locked regions.
  std::mutex mu_;
  sched::WaitCV cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
  bool aborted_ = false;
  AbortNotice abort_notice_;
  MailboxHooks hooks_;
  bool has_hooks_ = false;
};

}  // namespace panda
