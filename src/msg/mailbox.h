// Per-rank mailboxes with (source, tag) matching.
//
// Senders deposit; the owning rank blocks until a matching message is
// present. Matching is FIFO per (source, tag) pair, which together with
// Panda's deterministic plan ordering makes whole collective runs
// reproducible. A poisoned mailbox wakes all waiters with an error so a
// failing rank cannot deadlock the others.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "msg/message.h"

namespace panda {

class Mailbox {
 public:
  // Deposits a message (thread-safe, never blocks).
  void Deposit(Message msg);

  // Blocks until a message with matching (src, tag) arrives and removes
  // it. Throws PandaError if the mailbox is poisoned.
  Message BlockingReceive(int src, int tag);

  // Blocks until a message with matching tag arrives from any source
  // (earliest deposited wins). Panda clients use this to service server
  // requests in arrival order, like an MPI_ANY_SOURCE receive.
  Message BlockingReceiveAny(int tag);

  // Wakes all waiters; subsequent/blocked receives throw PandaError.
  void Poison();

  // Number of queued messages (diagnostics).
  size_t QueuedCount();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace panda
