// Per-rank mailboxes with (source, tag) matching.
//
// Senders deposit; the owning rank blocks until a matching message is
// present. Matching is FIFO per (source, tag) pair, which together with
// Panda's deterministic plan ordering makes whole collective runs
// reproducible.
//
// Failure paths: a kTagAbort message outranks ordinary matching — any
// receive that finds one (or finds the mailbox already in the aborted
// state) throws PandaAbortError carrying the originating rank and
// cause, so a failing rank can stop the whole cluster with structured
// blame instead of a hang. A *poisoned* mailbox is the legacy blunt
// instrument (unknown failure): receives throw plain PandaError.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>

#include "msg/message.h"

namespace panda {

class Mailbox {
 public:
  // Deposits a message (thread-safe, never blocks).
  void Deposit(Message msg);

  // Blocks until a message with matching (src, tag) arrives and removes
  // it. Throws PandaAbortError on abort, PandaError if poisoned.
  Message BlockingReceive(int src, int tag);

  // Blocks until a message with matching tag arrives from any source
  // (earliest deposited wins). Panda clients use this to service server
  // requests in arrival order, like an MPI_ANY_SOURCE receive.
  Message BlockingReceiveAny(int tag);

  // Wakes all waiters; subsequent/blocked receives throw PandaError.
  // An existing abort state takes precedence (keeps the blame).
  void Poison();

  // Moves the mailbox into the aborted state directly (backstop used by
  // the transport when an abort escapes a rank's main function without
  // having reached every mailbox as a message). First notice wins.
  void ForceAbort(int origin_rank, const std::string& reason);

  // Number of queued messages (diagnostics).
  size_t QueuedCount();

 private:
  // Promotes a queued kTagAbort message (if any) into the abort state
  // and throws if the mailbox is dead. Caller must hold mu_.
  void ThrowIfDeadLocked();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
  bool aborted_ = false;
  AbortNotice abort_notice_;
};

}  // namespace panda
