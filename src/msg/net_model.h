// Network timing model (LogGP-flavored).
//
// Virtual time reproduces the 1995 SP2 interconnect from Table 1 of the
// paper: per-message latency L, per-message software overhead o (the MPI
// send/receive processing cost on each endpoint), and bandwidth G for the
// payload. Elapsed times in Panda's benches come from these parameters,
// not from the 2026 host hardware.
#pragma once

#include <cstdint>

namespace panda {

struct NetModel {
  // One-way wire latency (seconds). SP2 at NAS: 43 us.
  double latency_s = 43e-6;
  // Point-to-point bandwidth (bytes/second). SP2 MPI-F: 34 MB/s.
  double bandwidth_Bps = 34.0 * 1024 * 1024;
  // Per-message software overhead charged on each endpoint (seconds).
  // Calibrated so natural-chunking fast-disk runs land near the paper's
  // ~90% of peak MPI bandwidth (see EXPERIMENTS.md).
  double per_message_overhead_s = 0.8e-3;

  // Transfer time of `bytes` on the wire.
  double TransferSeconds(std::int64_t bytes) const {
    return static_cast<double>(bytes) / bandwidth_Bps;
  }

  // A model in which communication is free; used by unit tests that only
  // exercise functional behaviour.
  static NetModel Instant() { return {0.0, 1e18, 0.0}; }
};

}  // namespace panda
