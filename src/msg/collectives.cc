#include "msg/collectives.h"

#include <algorithm>

#include "util/error.h"

namespace panda {

Group::Group(std::vector<int> ranks, int my_index)
    : ranks_(std::move(ranks)), my_index_(my_index) {
  PANDA_CHECK(!ranks_.empty());
  PANDA_CHECK(my_index_ >= -1 && my_index_ < size());
}

Group Group::Consecutive(int first, int count, int my_rank) {
  std::vector<int> ranks(static_cast<size_t>(count));
  int my_index = -1;
  for (int i = 0; i < count; ++i) {
    ranks[static_cast<size_t>(i)] = first + i;
    if (first + i == my_rank) my_index = i;
  }
  return Group(std::move(ranks), my_index);
}

int Group::rank_at(int index) const {
  PANDA_CHECK(index >= 0 && index < size());
  return ranks_[static_cast<size_t>(index)];
}

bool Group::contains(int rank) const {
  return std::find(ranks_.begin(), ranks_.end(), rank) != ranks_.end();
}

namespace {

// Classic binomial-tree topology (as in MPICH): relative to a virtual
// root, a node v > 0 has parent v - lowbit(v); its children are
// v + mask for each mask below lowbit(v) (or below the tree top for 0).

// Gathers a zero-payload token from all members to virtual index 0.
void TreeGather(Endpoint& ep, const Group& group, int root_index) {
  const int n = group.size();
  const int v = (group.my_index() - root_index + n) % n;
  auto real = [&](int vi) { return group.rank_at((vi + root_index) % n); };
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((v & mask) != 0) {
      ep.Send(real(v - mask), kTagBarrier, Message{});
      return;
    }
    if (v + mask < n) (void)ep.Recv(real(v + mask), kTagBarrier);
  }
}

// Broadcasts `msg` from virtual index 0; returns each member's copy.
Message TreeBcast(Endpoint& ep, const Group& group, int root_index,
                  Message msg, int tag) {
  const int n = group.size();
  const int v = (group.my_index() - root_index + n) % n;
  auto real = [&](int vi) { return group.rank_at((vi + root_index) % n); };

  int mask = 1;
  while (mask < n) {
    if ((v & mask) != 0) {
      msg = ep.Recv(real(v - mask), tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (v + mask < n && (v & (mask - 1)) == 0 && (v & mask) == 0) {
      Message copy = msg;
      ep.Send(real(v + mask), tag, std::move(copy));
    }
    mask >>= 1;
  }
  return msg;
}

}  // namespace

void Barrier(Endpoint& ep, const Group& group) {
  PANDA_CHECK_MSG(group.my_index() >= 0, "caller is not a group member");
  TreeGather(ep, group, 0);
  (void)TreeBcast(ep, group, 0, Message{}, kTagBarrier);
}

void GatherSync(Endpoint& ep, const Group& group) {
  PANDA_CHECK_MSG(group.my_index() >= 0, "caller is not a group member");
  TreeGather(ep, group, 0);
}

Message Bcast(Endpoint& ep, const Group& group, int root_index, Message msg) {
  PANDA_CHECK_MSG(group.my_index() >= 0, "caller is not a group member");
  PANDA_CHECK(root_index >= 0 && root_index < group.size());
  return TreeBcast(ep, group, root_index, std::move(msg), kTagBcast);
}

}  // namespace panda
