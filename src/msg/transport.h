// The message-passing substrate: ranks, endpoints, thread transport.
//
// Panda was built on MPI; no MPI implementation is available here, so we
// implement the subset Panda needs from scratch: a fixed-size world of
// ranks with blocking tagged point-to-point messaging. Ranks are backed
// by threads in one process, which is ideal for this reproduction: the
// protocol executes for real while time comes from the virtual-clock
// model (see net_model.h).
//
// Sends are buffered (deposit into the destination mailbox and return),
// like MPI_Send on small-to-moderate messages with a well-provisioned
// rendezvous; the virtual-time accounting still charges the sender the
// full per-message overhead and wire occupancy.
//
// Fault machinery (all disarmed by default; see lossy.h):
//  * SetLoss arms a seeded lossy decorator on the send path plus a
//    reliable-delivery layer: per-(src,dst,tag) sequence numbers,
//    receive-side dedup/resequencing, and receiver-driven retransmission
//    of dropped messages at depart + rto (rescue). Acks are modeled as
//    free piggybacked traffic, so arming the layer with zero injected
//    faults changes no timing.
//  * ScheduleKill arms a crash-stop injector: the victim rank unwinds
//    with RankKilledError when it attempts its (n+1)-th further send and
//    stays silent for the rest of the transport's life.
//  * SetHeartbeat configures the modeled lease-based failure detector:
//    a Recv blocked on a crash-stopped rank throws PeerDeadError after
//    charging the detecting rank's clock to death_time + lease.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "msg/choice.h"
#include "msg/hb.h"
#include "msg/lossy.h"
#include "msg/mailbox.h"
#include "msg/net_model.h"
#include "msg/virtual_clock.h"
#include "sched/sched.h"
#include "trace/trace.h"
#include "util/random.h"

namespace panda {

// Per-endpoint traffic counters (diagnostics and tests). These count
// *logical* messages: injected duplicates, drops and retransmissions are
// invisible here (tracked by TransportFaultStats instead), so the
// sent == received invariant holds with or without faults.
struct MsgStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;  // virtual wire bytes
  std::int64_t bytes_received = 0;
};

class ThreadTransport;

// A rank's handle to the transport. Endpoints are created by the
// transport, one per rank, and must only be used from that rank's thread.
class Endpoint {
 public:
  int rank() const { return rank_; }
  int world_size() const;

  // True when bulk payloads are elided (timing-only sweeps).
  bool timing_only() const;

  VirtualClock& clock() { return clock_; }
  const MsgStats& stats() const { return stats_; }

  // Sends `msg` to `dst` with `tag`. Charges the sender the per-message
  // overhead plus wire occupancy; stamps the arrival time.
  void Send(int dst, int tag, Message msg);

  // Blocks until a message from `src` with `tag` arrives. Synchronizes
  // the virtual clock with the arrival time and charges receive overhead.
  // Throws PeerDeadError if `src` has crash-stopped and nothing from it
  // remains deliverable (after charging this rank's clock to the
  // detection time, death + lease).
  Message Recv(int src, int tag);

  // Blocks until a message with `tag` arrives from any source (earliest
  // deposited first), like MPI_ANY_SOURCE.
  Message RecvAny(int tag);

  // Deadline receive: returns the matching message if one is (or soon
  // becomes) available, else charges `timeout_vs` of virtual waiting and
  // returns nullopt. The wall-clock grace period that decides "soon" is
  // an implementation detail; the timeout is exact in virtual time only
  // against senders that are dead or quiescent — a matched message
  // always wins even if its virtual arrival would be late. This is the
  // bounded-blocking primitive the failure-detection layer builds on.
  std::optional<Message> TryRecv(int src, int tag, double timeout_vs);
  std::optional<Message> TryRecvAny(int tag, double timeout_vs);

  // False once `rank` has been crash-stopped by the kill injector.
  bool peer_alive(int rank) const;

  // This rank's incarnation number (1 on first boot; incremented by
  // every ThreadTransport::Revive). A server whose incarnation exceeds
  // 1 knows it is a restart and must rejoin before serving.
  std::int64_t incarnation() const;

  // `rank`'s current incarnation. Incarnations only change between
  // Run() calls, so reading a peer's is race-free during a run. The
  // master server compares these against the incarnations it has
  // already shaken hands with to detect pending rejoins.
  std::int64_t peer_incarnation(int rank) const;

  // A received message together with the virtual time its processing
  // completed (last byte in + receive overhead).
  struct Delivery {
    Message msg;
    double ready_time = 0.0;
  };

  // Responder-style receive: accounts inbound-link occupancy and stats
  // but does NOT drag this endpoint's clock to the sender's time. Panda
  // clients use this to service requests from multiple servers: a
  // request from a server that is virtually far ahead must not delay
  // this client's replies to other servers (the client is an
  // always-available responder; only its link is a contended resource).
  Delivery RecvAnyDelivery(int tag);

  // Responder-style send: the reply becomes eligible at `ready_time`
  // (typically Delivery::ready_time plus local processing), queues on
  // this endpoint's outbound link, and departs when the link frees. The
  // endpoint clock advances only past the link-busy horizon.
  void SendResponse(double ready_time, int dst, int tag, Message msg);

  // Accounts `seconds` of local computation (pack/unpack, planning...).
  void AdvanceCompute(double seconds) { clock_.Advance(seconds); }

 private:
  friend class ThreadTransport;
  Endpoint(ThreadTransport* transport, int rank)
      : transport_(transport), rank_(rank) {}

  ThreadTransport* transport_;
  int rank_;
  VirtualClock clock_;
  MsgStats stats_;
  // Schedule-perturbation stream (SetScheduleSeed): owner-thread only.
  Rng sched_rng_{0};
  // Per-tag any-source receive ordinals (delivery choice-point keys);
  // owner-thread only, counted only while a decider asks for delivery
  // choices.
  std::map<int, std::int64_t> recv_any_seq_;
  // Inbound-link occupancy: messages from concurrent senders serialize
  // on the receiver's switch port, so N senders cannot deliver more than
  // one link's bandwidth (the SP2 switch is full-duplex: the outbound
  // direction is modeled separately by tx_link_busy_until_).
  double rx_link_busy_until_ = 0.0;
};

// A world of `nranks` ranks, each executed as one thread.
class ThreadTransport {
 public:
  struct Config {
    NetModel net;
    bool timing_only = false;  // elide bulk payloads
  };

  ThreadTransport(int nranks, Config config);

  int world_size() const { return static_cast<int>(endpoints_.size()); }
  const Config& config() const { return config_; }

  // Arms the lossy decorator + reliable-delivery layer. Call before
  // Run(); applies to every subsequent send. kTagAbort traffic bypasses
  // the adversary (the abort backstop must stay unconditional).
  void SetLoss(const LossSpec& loss);
  const LossSpec& loss() const { return loss_; }

  // Wall-clock grace a TryRecv grants a live-but-slow sender before
  // charging its virtual timeout (default 50 ms). Pure pacing — never
  // enters virtual time. The model checker shrinks it so kill-probing
  // runs spend milliseconds, not seconds, on dead-peer probes.
  void SetTryRecvGraceMs(int ms) {
    try_recv_grace_ = std::chrono::milliseconds(ms);
  }

  // Configures the modeled heartbeat/lease failure detector (affects
  // only the virtual time charged when a peer is declared dead).
  void SetHeartbeat(const HeartbeatConfig& heartbeat);
  const HeartbeatConfig& heartbeat() const { return heartbeat_; }

  // Virtual time from a rank's silent death to a blocked peer declaring
  // it dead (the heartbeat lease).
  double detection_lease_s() const { return heartbeat_.lease_s(); }

  // Installs a custom nondeterminism strategy (msg/choice.h): loss
  // verdicts, kill choice points and any-source delivery picks are
  // routed through `decider` instead of the built-in seeded adversary.
  // Non-owning; nullptr restores the seeded default. The bounded-
  // adversary caps of the armed LossSpec still gate which loss actions
  // are legal — the decider picks among them, it cannot exceed them.
  // Call before Run(); used by the model checker (src/mc/).
  void SetChoiceDecider(ChoiceDecider* decider);
  ChoiceDecider* choice_decider() { return decider_; }

  // Crash-stop injector: after `after_more_sends` further successful
  // sends, `rank`'s next send attempt marks it dead and unwinds its
  // thread with RankKilledError — no poison, no abort, just silence,
  // exactly like a kill -9 of one I/O node. Messages already sent
  // remain deliverable. Death persists across Run() calls: a dead
  // rank's main is never started again.
  void ScheduleKill(int rank, std::int64_t after_more_sends);

  // Liveness of `rank` (false once the kill injector fired).
  bool alive(int rank) const {
    return alive_[static_cast<size_t>(rank)].load(std::memory_order_acquire);
  }

  // Restarts a crash-stopped rank as a new incarnation. Must be called
  // between Run() calls (no rank threads executing). Everything the old
  // life left behind — messages queued in any mailbox, traffic stuck in
  // reorder limbo or awaiting retransmit, out-of-order stashes — is
  // dropped and counted as stale_incarnation_dropped, the per-pair
  // resequencing state touching the rank is reset for the new life, and
  // any scheduled kill for the rank is cancelled. Send/receive choice
  // ordinals (send_count_, recv_any_seq_, dispatch_seq) deliberately
  // keep counting across lives so model-checker choice keys stay unique.
  // The revived rank's main runs again on the next Run().
  void Revive(int rank);

  // `rank`'s incarnation number: 1 until its first Revive, +1 per
  // Revive. Only written between Run() calls.
  std::int64_t incarnation(int rank) const {
    return incarnation_[static_cast<size_t>(rank)];
  }

  TransportFaultStats& fault_stats() { return fault_stats_; }

  // Arms (options.enabled) or disarms span tracing. Run() then installs
  // a per-rank recorder context on each rank thread; instrumentation
  // sites throughout the stack record against it. Tracing only *reads*
  // clocks — virtual time and byte counts are bit-identical either way.
  void SetTrace(const trace::TraceOptions& options);

  // Schedule perturbation: with a non-zero seed, Run() launches rank
  // threads in a seeded-shuffled order and every send/receive entry
  // point injects seeded wall-clock yields/sleeps, forcing different OS
  // interleavings of the rank threads. Virtual time is untouched —
  // any seed must produce bit-identical clocks and file bytes, which is
  // the determinism contract tests/hb_race_test.cc asserts across
  // seeds. 0 (default) disarms (no rng draws, no yields).
  void SetScheduleSeed(std::uint64_t seed) { schedule_seed_ = seed; }
  std::uint64_t schedule_seed() const { return schedule_seed_; }

  // Selects the rank execution backend (docs/SCHEDULER.md): thread (the
  // default; one OS thread per rank, the original semantics) or fiber
  // (cooperative scheduler — thousands of simulated ranks multiplexed
  // onto a small carrier pool). Call between Run()s. When fibers are
  // unsupported in this build (TSan, PANDA_HB) Run() silently falls
  // back to the thread backend; both backends produce bit-identical
  // virtual clocks, message counts and file bytes (tests/sched_test.cc).
  void SetScheduler(const sched::Config& config) { sched_config_ = config; }

  // The backend Run() will actually use (after the support fallback).
  sched::Backend sched_backend() const {
    return sched_config_.backend == sched::Backend::kFiber &&
                   sched::FiberSupported()
               ? sched::Backend::kFiber
               : sched::Backend::kThread;
  }

  // Scheduler counters accumulated across every Run() so far (context
  // switches, yields, parks, probe rounds; zeros for the thread
  // backend's trivially-scheduled runs).
  const sched::Stats& sched_stats() const { return sched_stats_; }

  // The happens-before checker, or nullptr unless compiled with
  // -DPANDA_HB=ON (msg/hb.h). Valid for the transport's lifetime.
  hb::Checker* hb_checker() { return hb_.get(); }
  const hb::Checker* hb_checker() const { return hb_.get(); }

  // The armed collector, or nullptr. Valid until the next SetTrace.
  trace::Collector* trace_collector() { return trace_.get(); }
  const trace::Collector* trace_collector() const { return trace_.get(); }

  // Runs `rank_main(endpoint)` on every live rank concurrently and
  // joins. If any rank throws, all mailboxes are poisoned (unblocking
  // the rest) and the first exception is rethrown after the join —
  // except RankKilledError, which is the injector's silent unwind.
  void Run(const std::function<void(Endpoint&)>& rank_main);

  // Endpoint of `rank` (valid for the lifetime of the transport). Useful
  // for reading clocks and stats after Run() returns.
  Endpoint& endpoint(int rank);

  // Sum of per-endpoint stats.
  MsgStats TotalStats() const;

  // Resets clocks and stats between repetitions. Messages from or to
  // crash-stopped ranks are discarded (the dead do not drain mailboxes);
  // live ranks must have drained theirs.
  void ResetClocksAndStats();

  // Simulates restarting the surviving processes on the same machine:
  // every mailbox is cleared (including sticky abort state), the lossy
  // layer's in-flight traffic and sequence numbers are discarded,
  // scheduled kills are cancelled, and clocks/stats reset. File systems
  // live outside the transport and death records persist — the dead
  // stay dead. The model checker's invariant harness uses this to drive
  // a real post-crash restart without rebuilding the machine.
  void ResetForRecovery();

  // Like ResetForRecovery, but for a rejoin phase that continues the
  // same explored execution with the same attached choice decider:
  // send/receive choice ordinals and accumulated fault counters are
  // preserved so choice-point keys stay unique across the boundary.
  // The caller must disarm loss for the next run (link sequence state
  // is cleared).
  void ResetForRejoin();

 private:
  friend class Endpoint;

  // Sender-side per-(src,dst) state of the lossy/reliable layer
  // (guarded by reliable_mu_).
  struct PairState {
    int consecutive_faults = 0;
    int clean_owed = 0;
    std::int64_t dispatch_seq = 0;         // loss choice-point ordinal
    std::map<int, std::int64_t> next_seq;  // per tag
    std::deque<Message> limbo;             // reordered, awaiting release
    std::deque<Message> dropped;           // awaiting rescue retransmit
  };

  // Receiver-side resequencing state per (dst, src, tag).
  struct StreamState {
    std::int64_t next_expected = 0;
    std::map<std::int64_t, Message> stash;
  };

  void DoSend(Endpoint& from, int dst, int tag, Message msg);
  void DoSendResponse(Endpoint& from, double ready_time, int dst, int tag,
                      Message msg);
  Message DoRecv(Endpoint& self, int src, int tag);
  Message DoRecvAny(Endpoint& self, int tag);
  // Any-source receive, routed through the delivery choice point when
  // the installed decider asks for it (plain deposit order otherwise).
  Message ReceiveAnyWithChoice(Endpoint& self, int tag);
  std::optional<Message> DoTryRecv(Endpoint& self, int src, int tag,
                                   double timeout_vs);
  Endpoint::Delivery DoRecvAnyDelivery(Endpoint& self, int tag);
  void AccountRecv(Endpoint& self, const Message& msg);
  // Records the receiver's queue depth (consumed message included) into
  // the mailbox.depth histogram. No-op unless tracing is armed.
  void ObserveMailboxDepth(Endpoint& self);
  // Inbound-link accounting shared by all receive flavors; returns the
  // time the message's processing completes.
  double IngestTime(Endpoint& self, const Message& msg);

  // Fires the scheduled kill for `from`'s rank if its send budget is
  // exhausted (throws RankKilledError); otherwise counts the send.
  void MaybeKill(Endpoint& from);
  // Seeded wall-clock yield/sleep at a send/receive entry point (no-op
  // when SetScheduleSeed was not armed). Never touches virtual time.
  void MaybePerturb(Endpoint& self);
  // Routes a fully-accounted message through the lossy/reliable layer
  // (or straight to the destination mailbox when disarmed).
  void Dispatch(int src, int dst, Message msg);
  // Flushes reorder limbo and retransmits drops headed for `dst`
  // (receiver-driven recovery; installed as the mailbox rescue hook).
  void Rescue(int dst);
  // Applies the bounded-adversary caps, surfaces the choice point to
  // the effective decider, and updates the caps for the verdict.
  LossAction DecideOutcome(PairState& pair, int src, int dst,
                           const Message& msg);
  // The installed custom decider, or the built-in seeded one.
  ChoiceDecider* EffectiveDecider() {
    return decider_ != nullptr ? decider_ : seeded_decider_.get();
  }
  // True when `msg` was stamped by a previous incarnation of its
  // sender (the incarnation fence drops such messages).
  bool StaleIncarnation(const Message& msg) const;
  // Receive-side dedup/resequencing; deposits in-order messages.
  void SequenceLocked(int dst, Message msg);
  void FlushLimboLocked(int dst, PairState& pair);
  PairState& PairLocked(int src, int dst);
  // Installs mailbox liveness hooks on every rank (idempotent).
  void InstallHooks();
  // One rank's main with the transport's error envelope: RankKilledError
  // unwinds silently, PandaAbortError force-aborts every mailbox,
  // anything else poisons them. Shared by both scheduler backends —
  // this is the body RunAll executes per rank.
  void RunRankMain(Endpoint& endpoint,
                   const std::function<void(Endpoint&)>& rank_main,
                   std::exception_ptr& first_error, std::mutex& error_mu);

  Config config_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  // Lossy/reliable layer.
  LossSpec loss_;
  bool reliable_ = false;
  // Nondeterminism strategies (msg/choice.h): the built-in seeded
  // adversary (rebuilt by SetLoss) and an optional custom override.
  std::unique_ptr<SeededChoiceDecider> seeded_decider_;
  ChoiceDecider* decider_ = nullptr;
  std::mutex reliable_mu_;
  std::map<std::pair<int, int>, PairState> pairs_;
  std::map<std::tuple<int, int, int>, StreamState> streams_;
  std::int64_t faults_total_ = 0;

  // Failure detection / kill injection.
  std::chrono::milliseconds try_recv_grace_{50};
  HeartbeatConfig heartbeat_;
  std::unique_ptr<std::atomic<bool>[]> alive_;
  std::vector<std::int64_t> incarnation_;      // written between Run()s only
  std::vector<double> death_time_;             // victim's clock at death
  std::vector<std::int64_t> send_count_;       // touched by owner thread only
  std::map<int, std::int64_t> kill_at_count_;  // rank -> send budget
  bool hooks_installed_ = false;

  TransportFaultStats fault_stats_;

  // Span tracing (null when disarmed). One recorder per rank; recorders
  // are touched only by their rank's thread during Run().
  std::unique_ptr<trace::Collector> trace_;

  // Happens-before race checker (null unless compiled with PANDA_HB).
  std::unique_ptr<hb::Checker> hb_;
  std::atomic<std::uint64_t> next_hb_id_{1};

  // Schedule perturbation (0 = disarmed).
  std::uint64_t schedule_seed_ = 0;

  // Rank execution backend (SetScheduler) and accumulated counters.
  sched::Config sched_config_;
  sched::Stats sched_stats_;
};

}  // namespace panda
