// The message-passing substrate: ranks, endpoints, thread transport.
//
// Panda was built on MPI; no MPI implementation is available here, so we
// implement the subset Panda needs from scratch: a fixed-size world of
// ranks with blocking tagged point-to-point messaging. Ranks are backed
// by threads in one process, which is ideal for this reproduction: the
// protocol executes for real while time comes from the virtual-clock
// model (see net_model.h).
//
// Sends are buffered (deposit into the destination mailbox and return),
// like MPI_Send on small-to-moderate messages with a well-provisioned
// rendezvous; the virtual-time accounting still charges the sender the
// full per-message overhead and wire occupancy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "msg/mailbox.h"
#include "msg/net_model.h"
#include "msg/virtual_clock.h"

namespace panda {

// Per-endpoint traffic counters (diagnostics and tests).
struct MsgStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;  // virtual wire bytes
  std::int64_t bytes_received = 0;
};

class ThreadTransport;

// A rank's handle to the transport. Endpoints are created by the
// transport, one per rank, and must only be used from that rank's thread.
class Endpoint {
 public:
  int rank() const { return rank_; }
  int world_size() const;

  // True when bulk payloads are elided (timing-only sweeps).
  bool timing_only() const;

  VirtualClock& clock() { return clock_; }
  const MsgStats& stats() const { return stats_; }

  // Sends `msg` to `dst` with `tag`. Charges the sender the per-message
  // overhead plus wire occupancy; stamps the arrival time.
  void Send(int dst, int tag, Message msg);

  // Blocks until a message from `src` with `tag` arrives. Synchronizes
  // the virtual clock with the arrival time and charges receive overhead.
  Message Recv(int src, int tag);

  // Blocks until a message with `tag` arrives from any source (earliest
  // deposited first), like MPI_ANY_SOURCE.
  Message RecvAny(int tag);

  // A received message together with the virtual time its processing
  // completed (last byte in + receive overhead).
  struct Delivery {
    Message msg;
    double ready_time = 0.0;
  };

  // Responder-style receive: accounts inbound-link occupancy and stats
  // but does NOT drag this endpoint's clock to the sender's time. Panda
  // clients use this to service requests from multiple servers: a
  // request from a server that is virtually far ahead must not delay
  // this client's replies to other servers (the client is an
  // always-available responder; only its link is a contended resource).
  Delivery RecvAnyDelivery(int tag);

  // Responder-style send: the reply becomes eligible at `ready_time`
  // (typically Delivery::ready_time plus local processing), queues on
  // this endpoint's outbound link, and departs when the link frees. The
  // endpoint clock advances only past the link-busy horizon.
  void SendResponse(double ready_time, int dst, int tag, Message msg);

  // Accounts `seconds` of local computation (pack/unpack, planning...).
  void AdvanceCompute(double seconds) { clock_.Advance(seconds); }

 private:
  friend class ThreadTransport;
  Endpoint(ThreadTransport* transport, int rank)
      : transport_(transport), rank_(rank) {}

  ThreadTransport* transport_;
  int rank_;
  VirtualClock clock_;
  MsgStats stats_;
  // Inbound-link occupancy: messages from concurrent senders serialize
  // on the receiver's switch port, so N senders cannot deliver more than
  // one link's bandwidth (the SP2 switch is full-duplex: the outbound
  // direction is modeled separately by tx_link_busy_until_).
  double rx_link_busy_until_ = 0.0;
};

// A world of `nranks` ranks, each executed as one thread.
class ThreadTransport {
 public:
  struct Config {
    NetModel net;
    bool timing_only = false;  // elide bulk payloads
  };

  ThreadTransport(int nranks, Config config);

  int world_size() const { return static_cast<int>(endpoints_.size()); }
  const Config& config() const { return config_; }

  // Runs `rank_main(endpoint)` on every rank concurrently and joins.
  // If any rank throws, all mailboxes are poisoned (unblocking the rest)
  // and the first exception is rethrown after the join.
  void Run(const std::function<void(Endpoint&)>& rank_main);

  // Endpoint of `rank` (valid for the lifetime of the transport). Useful
  // for reading clocks and stats after Run() returns.
  Endpoint& endpoint(int rank);

  // Sum of per-endpoint stats.
  MsgStats TotalStats() const;

  // Resets clocks and stats between repetitions.
  void ResetClocksAndStats();

 private:
  friend class Endpoint;
  void DoSend(Endpoint& from, int dst, int tag, Message msg);
  void DoSendResponse(Endpoint& from, double ready_time, int dst, int tag,
                      Message msg);
  Message DoRecv(Endpoint& self, int src, int tag);
  Message DoRecvAny(Endpoint& self, int tag);
  Endpoint::Delivery DoRecvAnyDelivery(Endpoint& self, int tag);
  void AccountRecv(Endpoint& self, const Message& msg);
  // Inbound-link accounting shared by all receive flavors; returns the
  // time the message's processing completes.
  double IngestTime(Endpoint& self, const Message& msg);

  Config config_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace panda
