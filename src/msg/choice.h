// The nondeterministic-choice seam (docs/MODEL_CHECKING.md).
//
// Every nondeterministic decision the transport makes — whether the
// lossy adversary molests a send, where a crash-stop kill fires, which
// pending message an any-source receive takes — is routed through a
// pluggable ChoiceDecider. The production decider (SeededChoiceDecider)
// reproduces the seeded-RNG adversary bit for bit, so arming the seam
// changes nothing for existing tests and benches. The model checker
// (src/mc/) installs its own deciders to enumerate decision vectors
// systematically instead of sampling them.
//
// Identity of a choice point: each decision carries a key that is a
// deterministic function of one rank's program order — a per-(src,dst)
// link ordinal for loss choices, a per-rank send ordinal for kill
// choices, a per-(rank,tag) receive ordinal for delivery choices. The
// *wall-clock* order in which choice points from different ranks reach
// the decider is scheduler noise, but the keys (and, for a fixed
// decision vector, the decisions) are stable across replays — that is
// what makes stateless-replay exploration sound on a threaded machine.
//
// Threading: ChooseLoss is invoked under the transport's reliable-layer
// lock (serialized); ChooseKill and ChooseDelivery may be invoked
// concurrently from different rank threads. Implementations with
// mutable state must synchronize it (the transport's built-in seeded
// decider is only called under the reliable-layer lock).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "msg/lossy.h"
#include "util/random.h"

namespace panda {

// The adversary's verdict for one logical send. kDeliver is the clean
// path; the rest mirror LossSpec's fault classes.
enum class LossAction {
  kDeliver = 0,
  kDrop = 1,
  kDup = 2,
  kReorder = 3,
  kDelay = 4,
};

constexpr std::uint32_t LossActionBit(LossAction a) {
  return 1u << static_cast<int>(a);
}

// One loss choice point: the adversary's options for one logical send
// on the (src, dst) link. `allowed` is the bitmask of legal actions
// (kDeliver always included); the bounded-adversary caps are applied by
// the transport *before* the decider sees the choice, so a forced-clean
// send surfaces no choice point at all.
struct LossChoice {
  int src = 0;
  int dst = 0;
  int tag = 0;
  // Per-(src, dst) dispatch ordinal (sender program order; stable
  // across replays).
  std::int64_t link_seq = 0;
  // The message's virtual departure time.
  double vtime = 0.0;
  std::uint32_t allowed = LossActionBit(LossAction::kDeliver);
};

// One kill choice point: may rank `rank`'s `send_index`-th send be its
// last? Surfaced for every send of every live rank when the decider
// asks for kill choices (WantsKillChoices); deciders narrow the set to
// their victim candidates.
struct KillChoice {
  int rank = 0;
  std::int64_t send_index = 0;  // per-rank send ordinal
  double vtime = 0.0;           // the rank's clock at the send
};

// One delivery choice point: which of the currently-matching pending
// messages should this any-source receive take? Index 0 is the
// earliest-deposited message — the transport's historical behavior.
// Only surfaced when the decider asks (WantsDeliveryChoices) and at
// least one message matches; the same receive may surface repeatedly
// (same recv_index, growing candidate set) while the decider defers
// with kDeliveryWaitPick.
struct DeliveryChoice {
  int rank = 0;  // the receiving rank
  int tag = 0;
  std::int64_t recv_index = 0;  // per-(rank, tag) any-source ordinal
  std::vector<int> candidate_srcs;  // sources, earliest deposited first
};

// ChooseDelivery return value meaning "take nothing yet": every
// candidate stays queued and the decider is consulted again on the
// receive's next wake. Lets a replaying decider wait for a *specific
// source* that has not arrived yet (mc forces delivery decisions by
// source rank, since candidate arrival order is scheduler noise).
// Deciders must bound their own waiting — the mailbox polls forever.
constexpr int kDeliveryWaitPick = -1;

// The pluggable decider. See the threading contract above.
class ChoiceDecider {
 public:
  virtual ~ChoiceDecider() = default;

  // Picks one action from choice.allowed. Returning an action outside
  // the mask is clamped to kDeliver by the transport.
  virtual LossAction ChooseLoss(const LossChoice& choice) = 0;

  // True crash-stops the rank at this send (RankKilledError unwind).
  virtual bool ChooseKill(const KillChoice& choice) = 0;

  // Index into choice.candidate_srcs, or kDeliveryWaitPick to leave
  // every candidate queued and be consulted again. Other out-of-range
  // picks are clamped to 0 by the transport.
  virtual int ChooseDelivery(const DeliveryChoice& choice) = 0;

  // Opt-in surfaces: the transport only pays for kill/delivery choice
  // plumbing when a decider asks for it, so the production path stays
  // byte- and time-identical to the pre-seam transport.
  virtual bool WantsKillChoices() const { return false; }
  virtual bool WantsDeliveryChoices() const { return false; }
};

// The production strategy: the seeded bounded adversary. One RNG
// stream per (src, dst) pair, derived from the spec seed exactly as the
// pre-seam transport derived it, drawing one double per surfaced choice
// and mapping it through the spec's probability bands — bit-identical
// outcomes to the original in-transport DrawOutcome. Never kills
// (ScheduleKill remains the transport's own mechanism) and always
// delivers in deposit order.
class SeededChoiceDecider : public ChoiceDecider {
 public:
  explicit SeededChoiceDecider(const LossSpec& spec) : spec_(spec) {}

  LossAction ChooseLoss(const LossChoice& choice) override;
  bool ChooseKill(const KillChoice&) override { return false; }
  int ChooseDelivery(const DeliveryChoice&) override { return 0; }

 private:
  LossSpec spec_;
  // Guarded by the caller (ChooseLoss runs under the reliable-layer
  // lock; see the threading contract above).
  std::map<std::pair<int, int>, Rng> rngs_;
};

// The per-(src, dst) RNG seed derivation shared by the seeded decider
// and the transport's schedule-perturbation streams.
std::uint64_t PairSeed(std::uint64_t seed, int src, int dst);

}  // namespace panda
