// Lossy-transport fault model and failure-detector configuration.
//
// The in-process ThreadTransport is perfectly reliable, so nothing ever
// exercised the protocol's liveness. LossSpec turns it into a bounded
// adversary (mirroring FaultModel for disks, faulty_fs.h): with a seeded
// per-(src,dst) RNG it drops, duplicates, reorders, or delays messages,
// subject to caps that keep every run completable. The transport pairs
// it with a reliable-delivery layer — per-(src,dst,tag) sequence
// numbers, receive-side dedup/resequencing, and receiver-driven
// retransmission of dropped messages after a virtual-clock RTO — so the
// protocol above observes exactly-once, per-pair-ordered delivery.
//
// Acks are modeled as free piggybacked traffic (they ride the constant
// per-message overhead already charged to every data message), so a run
// with the reliable layer armed but zero injected faults is
// byte-identical and *time*-identical to a run without it.
#pragma once

#include <atomic>
#include <cstdint>

namespace panda {

// Fault model for the lossy transport decorator. All probabilities are
// per *logical* send; a message draws at most one fault. Mirrors the
// bounded-adversary discipline of FaultModel: after a burst of
// max_consecutive_faults faulty draws the next min_clean_after_fault
// sends are forced clean, and max_faults_total caps the whole run, so
// tests terminate no matter how hostile the probabilities are.
struct LossSpec {
  std::uint64_t seed = 1;  // per-(src,dst) streams are derived from this

  double drop_prob = 0.0;     // message vanishes; recovered by retransmit
  double dup_prob = 0.0;      // delivered twice; second copy deduped
  double reorder_prob = 0.0;  // held back past the pair's next message
  double delay_prob = 0.0;    // delivered late by delay_s
  double delay_s = 2.0e-3;    // extra virtual latency for delayed messages

  // Virtual-clock retransmission timeout: a retransmitted copy of a
  // dropped message departs rto_s after the original did. Retransmitted
  // copies are never re-dropped (the adversary already spent its fault),
  // which keeps virtual time deterministic: retransmits == drops.
  double rto_s = 1.0e-2;

  // Bounded-adversary caps (see FaultModel for the disk analogue).
  int max_consecutive_faults = 2;
  int min_clean_after_fault = 1;
  std::int64_t max_faults_total = -1;  // -1: unlimited

  // Arms the sequencing/dedup/rescue machinery even with all
  // probabilities zero — used to prove the reliable layer is free when
  // nothing goes wrong.
  bool always_reliable = false;

  bool AnyFaults() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
           delay_prob > 0.0;
  }
  bool Enabled() const { return AnyFaults() || always_reliable; }
};

// Lease-based failure detection among the ranks of one machine. Each
// rank is modeled as heartbeating every interval_s; a peer that misses
// `misses` consecutive beats is declared dead. The heartbeats themselves
// are *modeled*, not sent — they would be constant background traffic
// orthogonal to the collective being measured — so the only observable
// effects are (a) a blocked Recv from a crash-stopped rank converts into
// PeerDeadError after the detecting rank's clock advances to
// death_time + lease_s(), and (b) the report's detection counters.
struct HeartbeatConfig {
  bool enabled = false;
  double interval_s = 5.0e-2;
  int misses = 3;

  // Time from a silent crash to every blocked peer declaring it dead.
  double lease_s() const { return interval_s * static_cast<double>(misses); }
};

// Plain-value snapshot of TransportFaultStats (reports, tests).
struct TransportFaultCounters {
  std::int64_t drops_injected = 0;
  std::int64_t dups_injected = 0;
  std::int64_t reorders_injected = 0;
  std::int64_t delays_injected = 0;
  std::int64_t retransmits = 0;      // dropped messages re-sent by rescue
  std::int64_t dups_suppressed = 0;  // receive-side dedup hits
  std::int64_t peers_declared_dead = 0;  // heartbeat leases expired
  std::int64_t ranks_killed = 0;         // crash-stop injections fired
  std::int64_t ranks_revived = 0;        // crash-stopped ranks restarted
  // Messages from a rank's previous incarnation fenced off at revival
  // or on delivery (zombie traffic; see ThreadTransport::Revive).
  std::int64_t stale_incarnation_dropped = 0;

  bool AllZero() const {
    return drops_injected == 0 && dups_injected == 0 &&
           reorders_injected == 0 && delays_injected == 0 &&
           retransmits == 0 && dups_suppressed == 0 &&
           peers_declared_dead == 0 && ranks_killed == 0 &&
           ranks_revived == 0 && stale_incarnation_dropped == 0;
  }
};

// Shared transport-level fault counters for one machine (the wire-layer
// sibling of RobustnessStats). Atomics: ranks run as threads.
class TransportFaultStats {
 public:
  std::atomic<std::int64_t> drops_injected{0};
  std::atomic<std::int64_t> dups_injected{0};
  std::atomic<std::int64_t> reorders_injected{0};
  std::atomic<std::int64_t> delays_injected{0};
  std::atomic<std::int64_t> retransmits{0};
  std::atomic<std::int64_t> dups_suppressed{0};
  std::atomic<std::int64_t> peers_declared_dead{0};
  std::atomic<std::int64_t> ranks_killed{0};
  std::atomic<std::int64_t> ranks_revived{0};
  std::atomic<std::int64_t> stale_incarnation_dropped{0};

  TransportFaultCounters Snapshot() const {
    TransportFaultCounters c;
    c.drops_injected = drops_injected.load();
    c.dups_injected = dups_injected.load();
    c.reorders_injected = reorders_injected.load();
    c.delays_injected = delays_injected.load();
    c.retransmits = retransmits.load();
    c.dups_suppressed = dups_suppressed.load();
    c.peers_declared_dead = peers_declared_dead.load();
    c.ranks_killed = ranks_killed.load();
    c.ranks_revived = ranks_revived.load();
    c.stale_incarnation_dropped = stale_incarnation_dropped.load();
    return c;
  }

  void Reset() {
    drops_injected = 0;
    dups_injected = 0;
    reorders_injected = 0;
    delays_injected = 0;
    retransmits = 0;
    dups_suppressed = 0;
    peers_declared_dead = 0;
    ranks_killed = 0;
    ranks_revived = 0;
    stale_incarnation_dropped = 0;
  }
};

}  // namespace panda
