// One cooperatively-scheduled rank context (ucontext fiber).
//
// A Fiber owns an mmap'd stack (guard page at the low end) and a
// ucontext pair: carrier <-> fiber. The carrier thread calls Resume()
// to run the fiber until it cooperatively switches out; the fiber calls
// SwitchOut(action) to hand control back, telling the carrier what to
// do with it (requeue, park, or retire). Under AddressSanitizer the
// switches carry the __sanitizer_*_switch_fiber annotations so ASan
// tracks the active stack across swapcontext.
//
// The park/wake handshake state lives here rather than in the wait
// primitive because a fiber has at most one park in flight and the
// Fiber object is stable for the whole run — notifiers (sched/wait.cc)
// and the scheduler's deadline/probe machinery can hold a Fiber* with
// no lifetime question. See fiber_scheduler.cc for the protocol.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

namespace panda {
namespace sched {

class FiberScheduler;

class Fiber {
 public:
  // What the carrier should do with a fiber that just switched out.
  enum class Action : std::uint8_t {
    kYield,     // requeue at the back of the home ready queue
    kPark,      // commit the pending WaitCV park (or requeue if beaten)
    kFinished,  // body returned; retire the fiber
  };

  // Park handshake state (one atomic so the CAS winner atomically
  // conveys the wake reason; see fiber_scheduler.cc).
  enum WaitState : int {
    kIdle = 0,      // not parking
    kArmed,         // registered with a WaitCV, park not yet committed
    kParked,        // committed: only a CAS winner may requeue it
    kWokenSignal,   // a notifier won (message/poison/abort arrived)
    kWokenTimeout,  // the deadline heap won
    kWokenProbe,    // a quiescence probe won
  };

  // `body` must outlive the fiber. `home` is the carrier this fiber is
  // pinned to; `stack_bytes` is the usable stack size.
  Fiber(FiberScheduler* owner, int index, int home, std::size_t stack_bytes,
        const std::function<void(int)>* body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Carrier side: runs the fiber until its next SwitchOut. Installs the
  // CurrentFiber() thread-local for the duration.
  void Resume();

  // Fiber side: hands control back to the carrier with `action`.
  // Returns when the carrier resumes this fiber again (never, for
  // kFinished).
  void SwitchOut(Action action);

  int index() const { return index_; }
  int home() const { return home_; }
  FiberScheduler* owner() const { return owner_; }
  Action action() const { return action_; }
  bool finished() const { return action_ == Action::kFinished; }

  std::atomic<int>& wait_state() { return wait_state_; }

  // Park bookkeeping. park_seq is bumped by the owner fiber on every
  // arm; deadline-heap entries snapshot it so stale entries (a park
  // that was already signalled and re-armed) are recognized. Written by
  // the owner fiber, read under the scheduler lock.
  std::atomic<std::uint64_t> park_seq{0};
  std::optional<std::chrono::steady_clock::time_point> park_deadline;
  // Slot in FiberScheduler's parked list (swap-remove index), valid
  // while kParked. Maintained under the scheduler lock.
  std::size_t parked_slot = 0;

 private:
  static void Trampoline(unsigned hi, unsigned lo);
  void Main();

  FiberScheduler* owner_;
  int index_;
  int home_;
  const std::function<void(int)>* body_;

  void* map_ = nullptr;       // mmap base (guard page first)
  std::size_t map_bytes_ = 0;
  void* stack_lo_ = nullptr;  // usable stack bottom (above the guard)
  std::size_t stack_bytes_ = 0;

  ucontext_t ctx_{};          // the fiber's context
  ucontext_t carrier_ctx_{};  // where SwitchOut returns to

  Action action_ = Action::kYield;
  std::atomic<int> wait_state_{kIdle};

  // ASan fiber-switch bookkeeping (unused in non-ASan builds).
  void* fake_stack_ = nullptr;
  const void* from_bottom_ = nullptr;
  std::size_t from_size_ = 0;
};

// The fiber currently executing on this thread, or nullptr when the
// thread is a carrier between slices / an ordinary rank thread.
Fiber* CurrentFiber();

}  // namespace sched
}  // namespace panda
