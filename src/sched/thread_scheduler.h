// The thread backend: one OS thread per rank — the transport's original
// execution core, kept as a selectable Scheduler so TSan and -DPANDA_HB
// runs (which need real preemptive threads to have anything to check)
// still exercise the exact code they always did.
#pragma once

#include <mutex>

#include "sched/sched.h"

namespace panda {
namespace sched {

class ThreadScheduler : public Scheduler {
 public:
  Backend backend() const override { return Backend::kThread; }
  void SetSliceGuard(SliceGuard guard) override { guard_ = std::move(guard); }
  void RunAll(const std::vector<int>& order,
              const std::function<void(int)>& body) override;
  Stats stats() const override;

 private:
  SliceGuard guard_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace sched
}  // namespace panda
