#include "sched/thread_scheduler.h"

#include <thread>
#include <vector>

namespace panda {
namespace sched {

namespace {

// Runs the guard's exit half even if `body` ever threw (it must not,
// but the invariant "enter is always paired with exit" should not
// depend on that).
class GuardScope {
 public:
  GuardScope(const Scheduler::SliceGuard& guard, int index)
      : guard_(guard), index_(index) {
    if (guard_) guard_(index_, /*enter=*/true);
  }
  ~GuardScope() {
    if (guard_) guard_(index_, /*enter=*/false);
  }
  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  const Scheduler::SliceGuard& guard_;
  int index_;
};

}  // namespace

void ThreadScheduler::RunAll(const std::vector<int>& order,
                             const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(order.size());
  for (const int index : order) {
    threads.emplace_back([this, index, &body] {
      GuardScope guard(guard_, index);
      body(index);
    });
  }
  for (auto& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ranks_run += static_cast<std::int64_t>(order.size());
  stats_.workers = static_cast<std::int64_t>(order.size());
}

Stats ThreadScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sched
}  // namespace panda
