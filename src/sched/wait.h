// Dual-mode condition variable: the blocking seam between the message
// layer and the rank scheduler (docs/SCHEDULER.md).
//
// A WaitCV wraps a std::condition_variable for thread-backed ranks and
// a fiber park list for fiber-backed ones, so msg/mailbox.cc has ONE
// wait object whatever the backend. The caller decides per wait:
// Wait/WaitUntil are exact std::condition_variable semantics (thread
// mode); ParkFiber yields the calling fiber back to its carrier until a
// notifier, a deadline, or a quiescence probe wakes it.
//
// Lost-wakeup contract: NotifyAll must be called while HOLDING the
// mutex the waiters hold (the mailbox lock). A parking fiber registers
// with the WaitCV under that same mutex before releasing it, so every
// notification either happens before the final locked re-check (the
// waiter sees the state change directly) or after registration (the
// notifier sees the waiter). There is no window in between.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace panda {
namespace sched {

class Fiber;

// Why a ParkFiber returned.
enum class WakeKind : std::uint8_t {
  kSignal,   // a notifier fired: re-check the protected state
  kTimeout,  // the wait's own deadline passed (wall clock)
  kProbe,    // scheduler-wide quiescence probe: re-poll hooks/picks
};

class WaitCV {
 public:
  // Thread-mode waits (exact std::condition_variable semantics;
  // spurious wakes possible as usual).
  void Wait(std::unique_lock<std::mutex>& lock) { cv_.wait(lock); }
  std::cv_status WaitUntil(std::unique_lock<std::mutex>& lock,
                           std::chrono::steady_clock::time_point tp) {
    return cv_.wait_until(lock, tp);
  }

  // Fiber-mode wait: registers the calling fiber (caller must be on
  // one — sched::OnFiber()), releases `lock`, and parks until woken;
  // re-acquires `lock` before returning the wake reason. A `deadline`
  // arms the scheduler's deadline heap; wakes may be spuriously early
  // (kProbe, or a raced deadline entry), never silently late — callers
  // loop and re-check like any condition wait.
  WakeKind ParkFiber(
      std::unique_lock<std::mutex>& lock,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  // Wakes every waiter, thread or fiber. MUST be called while holding
  // the mutex the waiters passed to Wait/WaitUntil/ParkFiber (see the
  // lost-wakeup contract above).
  void NotifyAll();

 private:
  std::condition_variable cv_;
  // Fiber waiters, registered/deregistered under wmu_ (always acquired
  // after the caller's mailbox mutex, before the scheduler lock).
  std::mutex wmu_;
  std::vector<Fiber*> fiber_waiters_;
};

}  // namespace sched
}  // namespace panda
