// The fiber backend: N rank fibers multiplexed onto a small carrier
// pool (docs/SCHEDULER.md).
//
// Each fiber is pinned to a home carrier (launch position modulo the
// pool size); a carrier runs slices off its own ready deque and idles
// on a shared condition when it has none. Parked fibers (blocked in
// sched::WaitCV) live in a parked list plus an optional deadline
// min-heap; notifiers requeue them through Unpark. When the whole
// machine goes quiescent — every ready queue empty, no slice running,
// parked fibers remaining — a probe sweep wakes every parked fiber
// with WakeKind::kProbe, the cooperative analogue of the thread
// backend's periodic hooked-wait wakeups (mailbox rescue, deferred
// delivery picks, deadline re-checks). Probes are paced at >= 1 ms so
// a genuinely-stuck machine spins the CPU no harder than thread mode.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/fiber.h"
#include "sched/sched.h"

namespace panda {
namespace sched {

class FiberScheduler : public Scheduler {
 public:
  explicit FiberScheduler(const Config& config);

  Backend backend() const override { return Backend::kFiber; }
  void SetSliceGuard(SliceGuard guard) override { guard_ = std::move(guard); }
  void RunAll(const std::vector<int>& order,
              const std::function<void(int)>& body) override;
  Stats stats() const override;

  // Notifier side of the park protocol (sched/wait.cc): the caller won
  // the kParked -> kWokenSignal CAS and now owns requeueing `fiber`.
  void Unpark(Fiber* fiber);

 private:
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point tp;
    Fiber* fiber;
    std::uint64_t seq;  // fiber->park_seq at registration
    bool operator>(const DeadlineEntry& o) const { return tp > o.tp; }
  };

  void CarrierLoop(int carrier);
  // Runs one slice of `fiber` (guard + dispatch instrumentation +
  // Resume). Called with mu_ RELEASED.
  void RunSlice(Fiber* fiber, std::size_t ready_depth);
  // Applies the fiber's switch-out action. Caller holds mu_.
  void CommitSliceLocked(Fiber* fiber);
  void PushReadyLocked(Fiber* fiber);
  void RemoveParkedLocked(Fiber* fiber);
  // Fires every expired (and still-valid) deadline entry.
  void ExpireDeadlinesLocked(std::chrono::steady_clock::time_point now);
  // All ready queues empty, nothing running, parked fibers remain.
  bool QuiescentLocked() const;
  // Wakes every parked fiber with kWokenProbe.
  void ProbeLocked();

  const int configured_workers_;
  const std::size_t stack_bytes_;
  SliceGuard guard_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<Fiber*>> ready_;  // one per carrier
  std::vector<Fiber*> parked_;
  std::vector<DeadlineEntry> deadlines_;  // min-heap by tp
  std::size_t live_ = 0;                  // unfinished fibers
  int running_ = 0;                       // slices in flight
  std::chrono::steady_clock::time_point next_probe_allowed_{};
  Stats stats_;

  std::vector<std::unique_ptr<Fiber>> fibers_;
};

}  // namespace sched
}  // namespace panda
