#include "sched/fiber_scheduler.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "trace/trace.h"
#include "util/error.h"

namespace panda {
namespace sched {

namespace {

// Probe pacing: how long a fully-quiescent machine waits between probe
// sweeps. Matches the thread backend's hooked-wait period
// (msg/mailbox.cc kProbePeriod) — pure wall-clock pacing, never part of
// the virtual-time model.
constexpr std::chrono::milliseconds kProbePace{1};

// See fiber.cc for the detection dance; ASan roughly doubles frame
// sizes (redzones), so fiber stacks get headroom.
#if defined(__SANITIZE_ADDRESS__)
#define PANDA_SCHED_ASAN_STACKS 1
#endif
#if !defined(PANDA_SCHED_ASAN_STACKS) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDA_SCHED_ASAN_STACKS 1
#endif
#endif
#ifndef PANDA_SCHED_ASAN_STACKS
#define PANDA_SCHED_ASAN_STACKS 0
#endif

std::size_t DefaultStackBytes() {
#if PANDA_SCHED_ASAN_STACKS
  return std::size_t{1} << 20;
#else
  return std::size_t{1} << 19;
#endif
}

int AutoWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw == 0 ? 4 : static_cast<int>(hw);
  return std::max(2, std::min(8, cores));
}

}  // namespace

bool OnFiber() { return CurrentFiber() != nullptr; }

void YieldNow() {
  Fiber* fiber = CurrentFiber();
  if (fiber == nullptr) {
    std::this_thread::yield();
    return;
  }
  trace::RecordInstant(trace::SpanKind::kSchedYield);
  fiber->SwitchOut(Fiber::Action::kYield);
}

FiberScheduler::FiberScheduler(const Config& config)
    : configured_workers_(config.workers),
      stack_bytes_(config.stack_bytes != 0 ? config.stack_bytes
                                           : DefaultStackBytes()) {}

void FiberScheduler::RunAll(const std::vector<int>& order,
                            const std::function<void(int)>& body) {
  if (order.empty()) return;
  int workers = configured_workers_ > 0 ? configured_workers_ : AutoWorkers();
  workers = std::min<int>(workers, static_cast<int>(order.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    PANDA_CHECK_MSG(live_ == 0, "RunAll while a run is in flight");
    ready_.assign(static_cast<std::size_t>(workers), {});
    parked_.clear();
    deadlines_.clear();
    fibers_.clear();
    fibers_.reserve(order.size());
    // Launch order is the ready order: fibers are dealt round-robin to
    // carriers and first dispatched in exactly the sequence the
    // transport's (possibly seed-shuffled) launch order prescribes.
    for (std::size_t i = 0; i < order.size(); ++i) {
      const int home = static_cast<int>(i) % workers;
      fibers_.push_back(std::make_unique<Fiber>(this, order[i], home,
                                                stack_bytes_, &body));
      ready_[static_cast<std::size_t>(home)].push_back(fibers_.back().get());
    }
    live_ = order.size();
    running_ = 0;
    next_probe_allowed_ = std::chrono::steady_clock::now();
    stats_.ranks_run += static_cast<std::int64_t>(order.size());
    stats_.workers = workers;
  }
  std::vector<std::thread> carriers;
  carriers.reserve(static_cast<std::size_t>(workers));
  for (int c = 0; c < workers; ++c) {
    carriers.emplace_back([this, c] { CarrierLoop(c); });
  }
  for (auto& t : carriers) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  fibers_.clear();
}

void FiberScheduler::CarrierLoop(int carrier) {
  for (;;) {
    Fiber* fiber = nullptr;
    std::size_t depth = 0;
    // Scheduler-lock region. RunSlice must execute OUTSIDE it: the
    // fiber's rank code takes mailbox/transport locks that themselves
    // wake fibers (and so take this lock) — holding mu_ across a slice
    // would invert the global lock order (mailbox mu_ -> WaitCV wmu_ ->
    // scheduler mu_; see sched/wait.h).
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::deque<Fiber*>& queue = ready_[static_cast<std::size_t>(carrier)];
      if (live_ == 0) {
        idle_cv_.notify_all();
        return;
      }
      ExpireDeadlinesLocked(std::chrono::steady_clock::now());
      if (!queue.empty()) {
        fiber = queue.front();
        queue.pop_front();
        depth = queue.size();
        ++running_;
      } else {
        const auto now = std::chrono::steady_clock::now();
        if (QuiescentLocked()) {
          // Every fiber is parked and nobody is running: nothing will
          // ever wake them but us. Probe (paced), the cooperative
          // analogue of the thread backend's periodic hooked-wait
          // wakeups.
          if (now >= next_probe_allowed_) {
            ProbeLocked();
          } else {
            idle_cv_.wait_until(lock, next_probe_allowed_);
          }
        } else {
          // Idle but other carriers are busy: doze until work is pushed
          // here (Unpark notifies) or the next deadline/periodic
          // re-check.
          auto wake = now + kProbePace;
          if (!deadlines_.empty() && deadlines_.front().tp < wake) {
            wake = deadlines_.front().tp;
          }
          idle_cv_.wait_until(lock, wake);
        }
        continue;
      }
    }
    RunSlice(fiber, depth);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      CommitSliceLocked(fiber);
    }
  }
}

void FiberScheduler::RunSlice(Fiber* fiber, std::size_t ready_depth) {
  if (guard_) guard_(fiber->index(), /*enter=*/true);
  // Dispatch instrumentation, attributed to the rank about to run (the
  // guard just installed its trace context). Wall-schedule-dependent by
  // nature — slice counts vary run to run — which is why sched.* spans
  // are excluded from the cross-backend equivalence comparisons.
  trace::RecordInstant(trace::SpanKind::kSchedDispatch,
                       static_cast<std::int64_t>(ready_depth));
  if (trace::Active()) {
    trace::ObserveMetric(trace::MetricId::kSchedReadyDepth,
                         static_cast<double>(ready_depth));
  }
  fiber->Resume();
  if (guard_) guard_(fiber->index(), /*enter=*/false);
}

void FiberScheduler::CommitSliceLocked(Fiber* fiber) {
  ++stats_.context_switches;
  switch (fiber->action()) {
    case Fiber::Action::kFinished:
      --live_;
      if (live_ == 0) idle_cv_.notify_all();
      break;
    case Fiber::Action::kYield:
      ++stats_.yields;
      PushReadyLocked(fiber);
      break;
    case Fiber::Action::kPark: {
      int expected = Fiber::kArmed;
      if (fiber->wait_state().compare_exchange_strong(
              expected, Fiber::kParked, std::memory_order_acq_rel)) {
        ++stats_.parks;
        fiber->parked_slot = parked_.size();
        parked_.push_back(fiber);
        if (fiber->park_deadline) {
          deadlines_.push_back(DeadlineEntry{
              *fiber->park_deadline, fiber,
              fiber->park_seq.load(std::memory_order_relaxed)});
          std::push_heap(deadlines_.begin(), deadlines_.end(),
                         std::greater<>());
        }
      } else {
        // A notifier beat the commit (kWokenSignal): the park never
        // actually slept; run it again right away.
        PushReadyLocked(fiber);
      }
      break;
    }
  }
}

void FiberScheduler::PushReadyLocked(Fiber* fiber) {
  ready_[static_cast<std::size_t>(fiber->home())].push_back(fiber);
  idle_cv_.notify_all();
}

void FiberScheduler::RemoveParkedLocked(Fiber* fiber) {
  const std::size_t slot = fiber->parked_slot;
  PANDA_CHECK(slot < parked_.size() && parked_[slot] == fiber);
  parked_[slot] = parked_.back();
  parked_[slot]->parked_slot = slot;
  parked_.pop_back();
}

void FiberScheduler::ExpireDeadlinesLocked(
    std::chrono::steady_clock::time_point now) {
  while (!deadlines_.empty() && deadlines_.front().tp <= now) {
    const DeadlineEntry entry = deadlines_.front();
    std::pop_heap(deadlines_.begin(), deadlines_.end(), std::greater<>());
    deadlines_.pop_back();
    // Stale entry (that park was signalled and possibly re-armed):
    // drop it. In the narrow race where the seq matches but the CAS
    // lands on a newer park, the result is a spuriously-early timeout
    // wake — callers loop and re-check, so this is a hurry-up, not a
    // correctness hole.
    if (entry.fiber->park_seq.load(std::memory_order_acquire) != entry.seq) {
      continue;
    }
    int expected = Fiber::kParked;
    if (entry.fiber->wait_state().compare_exchange_strong(
            expected, Fiber::kWokenTimeout, std::memory_order_acq_rel)) {
      RemoveParkedLocked(entry.fiber);
      PushReadyLocked(entry.fiber);
    }
  }
}

bool FiberScheduler::QuiescentLocked() const {
  if (running_ != 0 || parked_.empty()) return false;
  for (const auto& queue : ready_) {
    if (!queue.empty()) return false;
  }
  return true;
}

void FiberScheduler::ProbeLocked() {
  ++stats_.probe_rounds;
  next_probe_allowed_ = std::chrono::steady_clock::now() + kProbePace;
  // Sweep back-to-front: RemoveParkedLocked swap-removes.
  for (std::size_t i = parked_.size(); i-- > 0;) {
    Fiber* fiber = parked_[i];
    int expected = Fiber::kParked;
    if (fiber->wait_state().compare_exchange_strong(
            expected, Fiber::kWokenProbe, std::memory_order_acq_rel)) {
      RemoveParkedLocked(fiber);
      PushReadyLocked(fiber);
    }
  }
}

void FiberScheduler::Unpark(Fiber* fiber) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveParkedLocked(fiber);
  PushReadyLocked(fiber);
}

Stats FiberScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sched
}  // namespace panda
