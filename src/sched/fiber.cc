#include "sched/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <exception>

#include "util/error.h"

// ASan must be told about every stack switch or it misattributes every
// frame after a swapcontext (false stack-buffer-overflow / wild
// use-after-return reports). Detection covers both gcc's macro and
// clang's __has_feature, probed on separate lines so gcc (which lacks
// __has_feature) never sees it inside a short-circuit expression.
#if defined(__SANITIZE_ADDRESS__)
#define PANDA_SCHED_ASAN 1
#endif
#if !defined(PANDA_SCHED_ASAN) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDA_SCHED_ASAN 1
#endif
#endif
#ifndef PANDA_SCHED_ASAN
#define PANDA_SCHED_ASAN 0
#endif

#if PANDA_SCHED_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#endif

namespace panda {
namespace sched {

namespace {

thread_local Fiber* t_current_fiber = nullptr;

std::size_t PageSize() {
  static const std::size_t page =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t RoundUpToPage(std::size_t bytes) {
  const std::size_t page = PageSize();
  return (bytes + page - 1) / page * page;
}

}  // namespace

Fiber* CurrentFiber() { return t_current_fiber; }

Fiber::Fiber(FiberScheduler* owner, int index, int home,
             std::size_t stack_bytes, const std::function<void(int)>* body)
    : owner_(owner), index_(index), home_(home), body_(body) {
  stack_bytes_ = RoundUpToPage(stack_bytes);
  map_bytes_ = stack_bytes_ + PageSize();
  // NORESERVE: thousands of fibers reserve address space, not memory —
  // only the pages a rank actually touches materialize. The low page is
  // a PROT_NONE guard, so stack overflow faults instead of silently
  // corrupting the neighboring fiber's stack.
  map_ = mmap(nullptr, map_bytes_, PROT_NONE,
              MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  PANDA_CHECK_MSG(map_ != MAP_FAILED, "fiber stack mmap failed");
  stack_lo_ = static_cast<char*>(map_) + PageSize();
  PANDA_CHECK_MSG(
      mprotect(stack_lo_, stack_bytes_, PROT_READ | PROT_WRITE) == 0,
      "fiber stack mprotect failed");

  PANDA_CHECK_MSG(getcontext(&ctx_) == 0, "getcontext failed");
  ctx_.uc_stack.ss_sp = stack_lo_;
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = nullptr;  // a fiber never falls off its trampoline
  // makecontext takes int arguments only: split the Fiber* into halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  if (map_ != nullptr) munmap(map_, map_bytes_);
}

void Fiber::Trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  self->Main();
}

void Fiber::Main() {
#if PANDA_SCHED_ASAN
  // First entry: no fake stack was saved on this (brand new) stack;
  // capture the carrier's bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &from_bottom_, &from_size_);
#endif
  try {
    (*body_)(index_);
  } catch (...) {
    // The transport catches everything inside the body; an exception
    // reaching a fiber trampoline has nowhere sane to unwind to.
    std::terminate();
  }
  for (;;) SwitchOut(Action::kFinished);
}

void Fiber::Resume() {
  t_current_fiber = this;
#if PANDA_SCHED_ASAN
  void* carrier_fake = nullptr;
  __sanitizer_start_switch_fiber(&carrier_fake, stack_lo_, stack_bytes_);
#endif
  swapcontext(&carrier_ctx_, &ctx_);
#if PANDA_SCHED_ASAN
  __sanitizer_finish_switch_fiber(carrier_fake, nullptr, nullptr);
#endif
  t_current_fiber = nullptr;
}

void Fiber::SwitchOut(Action action) {
  action_ = action;
#if PANDA_SCHED_ASAN
  // A finishing fiber passes nullptr so ASan retires its fake stack.
  __sanitizer_start_switch_fiber(
      action == Action::kFinished ? nullptr : &fake_stack_, from_bottom_,
      from_size_);
#endif
  swapcontext(&ctx_, &carrier_ctx_);
#if PANDA_SCHED_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_, &from_bottom_, &from_size_);
#endif
}

}  // namespace sched
}  // namespace panda
