#include "sched/wait.h"

#include <algorithm>

#include "sched/fiber.h"
#include "sched/fiber_scheduler.h"
#include "util/error.h"

namespace panda {
namespace sched {

WakeKind WaitCV::ParkFiber(
    std::unique_lock<std::mutex>& lock,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  Fiber* self = CurrentFiber();
  PANDA_CHECK_MSG(self != nullptr, "ParkFiber off-fiber");
  // Arm + register while still holding the caller's mutex: a notifier
  // holds that mutex too, so it either ran entirely before our caller's
  // last state check (we saw the change and never got here) or will run
  // after this registration (it sees us). park_seq invalidates any
  // stale deadline-heap entry from a previous park.
  self->park_seq.fetch_add(1, std::memory_order_release);
  self->park_deadline = deadline;
  self->wait_state().store(Fiber::kArmed, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(wmu_);
    fiber_waiters_.push_back(self);
  }
  lock.unlock();
  // Hand the carrier the park request; it commits kArmed -> kParked (or
  // requeues us immediately if a notifier already won the CAS).
  self->SwitchOut(Fiber::Action::kPark);
  // Woken. The wake reason was CAS'd into the state by whoever won.
  const int reason = self->wait_state().load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> g(wmu_);
    auto it = std::find(fiber_waiters_.begin(), fiber_waiters_.end(), self);
    if (it != fiber_waiters_.end()) {
      *it = fiber_waiters_.back();
      fiber_waiters_.pop_back();
    }
  }
  // Only after deregistration may the state go idle: no notifier can
  // still reach us (the waiter list is the only path to this fiber).
  self->wait_state().store(Fiber::kIdle, std::memory_order_release);
  self->park_deadline.reset();
  lock.lock();
  switch (reason) {
    case Fiber::kWokenTimeout:
      return WakeKind::kTimeout;
    case Fiber::kWokenProbe:
      return WakeKind::kProbe;
    default:
      return WakeKind::kSignal;
  }
}

void WaitCV::NotifyAll() {
  // Thread waiters: plain notify (the caller holds the waiters' mutex,
  // which is exactly what makes this race-free for fibers below; for
  // threads it merely costs a hurry-up-and-wait).
  cv_.notify_all();
  std::lock_guard<std::mutex> g(wmu_);
  for (Fiber* f : fiber_waiters_) {
    // kArmed -> kWokenSignal: the fiber has not parked yet; its
    // carrier's commit CAS will fail and requeue it immediately.
    int expected = Fiber::kArmed;
    if (f->wait_state().compare_exchange_strong(expected, Fiber::kWokenSignal,
                                                std::memory_order_acq_rel)) {
      continue;
    }
    // kParked -> kWokenSignal: we own the requeue.
    expected = Fiber::kParked;
    if (f->wait_state().compare_exchange_strong(expected, Fiber::kWokenSignal,
                                                std::memory_order_acq_rel)) {
      f->owner()->Unpark(f);
    }
    // Any other state: another waker beat us; nothing to do.
  }
}

}  // namespace sched
}  // namespace panda
