// Cooperative rank scheduling: the execution core behind
// ThreadTransport::Run (docs/SCHEDULER.md).
//
// The transport historically burned one OS thread per simulated rank,
// which caps machines at a few hundred ranks. This subsystem makes the
// execution strategy a seam: a Scheduler runs N rank bodies to
// completion, either as real threads (kThread — the original behavior,
// required for TSan and -DPANDA_HB runs) or as ucontext fibers
// multiplexed onto a small carrier pool (kFiber — thousands of ranks on
// a handful of OS threads). Blocking points in the message layer
// (msg/mailbox.cc) go through sched::WaitCV, which parks the calling
// fiber instead of the carrier thread.
//
// Determinism contract: the backend choice is pure execution strategy.
// Virtual clocks, message counts and file bytes are computed from
// message stamps and per-rank state only, so both backends must produce
// bit-identical results on the same workload — tests/sched_test.cc
// asserts exactly that across backends and schedule seeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace panda {
namespace sched {

enum class Backend : std::uint8_t {
  kThread = 0,  // one OS thread per rank (TSan/HB-compatible)
  kFiber,       // ucontext fibers on a small carrier pool
};

// Stable CLI spelling ("thread" / "fiber").
const char* BackendName(Backend backend);
bool BackendFromName(const std::string& name, Backend& out);

// True when the fiber backend can actually run in this build. False
// under ThreadSanitizer (TSan does not model ucontext stack switches;
// every cross-fiber access would be a false race) and under -DPANDA_HB
// (cooperative scheduling serializes the very interleavings the
// happens-before checker exists to adversarially explore, so HB runs
// pin the thread backend by construction). MakeScheduler falls back to
// kThread when unsupported.
bool FiberSupported();

struct Config {
  Backend backend = Backend::kThread;
  // Carrier threads for the fiber backend; 0 = auto (a small pool
  // clamped to the host's cores). Ignored by kThread.
  int workers = 0;
  // Usable stack bytes per fiber; 0 = default (512 KiB, doubled under
  // ASan for its larger frames). Ignored by kThread.
  std::size_t stack_bytes = 0;
};

// Execution counters, cumulative over a scheduler's RunAll calls. These
// describe the *wall* schedule (how ranks were multiplexed), never the
// virtual one, so they are exempt from the determinism contract.
struct Stats {
  std::int64_t ranks_run = 0;          // bodies executed to completion
  std::int64_t workers = 0;            // OS threads of the last RunAll
  std::int64_t context_switches = 0;   // fiber slices dispatched
  std::int64_t yields = 0;             // cooperative YieldNow yields
  std::int64_t parks = 0;              // blocking points that parked
  std::int64_t probe_rounds = 0;       // quiescence probe sweeps

  Stats& operator+=(const Stats& other) {
    ranks_run += other.ranks_run;
    workers = other.workers;
    context_switches += other.context_switches;
    yields += other.yields;
    parks += other.parks;
    probe_rounds += other.probe_rounds;
    return *this;
  }
};

// The execution seam. One instance drives one or more RunAll calls;
// ThreadTransport::Run builds one per run from its armed Config.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual Backend backend() const = 0;

  // Per-slice context guard: guard(index, true) runs on the worker
  // thread immediately before any of `index`'s code executes on it, and
  // guard(index, false) when `index` leaves that thread (finish, park,
  // or yield for the fiber backend; thread start/end for kThread). The
  // transport installs trace/hb thread-local contexts through this —
  // fibers share their carrier's thread-locals while running, so the
  // guard is what keeps per-rank attribution correct across slices.
  using SliceGuard = std::function<void(int index, bool enter)>;
  virtual void SetSliceGuard(SliceGuard guard) = 0;

  // Runs body(index) for every index in `order` concurrently and joins.
  // `body` must not throw (the transport catches everything inside it);
  // a throw out of a fiber terminates the process by design.
  virtual void RunAll(const std::vector<int>& order,
                      const std::function<void(int)>& body) = 0;

  virtual Stats stats() const = 0;
};

// Builds the configured scheduler; kFiber quietly degrades to kThread
// when FiberSupported() is false (callers can detect the fallback via
// backend()).
std::unique_ptr<Scheduler> MakeScheduler(const Config& config);

// True when the calling code is running on a scheduler fiber. The
// blocking seam (msg/mailbox.cc) branches on this to park the fiber
// instead of the carrier thread.
bool OnFiber();

// Cooperative yield: reschedules the calling fiber to the back of its
// carrier's ready queue (plain std::this_thread::yield off-fiber). The
// schedule perturbator uses this as the fiber-mode analogue of an OS
// yield.
void YieldNow();

}  // namespace sched
}  // namespace panda
