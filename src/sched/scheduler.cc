#include "sched/sched.h"

#include "sched/fiber_scheduler.h"
#include "sched/thread_scheduler.h"

// The compile gates arrive on the command line (top-level CMake applies
// them globally), so sched can honor them without depending on msg/.
#ifndef PANDA_HB_ENABLED
#define PANDA_HB_ENABLED 0
#endif

#if defined(__SANITIZE_THREAD__)
#define PANDA_SCHED_TSAN 1
#endif
#if !defined(PANDA_SCHED_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PANDA_SCHED_TSAN 1
#endif
#endif
#ifndef PANDA_SCHED_TSAN
#define PANDA_SCHED_TSAN 0
#endif

namespace panda {
namespace sched {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kThread:
      return "thread";
    case Backend::kFiber:
      return "fiber";
  }
  return "thread";
}

bool BackendFromName(const std::string& name, Backend& out) {
  if (name == "thread") {
    out = Backend::kThread;
    return true;
  }
  if (name == "fiber") {
    out = Backend::kFiber;
    return true;
  }
  return false;
}

bool FiberSupported() {
#if PANDA_SCHED_TSAN
  // TSan does not model ucontext stack switches: every cross-slice
  // access on a carrier would be reported as a race.
  return false;
#elif PANDA_HB_ENABLED
  // The happens-before checker's whole point is adversarial thread
  // interleavings; a cooperative scheduler serializes exactly the
  // conflicting accesses it exists to catch, so HB builds pin the
  // thread backend (docs/SCHEDULER.md).
  return false;
#else
  return true;
#endif
}

std::unique_ptr<Scheduler> MakeScheduler(const Config& config) {
  if (config.backend == Backend::kFiber && FiberSupported()) {
    return std::make_unique<FiberScheduler>(config);
  }
  return std::make_unique<ThreadScheduler>();
}

}  // namespace sched
}  // namespace panda
