// Sub-chunk codecs: dependency-free byte encoders for Panda's two data
// planes (wire piece payloads and on-disk sub-chunks).
//
// The paper turns file traffic into sequential <=1 MB operations; the
// remaining lever is how many bytes each sequential op and each wire
// transfer carries. This registry supplies the encodings:
//   none        - identity (the default; bit-identical to pre-codec runs)
//   rle         - byte-level run-length encoding (count,value pairs)
//   shuffle     - byte-plane transposition by element size (no size
//                 change; only useful chained)
//   delta       - per-element wrapping delta + zigzag varint
//   shuffle+rle - shuffle then rle (the workhorse for smooth numeric
//                 fields: near-constant high bytes become long runs)
//
// Codecs are pure byte transforms: no allocation tricks, no global
// state, no external libraries. Decode validates its input and throws
// PandaError on malformed bytes, so a torn or corrupted frame fails
// loudly instead of scrambling arrays. Framing (self-describing
// headers, stored-raw fallback, frame directories) lives in
// codec/frame.h; virtual-time charging stays with the callers.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace panda {

// Stable on-wire / on-disk codec identifiers (frame headers, frame
// directory records, ArrayMeta). Never renumber.
enum class CodecId : std::uint8_t {
  kNone = 0,
  kRle = 1,
  kShuffle = 2,
  kDelta = 3,
  kShuffleRle = 4,
};

inline constexpr std::uint8_t kNumCodecIds = 5;

// True when `id` names a registered codec.
bool IsValidCodecId(std::uint8_t id);

// Stable name ("none", "rle", "shuffle", "delta", "shuffle+rle").
const char* CodecName(CodecId id);

// Parses a codec name; returns false (and leaves `id` alone) on an
// unknown name. Accepts exactly the CodecName spellings.
bool CodecFromName(std::string_view name, CodecId& id);

// All registered codec ids, ascending.
std::span<const CodecId> AllCodecIds();

// One codec: a reversible byte transform parameterized by the array's
// element size (shuffle transposes byte planes; delta works over
// element-width integers; byte-oriented codecs ignore it).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  virtual const char* name() const = 0;

  // Appends the encoded form of `raw` to `out`. Encoding never fails;
  // it may expand (rle worst case doubles) — framing falls back to
  // stored-raw when it does not shrink.
  virtual void Encode(std::span<const std::byte> raw, std::int64_t elem_size,
                      std::vector<std::byte>& out) const = 0;

  // Decodes `enc` into `out` (pre-sized to the original raw length by
  // the caller). Throws PandaError when `enc` is not a valid encoding
  // of exactly out.size() bytes.
  virtual void Decode(std::span<const std::byte> enc, std::int64_t elem_size,
                      std::span<std::byte> out) const = 0;
};

// The registry: one immutable instance per CodecId. Dies on an invalid
// id (wire/disk decode paths validate with IsValidCodecId first).
const Codec& GetCodec(CodecId id);

// Convenience: encoded size of `raw` under `id` (runs the encoder).
std::int64_t EncodedSize(CodecId id, std::span<const std::byte> raw,
                         std::int64_t elem_size);

}  // namespace panda
