#include "codec/codec.h"

#include <array>
#include <cstring>

#include "util/error.h"

namespace panda {
namespace {

// Clamps the element size codecs work with: anything non-positive (or
// absurd) degenerates to byte-oriented behaviour instead of dying —
// codecs must cope with whatever an ArrayMeta carries.
std::int64_t SaneElem(std::int64_t elem_size) {
  if (elem_size < 1) return 1;
  if (elem_size > 64) return 1;
  return elem_size;
}

// ---- none ------------------------------------------------------------

class NoneCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kNone; }
  const char* name() const override { return "none"; }

  void Encode(std::span<const std::byte> raw, std::int64_t,
              std::vector<std::byte>& out) const override {
    out.insert(out.end(), raw.begin(), raw.end());
  }

  void Decode(std::span<const std::byte> enc, std::int64_t,
              std::span<std::byte> out) const override {
    PANDA_REQUIRE(enc.size() == out.size(),
                  "none codec size mismatch (%zu encoded, %zu expected)",
                  enc.size(), out.size());
    if (!enc.empty()) std::memcpy(out.data(), enc.data(), enc.size());
  }
};

// ---- rle -------------------------------------------------------------
//
// Byte-level runs as (length, value) pairs, length in 1..255. Worst
// case doubles the input; framing falls back to stored-raw then.

void RleEncode(std::span<const std::byte> raw, std::vector<std::byte>& out) {
  size_t i = 0;
  while (i < raw.size()) {
    const std::byte v = raw[i];
    size_t run = 1;
    while (run < 255 && i + run < raw.size() && raw[i + run] == v) ++run;
    out.push_back(static_cast<std::byte>(run));
    out.push_back(v);
    i += run;
  }
}

void RleDecode(std::span<const std::byte> enc, std::span<std::byte> out) {
  size_t oi = 0;
  size_t i = 0;
  while (i < enc.size()) {
    PANDA_REQUIRE(i + 2 <= enc.size(), "rle stream ends mid-pair");
    const size_t run = static_cast<size_t>(enc[i]);
    const std::byte v = enc[i + 1];
    i += 2;
    PANDA_REQUIRE(run >= 1, "rle run of length zero");
    PANDA_REQUIRE(oi + run <= out.size(),
                  "rle stream decodes past the expected %zu bytes",
                  out.size());
    std::memset(out.data() + oi, static_cast<int>(v), run);
    oi += run;
  }
  PANDA_REQUIRE(oi == out.size(),
                "rle stream decodes to %zu bytes, expected %zu", oi,
                out.size());
}

class RleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kRle; }
  const char* name() const override { return "rle"; }

  void Encode(std::span<const std::byte> raw, std::int64_t,
              std::vector<std::byte>& out) const override {
    RleEncode(raw, out);
  }

  void Decode(std::span<const std::byte> enc, std::int64_t,
              std::span<std::byte> out) const override {
    RleDecode(enc, out);
  }
};

// ---- shuffle ---------------------------------------------------------
//
// Byte-plane transposition: all elements' byte 0, then all byte 1, ...
// Size-preserving and only useful chained (near-constant high bytes of
// smooth numeric data become long runs for rle). A tail shorter than
// one element is appended unshuffled.

void ShuffleEncode(std::span<const std::byte> raw, std::int64_t elem_size,
                   std::vector<std::byte>& out) {
  const size_t elem = static_cast<size_t>(SaneElem(elem_size));
  const size_t n = raw.size() / elem;  // whole elements
  const size_t body = n * elem;
  const size_t base = out.size();
  out.resize(base + raw.size());
  for (size_t p = 0; p < elem; ++p) {
    std::byte* dst = out.data() + base + p * n;
    for (size_t i = 0; i < n; ++i) dst[i] = raw[i * elem + p];
  }
  if (body < raw.size()) {
    std::memcpy(out.data() + base + body, raw.data() + body,
                raw.size() - body);
  }
}

void ShuffleDecode(std::span<const std::byte> enc, std::int64_t elem_size,
                   std::span<std::byte> out) {
  PANDA_REQUIRE(enc.size() == out.size(),
                "shuffle size mismatch (%zu encoded, %zu expected)",
                enc.size(), out.size());
  const size_t elem = static_cast<size_t>(SaneElem(elem_size));
  const size_t n = out.size() / elem;
  const size_t body = n * elem;
  for (size_t p = 0; p < elem; ++p) {
    const std::byte* src = enc.data() + p * n;
    for (size_t i = 0; i < n; ++i) out[i * elem + p] = src[i];
  }
  if (body < out.size()) {
    std::memcpy(out.data() + body, enc.data() + body, out.size() - body);
  }
}

class ShuffleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kShuffle; }
  const char* name() const override { return "shuffle"; }

  void Encode(std::span<const std::byte> raw, std::int64_t elem_size,
              std::vector<std::byte>& out) const override {
    ShuffleEncode(raw, elem_size, out);
  }

  void Decode(std::span<const std::byte> enc, std::int64_t elem_size,
              std::span<std::byte> out) const override {
    ShuffleDecode(enc, elem_size, out);
  }
};

// ---- delta + varint --------------------------------------------------
//
// Treats the input as little-endian unsigned integers of the element
// width (1/2/4/8; anything else degrades to bytes), takes wrapping
// deltas between consecutive elements (first element deltas from 0),
// recenters the delta into a signed value of the same width, and
// zigzag-varint encodes it. Slowly varying sequences become streams of
// 1-byte varints. A tail shorter than one element is stored raw after
// the varint stream.

std::int64_t DeltaWidth(std::int64_t elem_size) {
  switch (elem_size) {
    case 2:
    case 4:
    case 8:
      return elem_size;
    default:
      return 1;
  }
}

std::uint64_t LoadLe(const std::byte* p, std::int64_t width) {
  std::uint64_t v = 0;
  for (std::int64_t b = 0; b < width; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[b]))
         << (8 * b);
  }
  return v;
}

void StoreLe(std::byte* p, std::int64_t width, std::uint64_t v) {
  for (std::int64_t b = 0; b < width; ++b) {
    p[b] = static_cast<std::byte>((v >> (8 * b)) & 0xff);
  }
}

void PutVarint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t GetVarint(std::span<const std::byte> enc, size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    PANDA_REQUIRE(pos < enc.size(), "varint stream truncated");
    PANDA_REQUIRE(shift < 64, "varint too long");
    const std::uint8_t b = static_cast<std::uint8_t>(enc[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint64_t Zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t Unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void DeltaEncode(std::span<const std::byte> raw, std::int64_t elem_size,
                 std::vector<std::byte>& out) {
  const std::int64_t width = DeltaWidth(SaneElem(elem_size));
  const std::uint64_t mask =
      width == 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * width)) - 1);
  const size_t n = raw.size() / static_cast<size_t>(width);
  const size_t body = n * static_cast<size_t>(width);
  std::uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::uint64_t v =
        LoadLe(raw.data() + i * static_cast<size_t>(width), width);
    const std::uint64_t d = (v - prev) & mask;
    prev = v;
    // Recenter the wrapped delta: values in the top half of the range
    // are small negative steps.
    std::int64_t centered;
    if (width == 8) {
      centered = static_cast<std::int64_t>(d);
    } else if (d > (mask >> 1)) {
      centered = static_cast<std::int64_t>(d) -
                 static_cast<std::int64_t>(mask + 1);
    } else {
      centered = static_cast<std::int64_t>(d);
    }
    PutVarint(out, Zigzag(centered));
  }
  if (body < raw.size()) {
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(body),
               raw.end());
  }
}

void DeltaDecode(std::span<const std::byte> enc, std::int64_t elem_size,
                 std::span<std::byte> out) {
  const std::int64_t width = DeltaWidth(SaneElem(elem_size));
  const std::uint64_t mask =
      width == 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * width)) - 1);
  const size_t n = out.size() / static_cast<size_t>(width);
  const size_t body = n * static_cast<size_t>(width);
  const size_t tail = out.size() - body;
  size_t pos = 0;
  std::uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::int64_t centered = Unzigzag(GetVarint(enc, pos));
    const std::uint64_t d = static_cast<std::uint64_t>(centered) & mask;
    const std::uint64_t v = (prev + d) & mask;
    prev = v;
    StoreLe(out.data() + i * static_cast<size_t>(width), width, v);
  }
  PANDA_REQUIRE(enc.size() - pos == tail,
                "delta stream leaves %zu trailing bytes, expected %zu",
                enc.size() - pos, tail);
  if (tail > 0) std::memcpy(out.data() + body, enc.data() + pos, tail);
}

class DeltaCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kDelta; }
  const char* name() const override { return "delta"; }

  void Encode(std::span<const std::byte> raw, std::int64_t elem_size,
              std::vector<std::byte>& out) const override {
    DeltaEncode(raw, elem_size, out);
  }

  void Decode(std::span<const std::byte> enc, std::int64_t elem_size,
              std::span<std::byte> out) const override {
    DeltaDecode(enc, elem_size, out);
  }
};

// ---- shuffle + rle ---------------------------------------------------

class ShuffleRleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kShuffleRle; }
  const char* name() const override { return "shuffle+rle"; }

  void Encode(std::span<const std::byte> raw, std::int64_t elem_size,
              std::vector<std::byte>& out) const override {
    std::vector<std::byte> shuffled;
    ShuffleEncode(raw, elem_size, shuffled);
    RleEncode(shuffled, out);
  }

  void Decode(std::span<const std::byte> enc, std::int64_t elem_size,
              std::span<std::byte> out) const override {
    // Shuffle is size-preserving, so the intermediate is out.size().
    std::vector<std::byte> shuffled(out.size());
    RleDecode(enc, shuffled);
    ShuffleDecode(shuffled, elem_size, out);
  }
};

constexpr std::array<CodecId, kNumCodecIds> kAllCodecIds = {
    CodecId::kNone, CodecId::kRle, CodecId::kShuffle, CodecId::kDelta,
    CodecId::kShuffleRle,
};

}  // namespace

bool IsValidCodecId(std::uint8_t id) { return id < kNumCodecIds; }

const char* CodecName(CodecId id) { return GetCodec(id).name(); }

bool CodecFromName(std::string_view name, CodecId& id) {
  for (const CodecId c : kAllCodecIds) {
    if (name == GetCodec(c).name()) {
      id = c;
      return true;
    }
  }
  return false;
}

std::span<const CodecId> AllCodecIds() { return kAllCodecIds; }

const Codec& GetCodec(CodecId id) {
  static const NoneCodec none;
  static const RleCodec rle;
  static const ShuffleCodec shuffle;
  static const DeltaCodec delta;
  static const ShuffleRleCodec shuffle_rle;
  switch (id) {
    case CodecId::kNone:
      return none;
    case CodecId::kRle:
      return rle;
    case CodecId::kShuffle:
      return shuffle;
    case CodecId::kDelta:
      return delta;
    case CodecId::kShuffleRle:
      return shuffle_rle;
  }
  PANDA_CHECK_MSG(false, "invalid codec id %u",
                  static_cast<unsigned>(id));
  return none;  // unreachable
}

std::int64_t EncodedSize(CodecId id, std::span<const std::byte> raw,
                         std::int64_t elem_size) {
  std::vector<std::byte> tmp;
  GetCodec(id).Encode(raw, elem_size, tmp);
  return static_cast<std::int64_t>(tmp.size());
}

}  // namespace panda
