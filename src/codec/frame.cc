#include "codec/frame.h"

#include <cstring>

#include "util/codec.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {

void AppendFrameHeader(std::vector<std::byte>& out, const FrameHeader& h) {
  const size_t base = out.size();
  Encoder enc(out);
  enc.Put<std::uint32_t>(kFrameMagic);
  enc.Put<std::uint8_t>(static_cast<std::uint8_t>(h.codec));
  enc.Put<std::uint8_t>(0);   // flags
  enc.Put<std::uint16_t>(0);  // reserved
  enc.Put<std::uint64_t>(static_cast<std::uint64_t>(h.raw_bytes));
  enc.Put<std::uint64_t>(static_cast<std::uint64_t>(h.enc_bytes));
  enc.Put<std::uint32_t>(Crc32c({out.data() + base, 24}));
  PANDA_CHECK(static_cast<std::int64_t>(out.size() - base) ==
              kFrameHeaderBytes);
}

std::optional<FrameHeader> ParseFrameHeader(std::span<const std::byte> bytes) {
  if (static_cast<std::int64_t>(bytes.size()) < kFrameHeaderBytes) {
    return std::nullopt;
  }
  Decoder dec(bytes.first(static_cast<size_t>(kFrameHeaderBytes)));
  if (dec.Get<std::uint32_t>() != kFrameMagic) return std::nullopt;
  const std::uint8_t codec = dec.Get<std::uint8_t>();
  (void)dec.Get<std::uint8_t>();   // flags
  (void)dec.Get<std::uint16_t>();  // reserved
  const auto raw = static_cast<std::int64_t>(dec.Get<std::uint64_t>());
  const auto enc_bytes = static_cast<std::int64_t>(dec.Get<std::uint64_t>());
  const std::uint32_t stored_crc = dec.Get<std::uint32_t>();
  if (stored_crc != Crc32c(bytes.first(24))) return std::nullopt;
  if (!IsValidCodecId(codec)) return std::nullopt;
  if (raw < 0 || enc_bytes < 0) return std::nullopt;
  FrameHeader h;
  h.codec = static_cast<CodecId>(codec);
  h.raw_bytes = raw;
  h.enc_bytes = enc_bytes;
  return h;
}

// ---- wire frames -----------------------------------------------------

std::vector<std::byte> EncodeWireFrame(CodecId requested,
                                       std::span<const std::byte> raw,
                                       std::int64_t elem_size, CodecId* used) {
  std::vector<std::byte> out;
  if (requested != CodecId::kNone) {
    std::vector<std::byte> enc;
    GetCodec(requested).Encode(raw, elem_size, enc);
    if (enc.size() < raw.size()) {
      out.reserve(static_cast<size_t>(kFrameHeaderBytes) + enc.size());
      AppendFrameHeader(out,
                        {requested, static_cast<std::int64_t>(raw.size()),
                         static_cast<std::int64_t>(enc.size())});
      out.insert(out.end(), enc.begin(), enc.end());
      if (used != nullptr) *used = requested;
      return out;
    }
  }
  // Stored: incompressible (or codec none requested explicitly through
  // this path); decode cost is paid only where encoding won.
  out.reserve(static_cast<size_t>(kFrameHeaderBytes) + raw.size());
  AppendFrameHeader(out, {CodecId::kNone,
                          static_cast<std::int64_t>(raw.size()),
                          static_cast<std::int64_t>(raw.size())});
  out.insert(out.end(), raw.begin(), raw.end());
  if (used != nullptr) *used = CodecId::kNone;
  return out;
}

std::vector<std::byte> DecodeWireFrame(std::span<const std::byte> framed,
                                       std::int64_t expected_raw,
                                       std::int64_t elem_size, CodecId* used) {
  const std::optional<FrameHeader> h = ParseFrameHeader(framed);
  PANDA_REQUIRE(h.has_value(),
                "piece payload is not a valid codec frame (%zu bytes)",
                framed.size());
  PANDA_REQUIRE(h->raw_bytes == expected_raw,
                "frame raw size %lld does not match the plan's %lld",
                static_cast<long long>(h->raw_bytes),
                static_cast<long long>(expected_raw));
  PANDA_REQUIRE(static_cast<std::int64_t>(framed.size()) ==
                    kFrameHeaderBytes + h->enc_bytes,
                "frame length %zu does not match its header (%lld encoded)",
                framed.size(), static_cast<long long>(h->enc_bytes));
  std::vector<std::byte> raw(static_cast<size_t>(h->raw_bytes));
  GetCodec(h->codec).Decode(
      framed.subspan(static_cast<size_t>(kFrameHeaderBytes)), elem_size,
      raw);
  if (used != nullptr) *used = h->codec;
  return raw;
}

// ---- disk sub-chunk frames -------------------------------------------

SubchunkFrame EncodeSubchunkFrame(CodecId requested,
                                  std::span<const std::byte> raw,
                                  std::int64_t elem_size) {
  SubchunkFrame frame;
  if (requested == CodecId::kNone) return frame;  // stored-raw
  std::vector<std::byte> enc;
  GetCodec(requested).Encode(raw, elem_size, enc);
  // The frame must fit the sub-chunk's plan slot; anything else is
  // stored raw, byte-identical to a codec=none write.
  if (static_cast<std::int64_t>(enc.size()) + kFrameHeaderBytes >
      static_cast<std::int64_t>(raw.size())) {
    return frame;
  }
  frame.codec = requested;
  frame.bytes.reserve(static_cast<size_t>(kFrameHeaderBytes) + enc.size());
  AppendFrameHeader(frame.bytes,
                    {requested, static_cast<std::int64_t>(raw.size()),
                     static_cast<std::int64_t>(enc.size())});
  frame.bytes.insert(frame.bytes.end(), enc.begin(), enc.end());
  return frame;
}

std::vector<std::byte> DecodeSubchunkFrame(std::span<const std::byte> slot,
                                           CodecId codec,
                                           std::int64_t raw_bytes,
                                           std::int64_t elem_size) {
  if (codec == CodecId::kNone) {
    PANDA_REQUIRE(static_cast<std::int64_t>(slot.size()) == raw_bytes,
                  "stored-raw sub-chunk is %zu bytes, expected %lld",
                  slot.size(), static_cast<long long>(raw_bytes));
    return std::vector<std::byte>(slot.begin(), slot.end());
  }
  const std::optional<FrameHeader> h = ParseFrameHeader(slot);
  PANDA_REQUIRE(h.has_value(), "sub-chunk slot is not a valid codec frame");
  PANDA_REQUIRE(h->codec == codec,
                "frame codec %s does not match the directory's %s",
                CodecName(h->codec), CodecName(codec));
  PANDA_REQUIRE(h->raw_bytes == raw_bytes,
                "frame raw size %lld does not match the plan's %lld",
                static_cast<long long>(h->raw_bytes),
                static_cast<long long>(raw_bytes));
  PANDA_REQUIRE(static_cast<std::int64_t>(slot.size()) ==
                    kFrameHeaderBytes + h->enc_bytes,
                "frame slot is %zu bytes, header says %lld", slot.size(),
                static_cast<long long>(kFrameHeaderBytes + h->enc_bytes));
  std::vector<std::byte> raw(static_cast<size_t>(raw_bytes));
  GetCodec(codec).Decode(
      slot.subspan(static_cast<size_t>(kFrameHeaderBytes)), elem_size, raw);
  return raw;
}

std::vector<std::byte> ProbeDecodeSubchunk(std::span<const std::byte> slot,
                                           std::int64_t raw_bytes,
                                           std::int64_t elem_size,
                                           CodecId* used) {
  const std::optional<FrameHeader> h = ParseFrameHeader(slot);
  if (h.has_value() && h->raw_bytes == raw_bytes &&
      kFrameHeaderBytes + h->enc_bytes <=
          static_cast<std::int64_t>(slot.size())) {
    std::vector<std::byte> raw(static_cast<size_t>(raw_bytes));
    GetCodec(h->codec).Decode(
        slot.subspan(static_cast<size_t>(kFrameHeaderBytes),
                     static_cast<size_t>(h->enc_bytes)),
        elem_size, raw);
    if (used != nullptr) *used = h->codec;
    return raw;
  }
  PANDA_REQUIRE(static_cast<std::int64_t>(slot.size()) >= raw_bytes,
                "sub-chunk slot holds %zu bytes: neither a valid frame nor "
                "%lld raw bytes",
                slot.size(), static_cast<long long>(raw_bytes));
  if (used != nullptr) *used = CodecId::kNone;
  return std::vector<std::byte>(slot.begin(),
                                slot.begin() + static_cast<std::ptrdiff_t>(
                                                   raw_bytes));
}

// ---- frame directory -------------------------------------------------

std::string FrameDirFileName(const std::string& data_file) {
  return data_file + ".fdx";
}

namespace {

void AppendFrameDirRecord(std::vector<std::byte>& buf,
                          const FrameDirRecord& rec) {
  const size_t start = buf.size();
  Encoder enc(buf);
  enc.Put<std::int64_t>(rec.file_offset);
  enc.Put<std::int64_t>(rec.raw_bytes);
  enc.Put<std::int64_t>(rec.frame_bytes);
  enc.Put<std::uint32_t>(static_cast<std::uint32_t>(rec.codec));
  enc.Put<std::uint32_t>(Crc32c({buf.data() + start, 28}));
  PANDA_CHECK(static_cast<std::int64_t>(buf.size() - start) ==
              kFrameDirRecordBytes);
}

}  // namespace

void WriteFrameDirRecord(File& dir, std::int64_t record_index,
                         const FrameDirRecord& rec) {
  WriteFrameDirRecords(dir, record_index, {&rec, 1});
}

void WriteFrameDirRecords(File& dir, std::int64_t first_index,
                          std::span<const FrameDirRecord> recs) {
  if (recs.empty()) return;
  std::vector<std::byte> buf;
  buf.reserve(recs.size() * static_cast<size_t>(kFrameDirRecordBytes));
  for (const FrameDirRecord& rec : recs) AppendFrameDirRecord(buf, rec);
  dir.WriteAt(first_index * kFrameDirRecordBytes, buf,
              static_cast<std::int64_t>(buf.size()));
}

std::optional<FrameDirRecord> ReadFrameDirRecord(File& dir,
                                                 std::int64_t record_index) {
  const std::int64_t offset = record_index * kFrameDirRecordBytes;
  if (offset + kFrameDirRecordBytes > dir.Size()) return std::nullopt;
  std::vector<std::byte> buf(static_cast<size_t>(kFrameDirRecordBytes));
  dir.ReadAt(offset, buf, kFrameDirRecordBytes);
  Decoder dec(buf);
  FrameDirRecord rec;
  rec.file_offset = dec.Get<std::int64_t>();
  rec.raw_bytes = dec.Get<std::int64_t>();
  rec.frame_bytes = dec.Get<std::int64_t>();
  const std::uint32_t codec = dec.Get<std::uint32_t>();
  const std::uint32_t stored_crc = dec.Get<std::uint32_t>();
  if (stored_crc != Crc32c({buf.data(), 28})) return std::nullopt;
  if (codec > 0xff || !IsValidCodecId(static_cast<std::uint8_t>(codec))) {
    return std::nullopt;
  }
  rec.codec = static_cast<CodecId>(codec);
  if (rec.raw_bytes < 0 || rec.frame_bytes < 0 || rec.file_offset < 0) {
    return std::nullopt;
  }
  return rec;
}

}  // namespace panda
