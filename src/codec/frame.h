// Self-describing codec frames and per-file frame directories.
//
// A frame is `[header | encoded bytes]` where the 28-byte header names
// the codec and both lengths and carries its own CRC32C:
//
//   [ u32 magic | u8 codec | u8 flags | u16 reserved |
//     u64 raw_bytes | u64 enc_bytes | u32 header_crc(first 24) ]
//
// Wire piece payloads always carry the header when a collective
// negotiates a codec. On disk, frames are written at the sub-chunk's
// *plan* offset (so timestep append, checkpoint overwrite, adopted-chunk
// offsets and idempotent retries keep working) and must fit the
// sub-chunk's slot; when the encoding does not save at least a header's
// worth, the sub-chunk is stored raw with no header at all — exactly
// the bytes codec=none would write.
//
// Readers locate encoded sub-chunks through the frame directory
// (`F.fdx`): fixed 32-byte CRC-framed records, one per work-list
// ordinal, mirroring the checksum sidecar's indexing. Like the journal,
// a torn or corrupt directory record is tolerated: readers fall back to
// probing the slot's self-describing header (a stored-raw slot has no
// header; the magic + header CRC make a false positive negligible).
//
// Integrity layering: CRC32C sidecars and journal data CRCs stay
// computed over the *uncompressed* bytes, so the one-re-read heal and
// all offline verifiers work unchanged on encoded files.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "iosim/file_system.h"

namespace panda {

inline constexpr std::uint32_t kFrameMagic = 0x31465250;  // "PRF1"
inline constexpr std::int64_t kFrameHeaderBytes = 28;

struct FrameHeader {
  CodecId codec = CodecId::kNone;
  std::int64_t raw_bytes = 0;
  std::int64_t enc_bytes = 0;
};

// Appends the 28-byte header to `out`.
void AppendFrameHeader(std::vector<std::byte>& out, const FrameHeader& h);

// Parses a header from the first 28 bytes of `bytes`. Returns nullopt
// on short input, bad magic, bad header CRC, invalid codec id or
// nonsensical lengths — callers treat that as "not a frame".
std::optional<FrameHeader> ParseFrameHeader(std::span<const std::byte> bytes);

// ---- wire frames -----------------------------------------------------

// Encodes `raw` for the wire under `requested`. The header is always
// present; when the encoding does not shrink, the payload is stored
// (header.codec == kNone) so decode cost is paid only where it won.
// `used` (optional) reports the representation chosen.
std::vector<std::byte> EncodeWireFrame(CodecId requested,
                                       std::span<const std::byte> raw,
                                       std::int64_t elem_size,
                                       CodecId* used = nullptr);

// Decodes a wire frame back to raw bytes. Throws PandaError on a
// malformed frame or when the header's raw length differs from
// `expected_raw` (plans diverged or bytes corrupted in flight).
std::vector<std::byte> DecodeWireFrame(std::span<const std::byte> framed,
                                       std::int64_t expected_raw,
                                       std::int64_t elem_size,
                                       CodecId* used = nullptr);

// ---- disk sub-chunk frames -------------------------------------------

// The representation of one sub-chunk slot on disk.
struct SubchunkFrame {
  // The framed bytes to write at the sub-chunk's plan offset, or empty
  // when the sub-chunk is stored raw (write the raw bytes unchanged).
  std::vector<std::byte> bytes;
  // kNone means stored-raw (no header on disk).
  CodecId codec = CodecId::kNone;

  std::int64_t frame_bytes(std::int64_t raw_bytes) const {
    return codec == CodecId::kNone ? raw_bytes
                                   : static_cast<std::int64_t>(bytes.size());
  }
};

// Encodes a sub-chunk for disk: frames under `requested` when
// header + encoding fits the raw-size slot, stored-raw otherwise.
SubchunkFrame EncodeSubchunkFrame(CodecId requested,
                                  std::span<const std::byte> raw,
                                  std::int64_t elem_size);

// Decodes a slot whose representation is known (from a frame directory
// record): `slot` holds exactly frame_bytes. Throws PandaError on any
// mismatch or malformed encoding.
std::vector<std::byte> DecodeSubchunkFrame(std::span<const std::byte> slot,
                                           CodecId codec,
                                           std::int64_t raw_bytes,
                                           std::int64_t elem_size);

// Decodes a slot of *unknown* representation (torn or missing frame
// directory record): probes the self-describing header; a slot that is
// not a valid frame must be stored-raw of exactly `raw_bytes`. Throws
// PandaError when it is neither. `used` reports what was found.
std::vector<std::byte> ProbeDecodeSubchunk(std::span<const std::byte> slot,
                                           std::int64_t raw_bytes,
                                           std::int64_t elem_size,
                                           CodecId* used = nullptr);

// ---- frame directory (`F.fdx`) ---------------------------------------

// Sidecar naming, mirroring integrity's `F.crc` and the journal's
// `F.wal`.
std::string FrameDirFileName(const std::string& data_file);

inline constexpr std::int64_t kFrameDirRecordBytes = 32;

// One directory record: where a sub-chunk's frame lives and how it is
// represented. record layout:
//   [ i64 file_offset | i64 raw_bytes | i64 frame_bytes |
//     u32 codec | u32 record_crc(first 28) ]
struct FrameDirRecord {
  std::int64_t file_offset = 0;  // absolute offset of the slot
  std::int64_t raw_bytes = 0;    // decoded (plan) size of the sub-chunk
  std::int64_t frame_bytes = 0;  // bytes actually stored at the offset
  CodecId codec = CodecId::kNone;  // kNone = stored raw (no header)
};

// Writes the fixed-size record at `record_index`.
void WriteFrameDirRecord(File& dir, std::int64_t record_index,
                         const FrameDirRecord& rec);

// Batched append: `recs` occupy the contiguous index run starting at
// `first_index` and go to disk as ONE positioned write. Servers buffer
// a collective's records and flush once per run, so the directory
// costs a single per-request disk overhead per collective instead of
// one per sub-chunk (which would eat the codec's disk savings on
// overhead-dominated devices). Crash safety is unchanged: a collective
// that dies before the flush leaves frames without records, and
// readers heal those by probing the slots' self-describing headers.
void WriteFrameDirRecords(File& dir, std::int64_t first_index,
                          std::span<const FrameDirRecord> recs);

// Reads the record at `record_index`; nullopt when the directory is too
// short (torn tail) or the record fails its CRC — the caller falls back
// to probing the slot's self-describing header.
std::optional<FrameDirRecord> ReadFrameDirRecord(File& dir,
                                                 std::int64_t record_index);

}  // namespace panda
