// Axis-aligned hyper-rectangles of array elements.
//
// All Panda data movement is expressed as Region algebra: a client's
// memory chunk, a disk chunk, a sub-chunk, and the "pieces" exchanged
// between clients and servers are all Regions in the global index space
// of one array.
#pragma once

#include <string>

#include "mdarray/index.h"

namespace panda {

// A (possibly empty) rectangular region: lower corner `lo` and per-dim
// `extent`. Extents are never negative; any zero extent means empty.
class Region {
 public:
  Region() = default;
  Region(Index lo, Shape extent);

  // The whole box [0, shape).
  static Region Whole(const Shape& shape) {
    return Region(Index::Zeros(shape.rank()), shape);
  }

  int rank() const { return lo_.rank(); }
  const Index& lo() const { return lo_; }
  const Shape& extent() const { return extent_; }

  // Exclusive upper corner.
  Index hi() const;

  std::int64_t Volume() const { return empty_ ? 0 : extent_.Volume(); }
  bool empty() const { return empty_; }

  bool Contains(const Index& idx) const;
  bool Contains(const Region& other) const;

  bool operator==(const Region& o) const;
  bool operator!=(const Region& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  Index lo_;
  Shape extent_;
  bool empty_ = true;
};

// Intersection of two regions of equal rank (may be empty).
Region Intersect(const Region& a, const Region& b);

// True when `inner` occupies a contiguous run of elements in the row-major
// linearization of `outer`. Requires outer.Contains(inner). This is what
// lets natural chunking move sub-chunks with plain memcpy and zero
// reorganization cost.
bool IsContiguousWithin(const Region& outer, const Region& inner);

// Row-major linear offset (in elements) of `idx` within region `box`.
std::int64_t LinearOffsetWithin(const Region& box, const Index& idx);

}  // namespace panda
