#include "mdarray/index.h"

namespace panda {

std::string Index::ToString() const {
  std::string out = "(";
  for (int d = 0; d < rank_; ++d) {
    if (d > 0) out += ", ";
    out += std::to_string(v_[d]);
  }
  out += ")";
  return out;
}

bool NextIndexRowMajor(const Shape& shape, Index& idx) {
  PANDA_CHECK(shape.rank() == idx.rank());
  for (int d = idx.rank() - 1; d >= 0; --d) {
    if (++idx[d] < shape[d]) return true;
    idx[d] = 0;
  }
  return false;
}

}  // namespace panda
