// Fixed-capacity multidimensional index / shape type.
//
// Panda supports arrays of rank 1..kMaxRank. Index is a small value type
// (no heap allocation) so the geometry code in hot paths stays cheap.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "util/error.h"

namespace panda {

inline constexpr int kMaxRank = 8;

// An Index is an ordered tuple of up to kMaxRank int64 coordinates.
// It doubles as a Shape (extents) and as mesh coordinates.
class Index {
 public:
  Index() : rank_(0), v_{} {}

  Index(std::initializer_list<std::int64_t> values) : rank_(0), v_{} {
    PANDA_CHECK(values.size() <= kMaxRank);
    for (auto value : values) v_[rank_++] = value;
  }

  explicit Index(std::span<const std::int64_t> values) : rank_(0), v_{} {
    PANDA_CHECK(values.size() <= kMaxRank);
    for (auto value : values) v_[rank_++] = value;
  }

  // An index of `rank` dimensions, every coordinate = `fill`.
  static Index Filled(int rank, std::int64_t fill) {
    PANDA_CHECK(rank >= 0 && rank <= kMaxRank);
    Index idx;
    idx.rank_ = rank;
    for (int d = 0; d < rank; ++d) idx.v_[d] = fill;
    return idx;
  }

  static Index Zeros(int rank) { return Filled(rank, 0); }

  int rank() const { return rank_; }

  std::int64_t operator[](int d) const {
    PANDA_CHECK(d >= 0 && d < rank_);
    return v_[d];
  }
  std::int64_t& operator[](int d) {
    PANDA_CHECK(d >= 0 && d < rank_);
    return v_[d];
  }

  bool operator==(const Index& o) const {
    if (rank_ != o.rank_) return false;
    for (int d = 0; d < rank_; ++d)
      if (v_[d] != o.v_[d]) return false;
    return true;
  }
  bool operator!=(const Index& o) const { return !(*this == o); }

  // Product of all coordinates; the element count when used as a shape.
  std::int64_t Volume() const {
    std::int64_t v = 1;
    for (int d = 0; d < rank_; ++d) v *= v_[d];
    return v;
  }

  // Appends a trailing dimension (rank grows by one).
  void Append(std::int64_t value) {
    PANDA_CHECK(rank_ < kMaxRank);
    v_[rank_++] = value;
  }

  // "(a, b, c)" rendering for diagnostics.
  std::string ToString() const;

  std::span<const std::int64_t> values() const { return {v_.data(), static_cast<size_t>(rank_)}; }

 private:
  int rank_;
  std::array<std::int64_t, kMaxRank> v_;
};

using Shape = Index;

// Row-major increment of `idx` within box extents `shape`; returns false
// when iteration wraps past the end.
bool NextIndexRowMajor(const Shape& shape, Index& idx);

}  // namespace panda
