#include "mdarray/distribution.h"

#include <algorithm>

#include "util/error.h"
#include "util/math.h"

namespace panda {

const char* DistName(Dist dist) {
  switch (dist) {
    case Dist::kBlock:
      return "BLOCK";
    case Dist::kNone:
      return "*";
    case Dist::kCyclic:
      return "CYCLIC";
  }
  return "?";
}

Interval BlockInterval(std::int64_t n, std::int64_t part, std::int64_t parts) {
  PANDA_CHECK(parts >= 1 && part >= 0 && part < parts);
  const std::int64_t b = CeilDiv(n, parts);
  const std::int64_t lo = std::min(part * b, n);
  const std::int64_t hi = std::min((part + 1) * b, n);
  return {lo, hi - lo};
}

std::vector<Interval> OwnedIntervals(const DimDist& dist, std::int64_t n,
                                     std::int64_t part, std::int64_t parts) {
  PANDA_CHECK(parts >= 1 && part >= 0 && part < parts);
  switch (dist.kind) {
    case Dist::kNone:
      PANDA_CHECK_MSG(parts == 1, "NONE dimension cannot be partitioned");
      return {{0, n}};
    case Dist::kBlock: {
      const Interval iv = BlockInterval(n, part, parts);
      if (iv.extent == 0) return {};
      return {iv};
    }
    case Dist::kCyclic: {
      const std::int64_t b = dist.block >= 1 ? dist.block : 1;
      std::vector<Interval> out;
      for (std::int64_t lo = part * b; lo < n; lo += parts * b) {
        out.push_back({lo, std::min(b, n - lo)});
      }
      return out;
    }
  }
  PANDA_CHECK(false);
  return {};
}

}  // namespace panda
