#include "mdarray/strided_copy.h"

#include <cstring>

namespace panda {
namespace {

// Row-major strides (in elements) of a box.
void ComputeStrides(const Region& box, std::int64_t strides[kMaxRank]) {
  const int r = box.rank();
  std::int64_t s = 1;
  for (int d = r - 1; d >= 0; --d) {
    strides[d] = s;
    s *= box.extent()[d];
  }
}

}  // namespace

void CopyRegion(std::span<std::byte> dst, const Region& dst_box,
                std::span<const std::byte> src, const Region& src_box,
                const Region& region, std::size_t elem_size) {
  PANDA_CHECK(dst_box.Contains(region));
  PANDA_CHECK(src_box.Contains(region));
  PANDA_CHECK(dst.size() ==
              static_cast<size_t>(dst_box.Volume()) * elem_size);
  PANDA_CHECK(src.size() ==
              static_cast<size_t>(src_box.Volume()) * elem_size);
  if (region.empty()) return;

  const int r = region.rank();
  std::int64_t dst_strides[kMaxRank];
  std::int64_t src_strides[kMaxRank];
  ComputeStrides(dst_box, dst_strides);
  ComputeStrides(src_box, src_strides);

  // The innermost dimension of `region` is a contiguous run in both
  // buffers (row-major), so each run is one memcpy.
  const std::int64_t run_elems = region.extent()[r - 1];
  const std::size_t run_bytes = static_cast<std::size_t>(run_elems) * elem_size;

  // Iterate the outer r-1 dimensions of the region.
  Shape outer_shape = Index::Zeros(r - 1 > 0 ? r - 1 : 0);
  for (int d = 0; d + 1 < r; ++d) outer_shape[d] = region.extent()[d];

  Index outer = Index::Zeros(outer_shape.rank());
  do {
    std::int64_t dst_off = 0;
    std::int64_t src_off = 0;
    for (int d = 0; d + 1 < r; ++d) {
      const std::int64_t coord = region.lo()[d] + outer[d];
      dst_off += (coord - dst_box.lo()[d]) * dst_strides[d];
      src_off += (coord - src_box.lo()[d]) * src_strides[d];
    }
    const std::int64_t inner = region.lo()[r - 1];
    dst_off += (inner - dst_box.lo()[r - 1]) * dst_strides[r - 1];
    src_off += (inner - src_box.lo()[r - 1]) * src_strides[r - 1];

    std::memcpy(dst.data() + static_cast<std::size_t>(dst_off) * elem_size,
                src.data() + static_cast<std::size_t>(src_off) * elem_size,
                run_bytes);
  } while (outer_shape.rank() > 0 && NextIndexRowMajor(outer_shape, outer));
}

void PackRegion(std::span<std::byte> dst, std::span<const std::byte> src,
                const Region& src_box, const Region& region,
                std::size_t elem_size) {
  CopyRegion(dst, region, src, src_box, region, elem_size);
}

void UnpackRegion(std::span<std::byte> dst, const Region& dst_box,
                  std::span<const std::byte> src, const Region& region,
                  std::size_t elem_size) {
  CopyRegion(dst, dst_box, src, region, region, elem_size);
}

}  // namespace panda
