// Strided (rectangular) copies between row-major buffers.
//
// These kernels are the heart of Panda's gather/scatter: a client packs a
// requested piece out of its memory chunk, and a server scatters received
// pieces into a sub-chunk buffer (and vice versa on reads). Each buffer
// is the row-major linearization of some bounding Region; the copy moves
// the elements of a target Region that both boxes contain, one innermost-
// dimension run (memcpy) at a time.
#pragma once

#include <cstddef>
#include <span>

#include "mdarray/region.h"

namespace panda {

// Copies the elements of `region` from `src` (row-major over `src_box`)
// into `dst` (row-major over `dst_box`). `region` must be contained in
// both boxes. `elem_size` is the element size in bytes. Buffer spans must
// cover their boxes exactly (box.Volume() * elem_size bytes).
void CopyRegion(std::span<std::byte> dst, const Region& dst_box,
                std::span<const std::byte> src, const Region& src_box,
                const Region& region, std::size_t elem_size);

// Packs `region` out of `src` (row-major over `src_box`) into the dense
// row-major buffer `dst` of exactly region.Volume()*elem_size bytes.
void PackRegion(std::span<std::byte> dst, std::span<const std::byte> src,
                const Region& src_box, const Region& region,
                std::size_t elem_size);

// Unpacks a dense row-major `src` buffer holding `region` into `dst`
// (row-major over `dst_box`).
void UnpackRegion(std::span<std::byte> dst, const Region& dst_box,
                  std::span<const std::byte> src, const Region& region,
                  std::size_t elem_size);

}  // namespace panda
