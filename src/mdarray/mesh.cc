#include "mdarray/mesh.h"

namespace panda {

Mesh::Mesh(Shape dims) : dims_(dims) {
  PANDA_CHECK_MSG(dims.rank() >= 1, "mesh needs at least one dimension");
  for (int d = 0; d < dims.rank(); ++d) {
    PANDA_CHECK_MSG(dims[d] >= 1, "mesh dim %d must be positive", d);
  }
}

Index Mesh::Coords(int pos) const {
  PANDA_CHECK(pos >= 0 && pos < size());
  Index coords = Index::Zeros(rank());
  std::int64_t rem = pos;
  for (int d = rank() - 1; d >= 0; --d) {
    coords[d] = rem % dims_[d];
    rem /= dims_[d];
  }
  return coords;
}

int Mesh::PositionOf(const Index& coords) const {
  PANDA_CHECK(coords.rank() == rank());
  std::int64_t pos = 0;
  for (int d = 0; d < rank(); ++d) {
    PANDA_CHECK(coords[d] >= 0 && coords[d] < dims_[d]);
    pos = pos * dims_[d] + coords[d];
  }
  return static_cast<int>(pos);
}

}  // namespace panda
