#include "mdarray/schema.h"

#include <algorithm>

#include "util/error.h"

namespace panda {

Schema::Schema(Shape array_shape, Mesh mesh, std::vector<DimDist> dists)
    : array_shape_(array_shape), mesh_(mesh), dists_(std::move(dists)) {
  PANDA_REQUIRE(array_shape_.rank() >= 1, "array rank must be >= 1");
  PANDA_REQUIRE(static_cast<int>(dists_.size()) == array_shape_.rank(),
                "schema has %zu distributions for a rank-%d array",
                dists_.size(), array_shape_.rank());
  for (int d = 0; d < array_shape_.rank(); ++d) {
    PANDA_REQUIRE(array_shape_[d] >= 1, "array dim %d must be positive", d);
  }
  int distributed = 0;
  for (const auto& dd : dists_) {
    if (dd.distributed()) ++distributed;
  }
  PANDA_REQUIRE(distributed == mesh_.rank(),
                "%d distributed dims but mesh rank %d", distributed,
                mesh_.rank());
  BuildChunks();
}

bool Schema::has_cyclic() const {
  return std::any_of(dists_.begin(), dists_.end(), [](const DimDist& d) {
    return d.kind == Dist::kCyclic;
  });
}

namespace {

// Per-array-dim (part, parts) for a mesh position: distributed dims
// consume mesh dims in array-dim order.
struct DimPart {
  std::int64_t part;
  std::int64_t parts;
};

std::vector<DimPart> DimPartsFor(const Mesh& mesh,
                                 const std::vector<DimDist>& dists, int pos) {
  const Index coords = mesh.Coords(pos);
  std::vector<DimPart> out(dists.size());
  int m = 0;
  for (size_t d = 0; d < dists.size(); ++d) {
    if (dists[d].distributed()) {
      out[d] = {coords[m], mesh.dims()[m]};
      ++m;
    } else {
      out[d] = {0, 1};
    }
  }
  return out;
}

}  // namespace

Region Schema::CellRegion(int pos) const {
  PANDA_CHECK_MSG(!has_cyclic(),
                  "CellRegion is only defined for BLOCK/* schemas");
  const auto parts = DimPartsFor(mesh_, dists_, pos);
  const int r = rank();
  Index lo = Index::Zeros(r);
  Shape extent = Index::Zeros(r);
  for (int d = 0; d < r; ++d) {
    const auto ivs = OwnedIntervals(dists_[d], array_shape_[d], parts[d].part,
                                    parts[d].parts);
    if (ivs.empty()) {
      return Region(Index::Zeros(r), Index::Zeros(r));  // empty cell
    }
    lo[d] = ivs[0].lo;
    extent[d] = ivs[0].extent;
  }
  return Region(lo, extent);
}

void Schema::BuildChunks() {
  chunks_.clear();
  const int r = rank();
  for (int pos = 0; pos < mesh_.size(); ++pos) {
    const auto parts = DimPartsFor(mesh_, dists_, pos);
    // Interval choices per dimension.
    std::vector<std::vector<Interval>> choices(r);
    bool empty_cell = false;
    for (int d = 0; d < r; ++d) {
      choices[d] = OwnedIntervals(dists_[d], array_shape_[d], parts[d].part,
                                  parts[d].parts);
      if (choices[d].empty()) empty_cell = true;
    }
    if (empty_cell) continue;
    // Cross product of choices, row-major over choice indices.
    Shape counts = Index::Zeros(r);
    for (int d = 0; d < r; ++d) counts[d] = static_cast<std::int64_t>(choices[d].size());
    Index pick = Index::Zeros(r);
    do {
      Index lo = Index::Zeros(r);
      Shape extent = Index::Zeros(r);
      for (int d = 0; d < r; ++d) {
        const Interval& iv = choices[d][static_cast<size_t>(pick[d])];
        lo[d] = iv.lo;
        extent[d] = iv.extent;
      }
      Region region(lo, extent);
      if (!region.empty()) {
        // Library-wide sanity bound: a schema with millions of chunks is
        // a bug (or hostile wire data), not a workload.
        PANDA_REQUIRE(chunks_.size() < (1u << 22),
                      "schema produces too many chunks");
        chunks_.push_back({static_cast<int>(chunks_.size()), pos, region});
      }
    } while (NextIndexRowMajor(counts, pick));
  }
}

std::vector<SchemaChunk> Schema::ChunksOf(int pos) const {
  std::vector<SchemaChunk> out;
  for (const auto& c : chunks_) {
    if (c.owner_pos == pos) out.push_back(c);
  }
  return out;
}

bool Schema::operator==(const Schema& o) const {
  return array_shape_ == o.array_shape_ && mesh_ == o.mesh_ &&
         dists_ == o.dists_;
}

std::string Schema::ToString() const {
  std::string out = "Schema{shape=" + array_shape_.ToString() + ", mesh=" +
                    mesh_.dims().ToString() + ", dists=(";
  for (size_t d = 0; d < dists_.size(); ++d) {
    if (d > 0) out += ",";
    out += DistName(dists_[d].kind);
    if (dists_[d].kind == Dist::kCyclic) {
      out += "(" + std::to_string(dists_[d].block) + ")";
    }
  }
  out += ")}";
  return out;
}

void Schema::EncodeTo(Encoder& enc) const {
  enc.Put<std::int32_t>(array_shape_.rank());
  for (int d = 0; d < array_shape_.rank(); ++d) {
    enc.Put<std::int64_t>(array_shape_[d]);
  }
  enc.Put<std::int32_t>(mesh_.rank());
  for (int d = 0; d < mesh_.rank(); ++d) {
    enc.Put<std::int64_t>(mesh_.dims()[d]);
  }
  enc.Put<std::int32_t>(static_cast<std::int32_t>(dists_.size()));
  for (const auto& dd : dists_) {
    enc.Put<std::uint8_t>(static_cast<std::uint8_t>(dd.kind));
    enc.Put<std::int64_t>(dd.block);
  }
}

Schema Schema::Decode(Decoder& dec) {
  // Wire data is untrusted: every field is range-checked with throwing
  // validation here (the constructors assert, they do not parse).
  const auto ar = dec.Get<std::int32_t>();
  PANDA_REQUIRE(ar >= 1 && ar <= kMaxRank, "bad array rank %d in schema", ar);
  Index shape = Index::Zeros(ar);
  std::int64_t volume = 1;
  for (int d = 0; d < ar; ++d) {
    shape[d] = dec.Get<std::int64_t>();
    PANDA_REQUIRE(shape[d] >= 1, "bad array extent in schema");
    PANDA_REQUIRE(!__builtin_mul_overflow(volume, shape[d], &volume) &&
                      volume <= (std::int64_t{1} << 56),
                  "array volume overflows in schema");
  }
  const auto mr = dec.Get<std::int32_t>();
  PANDA_REQUIRE(mr >= 1 && mr <= kMaxRank, "bad mesh rank %d in schema", mr);
  Index mdims = Index::Zeros(mr);
  std::int64_t mesh_size = 1;
  for (int d = 0; d < mr; ++d) {
    mdims[d] = dec.Get<std::int64_t>();
    PANDA_REQUIRE(mdims[d] >= 1, "bad mesh extent in schema");
    PANDA_REQUIRE(!__builtin_mul_overflow(mesh_size, mdims[d], &mesh_size) &&
                      mesh_size <= (std::int64_t{1} << 20),
                  "mesh size overflows in schema");
  }
  const auto nd = dec.Get<std::int32_t>();
  PANDA_REQUIRE(nd == ar, "schema dist count %d != rank %d", nd, ar);
  std::vector<DimDist> dists(static_cast<size_t>(nd));
  for (auto& dd : dists) {
    const auto kind = dec.Get<std::uint8_t>();
    PANDA_REQUIRE(kind <= 2, "bad distribution kind %u", kind);
    dd.kind = static_cast<Dist>(kind);
    dd.block = dec.Get<std::int64_t>();
    PANDA_REQUIRE(dd.kind != Dist::kCyclic ||
                      (dd.block >= 1 && dd.block <= (std::int64_t{1} << 40)),
                  "bad CYCLIC block in schema");
  }
  return Schema(shape, Mesh(mdims), std::move(dists));
}

std::vector<Region> SplitIntoSubchunks(const Region& chunk,
                                       std::int64_t elem_size,
                                       std::int64_t max_bytes) {
  PANDA_CHECK(elem_size >= 1 && max_bytes >= 1);
  std::vector<Region> out;
  if (chunk.empty()) return out;

  // Recursive splitter. `box` is the remaining region; `d` the dimension
  // being split. Tail bytes = bytes of one dim-d row of `box`.
  auto split = [&](auto&& self, const Region& box, int d) -> void {
    const std::int64_t bytes = box.Volume() * elem_size;
    if (bytes <= max_bytes) {
      out.push_back(box);
      return;
    }
    const int r = box.rank();
    std::int64_t tail = elem_size;
    for (int k = d + 1; k < r; ++k) tail *= box.extent()[k];

    if (tail <= max_bytes) {
      // Take runs of whole dim-d rows.
      const std::int64_t rows_per = std::max<std::int64_t>(1, max_bytes / tail);
      for (std::int64_t row = 0; row < box.extent()[d]; row += rows_per) {
        Index lo = box.lo();
        Shape extent = box.extent();
        lo[d] = box.lo()[d] + row;
        extent[d] = std::min(rows_per, box.extent()[d] - row);
        out.push_back(Region(lo, extent));
      }
    } else {
      // Even one row is too big: recurse into each row separately.
      // When d is the innermost dimension a "row" is a single element;
      // emit element runs of max_bytes/elem_size elements instead.
      if (d == r - 1) {
        const std::int64_t per = std::max<std::int64_t>(1, max_bytes / elem_size);
        for (std::int64_t e = 0; e < box.extent()[d]; e += per) {
          Index lo = box.lo();
          Shape extent = box.extent();
          lo[d] = box.lo()[d] + e;
          extent[d] = std::min(per, box.extent()[d] - e);
          out.push_back(Region(lo, extent));
        }
        return;
      }
      for (std::int64_t row = 0; row < box.extent()[d]; ++row) {
        Index lo = box.lo();
        Shape extent = box.extent();
        lo[d] = box.lo()[d] + row;
        extent[d] = 1;
        self(self, Region(lo, extent), d + 1);
      }
    }
  };
  split(split, chunk, 0);
  return out;
}

}  // namespace panda
