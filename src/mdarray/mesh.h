// Logical processor meshes.
//
// An HPF-style layout maps the distributed dimensions of an array onto a
// rectangular mesh of processors (Figure 2's `ArrayLayout`). Mesh handles
// the rank <-> coordinate arithmetic (row-major, matching HPF processor
// ordering).
#pragma once

#include "mdarray/index.h"

namespace panda {

class Mesh {
 public:
  Mesh() = default;

  // `dims` are the mesh extents, e.g. {4, 2, 2} for a 4x2x2 mesh.
  explicit Mesh(Shape dims);

  int rank() const { return dims_.rank(); }
  const Shape& dims() const { return dims_; }

  // Number of mesh positions (processors).
  int size() const { return static_cast<int>(dims_.Volume()); }

  // Row-major coordinates of linear position `pos` in [0, size()).
  Index Coords(int pos) const;

  // Inverse of Coords.
  int PositionOf(const Index& coords) const;

  bool operator==(const Mesh& o) const { return dims_ == o.dims_; }
  bool operator!=(const Mesh& o) const { return !(*this == o); }

 private:
  Shape dims_;
};

}  // namespace panda
