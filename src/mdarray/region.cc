#include "mdarray/region.h"

namespace panda {

Region::Region(Index lo, Shape extent) : lo_(lo), extent_(extent) {
  PANDA_CHECK(lo.rank() == extent.rank());
  empty_ = false;
  for (int d = 0; d < extent.rank(); ++d) {
    PANDA_CHECK_MSG(extent[d] >= 0, "negative extent in dim %d", d);
    if (extent[d] == 0) empty_ = true;
  }
}

Index Region::hi() const {
  Index h = lo_;
  for (int d = 0; d < rank(); ++d) h[d] += extent_[d];
  return h;
}

bool Region::Contains(const Index& idx) const {
  if (empty_ || idx.rank() != rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    if (idx[d] < lo_[d] || idx[d] >= lo_[d] + extent_[d]) return false;
  }
  return true;
}

bool Region::Contains(const Region& other) const {
  if (other.empty()) return true;
  if (empty_ || other.rank() != rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    if (other.lo_[d] < lo_[d] ||
        other.lo_[d] + other.extent_[d] > lo_[d] + extent_[d]) {
      return false;
    }
  }
  return true;
}

bool Region::operator==(const Region& o) const {
  if (empty_ && o.empty_) return rank() == o.rank();
  return empty_ == o.empty_ && lo_ == o.lo_ && extent_ == o.extent_;
}

std::string Region::ToString() const {
  if (empty_) return "[empty rank=" + std::to_string(rank()) + "]";
  return "[" + lo_.ToString() + " + " + extent_.ToString() + "]";
}

Region Intersect(const Region& a, const Region& b) {
  PANDA_CHECK(a.rank() == b.rank());
  const int r = a.rank();
  if (a.empty() || b.empty()) return Region(Index::Zeros(r), Index::Zeros(r));
  Index lo = Index::Zeros(r);
  Shape extent = Index::Zeros(r);
  for (int d = 0; d < r; ++d) {
    const std::int64_t lo_d = std::max(a.lo()[d], b.lo()[d]);
    const std::int64_t hi_d =
        std::min(a.lo()[d] + a.extent()[d], b.lo()[d] + b.extent()[d]);
    lo[d] = lo_d;
    extent[d] = hi_d > lo_d ? hi_d - lo_d : 0;
  }
  return Region(lo, extent);
}

bool IsContiguousWithin(const Region& outer, const Region& inner) {
  PANDA_CHECK(outer.Contains(inner));
  if (inner.empty()) return true;
  const int r = outer.rank();
  // Find the first dimension (scanning from the innermost) where `inner`
  // does not span the full extent of `outer`. Every dimension further out
  // must then have extent 1 for the run to be contiguous.
  int first_partial = -1;
  for (int d = r - 1; d >= 0; --d) {
    const bool full = inner.lo()[d] == outer.lo()[d] &&
                      inner.extent()[d] == outer.extent()[d];
    if (!full) {
      first_partial = d;
      break;
    }
  }
  if (first_partial < 0) return true;  // inner == outer
  for (int d = 0; d < first_partial; ++d) {
    if (inner.extent()[d] != 1) return false;
  }
  return true;
}

std::int64_t LinearOffsetWithin(const Region& box, const Index& idx) {
  PANDA_CHECK(box.Contains(idx));
  std::int64_t offset = 0;
  for (int d = 0; d < box.rank(); ++d) {
    offset = offset * box.extent()[d] + (idx[d] - box.lo()[d]);
  }
  return offset;
}

}  // namespace panda
