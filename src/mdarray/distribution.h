// HPF-style per-dimension distributions.
//
// The paper supports BLOCK and * ("NONE") distributions; we additionally
// implement BLOCK-CYCLIC as the extension foreseen by the Panda authors.
// A distribution describes how one array dimension is partitioned across
// one mesh dimension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdarray/index.h"

namespace panda {

enum class Dist : std::uint8_t {
  kBlock = 0,  // HPF BLOCK: contiguous pieces of size ceil(N/P)
  kNone = 1,   // HPF *: dimension not distributed
  kCyclic = 2, // HPF CYCLIC(b): round-robin blocks of size `block`
};

const char* DistName(Dist dist);

// A per-dimension distribution spec. `block` is only meaningful for
// kCyclic (CYCLIC(block)); the default block of 1 is plain CYCLIC.
struct DimDist {
  Dist kind = Dist::kNone;
  std::int64_t block = 1;

  static DimDist Block() { return {Dist::kBlock, 0}; }
  static DimDist None() { return {Dist::kNone, 0}; }
  static DimDist Cyclic(std::int64_t block = 1) { return {Dist::kCyclic, block}; }

  bool distributed() const { return kind != Dist::kNone; }

  bool operator==(const DimDist& o) const {
    return kind == o.kind && (kind != Dist::kCyclic || block == o.block);
  }
  bool operator!=(const DimDist& o) const { return !(*this == o); }
};

// One-dimensional interval [lo, lo+extent).
struct Interval {
  std::int64_t lo = 0;
  std::int64_t extent = 0;
  bool operator==(const Interval& o) const {
    return lo == o.lo && extent == o.extent;
  }
};

// The list of intervals of dimension extent `n` owned by mesh position
// `part` out of `parts`, under distribution `dist`. BLOCK and NONE yield
// zero or one interval; CYCLIC yields one interval per owned block.
std::vector<Interval> OwnedIntervals(const DimDist& dist, std::int64_t n,
                                     std::int64_t part, std::int64_t parts);

// HPF BLOCK partition: part p of [0, n) over `parts` parts with block
// size ceil(n/parts). Trailing parts may be short or empty.
Interval BlockInterval(std::int64_t n, std::int64_t part, std::int64_t parts);

}  // namespace panda
