// Array schemas: how one array is decomposed over a mesh.
//
// A Schema binds an array shape to a processor mesh through per-dimension
// HPF distributions (BLOCK, *, or the CYCLIC extension). Panda uses two
// schemas per array: the memory schema (over the compute-node mesh) and
// the disk schema (over a logical i/o mesh). "Natural chunking" means the
// two are identical [Seamons94b].
//
// The schema's cells are its *chunks*: the rectangular regions that Panda
// moves and stores as units. With BLOCK/* each mesh position owns exactly
// one (possibly empty) chunk; with CYCLIC a position owns several.
#pragma once

#include <vector>

#include "mdarray/distribution.h"
#include "mdarray/mesh.h"
#include "mdarray/region.h"
#include "util/codec.h"

namespace panda {

// One chunk of a schema: a rectangular region owned by a mesh position.
// `id` is the canonical global chunk number (dense, 0-based); empty cells
// are skipped, so ids enumerate non-empty chunks only.
struct SchemaChunk {
  int id = 0;
  int owner_pos = 0;  // linear mesh position that owns the chunk
  Region region;
};

class Schema {
 public:
  Schema() = default;

  // `dists` has one entry per array dimension; the number of distributed
  // (non-*) entries must equal mesh.rank(). Throws PandaError on
  // malformed input.
  Schema(Shape array_shape, Mesh mesh, std::vector<DimDist> dists);

  const Shape& array_shape() const { return array_shape_; }
  const Mesh& mesh() const { return mesh_; }
  const std::vector<DimDist>& dists() const { return dists_; }
  int rank() const { return array_shape_.rank(); }

  bool has_cyclic() const;

  // For BLOCK/* schemas: the unique region owned by mesh position `pos`
  // (may be empty). Aborts on CYCLIC schemas (use chunks()).
  Region CellRegion(int pos) const;

  // All non-empty chunks in canonical order: mesh positions ascending,
  // then (for CYCLIC) the per-dimension block choices in row-major order.
  const std::vector<SchemaChunk>& chunks() const { return chunks_; }

  // The chunks owned by mesh position `pos`, in canonical order.
  std::vector<SchemaChunk> ChunksOf(int pos) const;

  bool operator==(const Schema& o) const;
  bool operator!=(const Schema& o) const { return !(*this == o); }

  std::string ToString() const;

  void EncodeTo(Encoder& enc) const;
  static Schema Decode(Decoder& dec);

 private:
  void BuildChunks();

  Shape array_shape_;
  Mesh mesh_;
  std::vector<DimDist> dists_;
  std::vector<SchemaChunk> chunks_;
};

// Splits `chunk` into rectangular sub-chunks of at most `max_bytes` each
// (elements of `elem_size` bytes). The sub-chunks partition the chunk and
// are returned in row-major order; each is a *contiguous* byte range of
// the chunk's row-major linearization, so a chunk file is exactly the
// concatenation of its sub-chunks. Panda uses max_bytes = 1 MB (the
// paper's experimentally chosen value) to bound server buffer space.
std::vector<Region> SplitIntoSubchunks(const Region& chunk,
                                       std::int64_t elem_size,
                                       std::int64_t max_bytes);

}  // namespace panda
