#include "store/shard_layout.h"

#include "util/error.h"

namespace panda {
namespace store {

ShardLayout ShardLayout::Pack(std::span<const ShardSlot> slots,
                              std::int64_t shard_bytes) {
  PANDA_REQUIRE(shard_bytes > 0, "shard_bytes must be positive");
  ShardLayout layout;
  layout.slots_.assign(slots.begin(), slots.end());
  layout.shard_of_record_.resize(slots.size());
  std::int64_t expected = 0;
  ShardSpec cur;
  for (size_t i = 0; i < slots.size(); ++i) {
    const ShardSlot& slot = slots[i];
    PANDA_REQUIRE(slot.offset == expected && slot.bytes > 0,
                  "shard slots must be contiguous ascending from 0");
    expected += slot.bytes;
    if (cur.num_records > 0 && cur.data_bytes + slot.bytes > shard_bytes) {
      layout.shards_.push_back(cur);
      cur = ShardSpec{static_cast<std::int64_t>(i), 0, slot.offset, 0};
    }
    cur.num_records += 1;
    cur.data_bytes += slot.bytes;
    layout.shard_of_record_[i] =
        static_cast<std::int64_t>(layout.shards_.size());
  }
  if (cur.num_records > 0) layout.shards_.push_back(cur);
  layout.segment_bytes_ = expected;
  return layout;
}

std::string ShardFileName(const std::string& data_file,
                          std::int64_t shard_id) {
  return data_file + ".shard." + std::to_string(shard_id);
}

}  // namespace store
}  // namespace panda
