// On-disk shard format: data region + indexed table + EOF footer.
//
// A shard file generalizes the `.fdx` frame directory into a
// self-describing index carried *inside* the shard:
//
//   [ data region: sub-chunk slots at their segment-relative offsets ]
//   [ table: one 48-byte record per slot, in record order            ]
//   [ zero padding (only after an in-place table rewrite)            ]
//   [ 32-byte footer at EOF: magic "PSH1", record count, data size   ]
//
// Any reader locates the footer at Size()-32, validates its CRC, then
// reads the table at footer.data_bytes — no writer plan needed (the
// scda-style serial-equivalence property). Each table record carries
// its own CRC, so torn tables degrade per-entry: an invalid record
// falls back to the slot's self-describing frame header, and a
// missing/corrupt footer drops the whole table to the probe path —
// the same three-level tolerance `.fdx` readers already have.
//
// Records are 48 bytes:
//   [i32 array_index | i32 chunk_id | i32 sub_index | u32 codec |
//    i64 slot_offset | i64 raw_bytes | i64 frame_bytes |
//    u32 reserved | u32 crc over the first 44]
// and the footer is 32:
//   [u32 magic | u32 version | i64 num_records | i64 data_bytes |
//    u32 reserved | u32 crc over the first 28]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codec/codec.h"
#include "iosim/file_system.h"

namespace panda {
namespace store {

inline constexpr std::uint32_t kShardMagic = 0x31485350;  // "PSH1"
inline constexpr std::uint32_t kShardVersion = 1;
inline constexpr std::int64_t kShardTableEntryBytes = 48;
inline constexpr std::int64_t kShardFooterBytes = 32;

struct ShardTableEntry {
  std::int32_t array_index = -1;
  std::int32_t chunk_id = -1;
  std::int32_t sub_index = -1;
  CodecId codec = CodecId::kNone;
  std::int64_t slot_offset = 0;  // within this shard's data region
  std::int64_t raw_bytes = 0;
  std::int64_t frame_bytes = 0;
  // Decode-side only (never serialized): false for a record whose CRC
  // or framing failed — the reader probes that slot instead.
  bool valid = false;
};

struct ShardFooter {
  std::int64_t num_records = 0;
  std::int64_t data_bytes = 0;
};

// The byte size of a shard whose table starts at `data_bytes`.
inline std::int64_t ShardFileBytes(std::int64_t data_bytes,
                                   std::int64_t num_records) {
  return data_bytes + num_records * kShardTableEntryBytes + kShardFooterBytes;
}

void AppendShardTableEntry(std::vector<std::byte>& out,
                           const ShardTableEntry& entry);
// Returns an entry with valid=false (never throws) when the record's
// CRC or codec id does not check out.
ShardTableEntry DecodeShardTableEntry(std::span<const std::byte> bytes);

void AppendShardFooter(std::vector<std::byte>& out, const ShardFooter& footer);
std::optional<ShardFooter> DecodeShardFooter(std::span<const std::byte> bytes);

// The full tail to write at offset `data_bytes`: table records, zero
// padding, footer — sized so the file ends at
// max(ShardFileBytes(...), min_file_bytes). The padding matters when a
// table is rewritten in place over a longer previous tail (failover
// adoption extends a shard): the footer must land at the new EOF and
// every stale byte of the old tail must be overwritten.
std::vector<std::byte> BuildShardTail(std::span<const ShardTableEntry> entries,
                                      std::int64_t data_bytes,
                                      std::int64_t min_file_bytes);

// Reads and validates the table of an open shard file. nullopt when the
// footer is missing or torn (reader falls back to probing slots);
// individual entries may still come back valid=false.
std::optional<std::vector<ShardTableEntry>> ReadShardTable(File& shard);

// Same, from a whole-shard byte image (the object-store GET path).
std::optional<std::vector<ShardTableEntry>> ParseShardTable(
    std::span<const std::byte> image);

}  // namespace store
}  // namespace panda
