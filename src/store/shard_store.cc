#include "store/shard_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "codec/frame.h"
#include "trace/trace.h"
#include "util/error.h"

namespace panda {
namespace store {

ShardWriter::ShardWriter(FileSystem* fs, std::string data_file,
                         const ShardLayout* layout, StoreOptions options,
                         OpenMode mode, RetryPolicy retry, VirtualClock* clock,
                         RobustnessStats* stats)
    : fs_(fs),
      data_file_(std::move(data_file)),
      layout_(layout),
      options_(options),
      mode_(mode),
      retry_(retry),
      clock_(clock),
      stats_(stats),
      pool_(fs, options.handle_pool_capacity) {
  PANDA_REQUIRE(mode_ != OpenMode::kRead, "ShardWriter needs write access");
}

ShardWriter::ShardState& ShardWriter::Touch(std::int64_t seg,
                                            std::int64_t local) {
  const std::int64_t gid = seg * layout_->shards_per_segment() + local;
  ShardState& shard = shards_[gid];
  if (shard.opened) return shard;
  shard.seg = seg;
  shard.local = local;
  shard.opened = true;
  const std::string name = ShardFileName(data_file_, gid);
  const bool merge = mode_ == OpenMode::kReadWrite && fs_->Exists(name);
  retry_.Run(clock_, stats_, [&] {
    File* file = pool_.Acquire(name, mode_);
    shard.prior_bytes = file->Size();
    if (!merge || options_.timing) return;
    if (options_.backend == StoreBackend::kObjectStore) {
      // No partial overwrite: pull the whole object so unwritten slots
      // and the merged table survive the eventual whole-object PUT.
      shard.image.resize(static_cast<size_t>(shard.prior_bytes));
      file->ReadAt(0, shard.image, shard.prior_bytes);
    }
  });
  if (merge && !options_.timing) {
    // Seed the table from what is already in the shard, so this pass
    // (a failover adoption or timestep append over kReadWrite) only
    // overrides the records it actually rewrites.
    std::optional<std::vector<ShardTableEntry>> old;
    if (options_.backend == StoreBackend::kObjectStore) {
      old = ParseShardTable(shard.image);
    } else {
      retry_.Run(clock_, stats_, [&] {
        old = ReadShardTable(*pool_.Acquire(name, OpenMode::kReadWrite));
      });
    }
    if (old.has_value()) {
      for (size_t i = 0; i < old->size(); ++i) {
        if ((*old)[i].valid) {
          shard.entries.emplace(static_cast<std::int64_t>(i), (*old)[i]);
        }
      }
    }
  }
  return shard;
}

void ShardWriter::Put(std::int64_t seg, std::int64_t record,
                      std::int32_t array_index, std::int32_t chunk_id,
                      std::int32_t sub_index, CodecId codec,
                      std::span<const std::byte> stored,
                      std::int64_t stored_vbytes) {
  PANDA_CHECK(!finished_);
  const std::int64_t local = layout_->ShardOfRecord(record);
  const ShardSpec& spec = layout_->shard(local);
  const ShardSlot& slot = layout_->slot(record);
  const std::int64_t slot_offset = slot.offset - spec.base_offset;
  PANDA_REQUIRE(stored_vbytes <= slot.bytes,
                "stored sub-chunk (%lld bytes) exceeds its slot (%lld)",
                static_cast<long long>(stored_vbytes),
                static_cast<long long>(slot.bytes));
  ShardState& shard = Touch(seg, local);

  ShardTableEntry entry;
  entry.array_index = array_index;
  entry.chunk_id = chunk_id;
  entry.sub_index = sub_index;
  entry.codec = codec;
  entry.slot_offset = slot_offset;
  entry.raw_bytes = slot.bytes;
  entry.frame_bytes = stored_vbytes;
  entry.valid = true;
  shard.entries[record - spec.first_record] = entry;

  if (options_.backend == StoreBackend::kObjectStore) {
    // Buffer now, PUT whole objects at Finish. Timing runs track only
    // the virtual footprint (spec sizes), so nothing to do here.
    if (!options_.timing && !stored.empty()) {
      const auto end = static_cast<size_t>(slot_offset + slot.bytes);
      if (shard.image.size() < end) shard.image.resize(end);
      std::memcpy(shard.image.data() + slot_offset, stored.data(),
                  stored.size());
    }
    return;
  }
  const std::string name =
      ShardFileName(data_file_, seg * layout_->shards_per_segment() + local);
  retry_.Run(clock_, stats_, [&] {
    pool_.Acquire(name, OpenMode::kReadWrite)
        ->WriteAt(slot_offset, stored, stored_vbytes);
  });
}

void ShardWriter::Flush(ShardState& shard) {
  const std::int64_t gid =
      shard.seg * layout_->shards_per_segment() + shard.local;
  const ShardSpec& spec = layout_->shard(shard.local);
  const std::string name = ShardFileName(data_file_, gid);
  PANDA_SPAN(flush_span, trace::SpanKind::kStoreFlush, spec.data_bytes);

  // Ordered table covering every record of the shard; records this pass
  // never wrote and no merged table vouched for are emitted invalid
  // (zeroed), so readers probe those slots instead of trusting them.
  std::vector<ShardTableEntry> entries(static_cast<size_t>(spec.num_records));
  for (const auto& [index, entry] : shard.entries) {
    if (index >= 0 && index < spec.num_records) {
      entries[static_cast<size_t>(index)] = entry;
    }
  }
  // The tail must reach at least the pre-existing EOF: a shorter
  // rewrite would leave the old footer dangling at the real EOF and
  // resurrect the stale table.
  const std::vector<std::byte> tail =
      BuildShardTail(entries, spec.data_bytes, shard.prior_bytes);
  const auto tail_bytes = static_cast<std::int64_t>(tail.size());

  if (options_.backend == StoreBackend::kObjectStore) {
    const std::int64_t total = spec.data_bytes + tail_bytes;
    if (!options_.timing) {
      shard.image.resize(static_cast<size_t>(spec.data_bytes));
      shard.image.insert(shard.image.end(), tail.begin(), tail.end());
    }
    retry_.Run(clock_, stats_, [&] {
      // One whole-object PUT per shard. The backend issues it to a
      // parallel channel; durability waits for the Sync in Finish.
      pool_.Acquire(name, mode_)->WriteAt(0, shard.image, total);
    });
    shard.image.clear();
    shard.image.shrink_to_fit();
    return;
  }
  retry_.Run(clock_, stats_, [&] {
    File* file = pool_.Acquire(name, OpenMode::kReadWrite);
    file->WriteAt(spec.data_bytes,
                  options_.timing ? std::span<const std::byte>{} : tail,
                  tail_bytes);
    file->Sync();
  });
}

void ShardWriter::Finish() {
  PANDA_CHECK(!finished_);
  finished_ = true;
  for (auto& [gid, shard] : shards_) Flush(shard);
  if (options_.backend == StoreBackend::kObjectStore && !shards_.empty()) {
    // One barrier for all the PUTs issued above (drains the backend's
    // parallel channels) instead of a serializing per-object wait.
    const std::int64_t gid = shards_.begin()->first;
    retry_.Run(clock_, stats_, [&] {
      pool_.Acquire(ShardFileName(data_file_, gid), OpenMode::kReadWrite)
          ->Sync();
    });
  }
}

ShardReader::ShardReader(FileSystem* fs, std::string data_file,
                         const ShardLayout* layout, StoreOptions options,
                         RetryPolicy retry, VirtualClock* clock,
                         RobustnessStats* stats)
    : fs_(fs),
      data_file_(std::move(data_file)),
      layout_(layout),
      options_(options),
      retry_(retry),
      clock_(clock),
      stats_(stats),
      pool_(fs, options.handle_pool_capacity) {}

ShardReader::ShardState& ShardReader::Load(std::int64_t seg,
                                           std::int64_t local) {
  const std::int64_t gid = seg * layout_->shards_per_segment() + local;
  ShardState& shard = shards_[gid];
  const std::string name = ShardFileName(data_file_, gid);
  if (options_.timing) {
    if (options_.backend == StoreBackend::kObjectStore && !shard.charged) {
      // Whole-object GET, charged once per shard; records served from
      // the fetched image afterwards.
      retry_.Run(clock_, stats_, [&] {
        File* file = pool_.Acquire(name, OpenMode::kRead);
        file->ReadAt(0, {}, file->Size());
      });
      shard.charged = true;
    }
    return shard;
  }
  if (options_.backend == StoreBackend::kObjectStore) {
    if (!shard.image_loaded) {
      retry_.Run(clock_, stats_, [&] {
        File* file = pool_.Acquire(name, OpenMode::kRead);
        const std::int64_t size = file->Size();
        shard.image.resize(static_cast<size_t>(size));
        file->ReadAt(0, shard.image, size);
      });
      shard.image_loaded = true;
      shard.table = ParseShardTable(shard.image);
      shard.table_loaded = true;
      image_lru_.push_front(gid);
      while (static_cast<int>(image_lru_.size()) >
             std::max(1, options_.object_cache_shards)) {
        ShardState& victim = shards_[image_lru_.back()];
        victim.image.clear();
        victim.image.shrink_to_fit();
        victim.image_loaded = false;  // table survives the image eviction
        image_lru_.pop_back();
      }
    } else if (image_lru_.front() != gid) {
      image_lru_.remove(gid);
      image_lru_.push_front(gid);
    }
    return shard;
  }
  if (!shard.table_loaded) {
    retry_.Run(clock_, stats_, [&] {
      shard.table = ReadShardTable(*pool_.Acquire(name, OpenMode::kRead));
    });
    shard.table_loaded = true;
  }
  return shard;
}

ShardRead ShardReader::Get(std::int64_t seg, std::int64_t record,
                           std::int64_t elem_size) {
  const std::int64_t local = layout_->ShardOfRecord(record);
  const ShardSpec& spec = layout_->shard(local);
  const ShardSlot& slot = layout_->slot(record);
  const std::int64_t slot_offset = slot.offset - spec.base_offset;
  const std::string name =
      ShardFileName(data_file_, seg * layout_->shards_per_segment() + local);
  ShardState& shard = Load(seg, local);

  ShardRead out;
  if (options_.timing) {
    if (options_.backend != StoreBackend::kObjectStore) {
      retry_.Run(clock_, stats_, [&] {
        pool_.Acquire(name, OpenMode::kRead)
            ->ReadAt(slot_offset, {}, slot.bytes);
      });
    }
    return out;
  }
  PANDA_SPAN(get_span, trace::SpanKind::kStoreGet, slot.bytes);

  // The slot window, from the cached image or a positioned read.
  const auto read_window = [&](std::int64_t n) {
    std::vector<std::byte> buf(static_cast<size_t>(n));
    if (options_.backend == StoreBackend::kObjectStore) {
      PANDA_REQUIRE(static_cast<std::int64_t>(shard.image.size()) >=
                        slot_offset + n,
                    "shard %s is truncated at %zu bytes (slot needs %lld)",
                    name.c_str(), shard.image.size(),
                    static_cast<long long>(slot_offset + n));
      std::memcpy(buf.data(), shard.image.data() + slot_offset,
                  static_cast<size_t>(n));
      return buf;
    }
    retry_.Run(clock_, stats_, [&] {
      pool_.Acquire(name, OpenMode::kRead)->ReadAt(slot_offset, buf, n);
    });
    return buf;
  };

  const std::int64_t index = record - spec.first_record;
  const ShardTableEntry* entry = nullptr;
  if (shard.table.has_value() && index >= 0 &&
      index < static_cast<std::int64_t>(shard.table->size())) {
    const ShardTableEntry& e = (*shard.table)[static_cast<size_t>(index)];
    // Trust the record only when it agrees with the layout about where
    // and how big the slot is.
    if (e.valid && e.slot_offset == slot_offset &&
        e.raw_bytes == slot.bytes && e.frame_bytes <= slot.bytes) {
      entry = &e;
    }
  }
  if (entry != nullptr) {
    try {
      out.raw = DecodeSubchunkFrame(read_window(entry->frame_bytes),
                                    entry->codec, slot.bytes, elem_size);
      out.codec = entry->codec;
      return out;
    } catch (const PandaError&) {
      if (stats_ != nullptr) stats_->frame_decode_failures.fetch_add(1);
    }
  }
  // Level 2: the slot's self-describing frame header (or stored-raw).
  CodecId used = CodecId::kNone;
  out.raw = ProbeDecodeSubchunk(read_window(slot.bytes), slot.bytes,
                                elem_size, &used);
  out.codec = used;
  out.healed = true;
  if (stats_ != nullptr) stats_->frame_rereads.fetch_add(1);
  return out;
}

}  // namespace store
}  // namespace panda
