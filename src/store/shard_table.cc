#include "store/shard_table.h"

#include "util/codec.h"
#include "util/crc32c.h"
#include "util/error.h"

namespace panda {
namespace store {

void AppendShardTableEntry(std::vector<std::byte>& out,
                           const ShardTableEntry& entry) {
  const size_t start = out.size();
  Encoder enc(out);
  enc.Put<std::int32_t>(entry.array_index);
  enc.Put<std::int32_t>(entry.chunk_id);
  enc.Put<std::int32_t>(entry.sub_index);
  enc.Put<std::uint32_t>(static_cast<std::uint32_t>(entry.codec));
  enc.Put<std::int64_t>(entry.slot_offset);
  enc.Put<std::int64_t>(entry.raw_bytes);
  enc.Put<std::int64_t>(entry.frame_bytes);
  enc.Put<std::uint32_t>(0);  // reserved
  enc.Put<std::uint32_t>(Crc32c(out.data() + start, 44));
  PANDA_CHECK(out.size() - start ==
              static_cast<size_t>(kShardTableEntryBytes));
}

ShardTableEntry DecodeShardTableEntry(std::span<const std::byte> bytes) {
  ShardTableEntry entry;
  if (bytes.size() < static_cast<size_t>(kShardTableEntryBytes)) return entry;
  Decoder dec(bytes.first(static_cast<size_t>(kShardTableEntryBytes)));
  entry.array_index = dec.Get<std::int32_t>();
  entry.chunk_id = dec.Get<std::int32_t>();
  entry.sub_index = dec.Get<std::int32_t>();
  const std::uint32_t codec = dec.Get<std::uint32_t>();
  entry.slot_offset = dec.Get<std::int64_t>();
  entry.raw_bytes = dec.Get<std::int64_t>();
  entry.frame_bytes = dec.Get<std::int64_t>();
  dec.Get<std::uint32_t>();  // reserved
  const std::uint32_t stored_crc = dec.Get<std::uint32_t>();
  if (stored_crc != Crc32c(bytes.data(), 44)) return entry;
  if (codec > 0xff || !IsValidCodecId(static_cast<std::uint8_t>(codec))) {
    return entry;
  }
  if (entry.slot_offset < 0 || entry.raw_bytes < 0 || entry.frame_bytes < 0 ||
      entry.frame_bytes > entry.raw_bytes) {
    return entry;
  }
  entry.codec = static_cast<CodecId>(codec);
  entry.valid = true;
  return entry;
}

void AppendShardFooter(std::vector<std::byte>& out,
                       const ShardFooter& footer) {
  const size_t start = out.size();
  Encoder enc(out);
  enc.Put<std::uint32_t>(kShardMagic);
  enc.Put<std::uint32_t>(kShardVersion);
  enc.Put<std::int64_t>(footer.num_records);
  enc.Put<std::int64_t>(footer.data_bytes);
  enc.Put<std::uint32_t>(0);  // reserved
  enc.Put<std::uint32_t>(Crc32c(out.data() + start, 28));
  PANDA_CHECK(out.size() - start == static_cast<size_t>(kShardFooterBytes));
}

std::optional<ShardFooter> DecodeShardFooter(std::span<const std::byte> bytes) {
  if (bytes.size() < static_cast<size_t>(kShardFooterBytes)) {
    return std::nullopt;
  }
  Decoder dec(bytes.first(static_cast<size_t>(kShardFooterBytes)));
  const std::uint32_t magic = dec.Get<std::uint32_t>();
  const std::uint32_t version = dec.Get<std::uint32_t>();
  ShardFooter footer;
  footer.num_records = dec.Get<std::int64_t>();
  footer.data_bytes = dec.Get<std::int64_t>();
  dec.Get<std::uint32_t>();  // reserved
  const std::uint32_t stored_crc = dec.Get<std::uint32_t>();
  if (stored_crc != Crc32c(bytes.data(), 28)) return std::nullopt;
  if (magic != kShardMagic || version != kShardVersion) return std::nullopt;
  if (footer.num_records < 0 || footer.data_bytes < 0) return std::nullopt;
  return footer;
}

std::vector<std::byte> BuildShardTail(std::span<const ShardTableEntry> entries,
                                      std::int64_t data_bytes,
                                      std::int64_t min_file_bytes) {
  const std::int64_t natural =
      ShardFileBytes(data_bytes, static_cast<std::int64_t>(entries.size()));
  const std::int64_t end = std::max(natural, min_file_bytes);
  std::vector<std::byte> tail;
  tail.reserve(static_cast<size_t>(end - data_bytes));
  for (const ShardTableEntry& entry : entries) {
    AppendShardTableEntry(tail, entry);
  }
  tail.resize(static_cast<size_t>(end - data_bytes - kShardFooterBytes),
              std::byte{0});
  AppendShardFooter(tail, ShardFooter{
                              static_cast<std::int64_t>(entries.size()),
                              data_bytes,
                          });
  return tail;
}

namespace {

std::optional<std::vector<ShardTableEntry>> DecodeTable(
    const ShardFooter& footer, std::span<const std::byte> records,
    std::int64_t file_bytes) {
  if (footer.data_bytes + footer.num_records * kShardTableEntryBytes +
          kShardFooterBytes >
      file_bytes) {
    return std::nullopt;  // footer claims a table the file cannot hold
  }
  std::vector<ShardTableEntry> entries;
  entries.reserve(static_cast<size_t>(footer.num_records));
  for (std::int64_t i = 0; i < footer.num_records; ++i) {
    entries.push_back(DecodeShardTableEntry(
        records.subspan(static_cast<size_t>(i * kShardTableEntryBytes))));
  }
  return entries;
}

}  // namespace

std::optional<std::vector<ShardTableEntry>> ReadShardTable(File& shard) {
  const std::int64_t size = shard.Size();
  if (size < kShardFooterBytes) return std::nullopt;
  std::vector<std::byte> fbuf(static_cast<size_t>(kShardFooterBytes));
  shard.ReadAt(size - kShardFooterBytes, fbuf, kShardFooterBytes);
  const std::optional<ShardFooter> footer = DecodeShardFooter(fbuf);
  if (!footer.has_value()) return std::nullopt;
  const std::int64_t table_bytes =
      footer->num_records * kShardTableEntryBytes;
  if (footer->data_bytes + table_bytes + kShardFooterBytes > size) {
    return std::nullopt;
  }
  std::vector<std::byte> rbuf(static_cast<size_t>(table_bytes));
  if (table_bytes > 0) shard.ReadAt(footer->data_bytes, rbuf, table_bytes);
  return DecodeTable(*footer, rbuf, size);
}

std::optional<std::vector<ShardTableEntry>> ParseShardTable(
    std::span<const std::byte> image) {
  const auto size = static_cast<std::int64_t>(image.size());
  if (size < kShardFooterBytes) return std::nullopt;
  const std::optional<ShardFooter> footer = DecodeShardFooter(
      image.subspan(static_cast<size_t>(size - kShardFooterBytes)));
  if (!footer.has_value()) return std::nullopt;
  if (footer->data_bytes > size) return std::nullopt;
  return DecodeTable(*footer,
                     image.subspan(static_cast<size_t>(footer->data_bytes)),
                     size);
}

}  // namespace store
}  // namespace panda
