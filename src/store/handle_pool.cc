#include "store/handle_pool.h"

#include "util/error.h"

namespace panda {
namespace store {

FileHandlePool::FileHandlePool(FileSystem* fs, int capacity)
    : fs_(fs), capacity_(capacity) {
  PANDA_REQUIRE(capacity_ >= 1, "handle pool capacity must be >= 1");
}

File* FileHandlePool::Acquire(const std::string& path, OpenMode mode) {
  const auto it = index_.find(path);
  if (it != index_.end()) {
    Entry& entry = *it->second;
    // A kRead handle cannot serve writes; kWrite must re-truncate.
    const bool compatible =
        mode != OpenMode::kWrite &&
        (entry.mode != OpenMode::kRead || mode == OpenMode::kRead);
    if (compatible) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return entry.file.get();
    }
    lru_.erase(it->second);
    index_.erase(it);
  }
  ++misses_;
  while (static_cast<int>(lru_.size()) >= capacity_) {
    index_.erase(lru_.back().path);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{path, mode, fs_->Open(path, mode)});
  index_[path] = lru_.begin();
  return lru_.front().file.get();
}

void FileHandlePool::Invalidate(const std::string& path) {
  const auto it = index_.find(path);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void FileHandlePool::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace store
}  // namespace panda
