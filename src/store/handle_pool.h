// Bounded LRU pool of open file handles.
//
// A sharded layout multiplies files: a timestep stream over s shards
// per segment holds timesteps x s shard files per (array, server). The
// pool keeps at most `capacity` handles open and evicts least-recently
// used, so server file-descriptor usage stays O(capacity) at any shard
// count (the acquire-zarr `FileHandlePool` shape). Eviction is safe
// mid-write: positional WriteAt needs no stream state, and durability
// is a property of the file, not the handle — Sync through a reopened
// handle flushes everything earlier handles wrote.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "iosim/file_system.h"

namespace panda {
namespace store {

class FileHandlePool {
 public:
  FileHandlePool(FileSystem* fs, int capacity);

  // Returns a live handle for `path`, opening (and possibly evicting)
  // as needed. The handle stays valid until the next Acquire / Clear /
  // Invalidate. kWrite always reopens (truncation is the point of
  // kWrite; a cached handle would silently skip it); a cached kRead
  // handle is upgraded by reopening when write access is requested.
  File* Acquire(const std::string& path, OpenMode mode);

  // Drops the cached handle for `path` (before Remove/Rename).
  void Invalidate(const std::string& path);
  void Clear();

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return evictions_; }
  std::int64_t open_handles() const {
    return static_cast<std::int64_t>(lru_.size());
  }

 private:
  struct Entry {
    std::string path;
    OpenMode mode = OpenMode::kRead;
    std::unique_ptr<File> file;
  };

  FileSystem* fs_;
  int capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace store
}  // namespace panda
