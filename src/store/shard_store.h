// ShardStore: write/read one server segment through shard files.
//
// ShardWriter and ShardReader are the per-collective engines behind a
// sharded (array, server) segment. Both derive every placement from a
// ShardLayout (a pure function of the i/o plan), move bytes through a
// bounded FileHandlePool, and run every FileSystem touch under the
// server's RetryPolicy so transient disk faults heal exactly as they do
// on the flat path.
//
// Backends change the flush shape, not the format:
//   kPosix        sub-chunks are written in place as they arrive
//                 (positioned WriteAt), the table tail is flushed once
//                 per touched shard at Finish.
//   kObjectStore  shards buffer in memory and flush as one whole-object
//                 PUT (data + table + footer) — object stores have no
//                 partial overwrite. Reads GET whole shards and slice
//                 from a small in-memory cache.
//
// Timing-only machines are supported end to end: payloads stay elided
// (empty spans, virtual byte counts drive the clock), tables are
// written as virtual bytes and never re-read.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "iosim/file_system.h"
#include "iosim/retry.h"
#include "msg/virtual_clock.h"
#include "store/handle_pool.h"
#include "store/shard_layout.h"
#include "store/shard_table.h"

namespace panda {
namespace store {

enum class StoreBackend : std::uint8_t {
  kPosix = 0,        // in-place positioned writes (disk file systems)
  kObjectStore = 1,  // whole-object PUT/GET, no partial overwrite
};

struct StoreOptions {
  // Target shard size; 0 disables sharding (callers keep the flat
  // layout and never construct these classes).
  std::int64_t shard_bytes = 0;
  StoreBackend backend = StoreBackend::kPosix;
  int handle_pool_capacity = 16;
  // How many whole-shard images the object-store read path caches.
  int object_cache_shards = 2;
  // Timing-only run: spans are empty, vbytes drive the clock.
  bool timing = false;
};

class ShardWriter {
 public:
  // `data_file` is the flat data-file name shard names derive from
  // (possibly a ".tmp"/".repair" staging name). `mode` follows the flat
  // path's semantics per shard file: kWrite truncates, kReadWrite keeps
  // existing content — and additionally merges the existing shard table
  // at first touch, so a failover adoption pass extends a shard without
  // forgetting the survivor records already in it.
  ShardWriter(FileSystem* fs, std::string data_file, const ShardLayout* layout,
              StoreOptions options, OpenMode mode, RetryPolicy retry,
              VirtualClock* clock, RobustnessStats* stats);

  // Stores one sub-chunk. `record` is the segment-relative record
  // ordinal; `stored` is the on-disk representation (frame or raw;
  // empty in timing mode with `stored_vbytes` carrying the size).
  void Put(std::int64_t seg, std::int64_t record, std::int32_t array_index,
           std::int32_t chunk_id, std::int32_t sub_index, CodecId codec,
           std::span<const std::byte> stored, std::int64_t stored_vbytes);

  // Flushes every touched shard (tables on posix, whole objects on the
  // object store) and makes them durable. Call exactly once.
  void Finish();

  const FileHandlePool& pool() const { return pool_; }

 private:
  struct ShardState {
    std::int64_t seg = 0;
    std::int64_t local = 0;
    bool opened = false;
    std::int64_t prior_bytes = 0;  // file size found at first touch
    // Table entries by in-shard record index; merged-from-disk entries
    // are overwritten by fresh Puts.
    std::map<std::int64_t, ShardTableEntry> entries;
    std::vector<std::byte> image;  // object backend: whole-object buffer
  };

  ShardState& Touch(std::int64_t seg, std::int64_t local);
  void Flush(ShardState& shard);

  FileSystem* fs_;
  std::string data_file_;
  const ShardLayout* layout_;
  StoreOptions options_;
  OpenMode mode_;
  RetryPolicy retry_;
  VirtualClock* clock_;
  RobustnessStats* stats_;
  FileHandlePool pool_;
  std::map<std::int64_t, ShardState> shards_;  // by global shard id
  bool finished_ = false;
};

struct ShardRead {
  std::vector<std::byte> raw;  // decoded payload (empty in timing mode)
  CodecId codec = CodecId::kNone;  // representation found on disk
  // Table record was torn, missing or lying; the slot's self-describing
  // frame header recovered the data (three-level tolerance, level 2).
  bool healed = false;
};

class ShardReader {
 public:
  ShardReader(FileSystem* fs, std::string data_file, const ShardLayout* layout,
              StoreOptions options, RetryPolicy retry, VirtualClock* clock,
              RobustnessStats* stats);

  // Fetches and decodes one sub-chunk. Throws PandaError when the slot
  // is unrecoverable (neither table nor probe yields a frame and the
  // slot is not stored-raw).
  ShardRead Get(std::int64_t seg, std::int64_t record, std::int64_t elem_size);

  const FileHandlePool& pool() const { return pool_; }

 private:
  struct ShardState {
    bool table_loaded = false;
    std::optional<std::vector<ShardTableEntry>> table;
    bool image_loaded = false;
    std::vector<std::byte> image;  // object backend whole-object cache
    bool charged = false;          // timing object GET charged once
  };

  ShardState& Load(std::int64_t seg, std::int64_t local);

  FileSystem* fs_;
  std::string data_file_;
  const ShardLayout* layout_;
  StoreOptions options_;
  RetryPolicy retry_;
  VirtualClock* clock_;
  RobustnessStats* stats_;
  FileHandlePool pool_;
  std::map<std::int64_t, ShardState> shards_;  // by global shard id
  std::list<std::int64_t> image_lru_;          // global ids holding images
};

}  // namespace store
}  // namespace panda
