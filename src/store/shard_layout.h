// Shard layout: how one server's segment of an array maps onto a
// bounded set of shard files.
//
// The flat layout writes every sub-chunk of a (array, server) pair into
// one file at its plan offset. The sharded layout cuts that segment
// into shards of at most `shard_bytes` each (greedy, in plan order, at
// sub-chunk boundaries), Zarr-style: many sub-chunks per shard file,
// each shard self-describing via an indexed table (shard_table.h).
//
// The mapping is a pure function of the plan's slot list — writer,
// reader, fsck and repair all derive the identical layout from the
// same `BuildServerWork` ordering, so no shard map ever needs to be
// stored or exchanged. Timestep streams reuse the per-segment layout:
// segment `seg`'s shard `local` lands in file `seg * shards_per_segment
// + local`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace panda {
namespace store {

// One sub-chunk slot of a segment, in record-ordinal order. Offsets are
// segment-relative, contiguous and ascending (exactly what the i/o plan
// produces).
struct ShardSlot {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
};

// One shard of a segment: records [first_record, first_record +
// num_records) at segment offsets [base_offset, base_offset +
// data_bytes).
struct ShardSpec {
  std::int64_t first_record = 0;
  std::int64_t num_records = 0;
  std::int64_t base_offset = 0;
  std::int64_t data_bytes = 0;
};

class ShardLayout {
 public:
  ShardLayout() = default;

  // Greedy packing: accumulate slots while the shard stays within
  // `shard_bytes`; a slot larger than `shard_bytes` gets a shard of its
  // own (every shard holds at least one slot). Slots must be ascending
  // and contiguous from offset 0.
  static ShardLayout Pack(std::span<const ShardSlot> slots,
                          std::int64_t shard_bytes);

  std::int64_t shards_per_segment() const {
    return static_cast<std::int64_t>(shards_.size());
  }
  std::int64_t records_per_segment() const {
    return static_cast<std::int64_t>(slots_.size());
  }
  std::int64_t segment_bytes() const { return segment_bytes_; }

  const ShardSpec& shard(std::int64_t local) const {
    return shards_[static_cast<size_t>(local)];
  }
  const ShardSlot& slot(std::int64_t record) const {
    return slots_[static_cast<size_t>(record)];
  }
  // The shard (segment-local index) holding `record`.
  std::int64_t ShardOfRecord(std::int64_t record) const {
    return shard_of_record_[static_cast<size_t>(record)];
  }

 private:
  std::vector<ShardSpec> shards_;
  std::vector<ShardSlot> slots_;
  std::vector<std::int64_t> shard_of_record_;
  std::int64_t segment_bytes_ = 0;
};

// "F" + shard 3 -> "F.shard.3". Applies equally to staging names
// ("F.tmp.shard.3", "F.repair.shard.3"), which is what routes staged
// shard writes to the same backend as their final homes.
std::string ShardFileName(const std::string& data_file, std::int64_t shard_id);

}  // namespace store
}  // namespace panda
