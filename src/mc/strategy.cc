#include "mc/strategy.h"

#include <algorithm>

namespace panda::mc {

namespace {
// How many times one delivery pick may defer waiting for its forced
// source before giving up (each deferral is one ~1ms mailbox wake, so
// this bounds a doomed wait to a few wall-clock seconds).
constexpr int kMaxDeliveryWaitRounds = 4000;
}  // namespace

RecordingDecider::RecordingDecider(GateOptions gate, Assignment forced,
                                   std::uint64_t random_seed)
    : gate_(std::move(gate)),
      forced_(std::move(forced)),
      random_(random_seed != 0),
      rng_(random_seed == 0 ? 1 : random_seed) {}

Decision RecordingDecider::Lookup(const ChoiceKey& key, bool* forced) {
  const auto it = forced_.find(key);
  if (it == forced_.end()) {
    *forced = false;
    return 0;
  }
  *forced = true;
  matched_.insert(key);
  return it->second;
}

void RecordingDecider::Record(const TrailEntry& entry) {
  if (!seen_.insert(entry.key).second) {
    ++anomalies_;
    return;
  }
  trail_.push_back(entry);
}

LossAction RecordingDecider::ChooseLoss(const LossChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  TrailEntry entry;
  entry.key = ChoiceKey{ChoiceKind::kLoss, choice.src, choice.dst,
                        choice.link_seq};
  entry.vtime = choice.vtime;
  entry.allowed = choice.allowed;
  entry.tag = choice.tag;
  bool forced = false;
  Decision decision = Lookup(entry.key, &forced);
  if (forced) {
    // Trust the explorer: it only forces actions it saw in `allowed`.
    if ((choice.allowed &
         LossActionBit(static_cast<LossAction>(decision))) == 0) {
      decision = static_cast<int>(LossAction::kDeliver);
    }
  } else if (random_ && faults_fired_ < gate_.max_faults) {
    // Half the draws stay clean so walks make forward progress; the
    // rest pick uniformly among the armed fault classes.
    if (rng_.NextDouble() >= 0.5) {
      std::vector<int> fault_actions;
      for (int action = static_cast<int>(LossAction::kDrop);
           action <= static_cast<int>(LossAction::kDelay); ++action) {
        if ((choice.allowed &
             LossActionBit(static_cast<LossAction>(action))) != 0) {
          fault_actions.push_back(action);
        }
      }
      if (!fault_actions.empty()) {
        decision = fault_actions[static_cast<size_t>(
            rng_.NextBelow(static_cast<std::uint64_t>(fault_actions.size())))];
      }
    }
  }
  if (decision != static_cast<int>(LossAction::kDeliver)) ++faults_fired_;
  entry.decision = decision;
  Record(entry);
  return static_cast<LossAction>(decision);
}

bool RecordingDecider::ChooseKill(const KillChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(gate_.kill_ranks.begin(), gate_.kill_ranks.end(),
                choice.rank) == gate_.kill_ranks.end()) {
    return false;
  }
  if (choice.send_index < gate_.kill_window_lo ||
      choice.send_index >= gate_.kill_window_hi) {
    return false;
  }
  TrailEntry entry;
  entry.key = ChoiceKey{ChoiceKind::kKill, choice.rank, 0, choice.send_index};
  entry.vtime = choice.vtime;
  entry.num_options = 2;
  bool forced = false;
  Decision decision = Lookup(entry.key, &forced);
  if (!forced && random_ && kills_fired_ < gate_.max_kills) {
    // 1-in-8 per surfaced point keeps most walks alive long enough to
    // reach interesting protocol phases.
    if (rng_.NextBelow(8) == 0) decision = 1;
  }
  if (decision != 0) ++kills_fired_;
  entry.decision = decision;
  Record(entry);
  return decision != 0;
}

int RecordingDecider::ChooseDelivery(const DeliveryChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  TrailEntry entry;
  entry.key = ChoiceKey{ChoiceKind::kDelivery, choice.rank, choice.tag,
                        choice.recv_index};
  entry.num_options = static_cast<int>(choice.candidate_srcs.size());
  entry.options = choice.candidate_srcs;
  bool forced = false;
  const Decision decision = Lookup(entry.key, &forced);
  if (forced && decision >= 0) {
    // Forced delivery decisions name a SOURCE rank: the candidate set's
    // arrival order is scheduler noise, the source identity is not.
    const auto& srcs = choice.candidate_srcs;
    const auto it = std::find(srcs.begin(), srcs.end(), decision);
    if (it != srcs.end()) {
      wait_rounds_.erase(entry.key);
      entry.decision = decision;
      Record(entry);
      return static_cast<int>(it - srcs.begin());
    }
    // The forced source has nothing queued yet. Defer: a source that
    // surfaced as a candidate in the recording run is causally bound to
    // send again under the same decision prefix, so it will arrive.
    // Bounded anyway — a hand-edited trace can force a source that
    // never sends, and that must diverge, not hang.
    if (++wait_rounds_[entry.key] < kMaxDeliveryWaitRounds) {
      return kDeliveryWaitPick;
    }
    ++delivery_waits_abandoned_;
    wait_rounds_.erase(entry.key);
    entry.decision = -1;
    Record(entry);
    return 0;
  }
  if (forced) {
    // Explicitly forced default: take the earliest-deposited candidate.
    entry.decision = -1;
    Record(entry);
    return 0;
  }
  // A single candidate is not a fork: take it without recording,
  // exactly as when no decider is armed.
  if (entry.num_options <= 1) return 0;
  size_t index = 0;
  if (random_) {
    index = static_cast<size_t>(
        rng_.NextBelow(static_cast<std::uint64_t>(entry.num_options)));
  }
  entry.decision = index == 0 ? -1 : choice.candidate_srcs[index];
  Record(entry);
  return static_cast<int>(index);
}

std::vector<TrailEntry> RecordingDecider::Trail() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TrailEntry> trail = trail_;
  SortTrail(&trail);
  return trail;
}

std::int64_t RecordingDecider::unreached_forced() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Abandoned delivery waits count as divergences even though their
  // key surfaced: the forced source was never honored.
  return static_cast<std::int64_t>(forced_.size()) -
         static_cast<std::int64_t>(matched_.size()) +
         delivery_waits_abandoned_;
}

}  // namespace panda::mc
