// The model-checked workload: a small failover-mode cluster (default
// 2 clients x 2 i/o nodes, one tiny array group) running one timestep
// collective followed by one checkpoint, under a RecordingDecider that
// resolves every transport choice point. After the run terminates, the
// four safety invariants from docs/MODEL_CHECKING.md are checked:
//
//   1. Outcome coherence — every client completed, or every client
//      aborted; never a mix.
//   2. Committed checkpoint restorable — if the master client returned
//      from Checkpoint() and the data's servers survived, a real
//      restart (Machine::ResetForRecovery + fresh cluster) must Resume
//      and Restart bit-exactly.
//   3. fsck clean — whatever metadata committed, the offline sidecar /
//      journal / frame verifiers accept it under the recorded
//      dead-server set. Conditioned on a stable dead set: a node that
//      dies *between* commits takes its already-committed local data
//      with it (the paper's i/o nodes write to node-local file
//      systems), and the group's single recorded dead set cannot
//      describe two layouts — the explorer found exactly this.
//   4. No torn group metadata — the schema file, when present, parses;
//      its dead-server set never exceeds the ever-killed set.
//
// With `rejoin` set, eligible schedules append a second phase after the
// main run: the killed servers are revived (Machine::RestartServer over
// a ResetForRejoin'd transport), the cluster resumes the group, and one
// more timestep + checkpoint run under the SAME decider — so the
// explorer also branches on faults *during* rejoin (kill -> rejoin ->
// re-kill). A clean second phase must leave the group fully repaired:
// metadata records no dead servers, the layout epoch is bumped, and the
// offline verifiers accept the files under the identity layout.
//
// A run's outcome is a pure function of the decision assignment; the
// explorer (mc/explorer.h) leans on that for stateless replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/strategy.h"
#include "mc/trace.h"

namespace panda::mc {

// One exploration scenario. Serializes to the `config` lines of a
// .mctrace so failing schedules are self-contained.
struct McConfig {
  int clients = 2;
  int servers = 2;
  int arrays = 1;       // 1 or 2 arrays in the group
  int rows = 8;         // array shape (rows x cols, 8-byte elements)
  int cols = 8;
  std::int64_t subchunk_bytes = 128;
  int timesteps = 1;    // timestep collectives before the checkpoint

  // Which loss verdicts the adversary may pick per surfaced send.
  bool drop = false;
  bool dup = false;
  bool reorder = false;
  bool delay = false;

  // Servers (by index) whose sends surface kill choice points, within
  // the send-index window [kill_lo, kill_hi).
  std::vector<int> kill_servers;
  std::int64_t kill_lo = 0;
  std::int64_t kill_hi = 0;

  // Surface any-source delivery picks (DFS expands every candidate
  // source; random walks sample one).
  bool deliver_choices = false;

  // Revive the killed servers after the main run and model-check the
  // rejoin protocol too (see the header comment). Only schedules whose
  // main run left a stable, committed degraded state are eligible; the
  // rest skip the phase (their outcome label says so).
  bool rejoin = false;

  // Exploration budgets: at most this many non-deliver loss decisions /
  // fired kills per run. DFS enforces them statically on assignments;
  // random walks enforce them at runtime.
  int max_faults = 2;
  int max_kills = 1;

  // Test-only, deliberately too strict: flag ANY abort as a violation.
  // The failover protocol aborts by design when the master i/o node
  // dies, so exploring kills of server 0 under this flag manufactures a
  // real counterexample — the harness for "a broken invariant is
  // caught, minimized, and replayed" (mc_test).
  bool expect_no_aborts = false;

  bool HasLossSurface() const { return drop || dup || reorder || delay; }
  bool HasKillSurface() const {
    return !kill_servers.empty() && kill_hi > kill_lo;
  }

  std::vector<std::pair<std::string, std::string>> ToConfigLines() const;
  static McConfig FromConfigLines(
      const std::vector<std::pair<std::string, std::string>>& lines);
};

// Everything observed about one terminated run.
struct McRunResult {
  // Per client: 0 = nothing committed, 1 = timestep done, 2 = timestep
  // and checkpoint done.
  std::vector<int> progress;
  std::vector<int> aborted;  // per client: saw PandaAbortError
  bool run_aborted = false;  // an abort surfaced from Machine::Run
  std::string run_error;     // non-abort PandaError ("" when clean)

  std::vector<int> dead_servers;       // actually crash-stopped (indices)
  bool checkpoint_committed = false;   // master returned from Checkpoint()
  bool completed = false;              // all clients reached progress 2
  bool meta_exists = false;
  bool meta_parses = false;
  std::vector<int> meta_dead_servers;  // from the committed schema
  bool restart_checked = false;        // invariant 2 preconditions held
  bool fsck_checked = false;           // invariant 3 preconditions held
  // Dead servers observed by the master client right after its timestep
  // committed (the first commit): when this differs from the final dead
  // set, the group's commits span two layouts and offline verification
  // is out of scope (the dead node's committed data is lost).
  std::vector<int> dead_at_first_commit;
  std::uint64_t data_hash = 0;         // FNV over committed server files

  // Rejoin phase (config.rejoin only; see the header comment).
  bool rejoin_attempted = false;       // eligibility preconditions held
  std::vector<int> rejoin_progress;    // per client, run 2 (0/1/2)
  std::vector<int> rejoin_aborted;     // per client: run 2 abort
  bool rejoin_run_aborted = false;
  std::string rejoin_run_error;
  std::vector<int> dead_after_rejoin;  // dead (indices) after run 2
  std::int64_t layout_epoch = 0;       // meta epoch after the final run

  // The branching trail: every surfaced choice point, canonical order.
  std::vector<TrailEntry> trail;
  std::int64_t unreached_forced = 0;
  std::int64_t anomalies = 0;

  // Invariant failures, human-readable. Empty = this schedule is safe.
  std::vector<std::string> violations;

  // Compact outcome label + data hash; equal labels = equivalent
  // terminal states (used by visited-set dedup and the POR audit).
  std::string Outcome() const;
};

// Runs the workload once under (forced, random_seed) — see
// RecordingDecider — and checks the invariants. random_seed == 0 is
// the DFS/replay mode; nonzero draws unforced decisions randomly.
McRunResult RunWorkload(const McConfig& config, const Assignment& forced,
                        std::uint64_t random_seed = 0);

}  // namespace panda::mc
