// Decision traces for the model checker (panda_mc).
//
// The explorer never captures machine state: a run is identified
// entirely by the *decisions* taken at the transport's nondeterministic
// choice points (msg/choice.h). Each choice point has a deterministic
// key derived from protocol-level ordinals — per-link dispatch sequence
// for loss verdicts, per-rank send index for kill points, per-(rank,
// tag) receive ordinal for any-source delivery picks — so a decision
// map ("assignment") replays exactly even though wall-clock thread
// interleaving differs between runs.
//
// A failing assignment is serialized as a `.mctrace` file: a tiny text
// format embedding the workload config, the non-default decisions, and
// the expected outcome, replayable as a deterministic regression test
// (tests/schedules/, mc_replay_test).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "msg/choice.h"

namespace panda::mc {

// Which kind of nondeterministic choice a key identifies.
enum class ChoiceKind : int {
  kLoss = 0,      // lossy-layer verdict for one dispatched message
  kKill = 1,      // crash-stop decision at one send of one rank
  kDelivery = 2,  // any-source receive pick among queued candidates
};

// Deterministic identity of one choice point. Meaning of the fields:
//   kLoss:     a = src rank, b = dst rank, seq = per-(src,dst) dispatch
//              ordinal (PairState::dispatch_seq).
//   kKill:     a = rank, b = 0, seq = that rank's send index.
//   kDelivery: a = receiving rank, b = tag, seq = per-(rank,tag)
//              any-source receive ordinal.
struct ChoiceKey {
  ChoiceKind kind = ChoiceKind::kLoss;
  int a = 0;
  int b = 0;
  std::int64_t seq = 0;

  friend bool operator<(const ChoiceKey& x, const ChoiceKey& y) {
    if (x.kind != y.kind) return static_cast<int>(x.kind) < static_cast<int>(y.kind);
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.seq < y.seq;
  }
  friend bool operator==(const ChoiceKey& x, const ChoiceKey& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.seq == y.seq;
  }
};

// Decision values.
//   kLoss:     static_cast<int>(LossAction).
//   kKill:     0 = spare, 1 = crash-stop.
//   kDelivery: the SOURCE RANK to deliver from (-1: default, earliest
//              deposited). Forcing by source — not by candidate index —
//              is what makes delivery decisions replayable: the
//              candidate set's arrival order is scheduler noise, but a
//              source that was a candidate in the recording run is
//              causally bound to send again under the same decision
//              prefix, so the replay waits for it (strategy.cc).
using Decision = int;

// The pure input of a run: every non-default decision, keyed by choice
// point. Choice points absent from the map take the protocol default
// (deliver / spare / first candidate).
using Assignment = std::map<ChoiceKey, Decision>;

// One surfaced choice point as observed during a run, with enough
// context to enumerate its alternatives and to order the trail
// canonically.
struct TrailEntry {
  ChoiceKey key;
  double vtime = 0.0;          // virtual time at the choice point
  std::uint32_t allowed = 1;   // kLoss: LossActionBit mask of legal verdicts
  int num_options = 1;         // kKill: 2; kDelivery: candidate count
  Decision decision = 0;       // what this run chose
  int tag = 0;                 // kLoss: message tag (annotation only)
  // kDelivery: candidate source ranks at the pick, earliest deposited
  // first (the DFS expansion set; may repeat a source that has several
  // messages queued).
  std::vector<int> options;
};

// Canonical trail order for branching: by (vtime, key). Virtual time is
// deterministic given an assignment, so this order is stable across
// replays regardless of wall-clock interleaving.
void SortTrail(std::vector<TrailEntry>* trail);

// Enumerates the alternative decisions at `entry` other than the one
// taken (the DFS expansion set).
std::vector<Decision> Alternatives(const TrailEntry& entry);

// True when `decision` is the protocol default for `kind` — default
// decisions are omitted from assignments and traces.
bool IsDefaultDecision(ChoiceKind kind, Decision decision);

// Canonical fingerprint of an assignment restricted to the choice
// points that actually surfaced in `trail` (used for visited-state
// deduplication: two decision vectors that agree on every surfaced
// point denote the same run).
std::string AssignmentFingerprint(const std::vector<TrailEntry>& trail);

// --- .mctrace serialization -------------------------------------------

// A parsed .mctrace file: workload config lines, the decision
// assignment, and outcome expectations for replay verification.
struct McTrace {
  // Ordered config key/value pairs (workload.h interprets them).
  std::vector<std::pair<std::string, std::string>> config;
  Assignment assignment;
  // Expected outcome key/value pairs, checked by the replayer
  // ("violation=expect_no_aborts", "aborted=1", ...).
  std::vector<std::pair<std::string, std::string>> expect;
};

// Renders `trace` in the textual panda-mctrace v1 format.
std::string EncodeMcTrace(const McTrace& trace);

// Parses a panda-mctrace v1 document. Throws PandaError on malformed
// input (unknown directive, bad key, unsupported version).
McTrace DecodeMcTrace(const std::string& text);

// Human-readable forms used by the trace format and diagnostics.
std::string LossActionName(LossAction action);
LossAction LossActionFromName(const std::string& name);
std::string DescribeKey(const ChoiceKey& key);

}  // namespace panda::mc
