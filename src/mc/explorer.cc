#include "mc/explorer.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/error.h"

namespace panda::mc {

namespace {

// Counts the fault (non-deliver loss) and kill decisions of an
// assignment — the static budget enforcement: DFS never schedules an
// assignment over budget, so no runtime cap can race the exploration.
void CountBudget(const Assignment& assignment, int* faults, int* kills) {
  *faults = 0;
  *kills = 0;
  for (const auto& [key, decision] : assignment) {
    if (IsDefaultDecision(key.kind, decision)) continue;
    if (key.kind == ChoiceKind::kLoss) ++*faults;
    if (key.kind == ChoiceKind::kKill) ++*kills;
  }
}

int NonDefaultCount(const Assignment& assignment) {
  int n = 0;
  for (const auto& [key, decision] : assignment) {
    if (!IsDefaultDecision(key.kind, decision)) ++n;
  }
  return n;
}

// The effective assignment of a finished run: every non-default
// decision that actually surfaced. This is what gets minimized and
// serialized — scheduled-but-unreached decisions are dropped.
Assignment AssignmentFromTrail(const std::vector<TrailEntry>& trail) {
  Assignment assignment;
  for (const TrailEntry& entry : trail) {
    if (!IsDefaultDecision(entry.key.kind, entry.decision)) {
      assignment[entry.key] = entry.decision;
    }
  }
  return assignment;
}

std::string ScheduledFingerprint(const Assignment& assignment) {
  std::ostringstream out;
  for (const auto& [key, decision] : assignment) {
    if (IsDefaultDecision(key.kind, decision)) continue;
    out << static_cast<int>(key.kind) << ':' << key.a << ':' << key.b << ':'
        << key.seq << '=' << decision << ';';
  }
  return out.str();
}

// A frontier node: the decisions to force, plus the canonical-trail
// index this node may branch from (decisions before the floor were
// already branched on by an ancestor — re-branching would enumerate the
// same sequences again).
struct Node {
  Assignment assignment;
  size_t branch_floor = 0;
};

}  // namespace

Assignment Minimize(const McConfig& config, const Assignment& assignment,
                    std::int64_t* runs) {
  Assignment current = assignment;
  // Drop scheduled defaults first — they are semantically identity.
  for (auto it = current.begin(); it != current.end();) {
    if (IsDefaultDecision(it->first.kind, it->second)) {
      it = current.erase(it);
    } else {
      ++it;
    }
  }
  const std::vector<ChoiceKey> keys = [&] {
    std::vector<ChoiceKey> out;
    for (const auto& [key, decision] : current) out.push_back(key);
    return out;
  }();
  for (const ChoiceKey& key : keys) {
    Assignment trial = current;
    trial.erase(key);
    const McRunResult result = RunWorkload(config, trial);
    if (runs != nullptr) ++*runs;
    if (!result.violations.empty()) current = std::move(trial);
  }
  return current;
}

namespace {

std::string IntCsv(const std::vector<int>& values) {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  return out.str();
}

}  // namespace

McTrace MakeTrace(const McConfig& config, const Assignment& assignment,
                  const McRunResult& result) {
  McTrace trace;
  trace.config = config.ToConfigLines();
  trace.assignment = assignment;
  trace.expect.emplace_back("violated",
                            result.violations.empty() ? "0" : "1");
  trace.expect.emplace_back("dead", IntCsv(result.dead_servers));
  trace.expect.emplace_back("ckpt", result.checkpoint_committed ? "1" : "0");
  std::ostringstream hash;
  hash << std::hex << result.data_hash;
  trace.expect.emplace_back("hash", hash.str());
  // Rejoin schedules additionally pin the post-rejoin membership and the
  // committed layout generation, so a regression in the repair path shows
  // up as an expect mismatch even when the data hash happens to agree.
  if (result.rejoin_attempted) {
    trace.expect.emplace_back("rejoin", "1");
    trace.expect.emplace_back("rejoin_dead", IntCsv(result.dead_after_rejoin));
    trace.expect.emplace_back("epoch", std::to_string(result.layout_epoch));
  }
  return trace;
}

bool ReplayTrace(const McTrace& trace, std::string* why) {
  const McConfig config = McConfig::FromConfigLines(trace.config);
  const McRunResult result = RunWorkload(config, trace.assignment);
  const auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  // A forced decision that never surfaced means the protocol's choice
  // ordinals shifted under the trace: the schedule no longer pins what
  // it claims to. Fail loudly instead of passing vacuously.
  if (result.unreached_forced > 0) {
    return fail(std::to_string(result.unreached_forced) +
                " forced decision(s) never surfaced during replay");
  }
  for (const auto& [key, want] : trace.expect) {
    if (key == "violated") {
      const std::string got = result.violations.empty() ? "0" : "1";
      if (got != want) {
        return fail("expected violated=" + want + ", got " + got +
                    (result.violations.empty()
                         ? ""
                         : " (" + result.violations.front() + ")"));
      }
    } else if (key == "dead") {
      const std::string got = IntCsv(result.dead_servers);
      if (got != want) {
        return fail("expected dead=" + want + ", got " + got);
      }
    } else if (key == "rejoin") {
      const std::string got = result.rejoin_attempted ? "1" : "0";
      if (got != want) {
        return fail("expected rejoin=" + want + ", got " + got);
      }
    } else if (key == "rejoin_dead") {
      const std::string got = IntCsv(result.dead_after_rejoin);
      if (got != want) {
        return fail("expected rejoin_dead=" + want + ", got " + got);
      }
    } else if (key == "epoch") {
      const std::string got = std::to_string(result.layout_epoch);
      if (got != want) {
        return fail("expected epoch=" + want + ", got " + got);
      }
    } else if (key == "ckpt") {
      const std::string got = result.checkpoint_committed ? "1" : "0";
      if (got != want) return fail("expected ckpt=" + want + ", got " + got);
    } else if (key == "hash") {
      std::ostringstream got;
      got << std::hex << result.data_hash;
      if (got.str() != want) {
        return fail("expected hash=" + want + ", got " + got.str());
      }
    } else {
      return fail("unknown expect key '" + key + "'");
    }
  }
  return true;
}

void PublishMetrics(const ExploreResult& result,
                    trace::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->AddCounter("mc.runs", result.runs);
  metrics->AddCounter("mc.distinct_states", result.distinct_states);
  metrics->AddCounter("mc.duplicates", result.duplicates);
  metrics->AddCounter("mc.divergences", result.divergences);
  metrics->AddCounter("mc.pruned_por", result.pruned_por);
  metrics->AddCounter("mc.pruned_budget", result.pruned_budget);
  metrics->AddCounter("mc.pruned_depth", result.pruned_depth);
  metrics->AddCounter("mc.violations",
                      static_cast<std::int64_t>(result.violations.size()));
  metrics->SetGauge("mc.exhausted", result.exhausted ? 1.0 : 0.0);
  metrics->SetGauge("mc.outcomes",
                    static_cast<double>(result.outcomes.size()));
}

ExploreResult Explore(const McConfig& config, const ExploreOptions& options) {
  ExploreResult result;

  const auto record_violation = [&](const Assignment& effective,
                                    const McRunResult& run) {
    McViolation violation;
    violation.messages = run.violations;
    violation.outcome = run.Outcome();
    violation.assignment = effective;
    if (options.minimize) {
      violation.assignment =
          Minimize(config, violation.assignment, &result.runs);
    }
    result.violations.push_back(std::move(violation));
  };

  if (options.walk_seed != 0) {
    // Random-walk mode: seeded sampling of the decision space, one walk
    // per run.
    for (std::int64_t i = 0; i < options.max_runs; ++i) {
      const McRunResult run =
          RunWorkload(config, Assignment{}, options.walk_seed +
                                                static_cast<std::uint64_t>(i));
      ++result.runs;
      result.outcomes.insert(run.Outcome());
      ++result.distinct_states;  // walks are not deduplicated
      if (!run.violations.empty()) {
        record_violation(AssignmentFromTrail(run.trail), run);
        if (options.stop_on_violation) break;
      }
    }
    return result;
  }

  // DFS over the decision tree (stateless replay; see header comment).
  std::deque<Node> frontier;
  frontier.push_back(Node{});
  std::set<std::string> scheduled;  // assignments ever pushed
  std::set<std::string> visited;    // effective assignments executed
  scheduled.insert(ScheduledFingerprint(Assignment{}));

  while (!frontier.empty() && result.runs < options.max_runs) {
    const Node node = std::move(frontier.back());
    frontier.pop_back();

    const McRunResult run = RunWorkload(config, node.assignment);
    ++result.runs;
    result.outcomes.insert(run.Outcome());
    if (run.unreached_forced > 0) ++result.divergences;
    if (!visited.insert(AssignmentFingerprint(run.trail)).second) {
      ++result.duplicates;
      continue;  // an equivalent run was already expanded
    }
    ++result.distinct_states;
    if (!run.violations.empty()) {
      record_violation(AssignmentFromTrail(run.trail), run);
      if (options.stop_on_violation) break;
    }

    // Expand: branch on each alternative at each trail position at or
    // past the floor, forcing the canonical prefix as taken.
    int base_faults = 0;
    int base_kills = 0;
    for (size_t i = node.branch_floor; i < run.trail.size(); ++i) {
      // Decisions strictly before position i, as this run took them.
      Assignment prefix;
      for (size_t j = 0; j < i; ++j) {
        const TrailEntry& taken = run.trail[j];
        if (!IsDefaultDecision(taken.key.kind, taken.decision)) {
          prefix[taken.key] = taken.decision;
        }
      }
      CountBudget(prefix, &base_faults, &base_kills);
      const TrailEntry& entry = run.trail[i];
      for (const Decision alt : Alternatives(entry)) {
        // Any-source service order is commutative at the protocol level
        // when nobody can die: each request is served independently, and
        // no failure detector observes the timing. The POR audit
        // (mc_test) checks this reduction against the unpruned space.
        if (options.por && entry.key.kind == ChoiceKind::kDelivery &&
            !config.HasKillSurface()) {
          ++result.pruned_por;
          continue;
        }
        if (options.por && entry.key.kind == ChoiceKind::kLoss) {
          const auto action = static_cast<LossAction>(alt);
          // A duplicated copy is absorbed by receive-side dedup above
          // the reliable layer: same terminal state as kDeliver.
          if (action == LossAction::kDup) {
            ++result.pruned_por;
            continue;
          }
          // Pure timing perturbations cannot change a terminal state
          // when nobody can die (no failure detector observes timing).
          if (!config.HasKillSurface() &&
              (action == LossAction::kDelay ||
               action == LossAction::kReorder)) {
            ++result.pruned_por;
            continue;
          }
        }
        Assignment child = prefix;
        if (IsDefaultDecision(entry.key.kind, alt)) {
          child.erase(entry.key);
        } else {
          child[entry.key] = alt;
        }
        int faults = base_faults;
        int kills = base_kills;
        if (!IsDefaultDecision(entry.key.kind, alt)) {
          if (entry.key.kind == ChoiceKind::kLoss) ++faults;
          if (entry.key.kind == ChoiceKind::kKill) ++kills;
        }
        if (faults > config.max_faults || kills > config.max_kills) {
          ++result.pruned_budget;
          continue;
        }
        if (NonDefaultCount(child) > options.max_depth) {
          ++result.pruned_depth;
          continue;
        }
        if (!scheduled.insert(ScheduledFingerprint(child)).second) {
          continue;
        }
        frontier.push_back(Node{std::move(child), i + 1});
      }
    }
  }

  result.exhausted = frontier.empty();
  PublishMetrics(result, options.metrics);
  return result;
}

}  // namespace panda::mc
