// Exploration strategies for panda_mc: deciders that replay a decision
// assignment (DFS branches, .mctrace regression replays) or draw
// unforced decisions from a seeded RNG (random-walk fallback), while
// recording every surfaced choice point as the branching trail.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "mc/trace.h"
#include "msg/choice.h"
#include "util/random.h"

namespace panda::mc {

// Which choice surfaces the exploration opens up, and the runtime
// budgets the random-walk mode honors (DFS enforces budgets statically
// when generating child assignments, so forced decisions are always
// obeyed verbatim).
struct GateOptions {
  // Ranks whose sends surface kill choice points (empty: no kill
  // exploration). Typically server ranks.
  std::vector<int> kill_ranks;
  // Kill choices surface only for send indices in [lo, hi).
  std::int64_t kill_window_lo = 0;
  std::int64_t kill_window_hi = 0;
  // Surface any-source delivery picks. Forced delivery decisions name
  // a source rank (not a candidate index), and a replay *waits* for the
  // forced source when it has not arrived yet, so DFS branches on these
  // soundly even though the candidate set's arrival order is scheduler
  // noise; see docs/MODEL_CHECKING.md.
  bool surface_delivery = false;
  // Random-walk budgets (ignored for forced decisions).
  int max_kills = 1;
  int max_faults = 2;
};

// A ChoiceDecider that (a) answers each surfaced choice point from a
// forced assignment, falling back to the protocol default — or, in
// random-walk mode, to a seeded draw — and (b) records every surfaced
// choice point so the explorer can branch on the alternatives.
//
// Thread safety: all entry points lock an internal mutex (ChooseKill /
// ChooseDelivery arrive concurrently from rank threads).
class RecordingDecider : public ChoiceDecider {
 public:
  // random_seed == 0: pure replay (unforced choices take the default).
  // random_seed != 0: random walk (unforced choices are drawn).
  RecordingDecider(GateOptions gate, Assignment forced,
                   std::uint64_t random_seed = 0);

  LossAction ChooseLoss(const LossChoice& choice) override;
  bool ChooseKill(const KillChoice& choice) override;
  int ChooseDelivery(const DeliveryChoice& choice) override;
  bool WantsKillChoices() const override { return !gate_.kill_ranks.empty(); }
  bool WantsDeliveryChoices() const override {
    return gate_.surface_delivery;
  }

  // The surfaced choice points in canonical (vtime, key) order.
  std::vector<TrailEntry> Trail() const;

  // Forced decisions whose choice point never surfaced — a replay
  // divergence (the run took a path where the choice no longer exists).
  // Includes abandoned delivery waits: forced sources that never
  // produced a candidate before the wait bound expired.
  std::int64_t unreached_forced() const;

  // Choice points that surfaced more than once under the same key —
  // would break replay determinism; always 0 for a sound seam.
  std::int64_t anomalies() const { return anomalies_; }

 private:
  Decision Lookup(const ChoiceKey& key, bool* forced);
  void Record(const TrailEntry& entry);

  const GateOptions gate_;
  const Assignment forced_;
  const bool random_;
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<TrailEntry> trail_;
  std::set<ChoiceKey> seen_;
  std::set<ChoiceKey> matched_;
  // Per-key count of delivery picks deferred because the forced source
  // had no candidate yet (bounded; see kMaxDeliveryWaitRounds).
  std::map<ChoiceKey, int> wait_rounds_;
  std::int64_t anomalies_ = 0;
  std::int64_t delivery_waits_abandoned_ = 0;
  int kills_fired_ = 0;
  int faults_fired_ = 0;
};

}  // namespace panda::mc
