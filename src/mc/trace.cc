#include "mc/trace.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace panda::mc {

namespace {

constexpr char kHeader[] = "panda-mctrace v1";

int PopCount(std::uint32_t mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return n;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::int64_t ParseInt(const std::string& word, const std::string& line) {
  try {
    size_t used = 0;
    const std::int64_t value = std::stoll(word, &used);
    if (used != word.size()) throw std::invalid_argument(word);
    return value;
  } catch (const std::exception&) {
    throw PandaError("mctrace: bad integer '" + word + "' in: " + line);
  }
}

std::pair<std::string, std::string> SplitKeyValue(const std::string& rest,
                                                 const std::string& line) {
  const size_t eq = rest.find('=');
  if (eq == std::string::npos) {
    throw PandaError("mctrace: expected key=value in: " + line);
  }
  return {rest.substr(0, eq), rest.substr(eq + 1)};
}

}  // namespace

void SortTrail(std::vector<TrailEntry>* trail) {
  std::sort(trail->begin(), trail->end(),
            [](const TrailEntry& x, const TrailEntry& y) {
              if (x.vtime != y.vtime) return x.vtime < y.vtime;
              return x.key < y.key;
            });
}

std::vector<Decision> Alternatives(const TrailEntry& entry) {
  std::vector<Decision> out;
  switch (entry.key.kind) {
    case ChoiceKind::kLoss:
      for (int action = 0; action <= static_cast<int>(LossAction::kDelay);
           ++action) {
        if ((entry.allowed &
             LossActionBit(static_cast<LossAction>(action))) == 0) {
          continue;
        }
        if (action != entry.decision) out.push_back(action);
      }
      break;
    case ChoiceKind::kKill:
      if (entry.decision != 0) out.push_back(0);
      if (entry.decision != 1) out.push_back(1);
      break;
    case ChoiceKind::kDelivery: {
      // Alternatives are the candidate SOURCES not taken (decisions are
      // by source rank, not index). A default decision took the
      // earliest-deposited candidate; duplicate sources collapse — one
      // forced child per distinct source.
      const int taken = entry.decision >= 0
                            ? entry.decision
                            : (entry.options.empty() ? -1
                                                     : entry.options.front());
      for (int src : entry.options) {
        if (src == taken) continue;
        if (std::find(out.begin(), out.end(), src) != out.end()) continue;
        out.push_back(src);
      }
      break;
    }
  }
  return out;
}

bool IsDefaultDecision(ChoiceKind kind, Decision decision) {
  switch (kind) {
    case ChoiceKind::kLoss:
      return decision == static_cast<int>(LossAction::kDeliver);
    case ChoiceKind::kKill:
      return decision == 0;
    case ChoiceKind::kDelivery:
      return decision < 0;  // -1: earliest-deposited candidate
  }
  return true;
}

std::string AssignmentFingerprint(const std::vector<TrailEntry>& trail) {
  std::vector<const TrailEntry*> sorted;
  sorted.reserve(trail.size());
  for (const TrailEntry& entry : trail) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const TrailEntry* x, const TrailEntry* y) {
              return x->key < y->key;
            });
  std::ostringstream out;
  for (const TrailEntry* entry : sorted) {
    if (IsDefaultDecision(entry->key.kind, entry->decision)) continue;
    out << static_cast<int>(entry->key.kind) << ':' << entry->key.a << ':'
        << entry->key.b << ':' << entry->key.seq << '=' << entry->decision
        << ';';
  }
  return out.str();
}

std::string LossActionName(LossAction action) {
  switch (action) {
    case LossAction::kDeliver: return "deliver";
    case LossAction::kDrop: return "drop";
    case LossAction::kDup: return "dup";
    case LossAction::kReorder: return "reorder";
    case LossAction::kDelay: return "delay";
  }
  return "deliver";
}

LossAction LossActionFromName(const std::string& name) {
  if (name == "deliver") return LossAction::kDeliver;
  if (name == "drop") return LossAction::kDrop;
  if (name == "dup") return LossAction::kDup;
  if (name == "reorder") return LossAction::kReorder;
  if (name == "delay") return LossAction::kDelay;
  throw PandaError("mctrace: unknown loss action '" + name + "'");
}

std::string DescribeKey(const ChoiceKey& key) {
  std::ostringstream out;
  switch (key.kind) {
    case ChoiceKind::kLoss:
      out << "loss " << key.a << "->" << key.b << " #" << key.seq;
      break;
    case ChoiceKind::kKill:
      out << "kill rank " << key.a << " @send " << key.seq;
      break;
    case ChoiceKind::kDelivery:
      out << "deliver rank " << key.a << " tag " << key.b << " #" << key.seq;
      break;
  }
  return out.str();
}

std::string EncodeMcTrace(const McTrace& trace) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& [key, value] : trace.config) {
    out << "config " << key << '=' << value << '\n';
  }
  for (const auto& [key, decision] : trace.assignment) {
    switch (key.kind) {
      case ChoiceKind::kLoss:
        out << "choice loss " << key.a << ' ' << key.b << ' ' << key.seq
            << ' ' << LossActionName(static_cast<LossAction>(decision))
            << '\n';
        break;
      case ChoiceKind::kKill:
        out << "choice kill " << key.a << ' ' << key.seq << ' ' << decision
            << '\n';
        break;
      case ChoiceKind::kDelivery:
        out << "choice deliver " << key.a << ' ' << key.b << ' ' << key.seq
            << ' ' << decision << '\n';
        break;
    }
  }
  for (const auto& [key, value] : trace.expect) {
    out << "expect " << key << '=' << value << '\n';
  }
  return out.str();
}

McTrace DecodeMcTrace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // Comments and blank lines may precede the version header, so a
  // checked-in schedule can open with prose explaining what it pins.
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    saw_header = (line == kHeader);
    break;
  }
  if (!saw_header) {
    throw PandaError("mctrace: missing '" + std::string(kHeader) +
                     "' header");
  }
  McTrace trace;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    if (words[0] == "config") {
      if (words.size() != 2) throw PandaError("mctrace: bad line: " + line);
      trace.config.push_back(SplitKeyValue(words[1], line));
    } else if (words[0] == "expect") {
      if (words.size() != 2) throw PandaError("mctrace: bad line: " + line);
      trace.expect.push_back(SplitKeyValue(words[1], line));
    } else if (words[0] == "choice") {
      if (words.size() < 2) throw PandaError("mctrace: bad line: " + line);
      ChoiceKey key;
      Decision decision = 0;
      if (words[1] == "loss" && words.size() == 6) {
        key.kind = ChoiceKind::kLoss;
        key.a = static_cast<int>(ParseInt(words[2], line));
        key.b = static_cast<int>(ParseInt(words[3], line));
        key.seq = ParseInt(words[4], line);
        decision = static_cast<int>(LossActionFromName(words[5]));
      } else if (words[1] == "kill" && words.size() == 5) {
        key.kind = ChoiceKind::kKill;
        key.a = static_cast<int>(ParseInt(words[2], line));
        key.seq = ParseInt(words[3], line);
        decision = static_cast<int>(ParseInt(words[4], line));
      } else if (words[1] == "deliver" && words.size() == 6) {
        key.kind = ChoiceKind::kDelivery;
        key.a = static_cast<int>(ParseInt(words[2], line));
        key.b = static_cast<int>(ParseInt(words[3], line));
        key.seq = ParseInt(words[4], line);
        decision = static_cast<int>(ParseInt(words[5], line));
      } else {
        throw PandaError("mctrace: bad choice line: " + line);
      }
      trace.assignment[key] = decision;
    } else {
      throw PandaError("mctrace: unknown directive: " + line);
    }
  }
  return trace;
}

}  // namespace panda::mc
