// panda_mc's exploration engine: stateless-replay DFS over the decision
// tree of the transport's choice points, plus a seeded random-walk
// fallback for spaces too large to exhaust.
//
// DFS over a threaded protocol machine works here because a run's
// outcome is a pure function of its decision assignment (mc/trace.h):
// the explorer replays the machine from scratch per branch, forcing the
// canonical trail prefix and one alternative at the branch point, and
// leaving later choices to the protocol default. Frontier nodes carry a
// branch floor so each decision sequence is generated exactly once.
//
// Partial-order reduction (sleep-set style, but over message-fault
// commutativity rather than thread interleavings): alternatives that
// provably reach the terminal state of an already-scheduled sibling are
// pruned — a duplicated message is absorbed by receive-side dedup, and
// pure timing perturbations (delay, reorder) cannot change any terminal
// state when no kill surface is armed (nobody dies, so no failure
// detector observes timing). mc_test audits the equivalence by
// comparing reachable-outcome sets with POR on and off.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "mc/workload.h"
#include "trace/metrics.h"

namespace panda::mc {

struct ExploreOptions {
  // Run budget: exploration stops after this many workload executions
  // (minimization runs included).
  std::int64_t max_runs = 10000;
  // Maximum non-default decisions per assignment (DFS depth).
  int max_depth = 16;
  // Sound equivalence pruning (see header comment).
  bool por = true;
  // Stop exploring once a violation is found (it is still minimized).
  bool stop_on_violation = true;
  // Minimize the first violating assignment (greedy decision removal).
  bool minimize = true;
  // Nonzero: random-walk mode — draw `max_runs` seeded walks instead of
  // DFS (unforced choices are sampled; see RecordingDecider).
  std::uint64_t walk_seed = 0;
  // Exploration statistics sink (optional).
  trace::MetricsRegistry* metrics = nullptr;
};

// One invariant violation: the minimized decision assignment that
// manufactures it, ready to serialize as a .mctrace regression test.
struct McViolation {
  Assignment assignment;
  std::vector<std::string> messages;  // the violated invariants
  std::string outcome;                // terminal-state label of the run
};

struct ExploreResult {
  std::int64_t runs = 0;              // workload executions, total
  std::int64_t distinct_states = 0;   // distinct effective assignments
  std::int64_t duplicates = 0;        // runs that collapsed onto a visited state
  std::int64_t divergences = 0;       // runs with unreached forced decisions
  std::int64_t pruned_por = 0;        // alternatives pruned as equivalent
  std::int64_t pruned_budget = 0;     // alternatives over the fault/kill budget
  std::int64_t pruned_depth = 0;      // alternatives over max_depth
  bool exhausted = false;             // frontier drained: full coverage
  std::vector<McViolation> violations;
  std::set<std::string> outcomes;     // all terminal-state labels seen
};

// Explores `config`'s decision space under `options`.
ExploreResult Explore(const McConfig& config, const ExploreOptions& options);

// Greedy trace minimization: drops each decision of `assignment` in
// turn, keeping the removal whenever the run still violates. `runs` (if
// non-null) accumulates the number of replays spent.
Assignment Minimize(const McConfig& config, const Assignment& assignment,
                    std::int64_t* runs);

// Builds the regression .mctrace for a violating run: config lines, the
// assignment, and expect lines pinning the violated outcome.
McTrace MakeTrace(const McConfig& config, const Assignment& assignment,
                  const McRunResult& result);

// Replays `trace` and checks its expect lines. Returns true when every
// expectation holds; `why` (if non-null) explains the first mismatch.
bool ReplayTrace(const McTrace& trace, std::string* why);

// Publishes `result`'s statistics into `metrics` as mc.* counters and
// gauges (panda_bench JSON rides the same registry).
void PublishMetrics(const ExploreResult& result,
                    trace::MetricsRegistry* metrics);

}  // namespace panda::mc
