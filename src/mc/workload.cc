#include "mc/workload.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

#include "panda/panda.h"
#include "util/error.h"

namespace panda::mc {

namespace {

// Salts for the collectives (per array: salt + array index; later
// timesteps add 1000*t so every commit has a distinct pattern). The
// rejoin phase writes fresh patterns so a repaired cluster is verified
// against post-rejoin data, not leftovers.
constexpr std::uint64_t kTimestepSalt = 100;
constexpr std::uint64_t kCheckpointSalt = 500;
constexpr std::uint64_t kRejoinTimestepSalt = 700;
constexpr std::uint64_t kRejoinCheckpointSalt = 900;

constexpr char kGroupName[] = "mc";
constexpr char kSchemaFile[] = "mc.schema";

// splitmix64-style mixer, mirroring tests/test_harness.h so patterns
// written here are the canonical ones.
std::uint64_t PatternValue(std::uint64_t salt, std::uint64_t global_offset) {
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL * (global_offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::int64_t GlobalOffsetOf(const Shape& shape, const Index& idx) {
  std::int64_t off = 0;
  for (int d = 0; d < shape.rank(); ++d) off = off * shape[d] + idx[d];
  return off;
}

void FillPattern(Array& array, std::uint64_t salt) {
  const Region& cell = array.local_region();
  if (cell.empty()) return;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v = PatternValue(
        salt, static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g)));
    std::memcpy(data.data() + n * elem, &v, std::min(elem, sizeof(v)));
    if (elem > sizeof(v)) {
      std::memset(data.data() + n * elem + sizeof(v), 0, elem - sizeof(v));
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
}

std::int64_t CountMismatches(const Array& array, std::uint64_t salt) {
  const Region& cell = array.local_region();
  if (cell.empty()) return 0;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  std::int64_t mismatches = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v = PatternValue(
        salt, static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g)));
    if (std::memcmp(data.data() + n * elem, &v, std::min(elem, sizeof(v))) !=
        0) {
      ++mismatches;
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
  return mismatches;
}

std::string ArrayName(int i) { return "a" + std::to_string(i); }

// Builds the group's arrays for one client, BLOCK-distributed over a
// 1-D client mesh.
std::vector<std::unique_ptr<Array>> MakeArrays(const McConfig& config,
                                               const ArrayLayout& memory,
                                               int client_index) {
  std::vector<std::unique_ptr<Array>> arrays;
  for (int i = 0; i < config.arrays; ++i) {
    arrays.push_back(std::make_unique<Array>(
        ArrayName(i), Shape{config.rows, config.cols}, 8, memory,
        std::vector<Distribution>{BLOCK, NONE}, memory,
        std::vector<Distribution>{BLOCK, NONE}));
    arrays.back()->BindClient(client_index);
  }
  return arrays;
}

std::uint64_t FnvMix(std::uint64_t h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t HashFile(std::uint64_t h, FileSystem& fs,
                       const std::string& name) {
  if (!fs.Exists(name)) return h;
  std::unique_ptr<File> file = fs.Open(name, OpenMode::kRead);
  std::vector<std::byte> bytes(static_cast<size_t>(file->Size()));
  file->ReadAt(0, bytes, static_cast<std::int64_t>(bytes.size()));
  h = FnvMix(h, name.data(), name.size());
  h = FnvMix(h, bytes.data(), bytes.size());
  return h;
}

std::string JoinInts(const std::vector<int>& values) {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  return out.str();
}

std::vector<int> ParseIntCsv(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

bool ParseBool(const std::string& value) {
  return value == "1" || value == "true";
}

}  // namespace

std::vector<std::pair<std::string, std::string>> McConfig::ToConfigLines()
    const {
  std::vector<std::pair<std::string, std::string>> lines;
  const auto add = [&](const std::string& key, const std::string& value) {
    lines.emplace_back(key, value);
  };
  add("clients", std::to_string(clients));
  add("servers", std::to_string(servers));
  add("arrays", std::to_string(arrays));
  add("rows", std::to_string(rows));
  add("cols", std::to_string(cols));
  add("subchunk", std::to_string(subchunk_bytes));
  add("timesteps", std::to_string(timesteps));
  add("drop", drop ? "1" : "0");
  add("dup", dup ? "1" : "0");
  add("reorder", reorder ? "1" : "0");
  add("delay", delay ? "1" : "0");
  add("kill_servers", JoinInts(kill_servers));
  add("kill_lo", std::to_string(kill_lo));
  add("kill_hi", std::to_string(kill_hi));
  add("deliver", deliver_choices ? "1" : "0");
  add("rejoin", rejoin ? "1" : "0");
  add("max_faults", std::to_string(max_faults));
  add("max_kills", std::to_string(max_kills));
  add("expect_no_aborts", expect_no_aborts ? "1" : "0");
  return lines;
}

McConfig McConfig::FromConfigLines(
    const std::vector<std::pair<std::string, std::string>>& lines) {
  McConfig config;
  for (const auto& [key, value] : lines) {
    if (key == "clients") config.clients = std::stoi(value);
    else if (key == "servers") config.servers = std::stoi(value);
    else if (key == "arrays") config.arrays = std::stoi(value);
    else if (key == "rows") config.rows = std::stoi(value);
    else if (key == "cols") config.cols = std::stoi(value);
    else if (key == "subchunk") config.subchunk_bytes = std::stoll(value);
    else if (key == "timesteps") config.timesteps = std::stoi(value);
    else if (key == "drop") config.drop = ParseBool(value);
    else if (key == "dup") config.dup = ParseBool(value);
    else if (key == "reorder") config.reorder = ParseBool(value);
    else if (key == "delay") config.delay = ParseBool(value);
    else if (key == "kill_servers") config.kill_servers = ParseIntCsv(value);
    else if (key == "kill_lo") config.kill_lo = std::stoll(value);
    else if (key == "kill_hi") config.kill_hi = std::stoll(value);
    else if (key == "deliver") config.deliver_choices = ParseBool(value);
    else if (key == "rejoin") config.rejoin = ParseBool(value);
    else if (key == "max_faults") config.max_faults = std::stoi(value);
    else if (key == "max_kills") config.max_kills = std::stoi(value);
    else if (key == "expect_no_aborts")
      config.expect_no_aborts = ParseBool(value);
    else
      throw PandaError("mc config: unknown key '" + key + "'");
  }
  return config;
}

std::string McRunResult::Outcome() const {
  std::ostringstream out;
  out << "p=" << JoinInts(progress) << " a=" << JoinInts(aborted)
      << " dead=" << JoinInts(dead_servers)
      << " ckpt=" << (checkpoint_committed ? 1 : 0)
      << " meta=" << (meta_exists ? (meta_parses ? "ok" : "torn") : "none")
      << " hash=" << std::hex << data_hash << std::dec
      << " viol=" << violations.size();
  if (rejoin_attempted) {
    out << " rj_p=" << JoinInts(rejoin_progress)
        << " rj_a=" << JoinInts(rejoin_aborted)
        << " rj_dead=" << JoinInts(dead_after_rejoin)
        << " epoch=" << layout_epoch;
  }
  return out.str();
}

McRunResult RunWorkload(const McConfig& config, const Assignment& forced,
                        std::uint64_t random_seed) {
  McRunResult result;
  result.progress.assign(static_cast<size_t>(config.clients), 0);
  result.aborted.assign(static_cast<size_t>(config.clients), 0);

  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = config.subchunk_bytes;
  Machine machine = Machine::Simulated(config.clients, config.servers, params,
                                       /*store_data=*/true,
                                       /*timing_only=*/false);
  // Kill-probing runs hit many dead-peer TryRecv timeouts; the default
  // 50 ms wall grace per probe would dominate exploration time.
  machine.transport().SetTryRecvGraceMs(5);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});

  if (config.HasLossSurface()) {
    LossSpec loss;
    loss.seed = 1;
    loss.always_reliable = true;
    // Nonzero probabilities arm the corresponding bits of the choice
    // mask; the decider, not the RNG, picks the verdicts. The burst
    // caps are opened wide so the decision surface is budget-limited
    // (statically by the explorer), not cap-limited.
    if (config.drop) loss.drop_prob = 0.5;
    if (config.dup) loss.dup_prob = 0.5;
    if (config.reorder) loss.reorder_prob = 0.5;
    if (config.delay) loss.delay_prob = 0.5;
    loss.max_consecutive_faults = 1 << 20;
    loss.min_clean_after_fault = 0;
    loss.max_faults_total = -1;
    machine.SetLoss(loss);
  }

  GateOptions gate;
  for (const int s : config.kill_servers) {
    gate.kill_ranks.push_back(machine.server_rank(s));
  }
  gate.kill_window_lo = config.kill_lo;
  gate.kill_window_hi = config.kill_hi;
  gate.surface_delivery = config.deliver_choices;
  gate.max_kills = config.max_kills;
  gate.max_faults = config.max_faults;
  RecordingDecider decider(gate, forced, random_seed);
  machine.SetChoiceDecider(&decider);

  const World world{config.clients, config.servers};
  ServerOptions options;
  options.failover = true;
  options.disk_checksums = true;
  options.journal = true;
  options.robustness = &machine.robustness();

  ArrayLayout memory("m", {config.clients});
  try {
    machine.Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, machine.params());
          client.set_robustness(&machine.robustness());
          client.set_failover(true);
          auto arrays = MakeArrays(config, memory, idx);
          ArrayGroup group(kGroupName, kSchemaFile);
          for (auto& a : arrays) group.Include(a.get());
          try {
            for (int t = 0; t < config.timesteps; ++t) {
              for (int i = 0; i < config.arrays; ++i) {
                FillPattern(*arrays[static_cast<size_t>(i)],
                            kTimestepSalt + static_cast<std::uint64_t>(i) +
                                1000ULL * static_cast<std::uint64_t>(t));
              }
              group.Timestep(client);
              if (t > 0) continue;
              result.progress[static_cast<size_t>(idx)] = 1;
              if (idx == 0) {
                // The layout the first commit was written under: which
                // servers had already crash-stopped when the master
                // client saw the timestep complete. Causally ordered
                // after the commit, so stable across replays except for
                // kills racing the completion fan-out (conservative:
                // such runs skip invariant 3).
                for (int s = 0; s < config.servers; ++s) {
                  if (!machine.transport().alive(machine.server_rank(s))) {
                    result.dead_at_first_commit.push_back(s);
                  }
                }
              }
            }
            for (int i = 0; i < config.arrays; ++i) {
              FillPattern(*arrays[static_cast<size_t>(i)],
                          kCheckpointSalt + static_cast<std::uint64_t>(i));
            }
            group.Checkpoint(client);
            result.progress[static_cast<size_t>(idx)] = 2;
          } catch (const PandaAbortError&) {
            result.aborted[static_cast<size_t>(idx)] = 1;
          }
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int server_index) {
          ServerMain(ep, machine.server_fs(server_index), world,
                     machine.params(), options);
        });
  } catch (const PandaAbortError&) {
    result.run_aborted = true;
  } catch (const PandaError& e) {
    result.run_error = e.what();
    result.violations.push_back(std::string("run error: ") + e.what());
  }

  for (int s = 0; s < config.servers; ++s) {
    if (!machine.transport().alive(machine.server_rank(s))) {
      result.dead_servers.push_back(s);
    }
  }
  result.checkpoint_committed = result.progress[0] >= 2;
  result.completed =
      result.run_error.empty() &&
      std::all_of(result.progress.begin(), result.progress.end(),
                  [](int p) { return p >= 2; }) &&
      std::none_of(result.aborted.begin(), result.aborted.end(),
                   [](int a) { return a != 0; });

  // --- Rejoin phase (config.rejoin) ----------------------------------
  // Eligible only when the main run left a stable, committed degraded
  // state: no aborts, a committed checkpoint, a non-empty dead set the
  // master survived, all commits under ONE layout, and metadata that
  // records exactly that dead set. Anything else either cannot rejoin
  // by design (master death is fatal) or spans two layouts, which the
  // offline verifiers already refuse.
  std::vector<int> rejoin_resume_failed(static_cast<size_t>(config.clients),
                                        0);
  if (config.rejoin && result.checkpoint_committed &&
      !result.dead_servers.empty() && result.run_error.empty() &&
      !result.run_aborted &&
      std::none_of(result.aborted.begin(), result.aborted.end(),
                   [](int a) { return a != 0; }) &&
      std::find(result.dead_servers.begin(), result.dead_servers.end(), 0) ==
          result.dead_servers.end() &&
      result.dead_at_first_commit == result.dead_servers) {
    bool meta_matches = false;
    try {
      const GroupMeta pre =
          ReadGroupMeta(machine.server_fs(0), kSchemaFile);
      meta_matches =
          ParseDeadServersAttr(pre.attributes) == result.dead_servers;
    } catch (const PandaError&) {
      meta_matches = false;
    }
    if (meta_matches) {
      result.rejoin_attempted = true;
      result.rejoin_progress.assign(static_cast<size_t>(config.clients), 0);
      result.rejoin_aborted.assign(static_cast<size_t>(config.clients), 0);
      // Disarm loss for the rejoin run (its per-link resequencing state
      // belongs to the first run); kill and delivery choice points stay
      // armed, and the decider stays attached — the explorer branches
      // on faults during rejoin too (kill -> rejoin -> re-kill).
      machine.SetLoss(LossSpec{});
      machine.ResetForRejoin();
      for (const int s : result.dead_servers) machine.RestartServer(s);
      try {
        machine.Run(
            [&](Endpoint& ep, int idx) {
              PandaClient client(ep, world, machine.params());
              client.set_robustness(&machine.robustness());
              client.set_failover(true);
              auto arrays = MakeArrays(config, memory, idx);
              ArrayGroup group(kGroupName, kSchemaFile);
              for (auto& a : arrays) group.Include(a.get());
              try {
                if (!group.Resume(client)) {
                  rejoin_resume_failed[static_cast<size_t>(idx)] = 1;
                } else {
                  for (int i = 0; i < config.arrays; ++i) {
                    FillPattern(*arrays[static_cast<size_t>(i)],
                                kRejoinTimestepSalt +
                                    static_cast<std::uint64_t>(i));
                  }
                  group.Timestep(client);
                  result.rejoin_progress[static_cast<size_t>(idx)] = 1;
                  for (int i = 0; i < config.arrays; ++i) {
                    FillPattern(*arrays[static_cast<size_t>(i)],
                                kRejoinCheckpointSalt +
                                    static_cast<std::uint64_t>(i));
                  }
                  group.Checkpoint(client);
                  result.rejoin_progress[static_cast<size_t>(idx)] = 2;
                }
              } catch (const PandaAbortError&) {
                result.rejoin_aborted[static_cast<size_t>(idx)] = 1;
              }
              if (idx == 0) client.Shutdown();
            },
            [&](Endpoint& ep, int server_index) {
              ServerMain(ep, machine.server_fs(server_index), world,
                         machine.params(), options);
            });
      } catch (const PandaAbortError&) {
        result.rejoin_run_aborted = true;
      } catch (const PandaError& e) {
        result.rejoin_run_error = e.what();
        result.violations.push_back(std::string("rejoin run error: ") +
                                    e.what());
      }
      for (int s = 0; s < config.servers; ++s) {
        if (!machine.transport().alive(machine.server_rank(s))) {
          result.dead_after_rejoin.push_back(s);
        }
      }
    }
  }

  // The branching trail covers the main run and the rejoin phase; only
  // the invariant-2 restart below runs with the decider detached.
  result.trail = decider.Trail();
  result.unreached_forced = decider.unreached_forced();
  result.anomalies = decider.anomalies();
  if (result.anomalies > 0) {
    result.violations.push_back("choice-point key surfaced twice (seam bug)");
  }
  machine.SetChoiceDecider(nullptr);

  // --- Invariant 1: outcome coherence --------------------------------
  if (result.run_error.empty()) {
    const int aborted_count = static_cast<int>(
        std::count_if(result.aborted.begin(), result.aborted.end(),
                      [](int a) { return a != 0; }));
    if (aborted_count > 0 && aborted_count < config.clients) {
      result.violations.push_back(
          "coherence: clients split between abort and success (aborted=" +
          JoinInts(result.aborted) + " progress=" + JoinInts(result.progress) +
          ")");
    }
    if (aborted_count == 0 &&
        std::any_of(result.progress.begin(), result.progress.end(),
                    [](int p) { return p < 2; })) {
      result.violations.push_back(
          "coherence: no abort anywhere yet a client stalled (progress=" +
          JoinInts(result.progress) + ")");
    }
  }

  // Invariant 1 again for the rejoin run: a revived cluster must not
  // split between abort and success either.
  const bool rejoin_no_aborts =
      result.rejoin_attempted && !result.rejoin_run_aborted &&
      std::none_of(result.rejoin_aborted.begin(), result.rejoin_aborted.end(),
                   [](int a) { return a != 0; });
  if (result.rejoin_attempted && result.rejoin_run_error.empty()) {
    const int rj_aborts = static_cast<int>(
        std::count_if(result.rejoin_aborted.begin(),
                      result.rejoin_aborted.end(),
                      [](int a) { return a != 0; }));
    if (rj_aborts > 0 && rj_aborts < config.clients) {
      result.violations.push_back(
          "rejoin coherence: clients split between abort and success "
          "(aborted=" + JoinInts(result.rejoin_aborted) +
          " progress=" + JoinInts(result.rejoin_progress) + ")");
    }
    const bool any_resume_failed =
        std::any_of(rejoin_resume_failed.begin(), rejoin_resume_failed.end(),
                    [](int f) { return f != 0; });
    if (rj_aborts == 0 && any_resume_failed) {
      result.violations.push_back(
          "rejoin: a client could not resume the committed group");
    }
    if (rj_aborts == 0 && !any_resume_failed &&
        std::any_of(result.rejoin_progress.begin(),
                    result.rejoin_progress.end(),
                    [](int p) { return p < 2; })) {
      result.violations.push_back(
          "rejoin coherence: no abort anywhere yet a client stalled "
          "(progress=" + JoinInts(result.rejoin_progress) + ")");
    }
  }

  if (config.expect_no_aborts) {
    const bool any_abort =
        result.run_aborted ||
        std::any_of(result.aborted.begin(), result.aborted.end(),
                    [](int a) { return a != 0; });
    if (any_abort) {
      result.violations.push_back("expect_no_aborts: a client aborted");
    }
  }

  // --- Invariant 4: no torn group metadata ---------------------------
  FileSystem& master_fs = machine.server_fs(0);
  result.meta_exists = master_fs.Exists(kSchemaFile);
  GroupMeta meta;
  if (result.meta_exists) {
    try {
      meta = ReadGroupMeta(master_fs, kSchemaFile);
      result.meta_parses = true;
      result.meta_dead_servers = ParseDeadServersAttr(meta.attributes);
      result.layout_epoch = ParseLayoutEpochAttr(meta.attributes);
    } catch (const PandaError& e) {
      result.violations.push_back(std::string("torn metadata: ") + e.what());
    }
  }
  // The recorded dead set may lag a rejoin (repair not yet committed)
  // but must never name a server that was not killed in SOME run.
  std::vector<int> ever_killed = result.dead_servers;
  for (const int s : result.dead_after_rejoin) {
    if (std::find(ever_killed.begin(), ever_killed.end(), s) ==
        ever_killed.end()) {
      ever_killed.push_back(s);
    }
  }
  for (const int s : result.meta_dead_servers) {
    if (std::find(ever_killed.begin(), ever_killed.end(), s) ==
        ever_killed.end()) {
      result.violations.push_back(
          "metadata records server " + std::to_string(s) +
          " dead but it was never killed");
    }
  }
  if (result.completed && !result.meta_parses) {
    result.violations.push_back(
        "all clients completed but no committed group metadata");
  }

  // --- Rejoin repair invariants --------------------------------------
  // A clean rejoin run (every client resumed and committed, nobody was
  // re-killed) must leave the group fully repaired: the dead set
  // cleared from metadata and the layout epoch bumped past the degraded
  // generation.
  const bool rejoin_clean =
      result.rejoin_attempted && result.rejoin_run_error.empty() &&
      rejoin_no_aborts && result.dead_after_rejoin.empty() &&
      std::none_of(rejoin_resume_failed.begin(), rejoin_resume_failed.end(),
                   [](int f) { return f != 0; }) &&
      std::all_of(result.rejoin_progress.begin(), result.rejoin_progress.end(),
                  [](int p) { return p >= 2; });
  if (rejoin_clean) {
    if (!result.meta_parses) {
      result.violations.push_back(
          "rejoin: clean rejoin run but group metadata missing or torn");
    } else {
      if (!result.meta_dead_servers.empty()) {
        result.violations.push_back(
            "rejoin: metadata still records dead servers (" +
            JoinInts(result.meta_dead_servers) + ") after a clean rejoin");
      }
      if (result.layout_epoch < 1) {
        result.violations.push_back(
            "rejoin: layout epoch not bumped by the repair (epoch=" +
            std::to_string(result.layout_epoch) + ")");
      }
    }
  }

  // --- Invariant 3: offline fsck clean -------------------------------
  std::vector<FileSystem*> all_fs;
  for (int s = 0; s < config.servers; ++s) {
    all_fs.push_back(&machine.server_fs(s));
  }
  // After a rejoin attempt only a fully clean second run has one
  // describable layout (the repaired identity one); a re-killed run 2
  // spans generations again and is out of offline-verification scope.
  result.fsck_checked =
      result.rejoin_attempted
          ? (rejoin_clean && result.meta_parses &&
             result.meta_dead_servers.empty())
          : (result.meta_parses &&
             (!config.HasKillSurface() ||
              (result.progress[0] >= 1 &&
               result.dead_at_first_commit == result.dead_servers &&
               result.meta_dead_servers == result.dead_servers)));
  if (result.fsck_checked) {
    std::string log;
    const IntegrityReport crcs =
        VerifyGroupChecksums(all_fs, meta, config.subchunk_bytes, &log);
    if (!crcs.Clean()) {
      result.violations.push_back("fsck checksums: " + log);
    }
    log.clear();
    const JournalReport wal =
        VerifyGroupJournal(all_fs, meta, config.subchunk_bytes, &log);
    if (!wal.Clean()) {
      result.violations.push_back("fsck journal: " + log);
    }
    log.clear();
    const FrameReport frames =
        VerifyGroupFrames(all_fs, meta, config.subchunk_bytes, &log);
    if (!frames.Clean()) {
      result.violations.push_back("fsck frames: " + log);
    }
  }

  // Data hash over every file this workload can have committed, for
  // terminal-state dedup (deterministic: file bytes are a function of
  // the decision assignment).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int s = 0; s < config.servers; ++s) {
    FileSystem& fs = machine.server_fs(s);
    h = HashFile(h, fs, kSchemaFile);
    for (int i = 0; i < config.arrays; ++i) {
      for (const Purpose purpose :
           {Purpose::kGeneral, Purpose::kTimestep, Purpose::kCheckpoint}) {
        h = HashFile(h, fs, DataFileName(kGroupName, ArrayName(i), purpose, s));
      }
    }
  }
  result.data_hash = h;

  // --- Invariant 2: committed checkpoint restorable ------------------
  // Preconditions: the master client saw Checkpoint() commit; the
  // master i/o node survived (its death is fatal by design); and no
  // server died *after* the commit (a crash-stopped node's local files
  // are genuinely lost — the protocol only promises checkpoints written
  // under the layout that excludes the recorded dead set; see
  // docs/MODEL_CHECKING.md). When a rejoin run re-checkpointed, the
  // latest commit is the rejoin one: verify against its salt and
  // against the POST-rejoin dead set.
  const bool rejoin_ckpt = result.rejoin_attempted &&
                           !result.rejoin_progress.empty() &&
                           result.rejoin_progress[0] >= 2;
  const std::vector<int>& final_dead =
      result.rejoin_attempted ? result.dead_after_rejoin
                              : result.dead_servers;
  const std::uint64_t restart_salt =
      rejoin_ckpt ? kRejoinCheckpointSalt : kCheckpointSalt;
  if (result.checkpoint_committed || rejoin_ckpt) {
    if (!result.meta_parses || !meta.has_checkpoint) {
      result.violations.push_back(
          "checkpoint committed but metadata records none");
    } else if (std::find(final_dead.begin(), final_dead.end(), 0) ==
                   final_dead.end() &&
               result.meta_dead_servers == final_dead) {
      result.restart_checked = true;
      machine.SetLoss(LossSpec{});  // clean wire for the recovery run
      machine.ResetForRecovery();
      std::vector<std::int64_t> mismatches(
          static_cast<size_t>(config.clients), 0);
      std::vector<int> resume_failed(static_cast<size_t>(config.clients), 0);
      try {
        machine.Run(
            [&](Endpoint& ep, int idx) {
              PandaClient client(ep, world, machine.params());
              client.set_robustness(&machine.robustness());
              client.set_failover(true);
              auto arrays = MakeArrays(config, memory, idx);
              ArrayGroup group(kGroupName, kSchemaFile);
              for (auto& a : arrays) group.Include(a.get());
              if (!group.Resume(client)) {
                resume_failed[static_cast<size_t>(idx)] = 1;
              } else {
                group.Restart(client);
                for (int i = 0; i < config.arrays; ++i) {
                  mismatches[static_cast<size_t>(idx)] += CountMismatches(
                      *arrays[static_cast<size_t>(i)],
                      restart_salt + static_cast<std::uint64_t>(i));
                }
              }
              if (idx == 0) client.Shutdown();
            },
            [&](Endpoint& ep, int server_index) {
              ServerMain(ep, machine.server_fs(server_index), world,
                         machine.params(), options);
            });
        for (int c = 0; c < config.clients; ++c) {
          if (resume_failed[static_cast<size_t>(c)] != 0) {
            result.violations.push_back(
                "restart: client " + std::to_string(c) +
                " found no resumable metadata");
          } else if (mismatches[static_cast<size_t>(c)] != 0) {
            result.violations.push_back(
                "restart: client " + std::to_string(c) + " read " +
                std::to_string(mismatches[static_cast<size_t>(c)]) +
                " corrupt checkpoint elements");
          }
        }
      } catch (const std::exception& e) {
        result.violations.push_back(std::string("restart failed: ") +
                                    e.what());
      }
    }
  }

  return result;
}

}  // namespace panda::mc
