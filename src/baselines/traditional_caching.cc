#include "baselines/traditional_caching.h"

#include <vector>

#include "baselines/baseline_util.h"
#include "iosim/block_cache.h"
#include "msg/hb.h"
#include "util/codec.h"

namespace panda {
namespace {

// Command wire format: op (0=write, 1=done), offset, bytes.
Message CommandMessage(std::uint8_t op, std::int64_t offset,
                       std::int64_t bytes) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::uint8_t>(op);
  enc.Put<std::int64_t>(offset);
  enc.Put<std::int64_t>(bytes);
  msg.SetVirtualPayload(op == 0 ? bytes : 0);
  return msg;
}

}  // namespace

double CachingWriteClient(Endpoint& ep, const World& world,
                          const Sp2Params& params, const ArrayMeta& meta,
                          const CachingOptions& options) {
  (void)params;
  PANDA_REQUIRE(ep.timing_only(),
                "the caching baseline is a timing model; run it timing-only");
  const double start = ep.clock().Now();
  const Region cell = meta.memory.CellRegion(ep.rank());

  // Independent strided writes: one i/o request per run x stripe extent,
  // issued in this client's natural (row-major) order. No cooperation,
  // no global ordering — exactly what the paper argues against.
  ForEachRowMajorRun(
      meta.memory.array_shape(), cell, [&](const RowMajorRun& run) {
        const std::int64_t byte_off = run.global_offset * meta.elem_size;
        const std::int64_t byte_len = run.elems * meta.elem_size;
        ForEachStripeExtent(
            byte_off, byte_len, options.stripe_bytes, world.num_servers,
            [&](int server, std::int64_t local_off, std::int64_t n) {
              ep.Send(world.server_rank(server), kTagIoCommand,
                      CommandMessage(0, local_off, n));
            });
      });
  for (int s = 0; s < world.num_servers; ++s) {
    ep.Send(world.server_rank(s), kTagIoCommand, CommandMessage(1, 0, 0));
  }

  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void CachingWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                        const Sp2Params& params, const ArrayMeta& meta,
                        const CachingOptions& options) {
  (void)params;
  hb::StampAccess(&fs, "baselines.caching.fs", /*is_write=*/true);
  auto file = fs.Open("striped." + meta.name + "." +
                          std::to_string(ep.rank() - world.num_clients),
                      OpenMode::kWrite);
  BlockCache::Options copt;
  copt.block_bytes = options.block_bytes;
  copt.capacity_blocks = options.cache_capacity_blocks;
  BlockCache cache(file.get(), copt);

  // Serve clients round-robin (a deterministic proxy for arrival order):
  // requests are applied as they come, with no reordering — traditional
  // caching has no plan to reorder by.
  std::vector<bool> done(static_cast<size_t>(world.num_clients), false);
  int active = world.num_clients;
  while (active > 0) {
    for (int c = 0; c < world.num_clients; ++c) {
      if (done[static_cast<size_t>(c)]) continue;
      Message msg = ep.Recv(c, kTagIoCommand);
      Decoder dec(msg.header);
      const auto op = dec.Get<std::uint8_t>();
      const auto offset = dec.Get<std::int64_t>();
      const auto bytes = dec.Get<std::int64_t>();
      if (op == 1) {
        done[static_cast<size_t>(c)] = true;
        --active;
        continue;
      }
      cache.WriteAt(offset, {}, bytes);
    }
  }
  cache.Flush();
  WorldBarrier(ep, world);
}

double CachingReadClient(Endpoint& ep, const World& world,
                         const Sp2Params& params, const ArrayMeta& meta,
                         const CachingOptions& options) {
  (void)params;
  PANDA_REQUIRE(ep.timing_only(),
                "the caching baseline is a timing model; run it timing-only");
  const double start = ep.clock().Now();
  const Region cell = meta.memory.CellRegion(ep.rank());

  // Blocking request/reply per extent: the client cannot overlap its own
  // reads (no collective interface, no async i/o — the mid-90s default).
  ForEachRowMajorRun(
      meta.memory.array_shape(), cell, [&](const RowMajorRun& run) {
        const std::int64_t byte_off = run.global_offset * meta.elem_size;
        const std::int64_t byte_len = run.elems * meta.elem_size;
        ForEachStripeExtent(
            byte_off, byte_len, options.stripe_bytes, world.num_servers,
            [&](int server, std::int64_t local_off, std::int64_t n) {
              Message cmd;
              Encoder enc(cmd.header);
              enc.Put<std::uint8_t>(2);  // op 2 = read
              enc.Put<std::int64_t>(local_off);
              enc.Put<std::int64_t>(n);
              ep.Send(world.server_rank(server), kTagIoCommand,
                      std::move(cmd));
              (void)ep.Recv(world.server_rank(server), kTagIoReply);
            });
      });
  for (int s = 0; s < world.num_servers; ++s) {
    ep.Send(world.server_rank(s), kTagIoCommand, CommandMessage(1, 0, 0));
  }
  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void CachingReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                       const Sp2Params& params, const ArrayMeta& meta,
                       const CachingOptions& options) {
  (void)params;
  hb::StampAccess(&fs, "baselines.caching.fs", /*is_write=*/true);
  auto file = fs.Open("striped." + meta.name + "." +
                          std::to_string(world.server_index(ep.rank())),
                      OpenMode::kReadWrite);
  // Pre-size the striped file so reads have something to fetch
  // (write-phase and read-phase benches run independently).
  std::int64_t my_bytes = 0;
  ForEachStripeExtent(0, meta.total_bytes(), options.stripe_bytes,
                      world.num_servers,
                      [&](int server, std::int64_t local_off, std::int64_t n) {
                        if (server == world.server_index(ep.rank())) {
                          my_bytes = std::max(my_bytes, local_off + n);
                        }
                      });
  if (file->Size() < my_bytes) file->WriteAt(my_bytes - 1, {}, 1);

  BlockCache::Options copt;
  copt.block_bytes = options.block_bytes;
  copt.capacity_blocks = options.cache_capacity_blocks;
  BlockCache cache(file.get(), copt);

  // Serve commands strictly in arrival order: a blocking round-robin
  // would deadlock (a client waiting for this daemon's reply cannot
  // send the command another daemon's turn is waiting for).
  int active = world.num_clients;
  while (active > 0) {
    Message msg = ep.RecvAny(kTagIoCommand);
    Decoder dec(msg.header);
    const auto op = dec.Get<std::uint8_t>();
    const auto offset = dec.Get<std::int64_t>();
    const auto bytes = dec.Get<std::int64_t>();
    if (op == 1) {
      --active;
      continue;
    }
    PANDA_REQUIRE(op == 2, "caching read daemon got op %u", op);
    cache.ReadAt(offset, {}, bytes);
    Message reply;
    reply.SetVirtualPayload(bytes);
    ep.Send(msg.src, kTagIoReply, std::move(reply));
  }
  WorldBarrier(ep, world);
}

}  // namespace panda
