// Traditional-caching i/o: the CFS-style non-collective baseline.
//
// There is no collective interface and no global plan: each compute node
// independently writes its part of the array into the *traditional
// row-major order* of a shared file that is block-striped across the
// i/o nodes (the CFS/Vesta-era organization). Each i/o node runs a
// passive daemon that applies requests through an LRU block cache with
// sequential prefetch — all the i/o node can do without the semantic
// view a collective interface provides.
//
// A BLOCK,*,..,* memory cell produces long runs and behaves well; a
// multi-dimensional BLOCK decomposition produces short strided runs that
// defeat the cache's coalescing, which is why CFS was observed to reach
// only about half the raw disk bandwidth [Kotz93b].
//
// This baseline is a timing model (payload-elided); it exists to
// reproduce the comparison that motivates server-directed i/o.
#pragma once

#include "iosim/file_system.h"
#include "panda/array.h"
#include "panda/runtime.h"
#include "sp2/params.h"

namespace panda {

struct CachingOptions {
  std::int64_t stripe_bytes = 64 * 1024;  // striping unit of the shared file
  std::int64_t block_bytes = 4 * 1024;    // cache block (AIX block size)
  std::int64_t cache_capacity_blocks = 4096;
};

// Client side: writes this client's cell of `meta` into the striped
// shared file, one command per (run x stripe extent). Returns elapsed
// virtual time. Timing-only (asserts the endpoint is in timing mode).
double CachingWriteClient(Endpoint& ep, const World& world,
                          const Sp2Params& params, const ArrayMeta& meta,
                          const CachingOptions& options);

// Server side: the passive cached i/o daemon for one write collective.
void CachingWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                        const Sp2Params& params, const ArrayMeta& meta,
                        const CachingOptions& options);

// Read counterpart: each client issues one blocking read request per
// (run x stripe extent) and waits for the reply — a POSIX-style read
// loop. The daemon's sequential prefetch helps exactly as much as the
// arrival pattern lets it.
double CachingReadClient(Endpoint& ep, const World& world,
                         const Sp2Params& params, const ArrayMeta& meta,
                         const CachingOptions& options);
void CachingReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                       const Sp2Params& params, const ArrayMeta& meta,
                       const CachingOptions& options);

}  // namespace panda
