// Shared helpers for the baseline (non-server-directed) i/o strategies
// Panda is compared against: two-phase i/o [Bordawekar93], traditional
// caching (CFS-style [Pierce93]) and naive master-gather i/o
// [Galbreath93].
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mdarray/region.h"
#include "msg/collectives.h"
#include "panda/runtime.h"

namespace panda {

// A contiguous run of the global row-major order: `global_offset` is the
// element offset of the run's first element in the whole array.
struct RowMajorRun {
  std::int64_t global_offset = 0;  // elements
  std::int64_t elems = 0;
  Index start;  // first index of the run (innermost dim varies)
};

// Enumerates the maximal contiguous row-major runs of `cell` within the
// global `shape` (one run per combination of the outer dimensions).
// Calls `fn(run)` in ascending global offset order.
void ForEachRowMajorRun(const Shape& shape, const Region& cell,
                        const std::function<void(const RowMajorRun&)>& fn);

// Block-striped placement of a linear byte range over servers (the way
// CFS/Vesta-era parallel file systems stripe a shared file). Splits
// [offset, offset+bytes) into per-server extents of `stripe_bytes` and
// calls fn(server, offset_in_server_file, bytes) in ascending order.
void ForEachStripeExtent(
    std::int64_t offset, std::int64_t bytes, std::int64_t stripe_bytes,
    int num_servers,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn);

// Barrier over every rank (clients and servers) of the world.
void WorldBarrier(Endpoint& ep, const World& world);

// Baseline wire tags (beyond kTagApp so they never collide with Panda's).
enum BaselineTag : int {
  kTagPhase1Piece = kTagApp + 1,  // two-phase: client -> client exchange
  kTagPhase2Data = kTagApp + 2,   // two-phase: client -> server writes
  kTagIoCommand = kTagApp + 3,    // caching/naive: client -> server command
  kTagIoReply = kTagApp + 4,      // server -> client reply
};

}  // namespace panda
