#include "baselines/two_phase.h"

#include <map>
#include <vector>

#include "baselines/baseline_util.h"
#include "mdarray/strided_copy.h"
#include "msg/hb.h"
#include "panda/protocol.h"

namespace panda {
namespace {

int ConformingOwner(int chunk_id, int num_clients) {
  return chunk_id % num_clients;
}

// Header for phase-1 and phase-2 messages: chunk/sub indices + region.
Message PieceMessage(std::int32_t chunk_index, std::int32_t sub_index,
                     std::int32_t piece_index, const Region& region) {
  Message msg;
  Encoder enc(msg.header);
  PieceHeader{0, chunk_index, sub_index, piece_index, region}.EncodeTo(enc);
  return msg;
}

}  // namespace

double TwoPhaseWriteClient(Endpoint& ep, const World& world,
                           const Sp2Params& params, Array& array) {
  PANDA_REQUIRE(array.bound(), "array must be bound");
  const double start = ep.clock().Now();
  const ArrayMeta& meta = array.meta();
  const IoPlan plan(meta, world.num_servers, params.subchunk_bytes);
  const bool timing = ep.timing_only();
  const int me = ep.rank();
  const Region& cell = array.local_region();
  const auto elem = static_cast<size_t>(meta.elem_size);

  // ---- Phase 1: permute so ownership conforms to the disk layout ----
  // Send every piece of every chunk this client holds to the chunk's
  // conforming owner (buffered sends; no deadlock possible).
  for (const ChunkPlan& cp : plan.chunks()) {
    const int owner = ConformingOwner(cp.chunk_id, world.num_clients);
    const Region piece = cell.empty() ? Region(Index::Zeros(cell.rank()),
                                               Index::Zeros(cell.rank()))
                                      : Intersect(cp.region, cell);
    if (piece.empty()) continue;
    const std::int64_t bytes = piece.Volume() * meta.elem_size;
    // Strided gathers out of the local buffer charge reorganization.
    if (!IsContiguousWithin(cell, piece)) {
      ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
    }
    Message msg = PieceMessage(cp.chunk_id, -1, -1, piece);
    if (!timing) {
      std::vector<std::byte> payload(static_cast<size_t>(bytes));
      PackRegion({payload.data(), payload.size()}, array.local_data(), cell,
                 piece, elem);
      msg.SetPayload(std::move(payload));
    } else {
      msg.SetVirtualPayload(bytes);
    }
    ep.Send(owner, kTagPhase1Piece, std::move(msg));
  }

  // Receive and assemble the chunks this client conformingly owns.
  std::map<int, std::vector<std::byte>> owned;  // chunk index -> buffer
  for (size_t ci = 0; ci < plan.chunks().size(); ++ci) {
    const ChunkPlan& cp = plan.chunks()[ci];
    if (ConformingOwner(cp.chunk_id, world.num_clients) != me) continue;
    auto& buf = owned[static_cast<int>(ci)];
    if (!timing) buf.assign(static_cast<size_t>(cp.bytes), std::byte{0});
    // Pieces arrive from holders in ascending holder order (each holder
    // sends its pieces in ascending chunk order, so FIFO matching works).
    for (int holder = 0; holder < world.num_clients; ++holder) {
      const Region holder_cell = meta.memory.CellRegion(holder);
      const Region piece = holder_cell.empty()
                               ? Region(Index::Zeros(cell.rank()),
                                        Index::Zeros(cell.rank()))
                               : Intersect(cp.region, holder_cell);
      if (piece.empty()) continue;
      Message msg = ep.Recv(holder, kTagPhase1Piece);
      Decoder dec(msg.header);
      const PieceHeader h = PieceHeader::Decode(dec);
      PANDA_REQUIRE(h.chunk_index == cp.chunk_id && h.region == piece,
                    "phase-1 piece does not match the plan");
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(cp.region, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      if (!timing) {
        PANDA_REQUIRE(
            static_cast<std::int64_t>(msg.payload.size()) == bytes,
            "phase-1 payload size mismatch");
        UnpackRegion({buf.data(), buf.size()}, cp.region,
                     {msg.payload.data(), msg.payload.size()}, piece, elem);
      }
    }
  }

  // ---- Phase 2: ship conforming chunks to their i/o nodes ----
  for (const auto& [ci, buf] : owned) {
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
    for (size_t si = 0; si < cp.subchunks.size(); ++si) {
      const SubchunkPlan& sp = cp.subchunks[si];
      Message msg = PieceMessage(cp.chunk_id, static_cast<std::int32_t>(si),
                                 -1, sp.region);
      if (!timing) {
        // Sub-chunks are contiguous ranges of the chunk buffer.
        const std::int64_t begin = sp.file_offset - cp.file_offset;
        msg.SetPayload(std::vector<std::byte>(
            buf.begin() + static_cast<std::ptrdiff_t>(begin),
            buf.begin() + static_cast<std::ptrdiff_t>(begin + sp.bytes)));
      } else {
        msg.SetVirtualPayload(sp.bytes);
      }
      ep.Send(world.server_rank(cp.server), kTagPhase2Data, std::move(msg));
    }
  }

  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void TwoPhaseWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                         const Sp2Params& params, const ArrayMeta& meta) {
  const int sidx = ep.rank() - world.num_clients;
  const IoPlan plan(meta, world.num_servers, params.subchunk_bytes);
  const bool timing = ep.timing_only();

  if (!plan.ChunksOfServer(sidx).empty()) {
    hb::StampAccess(&fs, "baselines.two_phase.fs", /*is_write=*/true);
    auto file = fs.Open(DataFileName("", meta.name, Purpose::kGeneral, sidx),
                        OpenMode::kWrite);
    for (const int ci : plan.ChunksOfServer(sidx)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      const int owner = ConformingOwner(cp.chunk_id, world.num_clients);
      for (size_t si = 0; si < cp.subchunks.size(); ++si) {
        const SubchunkPlan& sp = cp.subchunks[si];
        Message msg = ep.Recv(owner, kTagPhase2Data);
        Decoder dec(msg.header);
        const PieceHeader h = PieceHeader::Decode(dec);
        PANDA_REQUIRE(h.chunk_index == cp.chunk_id &&
                          h.sub_index == static_cast<std::int32_t>(si) &&
                          h.region == sp.region,
                      "phase-2 sub-chunk does not match the plan");
        if (!timing) {
          PANDA_REQUIRE(
              static_cast<std::int64_t>(msg.payload.size()) == sp.bytes,
              "phase-2 payload size mismatch");
        }
        file->WriteAt(sp.file_offset, {msg.payload.data(), msg.payload.size()},
                      sp.bytes);
      }
    }
    file->Sync();
  }
  WorldBarrier(ep, world);
}

double TwoPhaseReadClient(Endpoint& ep, const World& world,
                          const Sp2Params& params, Array& array) {
  PANDA_REQUIRE(array.bound(), "array must be bound");
  const double start = ep.clock().Now();
  const ArrayMeta& meta = array.meta();
  const IoPlan plan(meta, world.num_servers, params.subchunk_bytes);
  const bool timing = ep.timing_only();
  const int me = ep.rank();
  const Region& cell = array.local_region();
  const auto elem = static_cast<size_t>(meta.elem_size);

  // ---- Phase 1: conforming owners receive their chunks from the
  // servers (pushed sub-chunk by sub-chunk in plan order). ----
  std::map<int, std::vector<std::byte>> owned;  // chunk index -> buffer
  for (size_t ci = 0; ci < plan.chunks().size(); ++ci) {
    const ChunkPlan& cp = plan.chunks()[ci];
    if (ConformingOwner(cp.chunk_id, world.num_clients) != me) continue;
    auto& buf = owned[static_cast<int>(ci)];
    if (!timing) buf.assign(static_cast<size_t>(cp.bytes), std::byte{0});
    for (size_t si = 0; si < cp.subchunks.size(); ++si) {
      const SubchunkPlan& sp = cp.subchunks[si];
      Message msg = ep.Recv(world.server_rank(cp.server), kTagPhase2Data);
      Decoder dec(msg.header);
      const PieceHeader h = PieceHeader::Decode(dec);
      PANDA_REQUIRE(h.chunk_index == cp.chunk_id && h.region == sp.region,
                    "phase-1 read sub-chunk does not match the plan");
      if (!timing) {
        const std::int64_t begin = sp.file_offset - cp.file_offset;
        PANDA_REQUIRE(
            static_cast<std::int64_t>(msg.payload.size()) == sp.bytes,
            "read sub-chunk payload size mismatch");
        std::copy(msg.payload.begin(), msg.payload.end(),
                  buf.begin() + static_cast<std::ptrdiff_t>(begin));
      }
    }
  }

  // ---- Phase 2: permute pieces from conforming owners to the memory
  // decomposition (buffered pushes, then ordered receives). ----
  for (const auto& [ci, buf] : owned) {
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
    for (int holder = 0; holder < world.num_clients; ++holder) {
      const Region holder_cell = meta.memory.CellRegion(holder);
      const Region piece = holder_cell.empty()
                               ? Region(Index::Zeros(cell.rank()),
                                        Index::Zeros(cell.rank()))
                               : Intersect(cp.region, holder_cell);
      if (piece.empty()) continue;
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(cp.region, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      Message msg = PieceMessage(cp.chunk_id, -1, -1, piece);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(bytes));
        PackRegion({payload.data(), payload.size()}, {buf.data(), buf.size()},
                   cp.region, piece, elem);
        msg.SetPayload(std::move(payload));
      } else {
        msg.SetVirtualPayload(bytes);
      }
      ep.Send(holder, kTagPhase1Piece, std::move(msg));
    }
  }

  // Receive this node's pieces, per chunk in ascending chunk order.
  for (const ChunkPlan& cp : plan.chunks()) {
    const Region piece = cell.empty() ? Region(Index::Zeros(cell.rank()),
                                               Index::Zeros(cell.rank()))
                                      : Intersect(cp.region, cell);
    if (piece.empty()) continue;
    const int owner = ConformingOwner(cp.chunk_id, world.num_clients);
    Message msg = ep.Recv(owner, kTagPhase1Piece);
    Decoder dec(msg.header);
    const PieceHeader h = PieceHeader::Decode(dec);
    PANDA_REQUIRE(h.chunk_index == cp.chunk_id && h.region == piece,
                  "phase-2 read piece does not match the plan");
    const std::int64_t bytes = piece.Volume() * meta.elem_size;
    if (!IsContiguousWithin(cell, piece)) {
      ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
    }
    if (!timing) {
      PANDA_REQUIRE(static_cast<std::int64_t>(msg.payload.size()) == bytes,
                    "read piece payload size mismatch");
      UnpackRegion(array.local_data(), cell,
                   {msg.payload.data(), msg.payload.size()}, piece, elem);
    }
  }

  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void TwoPhaseReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                        const Sp2Params& params, const ArrayMeta& meta) {
  const int sidx = world.server_index(ep.rank());
  const IoPlan plan(meta, world.num_servers, params.subchunk_bytes);
  const bool timing = ep.timing_only();

  if (!plan.ChunksOfServer(sidx).empty()) {
    hb::StampAccess(&fs, "baselines.two_phase.fs", /*is_write=*/false);
    auto file = fs.Open(DataFileName("", meta.name, Purpose::kGeneral, sidx),
                        OpenMode::kRead);
    for (const int ci : plan.ChunksOfServer(sidx)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      const int owner = ConformingOwner(cp.chunk_id, world.num_clients);
      for (size_t si = 0; si < cp.subchunks.size(); ++si) {
        const SubchunkPlan& sp = cp.subchunks[si];
        Message msg = PieceMessage(cp.chunk_id, static_cast<std::int32_t>(si),
                                   -1, sp.region);
        if (!timing) {
          std::vector<std::byte> payload(static_cast<size_t>(sp.bytes));
          file->ReadAt(sp.file_offset, {payload.data(), payload.size()},
                       sp.bytes);
          msg.SetPayload(std::move(payload));
        } else {
          file->ReadAt(sp.file_offset, {}, sp.bytes);
          msg.SetVirtualPayload(sp.bytes);
        }
        ep.Send(owner, kTagPhase2Data, std::move(msg));
      }
    }
  }
  WorldBarrier(ep, world);
}

}  // namespace panda
