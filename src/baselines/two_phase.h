// Two-phase collective i/o [Bordawekar93], the client-directed baseline.
//
// Phase 1: the compute nodes permute the array among themselves so that
// data ownership *conforms* to the disk layout (each conforming owner
// holds one disk chunk, assigned round-robin over the clients).
// Phase 2: each conforming owner ships its chunks, sub-chunk by
// sub-chunk, to the i/o node that stores them; the i/o node writes them
// in arrival order, which is sequential per file by construction.
//
// The resulting files are bit-identical to Panda's (same chunk -> server
// round-robin, same offsets), so a two-phase write can be read back with
// Panda's server-directed read — tests exploit this.
//
// Compared to server-directed i/o, two-phase moves most data twice
// (client->client, then client->server) and needs client memory for the
// conforming copy; the paper's §4 argues this is the price of keeping
// the i/o nodes passive.
#pragma once

#include "iosim/file_system.h"
#include "panda/array.h"
#include "panda/plan.h"
#include "panda/runtime.h"
#include "sp2/params.h"

namespace panda {

// Runs the client side of a two-phase collective write. Every client
// calls it; `array` is this client's bound handle. Returns this
// client's elapsed virtual time (including the completion barrier).
double TwoPhaseWriteClient(Endpoint& ep, const World& world,
                           const Sp2Params& params, Array& array);

// Runs the server side for one two-phase write: a passive i/o daemon
// that receives (offset, bytes) writes for its file and applies them.
void TwoPhaseWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                         const Sp2Params& params, const ArrayMeta& meta);

// Two-phase read: phase 1, each conforming owner receives its chunks
// from the i/o nodes (which read sequentially and push); phase 2, the
// owners permute pieces back to the memory decomposition.
double TwoPhaseReadClient(Endpoint& ep, const World& world,
                          const Sp2Params& params, Array& array);
void TwoPhaseReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                        const Sp2Params& params, const ArrayMeta& meta);

}  // namespace panda
