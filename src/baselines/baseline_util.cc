#include "baselines/baseline_util.h"

#include <algorithm>

#include "util/error.h"

namespace panda {

void ForEachRowMajorRun(const Shape& shape, const Region& cell,
                        const std::function<void(const RowMajorRun&)>& fn) {
  if (cell.empty()) return;
  const int r = shape.rank();
  PANDA_CHECK(cell.rank() == r);

  // Strides of the global array (elements).
  std::int64_t strides[kMaxRank];
  std::int64_t s = 1;
  for (int d = r - 1; d >= 0; --d) {
    strides[d] = s;
    s *= shape[d];
  }

  // A run spans the cell's full innermost extent; when the cell spans
  // the whole innermost dimension(s), runs merge across them. Find the
  // outermost suffix of dimensions fully covered by the cell.
  int first_full = r;  // dims [first_full, r) are fully covered
  while (first_full > 0) {
    const int d = first_full - 1;
    if (cell.lo()[d] == 0 && cell.extent()[d] == shape[d]) {
      --first_full;
    } else {
      break;
    }
  }
  // The run dimension: the innermost not-fully-covered dim, or the whole
  // cell if everything is covered.
  const int run_dim = std::max(0, first_full - 1);

  std::int64_t run_elems = cell.extent()[run_dim];
  for (int d = run_dim + 1; d < r; ++d) run_elems *= shape[d];

  // Iterate outer dims [0, run_dim).
  Shape outer_shape = Index::Zeros(run_dim);
  for (int d = 0; d < run_dim; ++d) outer_shape[d] = cell.extent()[d];

  Index outer = Index::Zeros(run_dim);
  do {
    Index start = Index::Zeros(r);
    for (int d = 0; d < run_dim; ++d) start[d] = cell.lo()[d] + outer[d];
    start[run_dim] = cell.lo()[run_dim];
    for (int d = run_dim + 1; d < r; ++d) start[d] = cell.lo()[d];

    RowMajorRun run;
    run.start = start;
    run.elems = run_elems;
    run.global_offset = 0;
    for (int d = 0; d < r; ++d) run.global_offset += start[d] * strides[d];
    fn(run);
  } while (outer_shape.rank() > 0 && NextIndexRowMajor(outer_shape, outer));
}

void ForEachStripeExtent(
    std::int64_t offset, std::int64_t bytes, std::int64_t stripe_bytes,
    int num_servers,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  PANDA_CHECK(offset >= 0 && bytes >= 0 && stripe_bytes >= 1 &&
              num_servers >= 1);
  std::int64_t pos = offset;
  const std::int64_t end = offset + bytes;
  while (pos < end) {
    const std::int64_t stripe = pos / stripe_bytes;
    const std::int64_t stripe_end = (stripe + 1) * stripe_bytes;
    const std::int64_t n = std::min(end, stripe_end) - pos;
    const int server = static_cast<int>(stripe % num_servers);
    // Offset inside the server's stripe file: full stripes this server
    // already holds, plus the offset within the current stripe.
    const std::int64_t local =
        (stripe / num_servers) * stripe_bytes + (pos - stripe * stripe_bytes);
    fn(server, local, n);
    pos += n;
  }
}

void WorldBarrier(Endpoint& ep, const World& world) {
  // All of this application's clients and servers (the baselines use
  // the default contiguous layout: clients then servers).
  std::vector<int> ranks;
  ranks.reserve(static_cast<size_t>(world.num_clients + world.num_servers));
  int my_index = -1;
  for (int c = 0; c < world.num_clients; ++c) {
    if (world.client_rank(c) == ep.rank()) my_index = static_cast<int>(ranks.size());
    ranks.push_back(world.client_rank(c));
  }
  for (int s = 0; s < world.num_servers; ++s) {
    if (world.server_rank(s) == ep.rank()) my_index = static_cast<int>(ranks.size());
    ranks.push_back(world.server_rank(s));
  }
  Barrier(ep, Group(std::move(ranks), my_index));
}

}  // namespace panda
