// Naive master-gather i/o [Galbreath93]: the simplest baseline.
//
// All compute nodes funnel their data to the master client, which
// assembles the array in traditional order, slab by slab, and streams it
// through a single i/o node. Trivially correct, trivially portable — and
// serialized on the master's link and one disk, which is why it stops
// scaling immediately.
#pragma once

#include "iosim/file_system.h"
#include "panda/array.h"
#include "panda/runtime.h"
#include "sp2/params.h"

namespace panda {

// Client side of a naive gathered write (call on every client). The
// master (client 0) gathers and forwards; the others only send. Returns
// this client's elapsed virtual time.
double NaiveGatherWriteClient(Endpoint& ep, const World& world,
                              const Sp2Params& params, Array& array);

// Server side: only server 0 stores data; all servers join the final
// barrier.
void NaiveGatherWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                            const Sp2Params& params, const ArrayMeta& meta);

// Read counterpart (master-scatter): server 0 streams the file to the
// master client, which carves each slab into pieces and forwards them
// to their holders.
double NaiveScatterReadClient(Endpoint& ep, const World& world,
                              const Sp2Params& params, Array& array);
void NaiveScatterReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                            const Sp2Params& params, const ArrayMeta& meta);

}  // namespace panda
