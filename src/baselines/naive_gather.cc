#include "baselines/naive_gather.h"

#include <vector>

#include "baselines/baseline_util.h"
#include "mdarray/strided_copy.h"
#include "msg/hb.h"
#include "panda/protocol.h"

namespace panda {
namespace {

// The gathered file is the array in traditional order: model it as one
// whole-array "chunk" split into <=1MB slabs.
std::vector<Region> GatherSlabs(const ArrayMeta& meta,
                                std::int64_t subchunk_bytes) {
  return SplitIntoSubchunks(Region::Whole(meta.memory.array_shape()),
                            meta.elem_size, subchunk_bytes);
}

}  // namespace

double NaiveGatherWriteClient(Endpoint& ep, const World& world,
                              const Sp2Params& params, Array& array) {
  PANDA_REQUIRE(array.bound(), "array must be bound");
  const double start = ep.clock().Now();
  const ArrayMeta& meta = array.meta();
  const bool timing = ep.timing_only();
  const auto elem = static_cast<size_t>(meta.elem_size);
  const Region& cell = array.local_region();
  const auto slabs = GatherSlabs(meta, params.subchunk_bytes);
  const int me = ep.rank();

  if (me != 0) {
    // Send this node's piece of each slab to the master, in slab order.
    for (const Region& slab : slabs) {
      const Region piece =
          cell.empty() ? Region(Index::Zeros(cell.rank()),
                                Index::Zeros(cell.rank()))
                       : Intersect(slab, cell);
      if (piece.empty()) continue;
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(cell, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      Message msg;
      Encoder enc(msg.header);
      EncodeRegion(enc, piece);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(bytes));
        PackRegion({payload.data(), payload.size()}, array.local_data(), cell,
                   piece, elem);
        msg.SetPayload(std::move(payload));
      } else {
        msg.SetVirtualPayload(bytes);
      }
      ep.Send(0, kTagIoCommand, std::move(msg));
    }
    WorldBarrier(ep, world);
    return ep.clock().Now() - start;
  }

  // Master: assemble each slab from the holders and forward it to the
  // single i/o node, in file order.
  std::vector<std::byte> buf;
  for (const Region& slab : slabs) {
    const std::int64_t slab_bytes = slab.Volume() * meta.elem_size;
    if (!timing) buf.assign(static_cast<size_t>(slab_bytes), std::byte{0});
    // My own piece first.
    if (!cell.empty()) {
      const Region mine = Intersect(slab, cell);
      if (!mine.empty() && !timing) {
        CopyRegion({buf.data(), buf.size()}, slab, array.local_data(), cell,
                   mine, elem);
      }
    }
    for (int holder = 1; holder < world.num_clients; ++holder) {
      const Region holder_cell = meta.memory.CellRegion(holder);
      const Region piece = holder_cell.empty()
                               ? Region(Index::Zeros(cell.rank()),
                                        Index::Zeros(cell.rank()))
                               : Intersect(slab, holder_cell);
      if (piece.empty()) continue;
      Message msg = ep.Recv(holder, kTagIoCommand);
      Decoder dec(msg.header);
      const Region got = DecodeRegion(dec);
      PANDA_REQUIRE(got == piece, "gathered piece does not match the plan");
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(slab, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      if (!timing) {
        PANDA_REQUIRE(
            static_cast<std::int64_t>(msg.payload.size()) == bytes,
            "gathered payload size mismatch");
        UnpackRegion({buf.data(), buf.size()}, slab,
                     {msg.payload.data(), msg.payload.size()}, piece, elem);
      }
    }
    Message out;
    Encoder enc(out.header);
    EncodeRegion(enc, slab);
    if (!timing) {
      out.SetPayload(buf);
    } else {
      out.SetVirtualPayload(slab_bytes);
    }
    ep.Send(world.server_rank(0), kTagIoCommand, std::move(out));
  }
  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void NaiveGatherWriteServer(Endpoint& ep, FileSystem& fs, const World& world,
                            const Sp2Params& params, const ArrayMeta& meta) {
  const int sidx = ep.rank() - world.num_clients;
  if (sidx == 0) {
    hb::StampAccess(&fs, "baselines.naive.fs", /*is_write=*/true);
    auto file = fs.Open(DataFileName("", meta.name, Purpose::kGeneral, 0),
                        OpenMode::kWrite);
    std::int64_t offset = 0;
    for (const Region& slab : GatherSlabs(meta, params.subchunk_bytes)) {
      const std::int64_t bytes = slab.Volume() * meta.elem_size;
      Message msg = ep.Recv(0, kTagIoCommand);
      Decoder dec(msg.header);
      const Region got = DecodeRegion(dec);
      PANDA_REQUIRE(got == slab, "slab does not match the gather plan");
      file->WriteAt(offset, {msg.payload.data(), msg.payload.size()}, bytes);
      offset += bytes;
    }
    file->Sync();
  }
  WorldBarrier(ep, world);
}

double NaiveScatterReadClient(Endpoint& ep, const World& world,
                              const Sp2Params& params, Array& array) {
  PANDA_REQUIRE(array.bound(), "array must be bound");
  const double start = ep.clock().Now();
  const ArrayMeta& meta = array.meta();
  const bool timing = ep.timing_only();
  const auto elem = static_cast<size_t>(meta.elem_size);
  const Region& cell = array.local_region();
  const auto slabs = GatherSlabs(meta, params.subchunk_bytes);
  const int me = ep.rank();

  if (me != 0) {
    // Receive this node's piece of each slab from the master.
    for (const Region& slab : slabs) {
      const Region piece =
          cell.empty() ? Region(Index::Zeros(cell.rank()),
                                Index::Zeros(cell.rank()))
                       : Intersect(slab, cell);
      if (piece.empty()) continue;
      Message msg = ep.Recv(0, kTagIoReply);
      Decoder dec(msg.header);
      const Region got = DecodeRegion(dec);
      PANDA_REQUIRE(got == piece, "scattered piece does not match the plan");
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(cell, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      if (!timing) {
        PANDA_REQUIRE(
            static_cast<std::int64_t>(msg.payload.size()) == bytes,
            "scattered payload size mismatch");
        UnpackRegion(array.local_data(), cell,
                     {msg.payload.data(), msg.payload.size()}, piece, elem);
      }
    }
    WorldBarrier(ep, world);
    return ep.clock().Now() - start;
  }

  // Master: receive each slab from the single i/o node and scatter it.
  for (const Region& slab : slabs) {
    Message msg = ep.Recv(world.server_rank(0), kTagIoReply);
    Decoder dec(msg.header);
    const Region got = DecodeRegion(dec);
    PANDA_REQUIRE(got == slab, "slab does not match the scatter plan");
    for (int holder = 0; holder < world.num_clients; ++holder) {
      const Region holder_cell = meta.memory.CellRegion(holder);
      const Region piece = holder_cell.empty()
                               ? Region(Index::Zeros(cell.rank()),
                                        Index::Zeros(cell.rank()))
                               : Intersect(slab, holder_cell);
      if (piece.empty()) continue;
      const std::int64_t bytes = piece.Volume() * meta.elem_size;
      if (!IsContiguousWithin(slab, piece)) {
        ep.AdvanceCompute(static_cast<double>(bytes) / params.memcpy_Bps);
      }
      if (holder == 0) {
        if (!timing) {
          CopyRegion(array.local_data(), cell,
                     {msg.payload.data(), msg.payload.size()}, slab, piece,
                     elem);
        }
        continue;
      }
      Message out;
      Encoder enc(out.header);
      EncodeRegion(enc, piece);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(bytes));
        PackRegion({payload.data(), payload.size()},
                   {msg.payload.data(), msg.payload.size()}, slab, piece,
                   elem);
        out.SetPayload(std::move(payload));
      } else {
        out.SetVirtualPayload(bytes);
      }
      ep.Send(holder, kTagIoReply, std::move(out));
    }
  }
  WorldBarrier(ep, world);
  return ep.clock().Now() - start;
}

void NaiveScatterReadServer(Endpoint& ep, FileSystem& fs, const World& world,
                            const Sp2Params& params, const ArrayMeta& meta) {
  const int sidx = world.server_index(ep.rank());
  if (sidx == 0) {
    hb::StampAccess(&fs, "baselines.naive.fs", /*is_write=*/false);
    auto file = fs.Open(DataFileName("", meta.name, Purpose::kGeneral, 0),
                        OpenMode::kRead);
    const bool timing = ep.timing_only();
    std::int64_t offset = 0;
    for (const Region& slab : GatherSlabs(meta, params.subchunk_bytes)) {
      const std::int64_t bytes = slab.Volume() * meta.elem_size;
      Message msg;
      Encoder enc(msg.header);
      EncodeRegion(enc, slab);
      if (!timing) {
        std::vector<std::byte> payload(static_cast<size_t>(bytes));
        file->ReadAt(offset, {payload.data(), payload.size()}, bytes);
        msg.SetPayload(std::move(payload));
      } else {
        file->ReadAt(offset, {}, bytes);
        msg.SetVirtualPayload(bytes);
      }
      offset += bytes;
      ep.Send(world.master_client_rank(), kTagIoReply, std::move(msg));
    }
  }
  WorldBarrier(ep, world);
}

}  // namespace panda
