// Machine parameters: the NAS IBM SP2 of Table 1, plus Panda constants.
//
// These constants drive all virtual-time accounting. The hardware rows
// come straight from Table 1 of the paper; the two starred values are
// calibrated (see EXPERIMENTS.md "Calibration"):
//   * net.per_message_overhead_s — per-message MPI software cost; set so
//     natural-chunking fast-disk runs land near the paper's ~90% of the
//     34 MB/s peak, and the fixed per-collective startup cost lands near
//     the paper's measured ~13 ms.
//   * memcpy_Bps — pack/unpack rate for strided reorganization; set so
//     traditional-order fast-disk writes land inside the paper's
//     38-86% band (Figure 9).
#pragma once

#include <cstdint>

#include "iosim/disk_model.h"
#include "msg/net_model.h"
#include "util/units.h"

namespace panda {

struct Sp2Params {
  NetModel net;
  DiskModel disk;

  // Rate for strided pack/unpack during schema reorganization. Contiguous
  // moves are free in the model: their cost is inside the per-message
  // overhead, matching the paper's "very little processing overhead"
  // observation for natural chunking.
  double memcpy_Bps = 80.0 * kMiB;

  // Local cost of digesting a collective request and forming the i/o
  // plan, charged once per collective on the master server and servers.
  double plan_compute_s = 1.0e-3;

  // Panda breaks chunks into sub-chunks of at most this size (the paper
  // settled on 1 MB after experimentation).
  std::int64_t subchunk_bytes = 1 * kMiB;

  // Codec throughput for the sub-chunk compression pipeline
  // (src/codec/): encode on the producing side (client wire frames,
  // server disk frames), decode on the consuming side. Charged only
  // when an array negotiates a codec — codec=none collectives never
  // touch these. Modeled on mid-90s RS/6000-class byte-shuffling rates:
  // far faster than the ~2 MB/s AIX disk (so compression wins on disk-
  // bound runs) but slow enough to matter on fast-disk sweeps.
  double codec_encode_Bps = 60.0 * kMiB;
  double codec_decode_Bps = 120.0 * kMiB;

  // The machine of Table 1.
  static Sp2Params Nas() {
    Sp2Params p;
    p.net = NetModel{};              // 43 us, 34 MB/s, calibrated overhead
    p.disk = DiskModel::NasSp2Aix();
    return p;
  }

  // Same machine with the "infinitely fast disk" of Figures 5, 6 and 9.
  static Sp2Params NasFastDisk() {
    Sp2Params p = Nas();
    p.disk = DiskModel::Instant();
    return p;
  }

  // Everything free: unit tests that check behaviour, not time.
  static Sp2Params Functional() {
    Sp2Params p;
    p.net = NetModel::Instant();
    p.disk = DiskModel::Instant();
    p.memcpy_Bps = 1e18;
    p.plan_compute_s = 0.0;
    p.codec_encode_Bps = 1e18;
    p.codec_decode_Bps = 1e18;
    return p;
  }
};

}  // namespace panda
