#include "sp2/machine.h"

#include "util/error.h"

namespace panda {

Machine::Machine(int num_clients, int num_servers, Sp2Params params)
    : num_clients_(num_clients),
      num_servers_(num_servers),
      params_(params),
      robustness_(std::make_unique<RobustnessStats>()) {
  PANDA_REQUIRE(num_clients >= 1, "need at least one compute node");
  PANDA_REQUIRE(num_servers >= 1, "need at least one i/o node");
}

Machine Machine::Simulated(int num_clients, int num_servers, Sp2Params params,
                           bool store_data, bool timing_only) {
  Machine m(num_clients, num_servers, params);
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  cfg.timing_only = timing_only;
  m.transport_ =
      std::make_unique<ThreadTransport>(num_clients + num_servers, cfg);
  for (int s = 0; s < num_servers; ++s) {
    SimFileSystem::Options opt;
    opt.disk = params.disk;
    opt.store_data = store_data;
    // Each server's FS charges that server's virtual clock.
    opt.clock = &m.transport_->endpoint(m.server_rank(s)).clock();
    m.server_fs_.push_back(std::make_unique<SimFileSystem>(opt));
  }
  return m;
}

Machine Machine::SimulatedMultiDisk(int num_clients, int num_servers,
                                    Sp2Params params, int disks_per_node,
                                    std::int64_t stripe_bytes,
                                    bool store_data, bool timing_only) {
  Machine m(num_clients, num_servers, params);
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  cfg.timing_only = timing_only;
  m.transport_ =
      std::make_unique<ThreadTransport>(num_clients + num_servers, cfg);
  for (int s = 0; s < num_servers; ++s) {
    StripedFileSystem::Options opt;
    opt.num_disks = disks_per_node;
    opt.stripe_bytes = stripe_bytes;
    opt.disk = params.disk;
    opt.store_data = store_data;
    opt.clock = &m.transport_->endpoint(m.server_rank(s)).clock();
    m.server_fs_.push_back(std::make_unique<StripedFileSystem>(opt));
  }
  return m;
}

Machine Machine::SimulatedObjectStore(int num_clients, int num_servers,
                                      Sp2Params params,
                                      const ObjectStoreModel& model,
                                      bool store_data, bool timing_only) {
  Machine m(num_clients, num_servers, params);
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  cfg.timing_only = timing_only;
  m.transport_ =
      std::make_unique<ThreadTransport>(num_clients + num_servers, cfg);
  for (int s = 0; s < num_servers; ++s) {
    ObjectStoreFileSystem::Options opt;
    opt.model = model;
    opt.model.local = params.disk;
    opt.store_data = store_data;
    opt.clock = &m.transport_->endpoint(m.server_rank(s)).clock();
    m.server_fs_.push_back(std::make_unique<ObjectStoreFileSystem>(opt));
  }
  return m;
}

Machine Machine::WithPosixFs(int num_clients, int num_servers,
                             Sp2Params params, const std::string& root) {
  Machine m(num_clients, num_servers, params);
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  cfg.timing_only = false;
  m.transport_ =
      std::make_unique<ThreadTransport>(num_clients + num_servers, cfg);
  for (int s = 0; s < num_servers; ++s) {
    m.server_fs_.push_back(
        std::make_unique<PosixFileSystem>(root + "/ionode" + std::to_string(s)));
  }
  return m;
}

FileSystem& Machine::server_fs(int s) {
  PANDA_CHECK(s >= 0 && s < num_servers_);
  return *server_fs_[static_cast<size_t>(s)];
}

void Machine::Run(const std::function<void(Endpoint&, int)>& client_main,
                  const std::function<void(Endpoint&, int)>& server_main) {
  transport_->Run([&](Endpoint& ep) {
    if (ep.rank() < num_clients_) {
      client_main(ep, ep.rank());
    } else {
      server_main(ep, ep.rank() - num_clients_);
    }
  });
}

void Machine::ResetClocksAndStats() {
  transport_->ResetClocksAndStats();
  for (auto& fs : server_fs_) fs->ResetStats();
  robustness_->Reset();
}

}  // namespace panda
