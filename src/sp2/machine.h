// Cluster assembly: transport + per-i/o-node file systems + role layout.
//
// A Machine is the reproduction's stand-in for "a partition of the NAS
// SP2": `num_clients` compute nodes followed by `num_servers` i/o nodes,
// each i/o node owning its own AIX-like file system (the SP2 at NAS had
// no parallel file system — Panda used the local AIX FS of each i/o
// node; we replicate that: one FileSystem instance per server).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "iosim/file_system.h"
#include "iosim/object_store.h"
#include "iosim/posix_fs.h"
#include "iosim/retry.h"
#include "iosim/sim_fs.h"
#include "iosim/striped_fs.h"
#include "msg/transport.h"
#include "sp2/params.h"

namespace panda {

class Machine {
 public:
  // Simulated machine for timing sweeps and simulation-backed tests.
  // `store_data` keeps file contents in memory (functional sim).
  static Machine Simulated(int num_clients, int num_servers, Sp2Params params,
                           bool store_data, bool timing_only);

  // Machine over real POSIX directories (one per server) under `root`;
  // used by functional tests and example programs. Timing parameters are
  // still applied to the transport (harmless) but disk time is not
  // modeled.
  static Machine WithPosixFs(int num_clients, int num_servers,
                             Sp2Params params, const std::string& root);

  // Simulated machine whose i/o nodes each have `disks_per_node` local
  // disks with files striped across them (StripedFileSystem) — the
  // multi-disk hardware upgrade explored by bench_multidisk.
  static Machine SimulatedMultiDisk(int num_clients, int num_servers,
                                    Sp2Params params, int disks_per_node,
                                    std::int64_t stripe_bytes,
                                    bool store_data, bool timing_only);

  // Simulated machine whose i/o nodes front a shared object store
  // (ObjectStoreFileSystem): shard files (`*.shard.N`) become
  // whole-object PUT/GET traffic priced by `model`, everything else
  // (metadata, sidecars, journals) stays on the node's local disk
  // model. Pair with ServerOptions::backend = kObjectStore and a
  // shard size from AdviseShardSize.
  static Machine SimulatedObjectStore(int num_clients, int num_servers,
                                      Sp2Params params,
                                      const ObjectStoreModel& model,
                                      bool store_data, bool timing_only);

  int num_clients() const { return num_clients_; }
  int num_servers() const { return num_servers_; }
  const Sp2Params& params() const { return params_; }

  ThreadTransport& transport() { return *transport_; }

  // File system of server `s` (0-based server index).
  FileSystem& server_fs(int s);

  // Machine-wide robustness accounting (retries, checksum failures,
  // aborts). Wire it into ServerOptions::robustness /
  // PandaClient::set_robustness; the report snapshots it.
  RobustnessStats& robustness() { return *robustness_; }

  // --- Fault machinery forwarding (see msg/transport.h) ---

  // Arms the seeded lossy decorator + reliable-delivery layer on the
  // transport. Call before Run().
  void SetLoss(const LossSpec& loss) { transport_->SetLoss(loss); }

  // Configures the modeled heartbeat/lease failure detector.
  void SetHeartbeat(const HeartbeatConfig& heartbeat) {
    transport_->SetHeartbeat(heartbeat);
  }

  // Installs a custom nondeterminism strategy on the transport
  // (msg/choice.h): loss verdicts, kill choice points and any-source
  // delivery picks route through `decider` instead of the seeded
  // adversary. Non-owning; nullptr restores the default. Used by the
  // model checker (src/mc/, docs/MODEL_CHECKING.md).
  void SetChoiceDecider(ChoiceDecider* decider) {
    transport_->SetChoiceDecider(decider);
  }

  // Crash-stops i/o node `server_index` at its (n+1)-th further send:
  // the Panda analogue of kill -9 on one i/o node mid-collective.
  void KillServerAfterSends(int server_index, std::int64_t after_more_sends) {
    transport_->ScheduleKill(server_rank(server_index), after_more_sends);
  }

  // Restarts a crash-stopped i/o node as a new incarnation (between
  // Run() calls). Its file system persists across the crash; its old
  // life's in-flight messages are fenced off (stale_incarnation_dropped
  // counts them). On the next Run() the server boots, replays its
  // journal, and rejoins the group through the master
  // (docs/PROTOCOL.md, "Rejoin").
  void RestartServer(int server_index) {
    transport_->Revive(server_rank(server_index));
  }

  // Live view of the transport's fault counters.
  TransportFaultStats& fault_stats() { return transport_->fault_stats(); }

  // --- Observability (see trace/trace.h, docs/OBSERVABILITY.md) ---

  // Arms span tracing on the transport: every subsequent Run() records
  // client/transport/server/journal/retry spans in virtual time, one
  // recorder per rank. Purely observational — clocks and byte counts are
  // bit-identical to an untraced run.
  void EnableTrace(const trace::TraceOptions& options = {}) {
    transport_->SetTrace(options);
  }

  // The armed collector, or nullptr when tracing is off.
  trace::Collector* trace_collector() { return transport_->trace_collector(); }
  const trace::Collector* trace_collector() const {
    return transport_->trace_collector();
  }

  // --- Analysis hooks (see msg/hb.h, docs/ANALYSIS.md) ---

  // Seeds the schedule-perturbation layer: thread launch order and
  // wall-clock yield jitter are derived from `seed`. Virtual time is
  // never touched — two runs with different seeds must produce
  // bit-identical virtual clocks and file bytes, and hb_race_test
  // asserts exactly that. Call before Run().
  void SetScheduleSeed(std::uint64_t seed) {
    transport_->SetScheduleSeed(seed);
  }

  // The happens-before checker, or nullptr unless built with
  // -DPANDA_HB=ON. Races() is the post-run report.
  hb::Checker* hb_checker() { return transport_->hb_checker(); }
  const hb::Checker* hb_checker() const { return transport_->hb_checker(); }

  // --- Rank scheduler (see src/sched/, docs/SCHEDULER.md) ---

  // Selects how rank mains execute: sched::Backend::kThread (default;
  // one OS thread per rank) or kFiber (cooperative fibers on `workers`
  // carrier threads; 0 = auto). Fibers make --ranks=4096 machines
  // practical; both backends produce bit-identical virtual clocks and
  // file bytes. Falls back to threads where fibers are unsupported
  // (TSan, PANDA_HB builds).
  void SetSchedBackend(sched::Backend backend, int workers = 0) {
    sched::Config config;
    config.backend = backend;
    config.workers = workers;
    transport_->SetScheduler(config);
  }

  // The backend Run() will actually use, and its accumulated counters.
  sched::Backend sched_backend() const { return transport_->sched_backend(); }
  const sched::Stats& sched_stats() const { return transport_->sched_stats(); }

  // Track label for rank `r` in exported traces ("client 0", "ion 2").
  std::string rank_label(int r) const {
    return r < num_clients_ ? ("client " + std::to_string(r))
                            : ("ion " + std::to_string(r - num_clients_));
  }

  // Runs `client_main(endpoint, client_index)` on client ranks and
  // `server_main(endpoint, server_index)` on server ranks.
  void Run(const std::function<void(Endpoint&, int)>& client_main,
           const std::function<void(Endpoint&, int)>& server_main);

  // Rank layout helpers.
  int client_rank(int client_index) const { return client_index; }
  int server_rank(int server_index) const {
    return num_clients_ + server_index;
  }

  // Clears virtual clocks and message/FS statistics between repetitions.
  void ResetClocksAndStats();

  // Simulates restarting the surviving processes on this machine:
  // mailboxes (including abort state), the lossy layer and clocks are
  // wiped; the per-server file systems and death records persist. The
  // model checker's "previous checkpoint restorable" invariant drives a
  // real restart through this (see ThreadTransport::ResetForRecovery).
  void ResetForRecovery() { transport_->ResetForRecovery(); }

  // Between-runs reset for a rejoin phase that continues the same
  // explored execution (model-checker run 2): choice ordinals and fault
  // counters persist; loss must stay disarmed for the next Run() (see
  // ThreadTransport::ResetForRejoin).
  void ResetForRejoin() { transport_->ResetForRejoin(); }

 private:
  Machine(int num_clients, int num_servers, Sp2Params params);

  int num_clients_;
  int num_servers_;
  Sp2Params params_;
  std::unique_ptr<ThreadTransport> transport_;
  std::vector<std::unique_ptr<FileSystem>> server_fs_;
  // unique_ptr (not a value member): the atomics inside make the stats
  // immovable, and Machine is returned by value from its factories.
  std::unique_ptr<RobustnessStats> robustness_;
};

}  // namespace panda
