// Disk / file-system service-time model.
//
// Reproduces the NAS SP2's per-node AIX file system from Table 1 of the
// paper: a 3.0 MB/s raw media rate plus a fixed per-request overhead,
// calibrated so that 1 MB requests deliver exactly the measured peaks
// (2.85 MB/s reads, 2.23 MB/s writes). The fixed overhead term is what
// makes throughput decline for sub-1MB requests, the effect visible at
// the small end of Figures 3-4 and 7-8.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace panda {

struct DiskModel {
  double raw_read_Bps = 3.0 * kMiB;
  double raw_write_Bps = 3.0 * kMiB;
  double read_overhead_s = 0.0;   // per-request (FS + controller + rotational)
  double write_overhead_s = 0.0;  // per-request (block allocation dominates)
  double seek_s = 0.0;            // extra cost when the request is not sequential
  double fsync_s = 0.0;

  double ReadSeconds(std::int64_t bytes, bool sequential) const {
    return read_overhead_s + (sequential ? 0.0 : seek_s) +
           static_cast<double>(bytes) / raw_read_Bps;
  }
  double WriteSeconds(std::int64_t bytes, bool sequential) const {
    return write_overhead_s + (sequential ? 0.0 : seek_s) +
           static_cast<double>(bytes) / raw_write_Bps;
  }

  // Effective throughput of back-to-back sequential requests of `bytes`.
  double ReadThroughput(std::int64_t bytes) const {
    return static_cast<double>(bytes) / ReadSeconds(bytes, /*sequential=*/true);
  }
  double WriteThroughput(std::int64_t bytes) const {
    return static_cast<double>(bytes) / WriteSeconds(bytes, /*sequential=*/true);
  }

  // The NAS SP2 AIX file system (Table 1). Overheads are derived from the
  // measured peaks at 1 MB request size:
  //   ov = 1MB * (1/peak - 1/raw)
  // giving ~17.5 ms/read and ~115 ms/write of per-request overhead.
  static DiskModel NasSp2Aix();

  // A free disk: the paper's "simulated infinitely fast disk" (file
  // system calls commented out) used for Figures 5, 6 and 9.
  static DiskModel Instant() { return {1e18, 1e18, 0.0, 0.0, 0.0, 0.0}; }
};

}  // namespace panda
