// Abstract file system used by Panda servers.
//
// Two implementations exist:
//   * PosixFileSystem - real files under a root directory; used by the
//     functional tests and the example programs.
//   * SimFileSystem   - per-i/o-node simulated AIX file system with
//     virtual-time accounting; used by the paper-reproduction benches.
//
// All data methods carry both a (possibly empty) real byte span and a
// virtual byte count so the same Panda server code runs in functional
// and timing-only modes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace panda {

// Aggregate I/O counters for one file system (one i/o node's disk).
struct FsStats {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t seeks = 0;   // non-sequential requests (simulated FS only)
  std::int64_t syncs = 0;
  double busy_seconds = 0.0;  // modeled device time (simulated FS only)
};

class File {
 public:
  virtual ~File() = default;

  // Writes `vbytes` at `offset`. In functional mode `data.size() ==
  // vbytes`; in timing-only mode `data` is empty and only time/space
  // accounting happens.
  virtual void WriteAt(std::int64_t offset, std::span<const std::byte> data,
                       std::int64_t vbytes) = 0;

  // Reads `vbytes` at `offset` into `out` (empty in timing-only mode).
  virtual void ReadAt(std::int64_t offset, std::span<std::byte> out,
                      std::int64_t vbytes) = 0;

  // Flushes buffered data to stable storage (the paper fsyncs after
  // every collective write).
  virtual void Sync() = 0;

  virtual std::int64_t Size() = 0;
};

enum class OpenMode {
  kRead,      // must exist
  kWrite,     // create or truncate
  kReadWrite, // create if missing, keep contents
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::unique_ptr<File> Open(const std::string& path,
                                     OpenMode mode) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual void Remove(const std::string& path) = 0;

  // Atomically replaces `to` with `from` (from must exist; to may).
  // Panda publishes checkpoints with this, so a crash mid-checkpoint
  // can never destroy the previous one.
  virtual void Rename(const std::string& from, const std::string& to) = 0;

  virtual const FsStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace panda
