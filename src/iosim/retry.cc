#include "iosim/retry.h"

namespace panda {

void RetryPolicy::Run(VirtualClock* clock, RobustnessStats* stats,
                      const std::function<void()>& op) const {
  double backoff = backoff_s;
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return;
    } catch (const TransientIoError&) {
      if (attempt >= max_attempts) {
        if (stats != nullptr) stats->io_giveups.fetch_add(1);
        throw;
      }
      if (stats != nullptr) stats->io_retries.fetch_add(1);
      if (clock != nullptr && backoff > 0.0) clock->Advance(backoff);
      backoff *= backoff_multiplier;
    }
  }
}

}  // namespace panda
