#include "iosim/retry.h"

#include "trace/trace.h"

namespace panda {

void RetryPolicy::Run(VirtualClock* clock, RobustnessStats* stats,
                      const std::function<void()>& op) const {
  // A budget below 1 still runs the operation once: "zero attempts"
  // means zero *retries*, never a silently skipped operation.
  const int budget = max_attempts < 1 ? 1 : max_attempts;
  double backoff = backoff_s;
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return;
    } catch (const TransientIoError&) {
      if (attempt >= budget) {
        if (stats != nullptr) stats->io_giveups.fetch_add(1);
        throw;
      }
      if (stats != nullptr) stats->io_retries.fetch_add(1);
      if (clock != nullptr && backoff > 0.0) {
        const double begin = clock->Now();
        clock->Advance(backoff);
        trace::RecordSpan(trace::SpanKind::kRetryBackoff, begin, clock->Now(),
                          attempt);
      }
      // Saturating growth: never overflows, never exceeds the cap.
      backoff *= backoff_multiplier;
      if (max_backoff_s > 0.0 && backoff > max_backoff_s) {
        backoff = max_backoff_s;
      }
    }
  }
}

}  // namespace panda
