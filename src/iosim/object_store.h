// Simulated object-store backend for i/o nodes.
//
// Models a modern disaggregated store next to the 1995 AIX disk model:
// objects move whole (PUT/GET), every request pays a fixed round-trip
// latency that dwarfs the per-byte cost, and the store accepts many
// requests in parallel (`channels` concurrent connections per node) —
// the exact inverse of the local disk's profile (cheap ops, one
// spindle). There is no partial overwrite: updating part of an object
// costs a whole-object read-modify-write.
//
// Shard files (any path containing ".shard.", including ".tmp"/".repair"
// staging names) are objects. Everything else — journals, checksum
// sidecars, schema metadata, flat data files — lives on the node-local
// disk and is charged through the classic DiskModel, which is how real
// burst-buffer deployments split small hot metadata from bulk data.
//
// Timing semantics:
//   * PUT (whole-object write) is asynchronous: the caller pays a small
//     issue cost and the transfer occupies the least-busy channel;
//     File::Sync() drains all channels (durability barrier). This is
//     what lets N shards flush in ~N/channels waves.
//   * GET (any object read) is synchronous — the caller needs the bytes
//     — and always moves the whole object, whatever window was asked.
//   * A partial/overlapping object write is a synchronous RMW:
//     GET(old) + PUT(new) on one channel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iosim/disk_model.h"
#include "iosim/file_system.h"
#include "msg/virtual_clock.h"

namespace panda {

struct ObjectStoreModel {
  double put_latency_s = 0.030;   // per-PUT round trip
  double get_latency_s = 0.020;   // per-GET round trip
  double put_Bps = 200.0e6;       // per-channel streaming bandwidth
  double get_Bps = 400.0e6;
  double issue_s = 0.0002;        // client cost to hand a request off
  int channels = 8;               // concurrent connections per node
  DiskModel local = DiskModel::NasSp2Aix();  // non-object files
};

class ObjectStoreFileSystem : public FileSystem {
 public:
  struct Options {
    ObjectStoreModel model;
    bool store_data = true;
    VirtualClock* clock = nullptr;  // may be null (no time accounting)
  };

  explicit ObjectStoreFileSystem(Options options);

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override;
  void Remove(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;

  const FsStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = FsStats{}; }

  void set_clock(VirtualClock* clock) { options_.clock = clock; }
  const ObjectStoreModel& model() const { return options_.model; }
  bool store_data() const { return options_.store_data; }

  // True when `path` names an object (vs. a node-local file).
  static bool IsObjectPath(const std::string& path);

 private:
  friend class ObjectStoreFile;

  struct Inode {
    std::vector<std::byte> data;  // only when store_data
    std::int64_t size = 0;
    bool object = false;
  };

  // Async PUT of `bytes`: issue cost now, transfer on the least-busy
  // channel; returns without waiting for completion.
  void ChargePut(std::int64_t bytes);
  // Sync GET of a `bytes`-sized object (plus `extra_s` service time for
  // the RMW write-back); blocks until done.
  void ChargeGet(std::int64_t bytes, double extra_s);
  // Node-local disk op (SimFileSystem-style sequential tracking).
  void ChargeLocal(std::int64_t inode_id, std::int64_t offset, std::int64_t n,
                   bool write);
  void DrainChannels();

  Options options_;
  FsStats stats_;
  std::map<std::string, Inode> inodes_;
  std::map<std::string, std::int64_t> inode_ids_;
  std::int64_t next_inode_id_ = 1;
  std::vector<double> channel_busy_until_;
  std::int64_t head_inode_ = -1;   // local-disk head position
  std::int64_t head_offset_ = -1;
};

}  // namespace panda
