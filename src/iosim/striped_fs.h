// Multi-disk i/o nodes: a RAID-0-style striped file system.
//
// The NAS SP2 had one local disk per node (Table 1), and that disk's
// 3 MB/s is the bottleneck in Figures 3/4/7/8. The obvious hardware fix
// is several local disks per i/o node with files striped across them —
// this module models that: per-request file-system overhead is paid
// once per logical request (it is node software, not spindle time),
// while seek + media transfer happen on the member disks in parallel.
//
// The punchline (bench_multidisk): striping helps ~3x and then
// saturates — the per-request software overhead, not the network,
// becomes the next bottleneck, so faster storage alone cannot reach the
// 34 MB/s the interconnect offers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iosim/disk_model.h"
#include "iosim/file_system.h"
#include "msg/virtual_clock.h"

namespace panda {

class StripedFileSystem : public FileSystem {
 public:
  struct Options {
    int num_disks = 4;
    std::int64_t stripe_bytes = 64 * 1024;
    DiskModel disk = DiskModel::NasSp2Aix();
    bool store_data = true;
    VirtualClock* clock = nullptr;  // may be null (no time accounting)
  };

  explicit StripedFileSystem(Options options);

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override;
  void Remove(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;

  const FsStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = FsStats{}; }

  void set_clock(VirtualClock* clock) { options_.clock = clock; }
  int num_disks() const { return options_.num_disks; }

 private:
  friend class StripedFile;

  struct Inode {
    std::vector<std::byte> data;
    std::int64_t size = 0;
  };
  struct DiskState {
    double busy_until = 0.0;
    std::int64_t head_inode = -1;
    std::int64_t head_offset = -1;
  };

  // Accounts one logical request of [offset, offset+n) on `inode_id`:
  // overhead once, member-disk work in parallel; advances the clock to
  // the slowest involved disk.
  void ChargeRequest(std::int64_t inode_id, std::int64_t offset,
                     std::int64_t n, bool write);

  Options options_;
  FsStats stats_;
  std::map<std::string, Inode> inodes_;
  std::map<std::string, std::int64_t> inode_ids_;
  std::int64_t next_inode_id_ = 1;
  std::vector<DiskState> disks_;
};

}  // namespace panda
