// Simulated per-node file system with virtual-time accounting.
//
// One SimFileSystem models one i/o node's disk + AIX file system. Every
// request charges the owning rank's virtual clock per the DiskModel; a
// request is "sequential" when it continues exactly where the previous
// request on this device (same file) ended — Panda's server-directed
// writes are designed to make that the common case.
//
// In `store_data` mode file contents are kept in memory so reads round-
// trip (functional sim); with it off only sizes and time are tracked
// (timing-only sweeps of multi-hundred-MB arrays).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iosim/disk_model.h"
#include "iosim/file_system.h"
#include "msg/virtual_clock.h"

namespace panda {

class SimFileSystem : public FileSystem {
 public:
  struct Options {
    DiskModel disk = DiskModel::NasSp2Aix();
    bool store_data = true;
    // Clock charged for device time; may be null (no time accounting)
    // and may be redirected per-collective via set_clock().
    VirtualClock* clock = nullptr;
  };

  explicit SimFileSystem(Options options) : options_(options) {}

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override;
  void Remove(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;

  const FsStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = FsStats{}; }

  // Redirects time charging (e.g. to the server rank currently running).
  void set_clock(VirtualClock* clock) { options_.clock = clock; }
  const DiskModel& disk() const { return options_.disk; }
  bool store_data() const { return options_.store_data; }

 private:
  friend class SimFile;

  struct Inode {
    std::vector<std::byte> data;  // only when store_data
    std::int64_t size = 0;
  };

  void Charge(double seconds) {
    if (options_.clock != nullptr) options_.clock->Advance(seconds);
    stats_.busy_seconds += seconds;
  }

  // True (and updates the device head position) when a request at
  // [offset, offset+n) on `inode_id` continues the previous request.
  bool AccessIsSequential(std::int64_t inode_id, std::int64_t offset,
                          std::int64_t n);

  Options options_;
  FsStats stats_;
  std::map<std::string, Inode> inodes_;
  std::int64_t next_inode_id_ = 1;
  std::map<std::string, std::int64_t> inode_ids_;
  std::int64_t head_inode_ = -1;   // device head position: file...
  std::int64_t head_offset_ = -1;  // ...and byte offset
};

}  // namespace panda
