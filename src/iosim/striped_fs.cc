#include "iosim/striped_fs.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace panda {

StripedFileSystem::StripedFileSystem(Options options) : options_(options) {
  PANDA_REQUIRE(options_.num_disks >= 1, "need at least one disk");
  PANDA_REQUIRE(options_.stripe_bytes >= 1, "stripe unit must be positive");
  disks_.resize(static_cast<size_t>(options_.num_disks));
}

void StripedFileSystem::ChargeRequest(std::int64_t inode_id,
                                      std::int64_t offset, std::int64_t n,
                                      bool write) {
  if (options_.clock == nullptr) {
    stats_.reads += write ? 0 : 1;
    stats_.writes += write ? 1 : 0;
    (write ? stats_.bytes_written : stats_.bytes_read) += n;
    return;
  }
  const double now = options_.clock->Now();
  // Per-request software overhead: node CPU, paid once.
  const double issue =
      now + (write ? options_.disk.write_overhead_s
                   : options_.disk.read_overhead_s);
  // Member disks serve their stripe extents in parallel.
  double done = issue;
  std::int64_t pos = offset;
  const std::int64_t end = offset + n;
  while (pos < end) {
    const std::int64_t stripe = pos / options_.stripe_bytes;
    const std::int64_t stripe_end = (stripe + 1) * options_.stripe_bytes;
    const std::int64_t len = std::min(end, stripe_end) - pos;
    const int d = static_cast<int>(stripe % options_.num_disks);
    DiskState& disk = disks_[static_cast<size_t>(d)];

    // Head positions are disk-local: consecutive global stripes land at
    // consecutive local offsets on their disk, so a big sequential
    // request is sequential on every member disk.
    const std::int64_t local =
        (stripe / options_.num_disks) * options_.stripe_bytes +
        (pos - stripe * options_.stripe_bytes);
    const bool sequential =
        disk.head_inode == inode_id && disk.head_offset == local;
    if (!sequential) stats_.seeks += 1;
    disk.head_inode = inode_id;
    disk.head_offset = local + len;

    const double start = std::max(issue, disk.busy_until);
    const double service =
        (sequential ? 0.0 : options_.disk.seek_s) +
        static_cast<double>(len) /
            (write ? options_.disk.raw_write_Bps : options_.disk.raw_read_Bps);
    disk.busy_until = start + service;
    done = std::max(done, disk.busy_until);
    pos += len;
  }
  options_.clock->SyncTo(done);
  stats_.busy_seconds += done - now;
  stats_.reads += write ? 0 : 1;
  stats_.writes += write ? 1 : 0;
  (write ? stats_.bytes_written : stats_.bytes_read) += n;
}

// File handle: same data semantics as SimFileSystem, striped timing.
class StripedFile : public File {
 public:
  StripedFile(StripedFileSystem* fs, StripedFileSystem::Inode* inode,
              std::int64_t inode_id)
      : fs_(fs), inode_(inode), inode_id_(inode_id) {}

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override {
    PANDA_CHECK(offset >= 0 && vbytes >= 0);
    if (fs_->options_.store_data) {
      PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == vbytes,
                    "store_data StripedFileSystem requires real data");
      if (offset + vbytes > static_cast<std::int64_t>(inode_->data.size())) {
        inode_->data.resize(static_cast<size_t>(offset + vbytes));
      }
      std::memcpy(inode_->data.data() + offset, data.data(),
                  static_cast<size_t>(vbytes));
    }
    inode_->size = std::max(inode_->size, offset + vbytes);
    fs_->ChargeRequest(inode_id_, offset, vbytes, /*write=*/true);
  }

  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override {
    PANDA_CHECK(offset >= 0 && vbytes >= 0);
    PANDA_REQUIRE(offset + vbytes <= inode_->size, "read past EOF");
    if (fs_->options_.store_data) {
      PANDA_REQUIRE(static_cast<std::int64_t>(out.size()) == vbytes,
                    "store_data StripedFileSystem requires a real buffer");
      std::memcpy(out.data(), inode_->data.data() + offset,
                  static_cast<size_t>(vbytes));
    }
    fs_->ChargeRequest(inode_id_, offset, vbytes, /*write=*/false);
  }

  void Sync() override {
    if (fs_->options_.clock != nullptr) {
      // All member disks must drain, then the metadata flush.
      double done = fs_->options_.clock->Now();
      for (const auto& disk : fs_->disks_) {
        done = std::max(done, disk.busy_until);
      }
      fs_->options_.clock->SyncTo(done + fs_->options_.disk.fsync_s);
    }
    fs_->stats_.syncs += 1;
  }

  std::int64_t Size() override { return inode_->size; }

 private:
  StripedFileSystem* fs_;
  StripedFileSystem::Inode* inode_;
  std::int64_t inode_id_;
};

std::unique_ptr<File> StripedFileSystem::Open(const std::string& path,
                                              OpenMode mode) {
  auto it = inodes_.find(path);
  if (mode == OpenMode::kRead) {
    PANDA_REQUIRE(it != inodes_.end(), "striped file %s does not exist",
                  path.c_str());
  } else if (mode == OpenMode::kWrite) {
    if (it != inodes_.end()) {
      it->second.data.clear();
      it->second.size = 0;
    } else {
      it = inodes_.emplace(path, Inode{}).first;
    }
  } else {
    if (it == inodes_.end()) it = inodes_.emplace(path, Inode{}).first;
  }
  auto id_it = inode_ids_.find(path);
  if (id_it == inode_ids_.end()) {
    id_it = inode_ids_.emplace(path, next_inode_id_++).first;
  }
  return std::make_unique<StripedFile>(this, &it->second, id_it->second);
}

bool StripedFileSystem::Exists(const std::string& path) {
  return inodes_.count(path) != 0;
}

void StripedFileSystem::Remove(const std::string& path) {
  inodes_.erase(path);
}

void StripedFileSystem::Rename(const std::string& from,
                               const std::string& to) {
  auto it = inodes_.find(from);
  PANDA_REQUIRE(it != inodes_.end(), "rename: %s does not exist",
                from.c_str());
  auto node = inodes_.extract(it);
  node.key() = to;
  inodes_.erase(to);
  inodes_.insert(std::move(node));
  if (options_.clock != nullptr) {
    options_.clock->Advance(options_.disk.fsync_s);
  }
}

}  // namespace panda
