#include "iosim/posix_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/error.h"

namespace panda {
namespace {

class PosixFile : public File {
 public:
  PosixFile(int fd, FsStats* stats) : fd_(fd), stats_(stats) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override {
    PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == vbytes,
                  "POSIX backend requires real data (got %zu of %lld bytes)",
                  data.size(), static_cast<long long>(vbytes));
    std::int64_t done = 0;
    while (done < vbytes) {
      const ssize_t n = ::pwrite(fd_, data.data() + done,
                                 static_cast<size_t>(vbytes - done),
                                 static_cast<off_t>(offset + done));
      if (n < 0) {
        // A signal may interrupt the syscall before any byte moves;
        // simply reissue. Anything else is a real device error.
        if (errno == EINTR) continue;
        PANDA_REQUIRE(false, "pwrite failed (offset %lld): %s",
                      static_cast<long long>(offset + done),
                      std::strerror(errno));
      }
      // POSIX permits a zero-byte result only for zero-byte requests;
      // treat it as a distinct error (errno is meaningless here — do not
      // report a bogus "Success").
      PANDA_REQUIRE(n > 0,
                    "pwrite made no progress at offset %lld (%lld of %lld "
                    "bytes written)",
                    static_cast<long long>(offset + done),
                    static_cast<long long>(done),
                    static_cast<long long>(vbytes));
      done += n;
    }
    stats_->writes += 1;
    stats_->bytes_written += vbytes;
  }

  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override {
    PANDA_REQUIRE(static_cast<std::int64_t>(out.size()) == vbytes,
                  "POSIX backend requires a real output buffer");
    std::int64_t done = 0;
    while (done < vbytes) {
      const ssize_t n = ::pread(fd_, out.data() + done,
                                static_cast<size_t>(vbytes - done),
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        PANDA_REQUIRE(false, "pread failed (offset %lld): %s",
                      static_cast<long long>(offset + done),
                      std::strerror(errno));
      }
      // n == 0 is end-of-file, not an error code: reading past the end
      // of a too-short file must say so instead of reporting whatever
      // stale errno happens to hold (previously a misleading "Success").
      PANDA_REQUIRE(n > 0,
                    "pread hit end of file at offset %lld (short read: got "
                    "%lld of %lld bytes)",
                    static_cast<long long>(offset + done),
                    static_cast<long long>(done),
                    static_cast<long long>(vbytes));
      done += n;
    }
    stats_->reads += 1;
    stats_->bytes_read += vbytes;
  }

  void Sync() override {
    PANDA_REQUIRE(::fsync(fd_) == 0, "fsync failed: %s", std::strerror(errno));
    stats_->syncs += 1;
  }

  std::int64_t Size() override {
    struct stat st;
    PANDA_REQUIRE(::fstat(fd_, &st) == 0, "fstat failed: %s",
                  std::strerror(errno));
    return static_cast<std::int64_t>(st.st_size);
  }

 private:
  int fd_;
  FsStats* stats_;
};

}  // namespace

PosixFileSystem::PosixFileSystem(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  PANDA_REQUIRE(!ec, "cannot create root directory %s: %s", root_.c_str(),
                ec.message().c_str());
}

std::string PosixFileSystem::FullPath(const std::string& path) const {
  PANDA_REQUIRE(!path.empty() && path.find("..") == std::string::npos &&
                    path.front() != '/',
                "illegal file path '%s'", path.c_str());
  return root_ + "/" + path;
}

std::unique_ptr<File> PosixFileSystem::Open(const std::string& path,
                                            OpenMode mode) {
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead:
      flags = O_RDONLY;
      break;
    case OpenMode::kWrite:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case OpenMode::kReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  const std::string full = FullPath(path);
  const int fd = ::open(full.c_str(), flags, 0644);
  PANDA_REQUIRE(fd >= 0, "cannot open %s: %s", full.c_str(),
                std::strerror(errno));
  return std::make_unique<PosixFile>(fd, &stats_);
}

bool PosixFileSystem::Exists(const std::string& path) {
  return std::filesystem::exists(FullPath(path));
}

void PosixFileSystem::Remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(FullPath(path), ec);
}

void PosixFileSystem::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(FullPath(from), FullPath(to), ec);
  PANDA_REQUIRE(!ec, "rename %s -> %s failed: %s", from.c_str(), to.c_str(),
                ec.message().c_str());
}

}  // namespace panda
