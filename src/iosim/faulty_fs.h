// Fault-injection file system wrapper.
//
// Wraps any FileSystem and injects faults according to a FaultModel:
//
//   * Crash-stop (the original model): after `fail_after_ops` successful
//     operations every subsequent one throws PandaError — an i/o node
//     dying mid-collective, permanently. Not retryable.
//   * Scripted faults: an explicit list of operation ordinals that fail
//     with TransientIoError — deterministic placement of a fault on,
//     say, exactly the checkpoint-publication rename.
//   * Seeded transient faults: each eligible operation faults with
//     probability `transient_probability` (xoshiro-seeded, fully
//     reproducible). The fault drawn is one of: EIO (TransientIoError),
//     a torn write (a prefix of the data reaches the disk, then the
//     operation fails), a silently corrupted read (one flipped byte —
//     only checksums catch this), or a slow op (extra virtual latency,
//     no error). At most `max_consecutive_transient` transient faults
//     fire back to back, so any retry/re-read budget larger than that
//     is guaranteed to heal.
//
// Metadata operations (Open / Rename / Remove) participate when
// `metadata_ops` is set; the default keeps the original data-ops-only
// behaviour so existing expectations about operation counting hold.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iosim/file_system.h"
#include "msg/virtual_clock.h"
#include "util/error.h"
#include "util/random.h"

namespace panda {

struct FaultModel {
  // Permanent death after this many successful eligible operations
  // (negative: disabled). Throws plain PandaError — never retried.
  std::int64_t fail_after_ops = -1;

  // Scripted transient faults: 1-based ordinals of eligible operations
  // that throw TransientIoError (EIO) once each.
  std::vector<std::int64_t> fault_at_ops;

  // Seeded probabilistic transient faults.
  double transient_probability = 0.0;
  std::uint64_t seed = 1;
  // Forced success after this many transient faults in a row: bounds the
  // adversary so a retry budget > this value always heals.
  int max_consecutive_transient = 2;
  // Guaranteed quiet period: after a probabilistic fault fires, this many
  // subsequent eligible operations succeed unconditionally. Models a
  // transient glitch followed by quiescence. A silent read corruption is
  // only *guaranteed* to heal via checksum-verify-and-re-read if the
  // quiet period covers the whole verify window (record read + record
  // re-read + data re-read => 3).
  int min_clean_after_fault = 0;

  // Which transient fault kinds the probabilistic injector may draw.
  bool torn_writes = true;    // partial write, then TransientIoError
  bool corrupt_reads = false; // flip one byte of the read buffer, no error
  double slow_op_seconds = 0.0;  // extra latency on a "slow" fault
  VirtualClock* clock = nullptr; // charged for slow ops (may be null)

  // Open/Rename/Remove become eligible (counted and faultable) too.
  bool metadata_ops = false;

  static FaultModel CrashStop(std::int64_t after_ops) {
    FaultModel m;
    m.fail_after_ops = after_ops;
    return m;
  }
  static FaultModel Transient(std::uint64_t seed, double probability) {
    FaultModel m;
    m.seed = seed;
    m.transient_probability = probability;
    return m;
  }
};

class FaultyFileSystem : public FileSystem {
 public:
  // Original crash-stop interface: fails every data operation after
  // `fail_after_ops` successful ones (reads/writes/syncs count;
  // metadata ops pass through). A negative threshold never fails.
  FaultyFileSystem(FileSystem* base, std::int64_t fail_after_ops)
      : FaultyFileSystem(base, FaultModel::CrashStop(fail_after_ops)) {}

  FaultyFileSystem(FileSystem* base, FaultModel model)
      : base_(base), model_(std::move(model)), rng_(model_.seed) {
    PANDA_CHECK(base_ != nullptr);
  }

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  void Remove(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;

  const FsStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  // Eligible operations executed so far (data ops; plus metadata ops
  // when model.metadata_ops is set).
  std::int64_t ops_seen() const { return ops_seen_; }
  // Faults injected so far (all kinds, including silent ones).
  std::int64_t faults_injected() const { return faults_injected_; }

 private:
  friend class FaultyFile;

  enum class OpClass { kWrite, kRead, kSync, kMeta };

  // What the caller must do to apply the drawn fault inline (faults that
  // cannot be expressed as a throw out of this function).
  enum class InlineFault { kNone, kTornWrite, kCorruptRead };

  // Counts one eligible operation and draws its fate: may throw
  // (crash-stop PandaError, scripted/probabilistic TransientIoError),
  // may charge a slow-op delay, or may return an inline fault for the
  // caller to apply.
  InlineFault CountOp(OpClass op_class);

  // One uniformly drawn corrupted byte index in [0, n).
  std::size_t DrawCorruptIndex(std::size_t n) {
    return static_cast<std::size_t>(rng_.NextBelow(n));
  }

  FileSystem* base_;
  FaultModel model_;
  Rng rng_;
  std::int64_t ops_seen_ = 0;
  std::int64_t faults_injected_ = 0;
  int consecutive_transient_ = 0;
  int forced_clean_ = 0;  // remaining quiet-period ops (min_clean_after_fault)
};

}  // namespace panda
