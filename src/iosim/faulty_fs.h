// Fault-injection file system wrapper.
//
// Wraps any FileSystem and fails (throws PandaError) once a configured
// number of data operations have executed — simulating an i/o node
// dying mid-collective. Used by the failure-injection tests to prove
// that a crashed checkpoint can never destroy the previous one and that
// a failing rank aborts the whole collective loudly instead of hanging.
#pragma once

#include <memory>

#include "iosim/file_system.h"
#include "util/error.h"

namespace panda {

class FaultyFileSystem : public FileSystem {
 public:
  // Fails every data operation after `fail_after_ops` successful ones
  // (reads/writes/syncs count; metadata ops pass through). A negative
  // threshold never fails.
  FaultyFileSystem(FileSystem* base, std::int64_t fail_after_ops)
      : base_(base), remaining_(fail_after_ops) {
    PANDA_CHECK(base_ != nullptr);
  }

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  void Remove(const std::string& path) override { base_->Remove(path); }
  void Rename(const std::string& from, const std::string& to) override {
    base_->Rename(from, to);
  }

  const FsStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  // Operations executed so far.
  std::int64_t ops_seen() const { return ops_seen_; }

 private:
  friend class FaultyFile;
  void CountOp() {
    ++ops_seen_;
    if (remaining_ >= 0 && ops_seen_ > remaining_) {
      throw PandaError("injected i/o fault after " +
                       std::to_string(remaining_) + " operations");
    }
  }

  FileSystem* base_;
  std::int64_t remaining_;
  std::int64_t ops_seen_ = 0;
};

}  // namespace panda
