#include "iosim/block_cache.h"

#include <algorithm>

#include "msg/hb.h"
#include "util/error.h"
#include "util/math.h"

namespace panda {

BlockCache::BlockCache(File* base, Options options)
    : base_(base), options_(options) {
  PANDA_CHECK(base_ != nullptr);
  PANDA_CHECK(options_.block_bytes >= 1 && options_.capacity_blocks >= 1);
}

BlockCache::~BlockCache() { WriteBackAllDirty(); }

void BlockCache::Touch(std::int64_t block) {
  auto it = blocks_.find(block);
  PANDA_CHECK(it != blocks_.end());
  lru_.erase(it->second.lru_pos);
  lru_.push_front(block);
  it->second.lru_pos = lru_.begin();
}

void BlockCache::EnsureResident(std::int64_t block, bool will_overwrite) {
  auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    hits_ += 1;
    Touch(block);
    return;
  }
  misses_ += 1;
  // A partially-overwritten block must be fetched first (read-modify-
  // write); a fully-overwritten one can be installed without a read.
  if (!will_overwrite) {
    const std::int64_t off = block * options_.block_bytes;
    const std::int64_t end = base_->Size();
    if (off < end) {
      const std::int64_t n = std::min(options_.block_bytes, end - off);
      base_->ReadAt(off, {}, n);
    }
  }
  EvictIfNeeded();
  lru_.push_front(block);
  blocks_[block] = BlockState{false, lru_.begin()};
}

void BlockCache::EvictIfNeeded() {
  while (static_cast<std::int64_t>(blocks_.size()) >=
         options_.capacity_blocks) {
    const std::int64_t victim = lru_.back();
    auto it = blocks_.find(victim);
    if (it->second.dirty) {
      // Coalesce the victim with any adjacent resident dirty blocks so
      // the write-back is as sequential as the contents allow.
      std::int64_t first = victim;
      while (true) {
        auto prev = blocks_.find(first - 1);
        if (prev == blocks_.end() || !prev->second.dirty) break;
        first = first - 1;
      }
      std::int64_t last = victim;
      while (true) {
        auto next = blocks_.find(last + 1);
        if (next == blocks_.end() || !next->second.dirty) break;
        last = last + 1;
      }
      WriteBackRun(first, last - first + 1);
      for (std::int64_t b = first; b <= last; ++b) {
        auto bit = blocks_.find(b);
        lru_.erase(bit->second.lru_pos);
        blocks_.erase(bit);
      }
    } else {
      lru_.erase(it->second.lru_pos);
      blocks_.erase(it);
    }
  }
}

void BlockCache::WriteBackRun(std::int64_t first_block, std::int64_t count) {
  const std::int64_t off = first_block * options_.block_bytes;
  const std::int64_t n = count * options_.block_bytes;
  base_->WriteAt(off, {}, n);
}

void BlockCache::WriteBackAllDirty() {
  // Flush in ascending block order, merging adjacent dirty runs.
  std::int64_t run_start = -1;
  std::int64_t run_len = 0;
  for (auto& [block, state] : blocks_) {
    if (!state.dirty) continue;
    if (run_start >= 0 && block == run_start + run_len) {
      run_len += 1;
    } else {
      if (run_start >= 0) WriteBackRun(run_start, run_len);
      run_start = block;
      run_len = 1;
    }
    state.dirty = false;
  }
  if (run_start >= 0) WriteBackRun(run_start, run_len);
}

void BlockCache::WriteAt(std::int64_t offset, std::span<const std::byte> data,
                         std::int64_t vbytes) {
  (void)data;  // timing-model layer: contents are not cached
  // The LRU list, block map and stream table are unsynchronized shared
  // state: under -DPANDA_HB every access must be ordered by a message,
  // lock or fork/join edge, or the checker reports a race.
  hb::StampAccess(this, "iosim.block_cache", /*is_write=*/true);
  PANDA_CHECK(offset >= 0 && vbytes >= 0);
  const std::int64_t bb = options_.block_bytes;
  const std::int64_t first = offset / bb;
  const std::int64_t last = (offset + vbytes + bb - 1) / bb - 1;
  for (std::int64_t b = first; b <= last; ++b) {
    const std::int64_t b_off = b * bb;
    const bool full_cover = offset <= b_off && offset + vbytes >= b_off + bb;
    EnsureResident(b, full_cover);
    blocks_[b].dirty = true;
  }
}

void BlockCache::ReadAt(std::int64_t offset, std::span<std::byte> out,
                        std::int64_t vbytes) {
  (void)out;
  // Even a cache *read* mutates shared state (LRU reordering, stream
  // table, prefetch installs), so it stamps as a write.
  hb::StampAccess(this, "iosim.block_cache", /*is_write=*/true);
  PANDA_CHECK(offset >= 0 && vbytes >= 0);
  const std::int64_t bb = options_.block_bytes;
  const std::int64_t first = offset / bb;
  const std::int64_t last = (offset + vbytes + bb - 1) / bb - 1;

  // Multi-stream sequential detection drives read-ahead (see
  // DetectSequential).
  const bool sequential = DetectSequential(offset, vbytes);

  for (std::int64_t b = first; b <= last; ++b) {
    auto it = blocks_.find(b);
    if (it != blocks_.end()) {
      hits_ += 1;
      Touch(b);
      continue;
    }
    misses_ += 1;
    // Miss: fetch a run of blocks — just this one, or the prefetch
    // window when the stream looks sequential.
    const std::int64_t want =
        sequential ? std::max<std::int64_t>(last - b + 1,
                                            options_.prefetch_blocks)
                   : (last - b + 1);
    const std::int64_t run_off = b * bb;
    const std::int64_t end = base_->Size();
    const std::int64_t run_n =
        std::min(want * bb, std::max<std::int64_t>(0, end - run_off));
    if (run_n > 0) base_->ReadAt(run_off, {}, run_n);
    const std::int64_t fetched = CeilDiv(run_n, bb);
    for (std::int64_t f = 0; f < std::max<std::int64_t>(fetched, 1); ++f) {
      if (blocks_.count(b + f) != 0) continue;
      EvictIfNeeded();
      lru_.push_front(b + f);
      blocks_[b + f] = BlockState{false, lru_.begin()};
    }
    // Skip past what the run fetched.
    b += std::max<std::int64_t>(fetched, 1) - 1;
  }
}

bool BlockCache::DetectSequential(std::int64_t offset, std::int64_t vbytes) {
  // AIX-style multi-stream detection: the prefetcher tracks the end
  // offsets of several recent sequential streams; a read that lands
  // within the read-ahead window of any tracked stream continues it.
  // This is what lets interleaved requests from many compute nodes each
  // enjoy read-ahead, instead of mutually destroying one global window.
  const std::int64_t window = options_.prefetch_blocks * options_.block_bytes;
  for (auto it = stream_ends_.begin(); it != stream_ends_.end(); ++it) {
    if (offset >= *it - window && offset <= *it + window) {
      const std::int64_t end = std::max(*it, offset + vbytes);
      stream_ends_.erase(it);
      stream_ends_.push_front(end);
      return true;
    }
  }
  stream_ends_.push_front(offset + vbytes);
  if (static_cast<int>(stream_ends_.size()) > options_.max_streams) {
    stream_ends_.pop_back();
  }
  return false;
}

void BlockCache::Flush() {
  hb::StampAccess(this, "iosim.block_cache", /*is_write=*/true);
  WriteBackAllDirty();
  base_->Sync();
}

}  // namespace panda
