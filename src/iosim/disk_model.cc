#include "iosim/disk_model.h"

namespace panda {

DiskModel DiskModel::NasSp2Aix() {
  DiskModel m;
  m.raw_read_Bps = 3.0 * kMiB;
  m.raw_write_Bps = 3.0 * kMiB;
  const double measured_read_peak_Bps = 2.85 * kMiB;
  const double measured_write_peak_Bps = 2.23 * kMiB;
  // Solve peak = 1MB / (1MB/raw + ov) for ov.
  m.read_overhead_s =
      static_cast<double>(kMiB) *
      (1.0 / measured_read_peak_Bps - 1.0 / m.raw_read_Bps);
  m.write_overhead_s =
      static_cast<double>(kMiB) *
      (1.0 / measured_write_peak_Bps - 1.0 / m.raw_write_Bps);
  m.seek_s = 0.015;   // average seek + rotational delay, 1995-class SCSI disk
  m.fsync_s = 0.010;  // metadata flush
  return m;
}

}  // namespace panda
