// Bounded retry with exponential backoff, and robustness accounting.
//
// Panda servers wrap every disk operation (per sub-chunk read/write,
// open, fsync, checkpoint rename) in a RetryPolicy so *transient* i/o
// faults — the flaky-controller EIOs and torn writes modeled by
// FaultyFileSystem — heal invisibly: the collective completes
// byte-exact and only the report's retry counters betray that anything
// happened. Backoff is charged to the rank's *virtual* clock, so timing
// mode stays deterministic and fault-free runs are bit-identical to
// before.
//
// Only TransientIoError is retried. Every other PandaError is treated
// as permanent and propagates to the structured abort protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "msg/virtual_clock.h"
#include "util/error.h"

namespace panda {

// Plain-value snapshot of RobustnessStats (reports, tests).
struct RobustnessCounters {
  std::int64_t io_retries = 0;             // transient faults healed by retry
  std::int64_t io_giveups = 0;             // retry budgets exhausted
  std::int64_t wire_checksum_failures = 0; // corrupt piece payloads caught
  std::int64_t disk_checksum_failures = 0; // corrupt sub-chunks caught
  std::int64_t disk_checksum_rereads = 0;  // mismatches healed by re-read
  std::int64_t collectives_aborted = 0;    // structured aborts originated
  std::int64_t failovers_completed = 0;    // degraded-mode re-plans committed
  std::int64_t chunks_adopted = 0;         // dead servers' chunks re-homed
  std::int64_t journal_records_written = 0;  // WAL commit records appended
  std::int64_t frame_rereads = 0;            // frame decodes healed by re-read
  std::int64_t frame_decode_failures = 0;    // undecodable sub-chunk frames
  std::int64_t rejoins_completed = 0;        // restarted servers re-admitted
  std::int64_t chunks_restored = 0;          // adopted chunks migrated back
  std::int64_t journal_gc_truncations = 0;   // WALs compacted at a checkpoint
  std::int64_t journal_records_salvaged = 0; // replayed clean on rejoin

  bool AllZero() const {
    return io_retries == 0 && io_giveups == 0 && wire_checksum_failures == 0 &&
           disk_checksum_failures == 0 && disk_checksum_rereads == 0 &&
           collectives_aborted == 0 && failovers_completed == 0 &&
           chunks_adopted == 0 && journal_records_written == 0 &&
           frame_rereads == 0 && frame_decode_failures == 0 &&
           rejoins_completed == 0 && chunks_restored == 0 &&
           journal_gc_truncations == 0 && journal_records_salvaged == 0;
  }
};

// Shared fault/robustness counters for one machine. Ranks run as
// threads, so the counters are atomics; a Machine owns one instance and
// the report snapshots it. All counting is optional — a null
// RobustnessStats* anywhere simply skips the accounting.
class RobustnessStats {
 public:
  std::atomic<std::int64_t> io_retries{0};
  std::atomic<std::int64_t> io_giveups{0};
  std::atomic<std::int64_t> wire_checksum_failures{0};
  std::atomic<std::int64_t> disk_checksum_failures{0};
  std::atomic<std::int64_t> disk_checksum_rereads{0};
  std::atomic<std::int64_t> collectives_aborted{0};
  std::atomic<std::int64_t> failovers_completed{0};
  std::atomic<std::int64_t> chunks_adopted{0};
  std::atomic<std::int64_t> journal_records_written{0};
  std::atomic<std::int64_t> frame_rereads{0};
  std::atomic<std::int64_t> frame_decode_failures{0};
  std::atomic<std::int64_t> rejoins_completed{0};
  std::atomic<std::int64_t> chunks_restored{0};
  std::atomic<std::int64_t> journal_gc_truncations{0};
  std::atomic<std::int64_t> journal_records_salvaged{0};

  RobustnessCounters Snapshot() const {
    RobustnessCounters c;
    c.io_retries = io_retries.load();
    c.io_giveups = io_giveups.load();
    c.wire_checksum_failures = wire_checksum_failures.load();
    c.disk_checksum_failures = disk_checksum_failures.load();
    c.disk_checksum_rereads = disk_checksum_rereads.load();
    c.collectives_aborted = collectives_aborted.load();
    c.failovers_completed = failovers_completed.load();
    c.chunks_adopted = chunks_adopted.load();
    c.journal_records_written = journal_records_written.load();
    c.frame_rereads = frame_rereads.load();
    c.frame_decode_failures = frame_decode_failures.load();
    c.rejoins_completed = rejoins_completed.load();
    c.chunks_restored = chunks_restored.load();
    c.journal_gc_truncations = journal_gc_truncations.load();
    c.journal_records_salvaged = journal_records_salvaged.load();
    return c;
  }

  void Reset() {
    io_retries = 0;
    io_giveups = 0;
    wire_checksum_failures = 0;
    disk_checksum_failures = 0;
    disk_checksum_rereads = 0;
    collectives_aborted = 0;
    failovers_completed = 0;
    chunks_adopted = 0;
    journal_records_written = 0;
    frame_rereads = 0;
    frame_decode_failures = 0;
    rejoins_completed = 0;
    chunks_restored = 0;
    journal_gc_truncations = 0;
    journal_records_salvaged = 0;
  }
};

struct RetryPolicy {
  // Total tries including the first. 1 disables retrying entirely;
  // values below 1 are clamped to 1 (the operation always runs once).
  int max_attempts = 4;
  // Virtual-clock backoff before the 2nd try; doubles per further try
  // up to max_backoff_s. The saturation keeps huge attempt budgets from
  // overflowing the double (and from charging absurd virtual waits).
  double backoff_s = 1.0e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1.0;

  // Runs `op`. On TransientIoError: backs off on `clock` (if non-null)
  // and retries, up to max_attempts total tries; counts each retry (and
  // an eventual give-up) into `stats` (if non-null). The final failure
  // rethrows the last TransientIoError. Non-transient errors propagate
  // immediately.
  void Run(VirtualClock* clock, RobustnessStats* stats,
           const std::function<void()>& op) const;
};

}  // namespace panda
