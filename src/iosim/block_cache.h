// LRU block cache with write-back and sequential prefetch.
//
// Models the "traditional caching" i/o-node organization the paper (and
// [Kotz94b]) compares against: requests are served through a per-node
// file cache as they arrive, with sequential prefetching. Under Panda's
// sequential server-directed traffic a cache is redundant (the DiskModel
// overhead already reflects AIX's own buffering), so this layer is used
// only by the baseline strategies.
//
// The cache works on 4 KB blocks (Table 1's AIX block size). Dirty
// blocks are written back on eviction and on Flush(); adjacent dirty
// blocks are coalesced into single large writes, which is exactly the
// mechanism that lets a cache recover *some* sequentiality from strided
// traffic — and why CFS-style systems still reach about half of raw disk
// bandwidth [Kotz93b] instead of all of it.
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "iosim/file_system.h"

namespace panda {

class BlockCache {
 public:
  struct Options {
    std::int64_t block_bytes = 4 * 1024;
    std::int64_t capacity_blocks = 4096;   // 16 MB cache
    std::int64_t prefetch_blocks = 16;     // read-ahead window when sequential
    // Concurrent sequential streams the prefetcher can track (AIX-style
    // multi-stream detection; one compute node's strided reads form one
    // stream each).
    int max_streams = 16;
  };

  // The cache wraps one file; `base` must outlive the cache. Only the
  // timing/size path is modeled (contents pass through to `base` block-
  // aligned), so functional users should not mix cached and direct writes.
  BlockCache(File* base, Options options);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Cached write of `vbytes` at `offset` (timing mode: data may be empty).
  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes);

  // Cached read; triggers sequential prefetch when the access continues
  // the previous one.
  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes);

  // Writes back all dirty blocks (coalescing adjacent runs) and syncs.
  void Flush();

  // Diagnostics.
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  struct BlockState {
    bool dirty = false;
    std::list<std::int64_t>::iterator lru_pos;
  };

  void Touch(std::int64_t block);
  void EnsureResident(std::int64_t block, bool will_overwrite);
  void EvictIfNeeded();
  void WriteBackRun(std::int64_t first_block, std::int64_t count);
  void WriteBackAllDirty();

  // True (and updates stream state) when `offset` continues one of the
  // tracked sequential read streams.
  bool DetectSequential(std::int64_t offset, std::int64_t vbytes);

  File* base_;
  Options options_;
  std::map<std::int64_t, BlockState> blocks_;  // resident blocks by index
  std::list<std::int64_t> lru_;                // front = most recent
  std::list<std::int64_t> stream_ends_;        // front = most recent stream
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace panda
