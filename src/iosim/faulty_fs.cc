#include "iosim/faulty_fs.h"

namespace panda {

class FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base, FaultyFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override {
    fs_->CountOp();
    base_->WriteAt(offset, data, vbytes);
  }
  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override {
    fs_->CountOp();
    base_->ReadAt(offset, out, vbytes);
  }
  void Sync() override {
    fs_->CountOp();
    base_->Sync();
  }
  std::int64_t Size() override { return base_->Size(); }

 private:
  std::unique_ptr<File> base_;
  FaultyFileSystem* fs_;
};

std::unique_ptr<File> FaultyFileSystem::Open(const std::string& path,
                                             OpenMode mode) {
  return std::make_unique<FaultyFile>(base_->Open(path, mode), this);
}

}  // namespace panda
