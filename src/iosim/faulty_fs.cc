#include "iosim/faulty_fs.h"

#include <algorithm>
#include <string>

namespace panda {

class FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base, FaultyFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override {
    const auto fault = fs_->CountOp(FaultyFileSystem::OpClass::kWrite);
    if (fault == FaultyFileSystem::InlineFault::kTornWrite) {
      // A torn write: a prefix reaches the device, then the operation
      // fails. The caller's retry rewrites the full range (positioned
      // writes are idempotent), healing the tear.
      const std::int64_t torn = vbytes / 2;
      if (!data.empty() && torn > 0) {
        base_->WriteAt(offset, data.subspan(0, static_cast<size_t>(torn)),
                       torn);
      }
      throw TransientIoError(
          "injected torn write (" + std::to_string(torn) + " of " +
          std::to_string(vbytes) + " bytes reached the disk)");
    }
    base_->WriteAt(offset, data, vbytes);
  }

  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override {
    const auto fault = fs_->CountOp(FaultyFileSystem::OpClass::kRead);
    base_->ReadAt(offset, out, vbytes);
    if (fault == FaultyFileSystem::InlineFault::kCorruptRead && !out.empty()) {
      // Silent corruption: no error surfaces — only an end-to-end
      // checksum can catch this.
      out[fs_->DrawCorruptIndex(out.size())] ^= std::byte{0x5a};
    }
  }

  void Sync() override {
    (void)fs_->CountOp(FaultyFileSystem::OpClass::kSync);
    base_->Sync();
  }

  std::int64_t Size() override { return base_->Size(); }

 private:
  std::unique_ptr<File> base_;
  FaultyFileSystem* fs_;
};

FaultyFileSystem::InlineFault FaultyFileSystem::CountOp(OpClass op_class) {
  if (op_class == OpClass::kMeta && !model_.metadata_ops) {
    return InlineFault::kNone;  // original behaviour: metadata passes through
  }
  ++ops_seen_;

  // Crash-stop death: permanent, outranks every transient consideration.
  if (model_.fail_after_ops >= 0 && ops_seen_ > model_.fail_after_ops) {
    throw PandaError("injected i/o fault after " +
                     std::to_string(model_.fail_after_ops) + " operations");
  }

  // Scripted transient faults fire exactly at their ordinal (a retry is
  // the *next* ordinal, so a single scripted fault heals on retry).
  if (std::find(model_.fault_at_ops.begin(), model_.fault_at_ops.end(),
                ops_seen_) != model_.fault_at_ops.end()) {
    ++faults_injected_;
    throw TransientIoError("scripted i/o fault at operation " +
                           std::to_string(ops_seen_));
  }

  // Quiet period after a fault burst: guaranteed success, so any
  // retry/re-read sequence shorter than min_clean_after_fault heals.
  if (forced_clean_ > 0) {
    --forced_clean_;
    consecutive_transient_ = 0;
    return InlineFault::kNone;
  }

  // Probabilistic transient faults, capped at max_consecutive_transient
  // in a row so a sufficient retry budget is guaranteed to heal.
  if (model_.transient_probability <= 0.0 ||
      rng_.NextDouble() >= model_.transient_probability ||
      consecutive_transient_ >= model_.max_consecutive_transient) {
    consecutive_transient_ = 0;
    return InlineFault::kNone;
  }

  // Draw the fault kind among those applicable to this operation class.
  enum Kind { kEio, kTorn, kCorrupt, kSlow };
  Kind kinds[4];
  std::size_t n = 0;
  kinds[n++] = kEio;
  if (op_class == OpClass::kWrite && model_.torn_writes) kinds[n++] = kTorn;
  if (op_class == OpClass::kRead && model_.corrupt_reads) kinds[n++] = kCorrupt;
  if (model_.slow_op_seconds > 0.0) kinds[n++] = kSlow;
  const Kind kind = kinds[rng_.NextBelow(n)];

  ++faults_injected_;
  switch (kind) {
    case kSlow:
      // The op succeeds, just late: charge the delay and treat it as a
      // success for the consecutive-fault cap (nothing needs healing).
      if (model_.clock != nullptr) {
        model_.clock->Advance(model_.slow_op_seconds);
      }
      consecutive_transient_ = 0;
      return InlineFault::kNone;
    case kTorn:
      ++consecutive_transient_;
      forced_clean_ = model_.min_clean_after_fault;
      return InlineFault::kTornWrite;
    case kCorrupt:
      ++consecutive_transient_;
      forced_clean_ = model_.min_clean_after_fault;
      return InlineFault::kCorruptRead;
    case kEio:
    default:
      ++consecutive_transient_;
      forced_clean_ = model_.min_clean_after_fault;
      throw TransientIoError("injected transient EIO at operation " +
                             std::to_string(ops_seen_));
  }
}

std::unique_ptr<File> FaultyFileSystem::Open(const std::string& path,
                                             OpenMode mode) {
  (void)CountOp(OpClass::kMeta);
  return std::make_unique<FaultyFile>(base_->Open(path, mode), this);
}

void FaultyFileSystem::Remove(const std::string& path) {
  (void)CountOp(OpClass::kMeta);
  base_->Remove(path);
}

void FaultyFileSystem::Rename(const std::string& from, const std::string& to) {
  (void)CountOp(OpClass::kMeta);
  base_->Rename(from, to);
}

}  // namespace panda
