#include "iosim/object_store.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace panda {

ObjectStoreFileSystem::ObjectStoreFileSystem(Options options)
    : options_(options) {
  PANDA_REQUIRE(options_.model.channels >= 1,
                "object store needs at least one channel");
  channel_busy_until_.assign(
      static_cast<size_t>(options_.model.channels), 0.0);
}

bool ObjectStoreFileSystem::IsObjectPath(const std::string& path) {
  return path.find(".shard.") != std::string::npos;
}

void ObjectStoreFileSystem::ChargePut(std::int64_t bytes) {
  stats_.writes += 1;
  stats_.bytes_written += bytes;
  if (options_.clock == nullptr) return;
  const double now = options_.clock->Now();
  auto ch = std::min_element(channel_busy_until_.begin(),
                             channel_busy_until_.end());
  const double start = std::max(now + options_.model.issue_s, *ch);
  const double service = options_.model.put_latency_s +
                         static_cast<double>(bytes) / options_.model.put_Bps;
  *ch = start + service;
  stats_.busy_seconds += service;
  options_.clock->SyncTo(now + options_.model.issue_s);
}

void ObjectStoreFileSystem::ChargeGet(std::int64_t bytes, double extra_s) {
  stats_.reads += 1;
  stats_.bytes_read += bytes;
  if (options_.clock == nullptr) return;
  const double now = options_.clock->Now();
  auto ch = std::min_element(channel_busy_until_.begin(),
                             channel_busy_until_.end());
  const double start = std::max(now + options_.model.issue_s, *ch);
  const double service = options_.model.get_latency_s +
                         static_cast<double>(bytes) / options_.model.get_Bps +
                         extra_s;
  *ch = start + service;
  stats_.busy_seconds += service;
  options_.clock->SyncTo(*ch);  // reads block: the caller needs the bytes
}

void ObjectStoreFileSystem::ChargeLocal(std::int64_t inode_id,
                                        std::int64_t offset, std::int64_t n,
                                        bool write) {
  const bool sequential = inode_id == head_inode_ && offset == head_offset_;
  head_inode_ = inode_id;
  head_offset_ = offset + n;
  if (!sequential) stats_.seeks += 1;
  const double seconds = write
                             ? options_.model.local.WriteSeconds(n, sequential)
                             : options_.model.local.ReadSeconds(n, sequential);
  if (options_.clock != nullptr) options_.clock->Advance(seconds);
  stats_.busy_seconds += seconds;
  stats_.reads += write ? 0 : 1;
  stats_.writes += write ? 1 : 0;
  (write ? stats_.bytes_written : stats_.bytes_read) += n;
}

void ObjectStoreFileSystem::DrainChannels() {
  if (options_.clock == nullptr) return;
  double done = options_.clock->Now();
  for (const double busy : channel_busy_until_) done = std::max(done, busy);
  options_.clock->SyncTo(done);
}

class ObjectStoreFile : public File {
 public:
  ObjectStoreFile(ObjectStoreFileSystem* fs,
                  ObjectStoreFileSystem::Inode* inode, std::int64_t inode_id)
      : fs_(fs), inode_(inode), inode_id_(inode_id) {}

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override {
    PANDA_CHECK(offset >= 0 && vbytes >= 0);
    if (fs_->store_data()) {
      PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == vbytes,
                    "store_data ObjectStoreFileSystem requires real data");
      if (offset + vbytes > static_cast<std::int64_t>(inode_->data.size())) {
        inode_->data.resize(static_cast<size_t>(offset + vbytes));
      }
      if (vbytes > 0) {
        std::memcpy(inode_->data.data() + offset, data.data(),
                    static_cast<size_t>(vbytes));
      }
    }
    const std::int64_t old_size = inode_->size;
    inode_->size = std::max(inode_->size, offset + vbytes);
    if (!inode_->object) {
      fs_->ChargeLocal(inode_id_, offset, vbytes, /*write=*/true);
      return;
    }
    if (offset == 0 && vbytes >= old_size) {
      fs_->ChargePut(vbytes);  // whole-object PUT, async on a channel
    } else {
      // Partial update: synchronous read-modify-write of the object.
      const double put_s =
          fs_->model().put_latency_s +
          static_cast<double>(inode_->size) / fs_->model().put_Bps;
      fs_->ChargeGet(old_size, put_s);
      fs_->stats_.writes += 1;
      fs_->stats_.bytes_written += inode_->size;
    }
  }

  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override {
    PANDA_CHECK(offset >= 0 && vbytes >= 0);
    PANDA_REQUIRE(offset + vbytes <= inode_->size,
                  "read past EOF (offset %lld + %lld > size %lld)",
                  static_cast<long long>(offset),
                  static_cast<long long>(vbytes),
                  static_cast<long long>(inode_->size));
    if (fs_->store_data()) {
      PANDA_REQUIRE(static_cast<std::int64_t>(out.size()) == vbytes,
                    "store_data ObjectStoreFileSystem requires a real buffer");
      if (vbytes > 0) {
        std::memcpy(out.data(), inode_->data.data() + offset,
                    static_cast<size_t>(vbytes));
      }
    }
    if (!inode_->object) {
      fs_->ChargeLocal(inode_id_, offset, vbytes, /*write=*/false);
      return;
    }
    // GETs move whole objects no matter the window asked for — the
    // whole point of shard-sized objects is to make this one fetch.
    fs_->ChargeGet(inode_->size, 0.0);
  }

  void Sync() override {
    fs_->stats_.syncs += 1;
    if (inode_->object) {
      fs_->DrainChannels();  // durability barrier for outstanding PUTs
      return;
    }
    if (fs_->options_.clock != nullptr) {
      fs_->options_.clock->Advance(fs_->model().local.fsync_s);
    }
    fs_->stats_.busy_seconds += fs_->model().local.fsync_s;
  }

  std::int64_t Size() override { return inode_->size; }

 private:
  ObjectStoreFileSystem* fs_;
  ObjectStoreFileSystem::Inode* inode_;
  std::int64_t inode_id_;
};

std::unique_ptr<File> ObjectStoreFileSystem::Open(const std::string& path,
                                                  OpenMode mode) {
  auto it = inodes_.find(path);
  if (mode == OpenMode::kRead) {
    PANDA_REQUIRE(it != inodes_.end(), "object/file %s does not exist",
                  path.c_str());
  } else if (mode == OpenMode::kWrite) {
    if (it != inodes_.end()) {
      it->second.data.clear();
      it->second.size = 0;
    } else {
      it = inodes_.emplace(path, Inode{}).first;
    }
  } else {  // kReadWrite
    if (it == inodes_.end()) it = inodes_.emplace(path, Inode{}).first;
  }
  it->second.object = IsObjectPath(path);
  auto id_it = inode_ids_.find(path);
  if (id_it == inode_ids_.end()) {
    id_it = inode_ids_.emplace(path, next_inode_id_++).first;
  }
  return std::make_unique<ObjectStoreFile>(this, &it->second, id_it->second);
}

bool ObjectStoreFileSystem::Exists(const std::string& path) {
  return inodes_.count(path) != 0;
}

void ObjectStoreFileSystem::Remove(const std::string& path) {
  inodes_.erase(path);
}

void ObjectStoreFileSystem::Rename(const std::string& from,
                                   const std::string& to) {
  auto it = inodes_.find(from);
  PANDA_REQUIRE(it != inodes_.end(), "rename: %s does not exist",
                from.c_str());
  auto node = inodes_.extract(it);
  node.key() = to;
  inodes_.erase(to);
  inodes_.insert(std::move(node));
  // A rename is a manifest flip on the node-local metadata disk; the
  // target's object-ness follows its (possibly different) new name.
  inodes_.find(to)->second.object = IsObjectPath(to);
  if (options_.clock != nullptr) {
    options_.clock->Advance(options_.model.local.fsync_s);
  }
}

}  // namespace panda
