#include "iosim/sim_fs.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace panda {

// Defined at namespace scope (not anonymous) so the friend declaration in
// SimFileSystem applies.
class SimFile : public File {
 public:
  SimFile(SimFileSystem* fs, SimFileSystem::Inode* inode, std::int64_t inode_id);

  void WriteAt(std::int64_t offset, std::span<const std::byte> data,
               std::int64_t vbytes) override;
  void ReadAt(std::int64_t offset, std::span<std::byte> out,
              std::int64_t vbytes) override;
  void Sync() override;
  std::int64_t Size() override { return inode_->size; }

 private:
  SimFileSystem* fs_;
  SimFileSystem::Inode* inode_;
  std::int64_t inode_id_;
};

bool SimFileSystem::AccessIsSequential(std::int64_t inode_id,
                                       std::int64_t offset, std::int64_t n) {
  const bool sequential = inode_id == head_inode_ && offset == head_offset_;
  head_inode_ = inode_id;
  head_offset_ = offset + n;
  if (!sequential) stats_.seeks += 1;
  return sequential;
}

SimFile::SimFile(SimFileSystem* fs, SimFileSystem::Inode* inode,
                 std::int64_t inode_id)
    : fs_(fs), inode_(inode), inode_id_(inode_id) {}

void SimFile::WriteAt(std::int64_t offset, std::span<const std::byte> data,
                      std::int64_t vbytes) {
  PANDA_CHECK(offset >= 0 && vbytes >= 0);
  if (fs_->store_data()) {
    PANDA_REQUIRE(static_cast<std::int64_t>(data.size()) == vbytes,
                  "store_data SimFileSystem requires real data");
    if (offset + vbytes > static_cast<std::int64_t>(inode_->data.size())) {
      inode_->data.resize(static_cast<size_t>(offset + vbytes));
    }
    std::memcpy(inode_->data.data() + offset, data.data(),
                static_cast<size_t>(vbytes));
  }
  inode_->size = std::max(inode_->size, offset + vbytes);
  const bool seq = fs_->AccessIsSequential(inode_id_, offset, vbytes);
  fs_->Charge(fs_->disk().WriteSeconds(vbytes, seq));
  fs_->stats_.writes += 1;
  fs_->stats_.bytes_written += vbytes;
}

void SimFile::ReadAt(std::int64_t offset, std::span<std::byte> out,
                     std::int64_t vbytes) {
  PANDA_CHECK(offset >= 0 && vbytes >= 0);
  PANDA_REQUIRE(offset + vbytes <= inode_->size,
                "read past EOF (offset %lld + %lld > size %lld)",
                static_cast<long long>(offset),
                static_cast<long long>(vbytes),
                static_cast<long long>(inode_->size));
  if (fs_->store_data()) {
    PANDA_REQUIRE(static_cast<std::int64_t>(out.size()) == vbytes,
                  "store_data SimFileSystem requires a real output buffer");
    std::memcpy(out.data(), inode_->data.data() + offset,
                static_cast<size_t>(vbytes));
  }
  const bool seq = fs_->AccessIsSequential(inode_id_, offset, vbytes);
  fs_->Charge(fs_->disk().ReadSeconds(vbytes, seq));
  fs_->stats_.reads += 1;
  fs_->stats_.bytes_read += vbytes;
}

void SimFile::Sync() {
  fs_->Charge(fs_->disk().fsync_s);
  fs_->stats_.syncs += 1;
}

std::unique_ptr<File> SimFileSystem::Open(const std::string& path,
                                          OpenMode mode) {
  auto it = inodes_.find(path);
  if (mode == OpenMode::kRead) {
    PANDA_REQUIRE(it != inodes_.end(), "simulated file %s does not exist",
                  path.c_str());
  } else if (mode == OpenMode::kWrite) {
    if (it != inodes_.end()) {
      it->second.data.clear();
      it->second.size = 0;
    } else {
      it = inodes_.emplace(path, Inode{}).first;
    }
  } else {  // kReadWrite
    if (it == inodes_.end()) it = inodes_.emplace(path, Inode{}).first;
  }
  auto id_it = inode_ids_.find(path);
  if (id_it == inode_ids_.end()) {
    id_it = inode_ids_.emplace(path, next_inode_id_++).first;
  }
  return std::make_unique<SimFile>(this, &it->second, id_it->second);
}

bool SimFileSystem::Exists(const std::string& path) {
  return inodes_.count(path) != 0;
}

void SimFileSystem::Remove(const std::string& path) { inodes_.erase(path); }

void SimFileSystem::Rename(const std::string& from, const std::string& to) {
  auto it = inodes_.find(from);
  PANDA_REQUIRE(it != inodes_.end(), "rename: %s does not exist",
                from.c_str());
  // Open SimFile handles hold Inode pointers; renaming while a handle is
  // open would dangle. Panda renames only after closing, so move the
  // node (stable address) under the new key.
  auto node = inodes_.extract(it);
  node.key() = to;
  inodes_.erase(to);
  inodes_.insert(std::move(node));
  // Metadata operation: charge a small fixed cost.
  Charge(options_.disk.fsync_s);
}

}  // namespace panda
