// Real-file backend: POSIX files under a root directory.
//
// Used by functional tests and example programs, where Panda's output
// must be byte-exact on a real Unix file system (Panda 2.0 ran on plain
// AIX/Unix file systems; this is the same commodity-FS philosophy).
#pragma once

#include <string>

#include "iosim/file_system.h"

namespace panda {

class PosixFileSystem : public FileSystem {
 public:
  // Files live under `root` (created if missing). Paths given to Open()
  // are relative to the root and must not escape it.
  explicit PosixFileSystem(std::string root);

  std::unique_ptr<File> Open(const std::string& path, OpenMode mode) override;
  bool Exists(const std::string& path) override;
  void Remove(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;

  const FsStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = FsStats{}; }

  const std::string& root() const { return root_; }

 private:
  std::string FullPath(const std::string& path) const;

  std::string root_;
  FsStats stats_;
};

}  // namespace panda
