// Minimal leveled logger.
//
// Panda is a library: by default it is silent (level kWarn). Tests and
// the bench harness raise the level for diagnosis. Logging is guarded by
// a global atomic level check so disabled statements cost one load.
#pragma once

#include <atomic>
#include <string>

#include "util/error.h"

namespace panda {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets / reads the global log threshold. Messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
extern std::atomic<int> g_log_level;
void LogMessage(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace panda

#define PANDA_LOG(level, ...)                                                \
  do {                                                                       \
    if (static_cast<int>(level) >=                                           \
        ::panda::detail::g_log_level.load(std::memory_order_relaxed)) {     \
      ::panda::detail::LogMessage(level, ::panda::StrFormat(__VA_ARGS__));   \
    }                                                                        \
  } while (0)

#define PANDA_DEBUG(...) PANDA_LOG(::panda::LogLevel::kDebug, __VA_ARGS__)
#define PANDA_INFO(...) PANDA_LOG(::panda::LogLevel::kInfo, __VA_ARGS__)
#define PANDA_WARN(...) PANDA_LOG(::panda::LogLevel::kWarn, __VA_ARGS__)
#define PANDA_ERROR(...) PANDA_LOG(::panda::LogLevel::kError, __VA_ARGS__)
