#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace panda {
namespace detail {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

namespace {
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void LogMessage(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[panda %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace detail

void SetLogLevel(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

}  // namespace panda
