// Tiny command-line option parser for the bench and example binaries.
//
// Supports the "--name=value" form plus bare "--name" boolean flags;
// everything else is positional.
// Unknown options raise PandaError so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace panda {

class Options {
 public:
  // Parses argv; throws PandaError on malformed input.
  Options(int argc, char** argv);

  // Typed getters with defaults. Present-but-unconsumed options are
  // reported by CheckAllConsumed().
  std::string GetString(const std::string& name, const std::string& def);
  std::int64_t GetInt(const std::string& name, std::int64_t def);
  double GetDouble(const std::string& name, double def);
  bool GetBool(const std::string& name, bool def);

  // Positional (non --option) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Throws PandaError if any --option was supplied but never read.
  void CheckAllConsumed() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace panda
