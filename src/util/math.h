// Small integer helpers used throughout the array-geometry code.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace panda {

// ceil(a / b) for non-negative a and positive b.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr std::int64_t AlignUp(std::int64_t a, std::int64_t b) {
  return CeilDiv(a, b) * b;
}

}  // namespace panda
