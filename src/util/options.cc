#include "util/options.h"

#include <cstdlib>

#include "util/error.h"

namespace panda {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::string Options::GetString(const std::string& name,
                               const std::string& def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Options::GetInt(const std::string& name, std::int64_t def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  PANDA_REQUIRE(end != nullptr && *end == '\0', "option --%s=%s is not an integer",
                name.c_str(), it->second.c_str());
  return v;
}

double Options::GetDouble(const std::string& name, double def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PANDA_REQUIRE(end != nullptr && *end == '\0', "option --%s=%s is not a number",
                name.c_str(), it->second.c_str());
  return v;
}

bool Options::GetBool(const std::string& name, bool def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw PandaError(StrFormat("option --%s=%s is not a boolean", name.c_str(),
                             v.c_str()));
}

void Options::CheckAllConsumed() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    PANDA_REQUIRE(consumed_.count(name) != 0, "unknown option --%s",
                  name.c_str());
  }
}

}  // namespace panda
