#include "util/error.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace panda {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

namespace detail {

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "PANDA_CHECK failed: %s at %s:%d %s\n", expr, file,
               line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace panda
