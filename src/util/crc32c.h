// CRC32C (Castagnoli) checksums.
//
// Used for Panda's end-to-end integrity protection: piece payloads on
// the wire and sub-chunk sidecar records on disk both carry a CRC32C so
// corruption anywhere between a client's memory and an i/o node's disk
// (or vice versa) is detected at the first opportunity instead of
// silently scrambling arrays. CRC32C is the same polynomial iSCSI and
// ext4 use; the implementation is a portable slice-by-8 table walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace panda {

// CRC32C of `data`, continuing from `seed` (pass the previous return
// value to checksum discontiguous buffers as one stream; 0 to start).
std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

// Convenience overload for raw pointers.
std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace panda
