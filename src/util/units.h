// Byte-size units and human-readable formatting.
//
// The paper reports array sizes and throughputs in "MB"; we follow the
// 1995 convention that 1 MB = 2^20 bytes for array sizes and throughput
// alike, so that normalized ratios match the paper's arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace panda {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

// Formats a byte count as "512 B", "1.5 KB", "64 MB", ... (power-of-two
// units, paper-style suffixes).
std::string FormatBytes(std::int64_t bytes);

// Formats a throughput in bytes/second as "12.34 MB/s".
std::string FormatThroughput(double bytes_per_second);

// Formats a duration in seconds as "1.234 s" / "12.3 ms" / "45 us".
std::string FormatSeconds(double seconds);

}  // namespace panda
