#include "util/random.h"

namespace panda {
namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace panda
