#include "util/crc32c.h"

#include <array>

namespace panda {
namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[0] is the classic byte-at-a-time table; tables 1..7 extend it
  // for slice-by-8 (process 8 input bytes per iteration).
  std::uint32_t t[8][256];

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  // Slice-by-8 main loop.
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace panda
