// Deterministic pseudo-random numbers (xoshiro256**).
//
// Tests and workload generators need reproducible streams that do not
// depend on the standard library's unspecified distributions.
#pragma once

#include <cstdint>

namespace panda {

// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [0, bound) for bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  std::uint64_t s_[4];
};

}  // namespace panda
