// Byte-stream encoding for Panda's wire protocol and metadata files.
//
// Fixed little-endian encoding of scalar values, length-prefixed strings
// and vectors. Decoding validates bounds and throws PandaError on
// truncated or corrupt input, so a damaged .schema file or a protocol
// bug fails loudly instead of corrupting arrays.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace panda {

class Encoder {
 public:
  // Appends to `out`; the caller owns the buffer.
  explicit Encoder(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t n = out_.size();
    out_.resize(n + sizeof(T));
    std::memcpy(out_.data() + n, &value, sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    const size_t n = out_.size();
    out_.resize(n + s.size());
    std::memcpy(out_.data() + n, s.data(), s.size());
  }

  void PutBytes(std::span<const std::byte> bytes) {
    const size_t n = out_.size();
    out_.resize(n + bytes.size());
    std::memcpy(out_.data() + n, bytes.data(), bytes.size());
  }

 private:
  std::vector<std::byte>& out_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    PANDA_REQUIRE(pos_ + sizeof(T) <= data_.size(),
                  "decode past end of buffer (at %zu of %zu)", pos_,
                  data_.size());
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string GetString() {
    const auto n = Get<std::uint32_t>();
    PANDA_REQUIRE(pos_ + n <= data_.size(), "decode past end of buffer");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> GetBytes(size_t n) {
    PANDA_REQUIRE(pos_ + n <= data_.size(), "decode past end of buffer");
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace panda
