// Error handling primitives for the Panda library.
//
// Panda follows the C++ Core Guidelines convention: programming errors
// (violated preconditions, corrupted invariants) abort via PANDA_CHECK;
// runtime failures that a caller can reasonably handle (bad user schemas,
// I/O failures) throw PandaError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace panda {

// Exception thrown for recoverable runtime failures: invalid schemas,
// file-system errors, protocol violations detected at run time.
class PandaError : public std::runtime_error {
 public:
  explicit PandaError(const std::string& what) : std::runtime_error(what) {}
};

// A *transient* I/O failure: the operation may well succeed if simply
// retried (EIO under load, a torn write, a flaky controller). Thrown by
// fault injectors and retry-aware backends; RetryPolicy retries exactly
// this type and lets every other PandaError propagate as permanent.
class TransientIoError : public PandaError {
 public:
  using PandaError::PandaError;
};

// A collective was aborted cluster-wide. Carries the rank where the
// fault originated and the cause, so every rank's exception names the
// same culprit. Raised on the originating rank after it fans the abort
// out (see docs/PROTOCOL.md "Error handling"), and on every other rank
// when the abort notice reaches its mailbox.
class PandaAbortError : public PandaError {
 public:
  PandaAbortError(int origin_rank, const std::string& reason)
      : PandaError("collective aborted (origin rank " +
                   std::to_string(origin_rank) + "): " + reason),
        origin_rank_(origin_rank),
        reason_(reason) {}

  int origin_rank() const { return origin_rank_; }
  const std::string& reason() const { return reason_; }

 private:
  int origin_rank_;
  std::string reason_;
};

// A peer rank has been declared dead by the failure detector: a blocking
// receive from that rank cannot ever complete. Derives PandaError so an
// unhandled detection feeds the structured-abort backstop; the failover
// layer catches it first and routes around the dead rank instead.
class PeerDeadError : public PandaError {
 public:
  explicit PeerDeadError(int dead_rank)
      : PandaError("peer rank " + std::to_string(dead_rank) +
                   " declared dead (heartbeat lease expired)"),
        dead_rank_(dead_rank) {}

  int dead_rank() const { return dead_rank_; }

 private:
  int dead_rank_;
};

// The failover coordinator (master i/o server) has declared a set of
// server ranks dead and is re-planning the collective over the
// survivors. Raised on clients when a kTagFailover notice outranks their
// ordinary matching (mirroring the abort promotion); the client's
// execute loop catches it, acknowledges, and re-arms for degraded mode.
// Deliberately NOT sticky: unlike an abort, the collective continues.
class PandaFailoverError : public PandaError {
 public:
  PandaFailoverError(int origin_rank, std::vector<int> dead_ranks,
                     std::int64_t epoch = 0)
      : PandaError("collective entering degraded mode (coordinator rank " +
                   std::to_string(origin_rank) + ", " +
                   std::to_string(dead_ranks.size()) + " dead server(s))"),
        origin_rank_(origin_rank),
        epoch_(epoch),
        dead_ranks_(std::move(dead_ranks)) {}

  int origin_rank() const { return origin_rank_; }
  // The coordinator's layout epoch (carried on completion notices so
  // clients learn which layout generation the group is under; 0 when
  // the notice predates epoch versioning).
  std::int64_t epoch() const { return epoch_; }
  const std::vector<int>& dead_ranks() const { return dead_ranks_; }

 private:
  int origin_rank_;
  std::int64_t epoch_;
  std::vector<int> dead_ranks_;
};

// Thrown inside a rank's thread by the crash-stop injector
// (ThreadTransport::ScheduleKill) to unwind that rank silently.
// Deliberately NOT a PandaError: a crash-stopped process executes no
// exception handlers, so none of the protocol's PandaError recovery
// paths may observe it — it must fly straight through to the transport's
// Run loop, which swallows it without poisoning anyone.
class RankKilledError : public std::runtime_error {
 public:
  explicit RankKilledError(int rank)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " crash-stopped by kill injector"),
        rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

namespace detail {
// Aborts with a diagnostic; used by PANDA_CHECK. Never returns.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

// Formats a message with printf-like semantics into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace panda

// Invariant check that stays enabled in release builds. Panda is a library
// whose correctness claims (byte-exact array round trips) matter more than
// the last few percent of CPU; checks are cheap relative to I/O.
#define PANDA_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::panda::detail::CheckFailed(#expr, __FILE__, __LINE__, "");         \
    }                                                                      \
  } while (0)

#define PANDA_CHECK_MSG(expr, ...)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::panda::detail::CheckFailed(#expr, __FILE__, __LINE__,              \
                                   ::panda::StrFormat(__VA_ARGS__));       \
    }                                                                      \
  } while (0)

// Throws PandaError when a user-facing condition does not hold.
#define PANDA_REQUIRE(expr, ...)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      throw ::panda::PandaError(::panda::StrFormat(__VA_ARGS__));          \
    }                                                                      \
  } while (0)
