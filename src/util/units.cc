#include "util/units.h"

#include "util/error.h"

namespace panda {

std::string FormatBytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) return StrFormat("%.2f GB", b / static_cast<double>(kGiB));
  if (bytes >= kMiB) return StrFormat("%.2f MB", b / static_cast<double>(kMiB));
  if (bytes >= kKiB) return StrFormat("%.2f KB", b / static_cast<double>(kKiB));
  return StrFormat("%lld B", static_cast<long long>(bytes));
}

std::string FormatThroughput(double bytes_per_second) {
  return StrFormat("%.2f MB/s",
                   bytes_per_second / static_cast<double>(kMiB));
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.1f us", seconds * 1e6);
}

}  // namespace panda
