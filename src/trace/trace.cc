#include "trace/trace.h"

#include <algorithm>

#include "util/error.h"
#include "util/units.h"

namespace panda {
namespace trace {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientCollective:
      return "client.collective";
    case SpanKind::kClientPack:
      return "client.pack";
    case SpanKind::kClientUnpack:
      return "client.unpack";
    case SpanKind::kTransportSend:
      return "transport.send";
    case SpanKind::kTransportRecv:
      return "transport.recv";
    case SpanKind::kTransportRetransmit:
      return "transport.retransmit";
    case SpanKind::kServerPlan:
      return "server.plan";
    case SpanKind::kServerPull:
      return "server.pull";
    case SpanKind::kServerAssemble:
      return "server.assemble";
    case SpanKind::kServerWrite:
      return "server.write";
    case SpanKind::kServerRead:
      return "server.read";
    case SpanKind::kJournalAppend:
      return "journal.append";
    case SpanKind::kRetryBackoff:
      return "retry.backoff";
    case SpanKind::kFailoverReplan:
      return "failover.replan";
    case SpanKind::kCodecEncode:
      return "codec.encode";
    case SpanKind::kCodecDecode:
      return "codec.decode";
    case SpanKind::kRejoinRepair:
      return "rejoin.repair";
    case SpanKind::kStoreFlush:
      return "store.flush";
    case SpanKind::kStoreGet:
      return "store.get";
    case SpanKind::kSchedYield:
      return "sched.yield";
    case SpanKind::kSchedDispatch:
      return "sched.dispatch";
    case SpanKind::kNumKinds:
      break;
  }
  return "unknown";
}

const char* MetricName(MetricId id) {
  switch (id) {
    case MetricId::kSubchunkBytes:
      return "server.subchunk_bytes";
    case MetricId::kDiskOpSeconds:
      return "disk.op_seconds";
    case MetricId::kMailboxDepth:
      return "mailbox.depth";
    case MetricId::kCodecRatio:
      return "codec.ratio";
    case MetricId::kCodecEncodeSeconds:
      return "codec.encode_seconds";
    case MetricId::kSchedReadyDepth:
      return "sched.ready_depth";
    case MetricId::kNumMetrics:
      break;
  }
  return "unknown";
}

const std::vector<double>& DefaultMetricEdges(MetricId id) {
  // Fixed edges so cross-rank (and cross-run) merges always line up.
  static const std::vector<double> subchunk_bytes = [] {
    // 4 KiB .. 16 MiB, powers of two (the paper's sub-chunk knee is at
    // 1 MiB; see bench_subchunk_size).
    std::vector<double> e;
    for (double v = 4.0 * kKiB; v <= 16.0 * kMiB; v *= 2.0) e.push_back(v);
    return e;
  }();
  static const std::vector<double> disk_op_seconds = [] {
    // 100 us .. ~1.6 s, powers of two (AIX 1 MiB writes sit near 0.5 s).
    std::vector<double> e;
    for (double v = 1.0e-4; v <= 2.0; v *= 2.0) e.push_back(v);
    return e;
  }();
  static const std::vector<double> mailbox_depth = {1,  2,  4,   8,
                                                    16, 32, 64, 128};
  static const std::vector<double> codec_ratio = {
      0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  static const std::vector<double> codec_encode_seconds = [] {
    // 10 us .. ~0.16 s, powers of two (1 MiB at 60 MiB/s is ~17 ms).
    std::vector<double> e;
    for (double v = 1.0e-5; v <= 0.2; v *= 2.0) e.push_back(v);
    return e;
  }();
  static const std::vector<double> sched_ready_depth = [] {
    // 1 .. 4096 ranks runnable at once, powers of two (--ranks=4096 is
    // the bench_scale_ranks ceiling).
    std::vector<double> e;
    for (double v = 1.0; v <= 4096.0; v *= 2.0) e.push_back(v);
    return e;
  }();
  switch (id) {
    case MetricId::kSubchunkBytes:
      return subchunk_bytes;
    case MetricId::kDiskOpSeconds:
      return disk_op_seconds;
    case MetricId::kMailboxDepth:
      return mailbox_depth;
    case MetricId::kCodecRatio:
      return codec_ratio;
    case MetricId::kCodecEncodeSeconds:
      return codec_encode_seconds;
    case MetricId::kSchedReadyDepth:
      return sched_ready_depth;
    case MetricId::kNumMetrics:
      break;
  }
  PANDA_CHECK_MSG(false, "bad metric id");
  return mailbox_depth;  // unreachable
}

TraceRecorder::TraceRecorder(int rank, size_t ring_capacity)
    : rank_(rank), capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  ring_.resize(capacity_);
  histograms_.reserve(kNumMetricIds);
  for (size_t i = 0; i < kNumMetricIds; ++i) {
    histograms_.emplace_back(DefaultMetricEdges(static_cast<MetricId>(i)));
  }
}

void TraceRecorder::Record(SpanKind kind, double begin_vs, double end_vs,
                           std::int64_t arg) {
  TraceSpan& slot = ring_[next_];
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;  // the slot held the oldest span; it is gone now
  }
  slot.kind = kind;
  slot.begin_vs = begin_vs;
  slot.end_vs = end_vs;
  slot.arg = arg;

  SpanAggregate& agg = aggregates_[static_cast<size_t>(kind)];
  agg.count += 1;
  agg.total_s += end_vs - begin_vs;
  agg.total_arg += arg;
}

void TraceRecorder::Observe(MetricId id, double value) {
  histograms_[static_cast<size_t>(id)].Observe(value);
}

std::vector<TraceSpan> TraceRecorder::Spans() const {
  std::vector<TraceSpan> out;
  out.reserve(size_);
  // Oldest first: when the ring has wrapped, the oldest span sits at
  // next_ (the slot about to be overwritten).
  const size_t start = size_ < capacity_ ? 0 : next_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::Reset() {
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
  aggregates_.fill(SpanAggregate{});
  for (Histogram& h : histograms_) h.Reset();
}

Collector::Collector(int nranks, TraceOptions options) : options_(options) {
  PANDA_CHECK_MSG(nranks >= 1, "collector needs at least one rank");
  recorders_.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    recorders_.push_back(
        std::make_unique<TraceRecorder>(r, options_.ring_capacity));
  }
}

TraceRecorder& Collector::recorder(int rank) {
  PANDA_CHECK(rank >= 0 && rank < nranks());
  return *recorders_[static_cast<size_t>(rank)];
}

const TraceRecorder& Collector::recorder(int rank) const {
  PANDA_CHECK(rank >= 0 && rank < nranks());
  return *recorders_[static_cast<size_t>(rank)];
}

std::vector<Collector::RankSpan> Collector::MergedSpans() const {
  // Tag each span with (rank, per-rank index) and sort by
  // (begin, end, rank, index): a total, deterministic order because
  // virtual clocks and per-rank record order are deterministic.
  struct Keyed {
    RankSpan rs;
    size_t index;
  };
  std::vector<Keyed> keyed;
  for (const auto& rec : recorders_) {
    const std::vector<TraceSpan> spans = rec->Spans();
    for (size_t i = 0; i < spans.size(); ++i) {
      keyed.push_back(Keyed{RankSpan{rec->rank(), spans[i]}, i});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.rs.span.begin_vs != b.rs.span.begin_vs) {
      return a.rs.span.begin_vs < b.rs.span.begin_vs;
    }
    if (a.rs.span.end_vs != b.rs.span.end_vs) {
      return a.rs.span.end_vs < b.rs.span.end_vs;
    }
    if (a.rs.rank != b.rs.rank) return a.rs.rank < b.rs.rank;
    return a.index < b.index;
  });
  std::vector<RankSpan> out;
  out.reserve(keyed.size());
  for (auto& k : keyed) out.push_back(k.rs);
  return out;
}

std::array<SpanAggregate, kNumSpanKinds> Collector::AggregateByKind() const {
  std::array<SpanAggregate, kNumSpanKinds> total{};
  for (const auto& rec : recorders_) {
    for (size_t k = 0; k < kNumSpanKinds; ++k) {
      const SpanAggregate& a = rec->aggregate(static_cast<SpanKind>(k));
      total[k].count += a.count;
      total[k].total_s += a.total_s;
      total[k].total_arg += a.total_arg;
    }
  }
  return total;
}

Histogram Collector::MergedHistogram(MetricId id) const {
  Histogram merged(DefaultMetricEdges(id));
  for (const auto& rec : recorders_) merged.Merge(rec->histogram(id));
  return merged;
}

std::int64_t Collector::TotalDropped() const {
  std::int64_t total = 0;
  for (const auto& rec : recorders_) total += rec->dropped();
  return total;
}

void Collector::FillRegistry(MetricsRegistry& registry) const {
  const auto aggregates = AggregateByKind();
  for (size_t k = 0; k < kNumSpanKinds; ++k) {
    const SpanAggregate& a = aggregates[k];
    if (a.count == 0) continue;
    const std::string base =
        std::string("span.") + SpanKindName(static_cast<SpanKind>(k));
    registry.AddCounter(base + ".count", a.count);
    registry.SetGauge(base + ".total_s", a.total_s);
    registry.AddCounter(base + ".total_arg", a.total_arg);
  }
  for (size_t m = 0; m < kNumMetricIds; ++m) {
    const MetricId id = static_cast<MetricId>(m);
    const Histogram merged = MergedHistogram(id);
    if (merged.total_count() == 0) continue;
    registry.MergeHistogram(MetricName(id), merged);
  }
  registry.AddCounter("trace.spans_dropped", TotalDropped());
}

void Collector::Reset() {
  for (auto& rec : recorders_) rec->Reset();
}

RankContext& CurrentContext() {
  thread_local RankContext ctx;
  return ctx;
}

}  // namespace trace
}  // namespace panda
