// Virtual-time span tracing: per-rank recorders, RAII spans, collector.
//
// The paper's entire argument is *where time goes* inside a collective —
// sequential disk time vs. network vs. server buffer stalls (Figures
// 3-9). This subsystem records that attribution as spans stamped in the
// SP2 virtual clock: client pack/unpack, transport send/recv/
// retransmit, server plan/pull/assemble/write/read, journal appends,
// retry backoff, failover re-planning.
//
// Design rules:
//  * Spans only *read* clocks, never advance them: a traced run's
//    virtual clocks and byte counts are bit-identical to an untraced
//    run (asserted by tests/trace_test.cc).
//  * One TraceRecorder per rank, touched only by that rank's thread —
//    no locks on the hot path. Merging happens after the rank threads
//    join.
//  * Bounded memory: each recorder is a fixed-capacity ring; overflow
//    drops the *oldest* span and counts the drop. Per-kind aggregates
//    (count, total seconds, total bytes) are kept outside the ring, so
//    bench summaries survive overflow.
//  * Zero cost when disabled: the PANDA_SPAN macro and the RecordSpan/
//    ObserveMetric helpers compile to nothing with -DPANDA_TRACE_ENABLED=0
//    (CMake option PANDA_TRACE), and cost one thread-local load + null
//    check when compiled in but not armed at run time (TraceOptions).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msg/virtual_clock.h"
#include "trace/metrics.h"

#ifndef PANDA_TRACE_ENABLED
#define PANDA_TRACE_ENABLED 1
#endif

namespace panda {
namespace trace {

// The span taxonomy (docs/OBSERVABILITY.md). Every kind maps onto one
// stage of the collective protocol (docs/PROTOCOL.md message tags).
enum class SpanKind : std::uint8_t {
  kClientCollective = 0,  // whole collective, client side (WriteArray...)
  kClientPack,            // gather/pack of one outgoing write piece
  kClientUnpack,          // scatter/unpack of one incoming read piece
  kTransportSend,         // send overhead + outbound wire occupancy
  kTransportRecv,         // blocked receive (wait + ingest + overhead)
  kTransportRetransmit,   // receiver-driven rescue of dropped messages
  kServerPlan,            // request digestion + local plan formation
  kServerPull,            // gathering one sub-chunk's pieces from clients
  kServerAssemble,        // reorganizing a non-contiguous piece
  kServerWrite,           // one sub-chunk's disk write (caller-visible)
  kServerRead,            // one sub-chunk's disk read
  kJournalAppend,         // write-ahead chunk-journal record append
  kRetryBackoff,          // virtual backoff between disk-op retries
  kFailoverReplan,        // degraded-mode re-planning round
  kCodecEncode,           // framing one sub-chunk / wire piece (arg: raw bytes)
  kCodecDecode,           // decoding one frame back to raw (arg: raw bytes)
  kRejoinRepair,          // rejoin repair collective (arg: chunks migrated)
  kStoreFlush,            // shard-store flush: table write / object PUT
  kStoreGet,              // shard-store sub-chunk fetch (arg: raw bytes)
  kSchedYield,            // cooperative yield point (fiber backend)
  kSchedDispatch,         // scheduler dispatched a rank slice (arg: depth)
  kNumKinds,
};

inline constexpr size_t kNumSpanKinds =
    static_cast<size_t>(SpanKind::kNumKinds);

// Stable export name of a span kind ("server.write", ...).
const char* SpanKindName(SpanKind kind);

// Fixed histogram metrics recorded per rank (DefaultMetricEdges picks
// the bucket layout; see docs/OBSERVABILITY.md for the catalog).
enum class MetricId : std::uint8_t {
  kSubchunkBytes = 0,  // bytes of each sub-chunk moved through a server
  kDiskOpSeconds,      // device time of each disk read/write request
  kMailboxDepth,       // queued messages seen by each blocking receive
  kCodecRatio,         // framed/raw bytes of each encode (1.0 = stored)
  kCodecEncodeSeconds, // modeled compute time of each encode
  kSchedReadyDepth,    // ready-queue depth at each fiber dispatch
  kNumMetrics,
};

inline constexpr size_t kNumMetricIds =
    static_cast<size_t>(MetricId::kNumMetrics);

const char* MetricName(MetricId id);
const std::vector<double>& DefaultMetricEdges(MetricId id);

// One recorded span. 32 bytes; the ring is a flat array of these.
struct TraceSpan {
  double begin_vs = 0.0;  // virtual seconds
  double end_vs = 0.0;
  std::int64_t arg = 0;  // kind-specific payload (usually bytes)
  SpanKind kind = SpanKind::kClientCollective;

  bool operator==(const TraceSpan&) const = default;
};

// Running per-kind totals, kept outside the ring so aggregates are
// exact even after overflow drops spans.
struct SpanAggregate {
  std::int64_t count = 0;
  double total_s = 0.0;
  std::int64_t total_arg = 0;
};

struct TraceOptions {
  bool enabled = true;  // runtime master switch
  // Max spans retained per rank; overflow drops the oldest.
  size_t ring_capacity = 1 << 15;
};

// Per-rank span recorder. Single-owner: only the rank's thread may call
// Record/Observe; reads (Spans, aggregates) happen after the rank
// threads join. No locking anywhere.
class TraceRecorder {
 public:
  TraceRecorder(int rank, size_t ring_capacity);

  int rank() const { return rank_; }

  // Records a completed span. Out-of-order end times are fine (nested
  // spans complete inner-first); exporters sort.
  void Record(SpanKind kind, double begin_vs, double end_vs,
              std::int64_t arg);

  // Records one histogram observation.
  void Observe(MetricId id, double value);

  // Retained spans, oldest first (ring order).
  std::vector<TraceSpan> Spans() const;

  std::int64_t dropped() const { return dropped_; }
  const SpanAggregate& aggregate(SpanKind kind) const {
    return aggregates_[static_cast<size_t>(kind)];
  }
  const Histogram& histogram(MetricId id) const {
    return histograms_[static_cast<size_t>(id)];
  }

  void Reset();

 private:
  int rank_;
  size_t capacity_;
  std::vector<TraceSpan> ring_;
  size_t next_ = 0;      // ring slot the next span goes to
  size_t size_ = 0;      // spans currently retained
  std::int64_t dropped_ = 0;
  std::array<SpanAggregate, kNumSpanKinds> aggregates_{};
  std::vector<Histogram> histograms_;  // one per MetricId
};

// One machine's recorders: one per rank, created when tracing is armed
// (ThreadTransport::SetTrace / Machine::EnableTrace).
class Collector {
 public:
  Collector(int nranks, TraceOptions options);

  int nranks() const { return static_cast<int>(recorders_.size()); }
  const TraceOptions& options() const { return options_; }

  TraceRecorder& recorder(int rank);
  const TraceRecorder& recorder(int rank) const;

  // A span tagged with its rank, for merged (cross-rank) views.
  struct RankSpan {
    int rank = 0;
    TraceSpan span;

    bool operator==(const RankSpan&) const = default;
  };

  // All ranks' spans merged deterministically: sorted by (begin, end,
  // rank, per-rank record order). Virtual clocks are deterministic, so
  // two runs of the same seeded workload merge identically
  // (tests/trace_test.cc).
  std::vector<RankSpan> MergedSpans() const;

  // Per-kind aggregates summed over all ranks.
  std::array<SpanAggregate, kNumSpanKinds> AggregateByKind() const;

  // All ranks' observations of `id` merged into one histogram.
  Histogram MergedHistogram(MetricId id) const;

  // Total spans dropped to ring overflow, all ranks.
  std::int64_t TotalDropped() const;

  // Adds span aggregates, merged histograms and the drop counter to
  // `registry` (span.<name>.count / .total_s / .total_arg counters and
  // gauges; one histogram per MetricId; trace.spans_dropped).
  void FillRegistry(MetricsRegistry& registry) const;

  void Reset();

 private:
  TraceOptions options_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
};

// ---- Thread-local rank context --------------------------------------
//
// Instrumentation sites (client, server, retry, transport) record
// against "the current rank", installed by ThreadTransport::Run for the
// lifetime of each rank thread. Outside a rank thread (or with tracing
// disarmed) the context is null and every helper is a no-op.

struct RankContext {
  TraceRecorder* recorder = nullptr;
  const VirtualClock* clock = nullptr;
};

RankContext& CurrentContext();

// Installs (and on destruction restores) the calling thread's context.
class ScopedRankContext {
 public:
  ScopedRankContext(TraceRecorder* recorder, const VirtualClock* clock)
      : prev_(CurrentContext()) {
    CurrentContext() = RankContext{recorder, clock};
  }
  ~ScopedRankContext() { CurrentContext() = prev_; }

  ScopedRankContext(const ScopedRankContext&) = delete;
  ScopedRankContext& operator=(const ScopedRankContext&) = delete;

 private:
  RankContext prev_;
};

// ---- Recording helpers (compile away with PANDA_TRACE_ENABLED=0) ----

#if PANDA_TRACE_ENABLED

// True when the calling thread has an armed recorder.
inline bool Active() { return CurrentContext().recorder != nullptr; }

// Records an explicit-time span against the current rank.
inline void RecordSpan(SpanKind kind, double begin_vs, double end_vs,
                       std::int64_t arg = 0) {
  TraceRecorder* rec = CurrentContext().recorder;
  if (rec != nullptr) rec->Record(kind, begin_vs, end_vs, arg);
}

// Records a zero-duration span at the current rank's current clock.
inline void RecordInstant(SpanKind kind, std::int64_t arg = 0) {
  const RankContext& ctx = CurrentContext();
  if (ctx.recorder != nullptr) {
    const double now = ctx.clock != nullptr ? ctx.clock->Now() : 0.0;
    ctx.recorder->Record(kind, now, now, arg);
  }
}

// Records one histogram observation against the current rank.
inline void ObserveMetric(MetricId id, double value) {
  TraceRecorder* rec = CurrentContext().recorder;
  if (rec != nullptr) rec->Observe(id, value);
}

// RAII span over the current rank's virtual clock: [Now() at
// construction, Now() at destruction].
class SpanScope {
 public:
  explicit SpanScope(SpanKind kind, std::int64_t arg = 0) : arg_(arg) {
    const RankContext& ctx = CurrentContext();
    rec_ = ctx.recorder;
    if (rec_ == nullptr) return;
    clock_ = ctx.clock;
    kind_ = kind;
    begin_ = clock_ != nullptr ? clock_->Now() : 0.0;
  }
  ~SpanScope() {
    if (rec_ != nullptr) {
      rec_->Record(kind_, begin_,
                   clock_ != nullptr ? clock_->Now() : begin_, arg_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_arg(std::int64_t arg) { arg_ = arg; }

 private:
  TraceRecorder* rec_ = nullptr;
  const VirtualClock* clock_ = nullptr;
  SpanKind kind_ = SpanKind::kClientCollective;
  double begin_ = 0.0;
  std::int64_t arg_ = 0;
};

#else  // !PANDA_TRACE_ENABLED

inline bool Active() { return false; }
inline void RecordSpan(SpanKind, double, double, std::int64_t = 0) {}
inline void RecordInstant(SpanKind, std::int64_t = 0) {}
inline void ObserveMetric(MetricId, double) {}

class SpanScope {
 public:
  explicit SpanScope(SpanKind, std::int64_t = 0) {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  void set_arg(std::int64_t) {}
};

#endif  // PANDA_TRACE_ENABLED

}  // namespace trace
}  // namespace panda

// RAII span macro for clock-bounded regions. Usage:
//   { PANDA_SPAN(span, ::panda::trace::SpanKind::kServerPlan, 0);
//     ... clock-advancing work ... }
// Compiles to nothing with PANDA_TRACE_ENABLED=0.
#if PANDA_TRACE_ENABLED
#define PANDA_SPAN(var, kind, arg) ::panda::trace::SpanScope var(kind, arg)
#else
#define PANDA_SPAN(var, kind, arg) \
  do {                             \
  } while (0)
#endif
