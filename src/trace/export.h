// Exporters for the trace/metrics subsystem.
//
// Two machine-readable formats leave this layer:
//  * Chrome trace_event JSON ("traceEvents") — one track (tid) per rank,
//    loadable in Perfetto / chrome://tracing. Timestamps are virtual
//    microseconds, so the timeline shows *simulated* time, which is what
//    the paper's figures attribute.
//  * Metrics JSON — the plain-value MetricsSnapshot (counters, gauges,
//    histograms), used by `--metrics_out` and embedded in BENCH_*.json.
//
// Both emitters format doubles with %.17g so values round-trip exactly
// (the bench schema's 1e-9 throughput match is really an == match).
#pragma once

#include <functional>
#include <string>

#include "trace/metrics.h"
#include "trace/trace.h"

namespace panda {
namespace trace {

// Serializes `d` with enough digits to round-trip exactly ("%.17g"),
// mapping non-finite values to 0 (JSON has no inf/nan).
std::string JsonDouble(double d);

// Escapes `s` for inclusion inside a JSON string literal.
std::string JsonEscape(const std::string& s);

// Chrome trace_event JSON for every span in `collector`, one track per
// rank. `rank_label(rank)` names the track ("client 0", "server 2", ...);
// pass nullptr for plain "rank N". Deterministic: events are emitted in
// MergedSpans() order.
std::string ChromeTraceJson(
    const Collector& collector,
    const std::function<std::string(int)>& rank_label = nullptr);

// Metrics JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
// Keys are emitted in map (sorted) order, so output is deterministic.
std::string MetricsJson(const MetricsSnapshot& snapshot);

// Writes `content` to `path` (truncating). Returns false (and leaves a
// partial file possibly behind) on I/O failure; callers report, not abort.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace trace
}  // namespace panda
