#include "trace/metrics.h"

#include <algorithm>

#include "util/error.h"

namespace panda {
namespace trace {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  PANDA_CHECK_MSG(!edges_.empty(), "histogram needs at least one edge");
  for (size_t i = 1; i < edges_.size(); ++i) {
    PANDA_CHECK_MSG(edges_[i - 1] < edges_[i],
                    "histogram edges must be strictly ascending");
  }
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::Exponential(double lo, double factor, int n) {
  PANDA_CHECK_MSG(lo > 0.0 && factor > 1.0 && n >= 1,
                  "bad exponential histogram spec");
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(n));
  double e = lo;
  for (int i = 0; i < n; ++i) {
    edges.push_back(e);
    e *= factor;
  }
  return Histogram(std::move(edges));
}

size_t Histogram::BucketIndex(const std::vector<double>& edges, double value) {
  // First edge strictly greater than value; values >= the last edge
  // land in the overflow bucket (index edges.size()).
  return static_cast<size_t>(
      std::upper_bound(edges.begin(), edges.end(), value) - edges.begin());
}

void Histogram::Observe(double value) {
  ++counts_[BucketIndex(edges_, value)];
  ++total_count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  PANDA_CHECK_MSG(edges_ == other.edges_,
                  "merging histograms with different bucket edges");
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  sum_ = 0.0;
}

void MetricsRegistry::AddCounter(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& h) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(name, h);
    return;
  }
  it->second.Merge(h);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.edges = h.edges();
    out.counts = h.counts();
    out.total_count = h.total_count();
    out.sum = h.sum();
    snap.histograms.emplace(name, std::move(out));
  }
  return snap;
}

}  // namespace trace
}  // namespace panda
