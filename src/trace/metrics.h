// Metrics primitives: counters, gauges, fixed-bucket histograms.
//
// The metrics layer is deliberately dumb: a Histogram is a fixed set of
// ascending bucket edges plus counts, a MetricsRegistry is a named bag
// of counters/gauges/histograms, and a MetricsSnapshot is the plain-
// value view exported to JSON. All the concurrency discipline lives in
// the trace layer (per-rank recorders, merged after the rank threads
// join) — nothing here takes a lock.
//
// Bucket semantics (asserted by tests/trace_test.cc): a value `v` falls
// into bucket `i` when `v < edges[i]` and `v >= edges[i-1]` (edges are
// upper bounds, exclusive); values >= the last edge land in the
// overflow bucket, so `counts().size() == edges().size() + 1`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace panda {
namespace trace {

class Histogram {
 public:
  // `edges` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> edges);

  // Convenience: n exponentially spaced edges lo, lo*factor, ...
  static Histogram Exponential(double lo, double factor, int n);

  void Observe(double value);

  // Adds another histogram's counts into this one (same edges required).
  void Merge(const Histogram& other);

  // Bucket index of `value` under the upper-bound-exclusive rule above.
  static size_t BucketIndex(const std::vector<double>& edges, double value);

  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::int64_t>& counts() const { return counts_; }
  std::int64_t total_count() const { return total_count_; }
  double sum() const { return sum_; }

  void Reset();

 private:
  std::vector<double> edges_;
  std::vector<std::int64_t> counts_;  // edges_.size() + 1 (overflow last)
  std::int64_t total_count_ = 0;
  double sum_ = 0.0;
};

// Plain-value export of a whole registry (what MetricsJson serializes
// and MachineReport carries).
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> edges;
    std::vector<std::int64_t> counts;
    std::int64_t total_count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// Named metric store, merged across ranks (and across subsystems: the
// robustness and transport-fault counters are imported here so the
// machine report and the JSON export share one source of truth).
class MetricsRegistry {
 public:
  // Accumulates `delta` into the named counter (creates at 0).
  void AddCounter(const std::string& name, std::int64_t delta);

  // Sets (overwrites) the named gauge.
  void SetGauge(const std::string& name, double value);

  // Merges `h` into the named histogram (creates with h's edges).
  void MergeHistogram(const std::string& name, const Histogram& h);

  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace trace
}  // namespace panda
