#include "trace/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace panda {
namespace trace {

std::string JsonDouble(double d) {
  if (!std::isfinite(d)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ChromeTraceJson(
    const Collector& collector,
    const std::function<std::string(int)>& rank_label) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };
  // Metadata: name each rank's track.
  for (int r = 0; r < collector.nranks(); ++r) {
    std::string label =
        rank_label ? rank_label(r) : ("rank " + std::to_string(r));
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":";
    out += std::to_string(r);
    out += ",\"args\":{\"name\":\"";
    out += JsonEscape(label);
    out += "\"}}";
  }
  // Complete ("X") events, one per span, virtual microseconds.
  for (const Collector::RankSpan& rs : collector.MergedSpans()) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(rs.rank);
    out += ",\"name\":\"";
    out += SpanKindName(rs.span.kind);
    out += "\",\"cat\":\"panda\",\"ts\":";
    out += JsonDouble(rs.span.begin_vs * 1e6);
    out += ",\"dur\":";
    out += JsonDouble((rs.span.end_vs - rs.span.begin_vs) * 1e6);
    out += ",\"args\":{\"arg\":";
    out += std::to_string(rs.span.arg);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"edges\":[";
    for (size_t i = 0; i < hist.edges.size(); ++i) {
      if (i != 0) out += ",";
      out += JsonDouble(hist.edges[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(hist.counts[i]);
    }
    out += "],\"total_count\":" + std::to_string(hist.total_count);
    out += ",\"sum\":" + JsonDouble(hist.sum);
    out += "}";
  }
  out += "}}";
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.is_open()) return false;
  f << content;
  f.flush();
  return f.good();
}

}  // namespace trace
}  // namespace panda
