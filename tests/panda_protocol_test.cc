// Tests for the wire protocol (src/panda/protocol.*), array metadata,
// group metadata files, and protocol-level validation failures.
#include <gtest/gtest.h>

#include "iosim/sim_fs.h"
#include "panda/array.h"
#include "panda/protocol.h"
#include "panda/schema_io.h"

namespace panda {
namespace {

ArrayMeta SampleMeta() {
  ArrayMeta meta;
  meta.name = "temperature";
  meta.elem_size = 8;
  meta.memory = Schema({512, 512, 512}, Mesh(Shape{4, 4, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  meta.disk = Schema({512, 512, 512}, Mesh(Shape{8}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});
  return meta;
}

TEST(ProtocolTest, RegionRoundTrip) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  const Region r({1, 2, 3}, {4, 5, 6});
  EncodeRegion(enc, r);
  const Region empty(Index::Zeros(2), Index::Zeros(2));
  EncodeRegion(enc, empty);
  Decoder dec(buf);
  EXPECT_EQ(DecodeRegion(dec), r);
  EXPECT_TRUE(DecodeRegion(dec).empty());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(ProtocolTest, ArrayMetaRoundTrip) {
  const ArrayMeta meta = SampleMeta();
  std::vector<std::byte> buf;
  Encoder enc(buf);
  meta.EncodeTo(enc);
  Decoder dec(buf);
  const ArrayMeta back = ArrayMeta::Decode(dec);
  EXPECT_EQ(back.name, meta.name);
  EXPECT_EQ(back.elem_size, meta.elem_size);
  EXPECT_EQ(back.memory, meta.memory);
  EXPECT_EQ(back.disk, meta.disk);
  EXPECT_EQ(back.total_bytes(), 512LL * 512 * 512 * 8);
}

TEST(ProtocolTest, CollectiveRequestRoundTrip) {
  CollectiveRequest req;
  req.op = IoOp::kRead;
  req.purpose = Purpose::kTimestep;
  req.seq = 41;
  req.group = "Sim2";
  req.meta_file = "simulation2.schema";
  req.arrays.push_back(SampleMeta());
  req.arrays.push_back(SampleMeta());
  req.arrays[1].name = "pressure";

  const Message msg = req.ToMessage();
  const CollectiveRequest back = CollectiveRequest::FromMessage(msg);
  EXPECT_EQ(back.op, IoOp::kRead);
  EXPECT_EQ(back.purpose, Purpose::kTimestep);
  EXPECT_EQ(back.seq, 41);
  EXPECT_EQ(back.group, "Sim2");
  EXPECT_EQ(back.meta_file, "simulation2.schema");
  ASSERT_EQ(back.arrays.size(), 2u);
  EXPECT_EQ(back.arrays[1].name, "pressure");
}

TEST(ProtocolTest, ShutdownRequestIsTiny) {
  // The paper's point: the collective request is a *short, high-level*
  // description. A shutdown (no arrays) is a few dozen bytes; even two
  // full 3-D array descriptions stay well under a kilobyte.
  CollectiveRequest shutdown;
  shutdown.op = IoOp::kShutdown;
  EXPECT_LT(shutdown.ToMessage().WireBytes(), 64);

  CollectiveRequest full;
  full.arrays.push_back(SampleMeta());
  full.arrays.push_back(SampleMeta());
  EXPECT_LT(full.ToMessage().WireBytes(), 1024);
}

TEST(ProtocolTest, CorruptRequestThrows) {
  CollectiveRequest req;
  req.arrays.push_back(SampleMeta());
  Message msg = req.ToMessage();
  msg.header.resize(msg.header.size() / 2);  // truncate
  EXPECT_THROW(CollectiveRequest::FromMessage(msg), PandaError);

  Message bad_op = req.ToMessage();
  bad_op.header[0] = std::byte{99};
  EXPECT_THROW(CollectiveRequest::FromMessage(bad_op), PandaError);
}

TEST(ProtocolTest, PieceHeaderRoundTrip) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  PieceHeader h{3, 17, 5, 2, Region({0, 64}, {32, 64})};
  h.EncodeTo(enc);
  Decoder dec(buf);
  const PieceHeader back = PieceHeader::Decode(dec);
  EXPECT_EQ(back.array_index, 3);
  EXPECT_EQ(back.chunk_index, 17);
  EXPECT_EQ(back.sub_index, 5);
  EXPECT_EQ(back.piece_index, 2);
  EXPECT_EQ(back.region, h.region);
}

TEST(ProtocolTest, DataFileNames) {
  EXPECT_EQ(DataFileName("", "temp", Purpose::kGeneral, 0), "temp.dat.0");
  EXPECT_EQ(DataFileName("Sim2", "temp", Purpose::kTimestep, 3),
            "Sim2.temp.ts.3");
  EXPECT_EQ(DataFileName("Sim2", "temp", Purpose::kCheckpoint, 7),
            "Sim2.temp.ck.7");
}

TEST(GroupMetaTest, EncodeDecodeRoundTrip) {
  GroupMeta meta;
  meta.group = "Sim2";
  meta.timesteps = 12;
  meta.has_checkpoint = true;
  meta.checkpoint_seq = 7;
  meta.arrays.push_back(SampleMeta());
  const auto bytes = meta.Encode();
  const GroupMeta back = GroupMeta::Decode(bytes);
  EXPECT_EQ(back.group, "Sim2");
  EXPECT_EQ(back.timesteps, 12);
  EXPECT_TRUE(back.has_checkpoint);
  EXPECT_EQ(back.checkpoint_seq, 7);
  ASSERT_EQ(back.arrays.size(), 1u);
  EXPECT_EQ(back.arrays[0].name, "temperature");
}

TEST(GroupMetaTest, RejectsCorruptFiles) {
  GroupMeta meta;
  meta.group = "g";
  auto bytes = meta.Encode();
  bytes[0] = std::byte{0};  // break the magic
  EXPECT_THROW(GroupMeta::Decode(bytes), PandaError);

  auto truncated = meta.Encode();
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(GroupMeta::Decode(truncated), PandaError);

  auto trailing = meta.Encode();
  trailing.push_back(std::byte{0});
  EXPECT_THROW(GroupMeta::Decode(trailing), PandaError);
}

TEST(GroupMetaTest, FileSystemRoundTripAndUpdate) {
  SimFileSystem fs(SimFileSystem::Options{DiskModel::Instant(), true, nullptr});
  CollectiveRequest req;
  req.op = IoOp::kWrite;
  req.purpose = Purpose::kTimestep;
  req.seq = 0;
  req.group = "g";
  req.meta_file = "g.schema";
  req.arrays.push_back(SampleMeta());

  UpdateGroupMeta(fs, req);
  EXPECT_EQ(ReadGroupMeta(fs, "g.schema").timesteps, 1);

  req.seq = 4;
  UpdateGroupMeta(fs, req);
  EXPECT_EQ(ReadGroupMeta(fs, "g.schema").timesteps, 5);

  req.purpose = Purpose::kCheckpoint;
  req.seq = 5;
  UpdateGroupMeta(fs, req);
  const GroupMeta meta = ReadGroupMeta(fs, "g.schema");
  EXPECT_EQ(meta.timesteps, 5);  // unchanged by the checkpoint
  EXPECT_TRUE(meta.has_checkpoint);
  EXPECT_EQ(meta.checkpoint_seq, 5);
}

TEST(GroupMetaTest, MissingFileThrows) {
  SimFileSystem fs(SimFileSystem::Options{DiskModel::Instant(), true, nullptr});
  EXPECT_THROW(ReadGroupMeta(fs, "absent.schema"), PandaError);
}

TEST(ArrayTest, Figure2StyleConstruction) {
  ArrayLayout memory("memory layout", {8, 8});
  ArrayLayout disk("disk layout", {8, 1});
  Array temperature("temperature", {512, 512, 512}, sizeof(int), memory,
                    {BLOCK, BLOCK, NONE}, disk, {BLOCK, BLOCK, NONE});
  EXPECT_EQ(temperature.name(), "temperature");
  EXPECT_EQ(temperature.total_bytes(),
            512LL * 512 * 512 * static_cast<std::int64_t>(sizeof(int)));
  EXPECT_FALSE(temperature.bound());

  temperature.BindClient(0);
  EXPECT_TRUE(temperature.bound());
  EXPECT_EQ(temperature.local_region(), Region({0, 0, 0}, {64, 64, 512}));
  EXPECT_EQ(temperature.local_data().size(),
            static_cast<size_t>(64 * 64 * 512 * sizeof(int)));
  auto typed = temperature.local_as<int>();
  EXPECT_EQ(typed.size(), static_cast<size_t>(64 * 64 * 512));
}

TEST(ArrayTest, BindWithoutAllocationForTimingRuns) {
  ArrayLayout memory("m", {2});
  Array a("x", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
  a.BindClient(1, /*allocate=*/false);
  EXPECT_TRUE(a.bound());
  EXPECT_TRUE(a.local_data().empty());
  EXPECT_EQ(a.local_region(), Region({8}, {8}));
}

TEST(ArrayTest, RejectsBadConstruction) {
  ArrayLayout memory("m", {2});
  EXPECT_THROW(Array("", {16}, 4, memory, {BLOCK}, memory, {BLOCK}),
               PandaError);
  EXPECT_THROW(Array("x", {16}, 0, memory, {BLOCK}, memory, {BLOCK}),
               PandaError);
  // CYCLIC memory schemas are rejected (disk-only extension).
  EXPECT_THROW(Array("x", {16}, 4, memory, {CYCLIC(2)}, memory, {BLOCK}),
               PandaError);
  // Memory/disk shape mismatch through the schema constructor.
  EXPECT_THROW(Array("x", 4, Schema({16}, Mesh(Shape{2}), {BLOCK}),
                     Schema({8}, Mesh(Shape{2}), {BLOCK})),
               PandaError);
}

TEST(ArrayTest, BindClientRangeChecked) {
  ArrayLayout memory("m", {2});
  Array a("x", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
  EXPECT_THROW(a.BindClient(2), PandaError);
  EXPECT_THROW(a.BindClient(-1), PandaError);
}

}  // namespace
}  // namespace panda
